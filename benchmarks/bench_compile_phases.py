"""E6 — the compile-phase split claim (paper §3.1).

"Tests in the compiler system show that about 90% of the time needed to
compile a program is used by lexical analysis, parsing and memory
routines, and only about 10% is used by code generation.  If we equate
this 10% to the time needed by the dynamic loader to resolve associative
addresses (a simpler activity than code generation), we can then clearly
see the potential gain to be achieved by storing compiled code in the
EDB."

We time the three phases on a synthetic rule corpus:

1. lexing + parsing (reader),
2. code generation (clause compiler),
3. dynamic loading (decode + control splicing) of the same procedures.
"""

import time

import pytest

from repro.dictionary import SegmentedDictionary
from repro.engine.session import EduceStar
from repro.lang.reader import Reader
from repro.wam.compiler import ClauseCompiler, CompileContext


def _corpus(n_procs=40, clauses_per=6):
    """A program of recursive list-processing rules with varied heads."""
    parts = []
    for p in range(n_procs):
        name = f"proc_{p}"
        parts.append(f"{name}([], acc, Acc, Acc).")
        for c in range(clauses_per - 1):
            parts.append(
                f"{name}([k{c}(X, Y)|T], acc, A0, Acc) :- "
                f"X > {c}, A1 is A0 + X * Y - {c}, "
                f"{name}(T, acc, A1, Acc).")
    return "\n".join(parts)


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


def test_phase_split(benchmark, corpus):
    """Measure lexing+parsing vs code generation on the same text."""
    state = {}

    def run():
        reader = Reader()
        t0 = time.perf_counter()
        clauses = list(reader.read_terms(corpus))
        t_parse = time.perf_counter() - t0

        ctx = CompileContext(SegmentedDictionary(segment_capacity=4096))
        compiler = ClauseCompiler(ctx)
        t0 = time.perf_counter()
        for clause in clauses:
            compiler.compile_clause(clause)
        t_codegen = time.perf_counter() - t0
        state["parse"] = t_parse
        state["codegen"] = t_codegen

    benchmark.pedantic(run, rounds=5, iterations=1)
    total = state["parse"] + state["codegen"]
    parse_share = state["parse"] / total
    benchmark.extra_info["parse_share"] = round(parse_share, 3)
    benchmark.extra_info["codegen_share"] = round(1 - parse_share, 3)
    benchmark.extra_info["paper_claim"] = "~90% lexing/parsing/memory"
    # The paper's direction: parsing dominates code generation.
    assert parse_share > 0.5


def test_loader_cheaper_than_parsing(benchmark, corpus):
    """The payoff claim: loading stored compiled code (address
    resolution + control splicing) is cheaper than re-parsing source."""
    star = EduceStar()
    star.store_program(corpus)

    # Force one call per stored procedure; compare loader work against a
    # fresh parse of the same text.
    state = {}

    def run():
        star.loader.invalidate()
        t0 = time.perf_counter()
        for p in range(40):
            try:
                star.solve_once(f"proc_{p}([], acc, 0, _)")
            except Exception:
                pass
        state["load"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        list(Reader().read_terms(corpus))
        state["parse"] = time.perf_counter() - t0

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["load_s"] = round(state["load"], 4)
    benchmark.extra_info["parse_s"] = round(state["parse"], 4)
    assert state["load"] < state["parse"]


def test_compiled_vs_source_space(benchmark, corpus):
    """§2.3: "source representation is wasteful of space" — compare the
    stored-bytes accounting of the two storage schemes."""
    state = {}

    def run():
        star = EduceStar()
        star.store_program(corpus)
        from repro.engine.educe_baseline import EduceBaseline
        base = EduceBaseline()
        base.store_program(corpus)
        state["code_bytes"] = star.store.code_bytes_stored
        state["source_bytes"] = base.store.source_bytes_stored

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(state)
    benchmark.extra_info["ratio_code_over_source"] = round(
        state["code_bytes"] / max(state["source_bytes"], 1), 2)
