"""Ablation — WAM instruction mix (paper §2.1, §3.2).

The WAM's term-oriented compilation determines a characteristic opcode
distribution: get/unify head traffic dominates data movement, and the
choice instructions' share tracks procedure determinism.  This bench
records the opcode histogram for three classic program shapes —
deterministic recursion, list processing, and non-deterministic search —
as the raw data behind the paper's architectural arguments.

Script mode adds the optimizer axis (E14 in EXPERIMENTS.md): each shape
runs under ``optimize="off" | "peephole" | "full"`` and the report shows
the executed-instruction and data-reference deltas, with the answers
differentially checked across levels.

Run:  PYTHONPATH=src python benchmarks/bench_instruction_mix.py
      [--optimize all|off|peephole|full] [--exposition PATH] [--smoke]
      [--profile]

``--smoke`` is the CI entry point: non-zero exit when any level's
answers diverge from ``optimize="off"`` or the optimizer fails to
reduce executed instructions.

``--modes`` switches to the interprocedural-modes ablation (E16 in
EXPERIMENTS.md): a dispatch workload whose key column repeats values —
so per-procedure first-argument indexing and the optimizer's local
chain guards are both defeated — runs at ``optimize="full"`` with and
without the whole-program analysis feeding proven-ground argument
positions to the dispatcher (``Session.apply_global_modes``).  With
``--smoke`` the run fails unless the answers are identical, at least
one mode-driven guard was planted, and the executed instruction count
drops — a win only the interprocedural analysis can enable, since the
optimization level is pinned on both sides.

``--profile`` switches to the sampled-profiler overhead contract (E15
in EXPERIMENTS.md): each shape runs bare, with a profiler installed
but disabled (the off path), and with sampling enabled, toggling one
machine through the three configurations in rotated interleaved
trials (overhead = median of within-trial ratios to bare).  With
``--smoke`` the run fails when the off path costs more than 1 % or
sampling more than 2 %, when any configuration changes the executed
instruction count, or when the profiler's per-predicate attribution
misses the workload's own predicates.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest                                          # noqa: E402

from repro import measure                              # noqa: E402
from repro.wam.debugger import instruction_profile     # noqa: E402
from repro.wam.machine import Machine                  # noqa: E402
from repro.wam.optimizer import OPT_LEVELS             # noqa: E402

PROGRAMS = {
    "deterministic-recursion": (
        "count(N, N) :- !. "
        "count(I, N) :- I < N, I1 is I + 1, count(I1, N).",
        "count(0, 2000)",
    ),
    "list-processing": (
        "nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).",
        "nrev([a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p], _)",
    ),
    "nondeterministic-search": (
        "d(X) :- member(X, [1,2,3,4,5,6,7,8]). "
        "pair(X, Y) :- d(X), d(Y), X + Y =:= 9.",
        "findall(X-Y, pair(X, Y), _)",
    ),
}


@pytest.mark.parametrize("shape", sorted(PROGRAMS))
def test_instruction_mix(benchmark, shape):
    program, goal = PROGRAMS[shape]
    machine = Machine()
    machine.consult(program)

    state = {}

    def run():
        state["profile"] = instruction_profile(machine, goal)

    benchmark.pedantic(run, rounds=3, iterations=1)
    profile = state["profile"]
    total = sum(profile.values())
    top = sorted(profile.items(), key=lambda kv: -kv[1])[:6]
    benchmark.extra_info["total_instructions"] = total
    benchmark.extra_info["top_opcodes"] = {
        op: round(n / total, 3) for op, n in top}

    # Structural expectations per shape.
    if shape == "deterministic-recursion":
        choice = sum(profile.get(op, 0) for op in
                     ("try_me_else", "retry_me_else", "try", "retry"))
        assert choice / total < 0.25
    if shape == "list-processing":
        head = sum(n for op, n in profile.items()
                   if op.startswith(("get_", "unify_")))
        assert head / total > 0.3  # data movement dominates
    if shape == "nondeterministic-search":
        assert profile.get("try_me_else", 0) + profile.get("try", 0) > 0


# ------------------------------------------------------- script mode (E14)

def _run_level(shape: str, level: str) -> dict:
    from repro import term_to_text

    program, goal = PROGRAMS[shape]
    machine = Machine(optimize=level)
    machine.consult(program)
    with measure(machine) as meas:
        answers = [
            tuple(sorted((name, term_to_text(value))
                         for name, value in sol.bindings.items()))
            for sol in machine.solve(goal)]
    return {
        "answers": answers,
        "instr_count": meas["instr_count"],
        "data_refs": meas["data_refs"],
        "counters": machine.counters(),
        "snapshot": machine.counters(),
    }


# -------------------------------------------- interprocedural modes (E16)

#: distinct dispatch keys; each key owns two clauses, so every key
#: column value repeats and local chain guards cannot index the chain
_MODES_KEYS = 8


def _modes_program() -> str:
    lines = []
    for i in range(_MODES_KEYS):
        lines.append(f"act(S, k{i}, on) :- mark(S, on).")
        lines.append(f"act(S, k{i}, off) :- mark(S, off).")
    lines.append("mark(_, _).")
    lines.append("route(S, R) :- lookup(S, K), act(S, K, R).")
    lines.extend(f"lookup(s{i}, k{i})." for i in range(_MODES_KEYS))
    lines.append("drive(Out) :- findall(S-R, route(S, R), Out).")
    return "\n".join(lines)


def _run_modes_config(apply_modes: bool) -> dict:
    """One fresh session at ``optimize='full'``; the only axis is
    whether the whole-program analysis feeds the dispatcher."""
    from repro import EduceStar, term_to_text

    kb = EduceStar(optimize="full")
    kb.consult(_modes_program())
    report = None
    if apply_modes:
        report = kb.apply_global_modes()
    with measure(kb.machine) as meas:
        answers = [
            tuple(sorted((name, term_to_text(value))
                         for name, value in sol.bindings.items()))
            for sol in kb.solve("drive(Out)")]
    counters = kb.counters()   # session-wide: machine + analysis_global_*
    return {
        "answers": answers,
        "instr_count": meas["instr_count"],
        "data_refs": meas["data_refs"],
        "cp_created": counters["cp_created"],
        "mode_guards": counters["wam_opt_mode_guards"],
        "rejects": counters["wam_opt_rejects"],
        "bound_preds": len(report.bound_args()) if report else 0,
        "snapshot": counters,
    }


def modes_mode(args) -> int:
    """E16: the dispatch win only interprocedural modes can enable.

    Both configurations run ``optimize="full"`` — peephole fusion and
    the local chain guards are active on both sides, and the key
    column's repeated values defeat those local guards.  The delta is
    therefore attributable to exactly one thing: the analysis proving
    ``act``'s key argument ground at every call site, which lets the
    dispatcher plant a multi-way ``switch_on_arg`` whose buckets are
    the clauses sharing a key."""
    failures = 0
    base = _run_modes_config(apply_modes=False)
    modes = _run_modes_config(apply_modes=True)

    print(f"{'config':<22} {'instr':>8} {'Δinstr':>8} {'data refs':>10} "
          f"{'cp_created':>11} {'mode guards':>12}")
    for label, r in (("full", base), ("full + global modes", modes)):
        delta = ("-" if r is base else
                 f"{(1 - r['instr_count'] / base['instr_count']):+.1%}")
        print(f"{label:<22} {r['instr_count']:>8} {delta:>8} "
              f"{r['data_refs']:>10} {r['cp_created']:>11} "
              f"{r['mode_guards']:>12}")

    if modes["answers"] != base["answers"]:
        print("FAIL: answers diverge once global modes are applied")
        failures += 1
    if modes["mode_guards"] < 1:
        print("FAIL: the analysis planted no mode-driven guard")
        failures += 1
    if base["mode_guards"] != 0:
        print("FAIL: baseline planted mode guards without an analysis")
        failures += 1
    if args.smoke and modes["instr_count"] >= base["instr_count"]:
        print("FAIL: global modes did not reduce executed instructions")
        failures += 1
    for label, r in (("full", base), ("full+modes", modes)):
        if r["rejects"]:
            print(f"FAIL {label}: verifier rejected {r['rejects']} "
                  f"block(s)")
            failures += 1
    print(f"\n{modes['bound_preds']} predicate(s) had proven-ground "
          f"arguments; answers pinned across configs "
          f"({len(base['answers'])} solutions)")

    if args.exposition:
        from repro.obs import MetricsRegistry, render_prometheus
        text = render_prometheus(MetricsRegistry.merge(
            base["snapshot"], modes["snapshot"]))
        assert "educe_wam_opt_mode_guards" in text
        with open(args.exposition, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"merged Prometheus exposition "
              f"({len(text.splitlines())} lines) -> {args.exposition}")

    print(f"\n{'PASS' if not failures else 'FAIL'}: interprocedural-"
          f"modes ablation; see EXPERIMENTS.md E16")
    return 1 if failures else 0


# ------------------------------------------------- profiler overhead (E15)

#: per-timing-slice goal repeats, sized so one slice is long enough to
#: dwarf the timer resolution but short enough that many interleaved
#: slices fit in a CI run
_PROFILE_REPEATS = {
    "deterministic-recursion": 1,
    "list-processing": 8,
    "nondeterministic-search": 10,
}

#: the overhead contract (docs/OBSERVABILITY.md, EXPERIMENTS.md E15)
_OFF_PATH_BUDGET = 0.01
_SAMPLING_BUDGET = 0.02


def _timed_run(machine, goal: str, repeats: int) -> float:
    import time
    start = time.perf_counter()
    for _ in range(repeats):
        for _ in machine.solve(goal):
            pass
    return time.perf_counter() - start


def _median(values):
    values = sorted(values)
    n = len(values)
    mid = n // 2
    return values[mid] if n % 2 else (values[mid - 1] + values[mid]) / 2


def _measure_overhead(benches, trials, ratios):
    """One measurement pass: for every shape, *trials* adjacent
    base/config slice pairs per configuration, with the order inside
    each pair alternating (base-first on even trials, config-first on
    odd) so slow drift and position bias cancel.  Appends the paired
    ratios to *ratios* and returns per-shape base medians."""
    import gc

    base_ms = {}
    gc.disable()
    try:
        for shape, (machine, sampler, set_config) in benches.items():
            goal = PROGRAMS[shape][1]
            repeats = _PROFILE_REPEATS[shape]
            base_times = []
            for trial in range(trials):
                for config in ("off", "on"):
                    pair = (("base", config) if trial % 2
                            else (config, "base"))
                    set_config(pair[0])
                    t1 = _timed_run(machine, goal, repeats)
                    set_config(pair[1])
                    t2 = _timed_run(machine, goal, repeats)
                    t_cfg, t_base = (t2, t1) if pair[0] == "base" \
                        else (t1, t2)
                    ratios[shape][config].append(t_cfg / t_base)
                    base_times.append(t_base)
            base_ms[shape] = _median(base_times) * 1000
    finally:
        gc.enable()
    return base_ms


def _pooled(ratios, config):
    pool = [r for per_shape in ratios.values()
            for r in per_shape[config]]
    return _median(pool) - 1.0


def profile_mode(args) -> int:
    """Measure the sampled profiler's overhead and show its
    attribution.

    One machine per shape; the three configurations — bare, installed-
    but-disabled (the off path), and sampling — toggle the *same*
    machine, so code-layout and allocator effects cancel (separate
    Machine instances differ by several percent on their own).  Each
    overhead is the median over adjacent order-alternating slice pairs
    of the config/base wall-time ratio, pooled across shapes; Python's
    gc is parked during timing.  In ``--smoke`` mode a verdict over
    budget triggers one automatic remeasure with more trials (the
    pools merge) before failing — the contract gates the profiler's
    cost, not the host's scheduler."""
    from repro.obs.profiler import WamProfiler

    trials = 20 if args.smoke else 10
    failures = 0
    ratios = {shape: {"off": [], "on": []} for shape in PROGRAMS}
    snapshots = []
    sampler = None
    benches = {}
    for shape in sorted(PROGRAMS):
        program, goal = PROGRAMS[shape]
        machine = Machine()
        machine.consult(program)
        sampler = WamProfiler(interval=2048).install(machine)

        def set_config(config, machine=machine, sampler=sampler):
            machine.profiler = sampler if config != "base" else None
            if config == "on":
                sampler.active or sampler.enable()
            else:
                sampler.disable()

        # Differential check first (also warms the machine): neither
        # configuration may change what executes.
        counts = {}
        for config in ("base", "off", "on"):
            set_config(config)
            before = machine.instr_count
            answers = [tuple(sorted(s.bindings.items()))
                       for s in machine.solve(goal)]
            counts[config] = (machine.instr_count - before,
                              len(answers))
        if len(set(counts.values())) != 1:
            print(f"FAIL {shape}: profiler changed execution {counts}")
            failures += 1
        benches[shape] = (machine, sampler, set_config)

    base_ms = _measure_overhead(benches, trials, ratios)
    off_pct = _pooled(ratios, "off")
    on_pct = _pooled(ratios, "on")
    if args.smoke and (off_pct > _OFF_PATH_BUDGET
                       or on_pct > _SAMPLING_BUDGET):
        print(f"over budget on first pass (off {off_pct:+.2%}, "
              f"on {on_pct:+.2%}); remeasuring with {2 * trials} "
              f"trials")
        base_ms = _measure_overhead(benches, 2 * trials, ratios)
        off_pct = _pooled(ratios, "off")
        on_pct = _pooled(ratios, "on")

    print(f"{'shape':<28} {'base ms':>9} {'off %':>8} {'on %':>8} "
          f"{'samples':>8}")
    for shape in sorted(PROGRAMS):
        machine, sampler, set_config = benches[shape]
        set_config("on")
        print(f"{shape:<28} {base_ms[shape]:>9.2f} "
              f"{_median(ratios[shape]['off']) - 1.0:>8.2%} "
              f"{_median(ratios[shape]['on']) - 1.0:>8.2%} "
              f"{sampler.samples:>8}")
        snapshots.append(machine.counters())

        # Attribution sanity: the workload's own predicates must be
        # where the samples land.
        predicates = {rec["predicate"] for rec in sampler.attribution()}
        expected = {"deterministic-recursion": "count/2",
                    "list-processing": "nrev/2",
                    "nondeterministic-search": "pair/2"}[shape]
        if sampler.samples and expected not in predicates:
            print(f"FAIL {shape}: {expected} missing from "
                  f"attribution {sorted(predicates)}")
            failures += 1

    print(f"\noff-path overhead (installed, disabled): {off_pct:+.2%} "
          f"(budget {_OFF_PATH_BUDGET:.0%})")
    print(f"sampling overhead (interval 2048):        {on_pct:+.2%} "
          f"(budget {_SAMPLING_BUDGET:.0%})")
    if args.smoke and off_pct > _OFF_PATH_BUDGET:
        print("FAIL: off-path overhead exceeds budget")
        failures += 1
    if args.smoke and on_pct > _SAMPLING_BUDGET:
        print("FAIL: sampling overhead exceeds budget")
        failures += 1

    if sampler is not None:
        print("\nlast shape's attribution:")
        print(sampler.format())
        folded = sampler.folded()
        print(f"folded stacks ({len(folded)}):")
        for line in folded[:6]:
            print(f"  {line}")

    if args.exposition:
        from repro.obs import MetricsRegistry, render_prometheus
        text = render_prometheus(MetricsRegistry.merge(*snapshots))
        assert "educe_profiler_samples" in text
        with open(args.exposition, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nmerged Prometheus exposition "
              f"({len(text.splitlines())} lines) -> {args.exposition}")

    print(f"\n{'PASS' if not failures else 'FAIL'}: sampled profiler "
          f"overhead contract; see EXPERIMENTS.md E15")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--optimize", default="all",
                        choices=("all",) + OPT_LEVELS,
                        help="optimization level axis (default: all)")
    parser.add_argument("--exposition", metavar="PATH", default=None,
                        help="write the merged wam counters as "
                             "Prometheus text format")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: differential-check answers and "
                             "require an instruction-count reduction")
    parser.add_argument("--profile", action="store_true",
                        help="measure sampled-profiler overhead (E15) "
                             "instead of the optimizer axis")
    parser.add_argument("--modes", action="store_true",
                        help="run the interprocedural-modes ablation "
                             "(E16) instead of the optimizer axis")
    args = parser.parse_args(argv)
    if args.profile:
        return profile_mode(args)
    if args.modes:
        return modes_mode(args)
    levels = OPT_LEVELS if args.optimize == "all" else (args.optimize,)

    failures = 0
    snapshots = []
    print(f"{'shape':<28} {'level':<9} {'instr':>9} {'Δinstr':>8} "
          f"{'data refs':>10} {'fusions':>8} {'demoted':>8}")
    for shape in sorted(PROGRAMS):
        results = {}
        for level in levels:
            results[level] = _run_level(shape, level)
            snapshots.append(results[level]["snapshot"])
        base = results.get("off")
        for level in levels:
            r = results[level]
            delta = ("-" if base is None or base is r else
                     f"{(1 - r['instr_count'] / base['instr_count']):+.1%}")
            print(f"{shape:<28} {level:<9} {r['instr_count']:>9} "
                  f"{delta:>8} {r['data_refs']:>10} "
                  f"{r['counters']['wam_opt_fusions']:>8} "
                  f"{r['counters']['wam_opt_chains_demoted']:>8}")
            if base is not None and r["answers"] != base["answers"]:
                print(f"FAIL {shape}: optimize={level} answers diverge "
                      f"from off")
                failures += 1
            if base is not None and r["data_refs"] != base["data_refs"]:
                print(f"FAIL {shape}: optimize={level} changed the "
                      f"data-reference accounting "
                      f"({base['data_refs']} -> {r['data_refs']})")
                failures += 1
            if r["counters"]["wam_opt_rejects"]:
                print(f"FAIL {shape}: optimize={level} rejected "
                      f"{r['counters']['wam_opt_rejects']} block(s)")
                failures += 1
        if (args.smoke and base is not None and "full" in results
                and results["full"]["instr_count"]
                >= base["instr_count"]):
            print(f"FAIL {shape}: optimize=full did not reduce "
                  f"executed instructions")
            failures += 1

    if args.exposition:
        from repro.obs import MetricsRegistry, render_prometheus
        text = render_prometheus(MetricsRegistry.merge(*snapshots))
        assert "educe_wam_opt_fusions" in text
        with open(args.exposition, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nmerged Prometheus exposition "
              f"({len(text.splitlines())} lines) -> {args.exposition}")

    print(f"\n{'PASS' if not failures else 'FAIL'}: answers pinned "
          f"across levels; see EXPERIMENTS.md E14")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
