"""Ablation — WAM instruction mix (paper §2.1, §3.2).

The WAM's term-oriented compilation determines a characteristic opcode
distribution: get/unify head traffic dominates data movement, and the
choice instructions' share tracks procedure determinism.  This bench
records the opcode histogram for three classic program shapes —
deterministic recursion, list processing, and non-deterministic search —
as the raw data behind the paper's architectural arguments.

Script mode adds the optimizer axis (E14 in EXPERIMENTS.md): each shape
runs under ``optimize="off" | "peephole" | "full"`` and the report shows
the executed-instruction and data-reference deltas, with the answers
differentially checked across levels.

Run:  PYTHONPATH=src python benchmarks/bench_instruction_mix.py
      [--optimize all|off|peephole|full] [--exposition PATH] [--smoke]

``--smoke`` is the CI entry point: non-zero exit when any level's
answers diverge from ``optimize="off"`` or the optimizer fails to
reduce executed instructions.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest                                          # noqa: E402

from repro import measure                              # noqa: E402
from repro.wam.debugger import instruction_profile     # noqa: E402
from repro.wam.machine import Machine                  # noqa: E402
from repro.wam.optimizer import OPT_LEVELS             # noqa: E402

PROGRAMS = {
    "deterministic-recursion": (
        "count(N, N) :- !. "
        "count(I, N) :- I < N, I1 is I + 1, count(I1, N).",
        "count(0, 2000)",
    ),
    "list-processing": (
        "nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).",
        "nrev([a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p], _)",
    ),
    "nondeterministic-search": (
        "d(X) :- member(X, [1,2,3,4,5,6,7,8]). "
        "pair(X, Y) :- d(X), d(Y), X + Y =:= 9.",
        "findall(X-Y, pair(X, Y), _)",
    ),
}


@pytest.mark.parametrize("shape", sorted(PROGRAMS))
def test_instruction_mix(benchmark, shape):
    program, goal = PROGRAMS[shape]
    machine = Machine()
    machine.consult(program)

    state = {}

    def run():
        state["profile"] = instruction_profile(machine, goal)

    benchmark.pedantic(run, rounds=3, iterations=1)
    profile = state["profile"]
    total = sum(profile.values())
    top = sorted(profile.items(), key=lambda kv: -kv[1])[:6]
    benchmark.extra_info["total_instructions"] = total
    benchmark.extra_info["top_opcodes"] = {
        op: round(n / total, 3) for op, n in top}

    # Structural expectations per shape.
    if shape == "deterministic-recursion":
        choice = sum(profile.get(op, 0) for op in
                     ("try_me_else", "retry_me_else", "try", "retry"))
        assert choice / total < 0.25
    if shape == "list-processing":
        head = sum(n for op, n in profile.items()
                   if op.startswith(("get_", "unify_")))
        assert head / total > 0.3  # data movement dominates
    if shape == "nondeterministic-search":
        assert profile.get("try_me_else", 0) + profile.get("try", 0) > 0


# ------------------------------------------------------- script mode (E14)

def _run_level(shape: str, level: str) -> dict:
    from repro import term_to_text

    program, goal = PROGRAMS[shape]
    machine = Machine(optimize=level)
    machine.consult(program)
    with measure(machine) as meas:
        answers = [
            tuple(sorted((name, term_to_text(value))
                         for name, value in sol.bindings.items()))
            for sol in machine.solve(goal)]
    return {
        "answers": answers,
        "instr_count": meas["instr_count"],
        "data_refs": meas["data_refs"],
        "counters": machine.counters(),
        "snapshot": machine.counters(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--optimize", default="all",
                        choices=("all",) + OPT_LEVELS,
                        help="optimization level axis (default: all)")
    parser.add_argument("--exposition", metavar="PATH", default=None,
                        help="write the merged wam counters as "
                             "Prometheus text format")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: differential-check answers and "
                             "require an instruction-count reduction")
    args = parser.parse_args(argv)
    levels = OPT_LEVELS if args.optimize == "all" else (args.optimize,)

    failures = 0
    snapshots = []
    print(f"{'shape':<28} {'level':<9} {'instr':>9} {'Δinstr':>8} "
          f"{'data refs':>10} {'fusions':>8} {'demoted':>8}")
    for shape in sorted(PROGRAMS):
        results = {}
        for level in levels:
            results[level] = _run_level(shape, level)
            snapshots.append(results[level]["snapshot"])
        base = results.get("off")
        for level in levels:
            r = results[level]
            delta = ("-" if base is None or base is r else
                     f"{(1 - r['instr_count'] / base['instr_count']):+.1%}")
            print(f"{shape:<28} {level:<9} {r['instr_count']:>9} "
                  f"{delta:>8} {r['data_refs']:>10} "
                  f"{r['counters']['wam_opt_fusions']:>8} "
                  f"{r['counters']['wam_opt_chains_demoted']:>8}")
            if base is not None and r["answers"] != base["answers"]:
                print(f"FAIL {shape}: optimize={level} answers diverge "
                      f"from off")
                failures += 1
            if base is not None and r["data_refs"] != base["data_refs"]:
                print(f"FAIL {shape}: optimize={level} changed the "
                      f"data-reference accounting "
                      f"({base['data_refs']} -> {r['data_refs']})")
                failures += 1
            if r["counters"]["wam_opt_rejects"]:
                print(f"FAIL {shape}: optimize={level} rejected "
                      f"{r['counters']['wam_opt_rejects']} block(s)")
                failures += 1
        if (args.smoke and base is not None and "full" in results
                and results["full"]["instr_count"]
                >= base["instr_count"]):
            print(f"FAIL {shape}: optimize=full did not reduce "
                  f"executed instructions")
            failures += 1

    if args.exposition:
        from repro.obs import MetricsRegistry, render_prometheus
        text = render_prometheus(MetricsRegistry.merge(*snapshots))
        assert "educe_wam_opt_fusions" in text
        with open(args.exposition, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nmerged Prometheus exposition "
              f"({len(text.splitlines())} lines) -> {args.exposition}")

    print(f"\n{'PASS' if not failures else 'FAIL'}: answers pinned "
          f"across levels; see EXPERIMENTS.md E14")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
