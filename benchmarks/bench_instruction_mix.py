"""Ablation — WAM instruction mix (paper §2.1, §3.2).

The WAM's term-oriented compilation determines a characteristic opcode
distribution: get/unify head traffic dominates data movement, and the
choice instructions' share tracks procedure determinism.  This bench
records the opcode histogram for three classic program shapes —
deterministic recursion, list processing, and non-deterministic search —
as the raw data behind the paper's architectural arguments.
"""

import pytest

from repro.wam.debugger import instruction_profile
from repro.wam.machine import Machine

PROGRAMS = {
    "deterministic-recursion": (
        "count(N, N) :- !. "
        "count(I, N) :- I < N, I1 is I + 1, count(I1, N).",
        "count(0, 2000)",
    ),
    "list-processing": (
        "nrev([], []). "
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).",
        "nrev([a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p], _)",
    ),
    "nondeterministic-search": (
        "d(X) :- member(X, [1,2,3,4,5,6,7,8]). "
        "pair(X, Y) :- d(X), d(Y), X + Y =:= 9.",
        "findall(X-Y, pair(X, Y), _)",
    ),
}


@pytest.mark.parametrize("shape", sorted(PROGRAMS))
def test_instruction_mix(benchmark, shape):
    program, goal = PROGRAMS[shape]
    machine = Machine()
    machine.consult(program)

    state = {}

    def run():
        state["profile"] = instruction_profile(machine, goal)

    benchmark.pedantic(run, rounds=3, iterations=1)
    profile = state["profile"]
    total = sum(profile.values())
    top = sorted(profile.items(), key=lambda kv: -kv[1])[:6]
    benchmark.extra_info["total_instructions"] = total
    benchmark.extra_info["top_opcodes"] = {
        op: round(n / total, 3) for op, n in top}

    # Structural expectations per shape.
    if shape == "deterministic-recursion":
        choice = sum(profile.get(op, 0) for op in
                     ("try_me_else", "retry_me_else", "try", "retry"))
        assert choice / total < 0.25
    if shape == "list-processing":
        head = sum(n for op, n in profile.items()
                   if op.startswith(("get_", "unify_")))
        assert head / total > 0.3  # data movement dominates
    if shape == "nondeterministic-search":
        assert profile.get("try_me_else", 0) + profile.get("try", 0) > 0
