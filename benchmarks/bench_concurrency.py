"""Concurrent query throughput: N workers over one shared EDB.

Closed-loop benchmark for `repro.service.QueryService` (paper §3.3, the
multi-user kernel): L client threads each submit a read-only Wisconsin
point-select, wait for its result, and immediately submit the next —
the classic closed loop, so offered load tracks service capacity and
the queue never grows unboundedly.

The workload is **I/O-bound by construction**, which is what makes
worker concurrency pay on a GIL runtime: the disc store simulates
per-page read latency (released outside every latch), the buffer pool
is far smaller than the working set, and the pool's miss path performs
the disc read outside its latch — so K in-flight queries overlap K
page stalls, exactly the effect a 1990 multi-user KBMS got from
overlapping real disc arms.

Run:  PYTHONPATH=src python benchmarks/bench_concurrency.py
      [--queries 200] [--latency-ms 2.0] [--buffer-pages 8]
      [--workers 1,2,4,8,16] [--scale 0.2] [--seed 7]
      [--exposition PATH]

Reports per worker count: throughput (queries/s), mean / p50 / p95
latency, speedup vs. 1 worker.  The acceptance bar recorded in
EXPERIMENTS.md: >= 3x throughput at 8 workers vs. 1.

``--exposition PATH`` merges every worker level's service snapshot
(counters + latency histograms: queue waits, ticket latency, lock and
latch waits, buffer miss stalls) and writes it in Prometheus text
format — the CI telemetry job validates this output parses.
"""

import argparse
import os
import random
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro.bang.pager import Pager                     # noqa: E402
from repro.edb.store import ExternalStore              # noqa: E402
from repro.service import QueryService                 # noqa: E402
from repro.workloads.wisconsin import UNIQUE1, WisconsinDB  # noqa: E402


def build_store(scale: float, buffer_pages: int, latency_ms: float,
                seed: int):
    """A Wisconsin EDB behind a small buffer and a slow simulated disc."""
    store = ExternalStore(pager=Pager(buffer_pages=buffer_pages))
    svc = QueryService(store=store, workers=1, queue_size=4)
    try:
        db = WisconsinDB.build(session=svc.admin, seed=seed, scale=scale)
    finally:
        svc.shutdown()
    # latency armed only after the load phase (loading is write-heavy)
    store.pager.disk.read_latency_s = latency_ms / 1000.0
    return store, db.sizes["tenk1"]


def point_select(key: int):
    """A read-only point probe on tenk1's clustered grid (Wisconsin Q3
    shape) — resolves through the BANG grid's pinned-page path."""
    def goal(session):
        relation = session.relation("tenk1", 16)
        return list(relation.query({UNIQUE1: key}))
    return goal


def run_level(store, n_rows: int, workers: int, queries: int, seed: int):
    """Closed loop: `workers` clients, one in-flight query each."""
    svc = QueryService(store=store, workers=workers,
                      queue_size=2 * workers + 4)
    # The store (and its counters) is shared across levels; exporting
    # per-level *deltas* lets the final merge sum to true run totals
    # instead of double-counting earlier levels' storage work.
    baseline = svc.metrics.snapshot()
    latencies = []
    lock = threading.Lock()
    per_client = queries // workers

    def client(client_id: int):
        rng = random.Random(seed * 1000 + client_id)
        mine = []
        for _ in range(per_client):
            key = rng.randrange(n_rows)
            start = time.perf_counter()
            rows = svc.execute(point_select(key))
            mine.append(time.perf_counter() - start)
            assert len(rows) == 1, f"point select returned {len(rows)}"
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(workers)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    svc.shutdown()

    snapshot = svc.metrics.snapshot()
    assert snapshot["buffer_pins"] == snapshot["buffer_unpins"], (
        "pin leak during benchmark")
    done = per_client * workers
    latencies.sort()
    return {
        "workers": workers,
        "queries": done,
        "elapsed_s": elapsed,
        "throughput_qps": done / elapsed,
        "mean_ms": statistics.mean(latencies) * 1000,
        "p50_ms": latencies[len(latencies) // 2] * 1000,
        "p95_ms": latencies[int(len(latencies) * 0.95) - 1] * 1000,
        "buffer_misses": snapshot["buffer_misses"],
        "buffer_hits": snapshot["buffer_hits"],
        "snapshot": svc.metrics.diff(snapshot, baseline),
        "gauge_keys": svc.metrics.gauge_keys(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=200,
                        help="total queries per worker level")
    parser.add_argument("--latency-ms", type=float, default=2.0,
                        help="simulated per-page disc read latency")
    parser.add_argument("--buffer-pages", type=int, default=8)
    parser.add_argument("--workers", default="1,2,4,8,16")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="Wisconsin scale factor (1.0 = 10k rows)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--exposition", metavar="PATH", default=None,
                        help="write the merged run telemetry as "
                             "Prometheus text format to PATH")
    args = parser.parse_args(argv)
    levels = [int(w) for w in args.workers.split(",")]

    store, n_rows = build_store(args.scale, args.buffer_pages,
                                args.latency_ms, args.seed)
    pages = store.pager.io_counters()["pages"]
    print(f"tenk1: {n_rows} rows, {pages} pages total; "
          f"buffer {args.buffer_pages} pages; "
          f"disc latency {args.latency_ms} ms/page")
    print(f"{'workers':>7} {'qps':>8} {'mean ms':>8} {'p50 ms':>8} "
          f"{'p95 ms':>8} {'speedup':>8}")

    base_qps = None
    results = []
    for workers in levels:
        row = run_level(store, n_rows, workers, args.queries, args.seed)
        if base_qps is None:
            base_qps = row["throughput_qps"]
        row["speedup"] = row["throughput_qps"] / base_qps
        results.append(row)
        print(f"{row['workers']:>7} {row['throughput_qps']:>8.1f} "
              f"{row['mean_ms']:>8.2f} {row['p50_ms']:>8.2f} "
              f"{row['p95_ms']:>8.2f} {row['speedup']:>7.2f}x")

    if args.exposition:
        from repro.obs import MetricsRegistry, render_prometheus
        merged = MetricsRegistry.merge(*[r["snapshot"] for r in results])
        text = render_prometheus(merged,
                                 gauge_keys=results[0]["gauge_keys"])
        with open(args.exposition, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nmerged Prometheus exposition "
              f"({len(text.splitlines())} lines) -> {args.exposition}")

    by_workers = {r["workers"]: r for r in results}
    if 1 in by_workers and 8 in by_workers:
        speedup8 = by_workers[8]["speedup"]
        verdict = "PASS" if speedup8 >= 3.0 else "FAIL"
        print(f"\n8-worker speedup: {speedup8:.2f}x "
              f"(acceptance: >= 3x) {verdict}")
        return 0 if speedup8 >= 3.0 else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
