"""E2/E3 — Tables 2a/2b: the Wisconsin benchmark subset (paper §5.2).

Table 2a reports per-query-class times; Table 2b reports I/O
frequencies (buffer accesses, pages read/written).  Each query class is
run in its different "formats" (plan variants), as the paper did.

Paper's qualitative finding: Educe* "can easily match the performance of
the relational DBMSs available at our installation" — here the check is
that grid access paths beat naive scans and that I/O counts track
selectivity.
"""

import pytest

from repro.workloads import wisconsin

from conftest import record


def _variant_params():
    params = []
    for qc in wisconsin.query_classes():
        for variant in qc.variants:
            params.append(pytest.param(
                qc.number, variant.name,
                id=f"q{qc.number}-{variant.name}"))
    return params


@pytest.mark.parametrize("qnum,vname", _variant_params())
def test_query(benchmark, wisconsin_db, qnum, vname):
    qc = next(q for q in wisconsin.query_classes() if q.number == qnum)
    variant = next(v for v in qc.variants if v.name == vname)

    state = {}

    def run():
        state["result"] = wisconsin.run_query(wisconsin_db, qc, variant)

    benchmark.pedantic(run, rounds=3, iterations=1)
    result = state["result"]
    record(benchmark, result.measurement,
           query=qc.title, variant=vname, rows=result.rows)


def test_io_tracks_selectivity(benchmark, wisconsin_db):
    """Table 2b's point: page traffic tracks selectivity.  For a
    multidimensional partition file the precise guarantee is per
    dimension — the 1% selection touches no more pages than the 10%
    selection on the same attribute, and every selective query touches
    far fewer pages than a full scan.  (A point probe on a *different*
    attribute is bounded by the partial-match cost of k-d partitioning,
    not by single-key B-tree cost — a property BANG shares.)"""
    classes = wisconsin.query_classes()

    def pages(qnum):
        qc = classes[qnum - 1]
        r = wisconsin.run_query(wisconsin_db, qc, qc.variants[0])
        c = r.measurement.counters
        return (c.get("buffer_hits", 0) + c.get("buffer_misses", 0))

    state = {}

    def run():
        state["p3"] = pages(3)
        state["p1"] = pages(1)
        state["p2"] = pages(2)

    benchmark.pedantic(run, rounds=1, iterations=1)
    p1, p2, p3 = state["p1"], state["p2"], state["p3"]
    scan = wisconsin_db.relation("tenk1").grid.leaf_count
    benchmark.extra_info.update(
        {"pages_1pct": p1, "pages_10pct": p2, "pages_1tuple": p3,
         "pages_full_scan": scan})
    assert p1 <= p2           # same attribute: narrower range, fewer pages
    assert p2 < scan          # selections beat scanning
    assert p3 < scan          # partial-match point probe beats scanning


def test_grid_beats_scan_on_selective_query(benchmark, wisconsin_db):
    """Access-path sanity for Table 2a: the grid-range variant of the 1%
    selection does less page work than the scan-filter variant."""
    qc = wisconsin.query_classes()[0]

    def pages(variant):
        r = wisconsin.run_query(wisconsin_db, qc, variant)
        c = r.measurement.counters
        return c.get("buffer_hits", 0) + c.get("buffer_misses", 0)

    state = {}

    def run():
        state["grid"] = pages(qc.variants[0])
        state["scan"] = pages(qc.variants[1])

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(state)
    assert state["grid"] < state["scan"]
