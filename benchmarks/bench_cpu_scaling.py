"""E5 — the diskless-workstation experiment (paper §5.4).

"The effect of cpu predominance was confirmed when we ran queries of
class 1 and 2 on a discless workstation.  The time deterioration can be
partly attributed to the degradation of cpu performance, i.e. from a
M68020 processor at 25 MHz (4 MIPS) to the same processor running at
20 MHz (3 MIPS)."

We re-price the *same* MVV counter trace at both MIPS ratings.  Because
the workload is CPU-bound, simulated time must scale close to the 4/3
CPU ratio — which is exactly the paper's argument.
"""

import pytest

from repro.engine.stats import SUN_3_60_MIPS, SUN_3_280S_MIPS, CostModel, measure
from repro.workloads import mvv

from conftest import record


@pytest.mark.parametrize("klass", [1, 2])
def test_mips_scaling(benchmark, mvv_star, mvv_data, klass):
    queries = (mvv.class1_queries(mvv_data, 5) if klass == 1
               else mvv.class2_queries(mvv_data, 3))

    # Warm pass: the paper measured a running system with populated
    # buffers ("no evidence of significant distortions" between first
    # and second runs); the CPU-dominance argument presumes warm I/O.
    for q in queries:
        for _ in mvv_star.solve(q):
            pass

    state = {}

    def run():
        with measure(mvv_star) as m:
            for q in queries:
                for _ in mvv_star.solve(q):
                    pass
        state["m"] = m

    benchmark.pedantic(run, rounds=1, iterations=1)
    m = state["m"]

    server = CostModel(mips=SUN_3_280S_MIPS)
    client = CostModel(mips=SUN_3_60_MIPS)
    t_server = m.simulated_ms(server)
    t_client = m.simulated_ms(client)
    ratio = t_client / max(t_server, 1e-9)

    record(benchmark, m, klass=klass,
           server_ms=round(t_server, 2),
           client_ms=round(t_client, 2),
           ratio=round(ratio, 3),
           pure_cpu_ratio=round(SUN_3_280S_MIPS / SUN_3_60_MIPS, 3))
    # CPU-bound: deterioration close to the 1.333 CPU ratio, never more.
    assert 1.05 < ratio <= SUN_3_280S_MIPS / SUN_3_60_MIPS + 1e-9
