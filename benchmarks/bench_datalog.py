"""Recursive evaluation strategies: WAM top-down vs semi-naive bottom-up.

The recursion workload family (`repro.workloads.graphs`,
docs/DATALOG.md) at EDB scales where the strategy choice matters.
For each graph size the same reachability program runs twice over the
same stored EDB:

* **top-down** — `EduceStar(datalog="off")`: the WAM solves
  `reach(n0, X)` by SLD resolution through the dynamic loader, one
  solution per proof path;
* **bottom-up** — `EduceStar(datalog="force")`: the strategy planner
  routes the goal to the semi-naive fixpoint; the magic-set rewrite
  restricts derivation to what the bound argument can reach.

Answers are pinned identical (as sets — the WAM derives one answer per
proof, bottom-up has set semantics) at every size where the oracle
runs; sizes above ``--oracle-limit`` run bottom-up only, so the
fixpoint can be measured at EDB scales the WAM cannot finish in
reasonable time.

Run:  PYTHONPATH=src python benchmarks/bench_datalog.py
      [--edges 10000,100000] [--graph tree|chain|dag] [--branching 4]
      [--seed 7] [--oracle-limit 150000] [--exposition PATH] [--smoke]

``--smoke`` is the CI entry point: one small size, oracle always on,
non-zero exit when the answers diverge or the goal was not routed
bottom-up.  Results at full scale are recorded as E13 in
EXPERIMENTS.md.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro import EduceStar, measure                   # noqa: E402
from repro.workloads import graphs                     # noqa: E402


def build_edges(graph: str, edges: int, branching: int, seed: int):
    if graph == "tree":
        return graphs.k_ary_tree(edges, branching=branching)
    if graph == "chain":
        return graphs.chain(edges)
    if graph == "dag":
        return graphs.random_dag(max(2, edges // 3), edges, seed)
    raise SystemExit(f"unknown graph family {graph!r}")


def build_session(mode: str, edge_rows) -> EduceStar:
    kb = EduceStar(datalog=mode)
    kb.store_relation("edge", edge_rows)
    kb.store_program(graphs.REACH_PROGRAM)
    return kb


def run_strategy(mode: str, edge_rows, goal: str):
    """One strategy at one size: wall seconds, simulated ms, answers."""
    kb = build_session(mode, edge_rows)
    with measure(kb) as m:
        answers = [str(sol["X"]) for sol in kb.solve(goal)]
    return {
        "session": kb,
        "wall_s": m.wall_s,
        "sim_ms": m.simulated_ms(),
        "answers": answers,
        "snapshot": kb.metrics.snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", default="10000,100000",
                        help="comma-separated EDB sizes (edge counts)")
    parser.add_argument("--graph", default="tree",
                        choices=("tree", "chain", "dag"))
    parser.add_argument("--branching", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--oracle-limit", type=int, default=150_000,
                        help="largest size at which the WAM oracle runs")
    parser.add_argument("--exposition", metavar="PATH", default=None,
                        help="write the bottom-up sessions' merged "
                             "telemetry as Prometheus text format")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one small size, oracle on")
    args = parser.parse_args(argv)

    sizes = [2_000] if args.smoke else \
        [int(s) for s in args.edges.split(",")]
    oracle_limit = max(sizes) if args.smoke else args.oracle_limit
    goal = "reach(n0, X)"

    first = build_session("auto", build_edges(args.graph, sizes[0],
                                              args.branching, args.seed))
    print(f"graph family: {args.graph}; goal: {goal}")
    print("planner report at the smallest size:")
    for line in first.datalog.explain(goal).splitlines():
        print("   ", line)
    print(f"\n{'edges':>9} {'answers':>8} {'BU wall s':>10} "
          f"{'BU sim ms':>10} {'WAM wall s':>11} {'WAM sim ms':>11} "
          f"{'speedup':>8}")

    failures = 0
    speedup_at_largest_oracled = None
    snapshots = []
    for size in sizes:
        edge_rows = build_edges(args.graph, size, args.branching,
                                args.seed)
        bu = run_strategy("force", edge_rows, goal)
        engine = bu["session"].datalog
        if engine.bottomup != 1:
            print(f"FAIL edges={size}: goal was not routed bottom-up "
                  f"({engine.last_decision.reason})")
            failures += 1
        if len(bu["answers"]) != len(set(bu["answers"])):
            print(f"FAIL edges={size}: bottom-up produced duplicates")
            failures += 1
        snapshots.append(bu["snapshot"])

        if size <= oracle_limit:
            wam = run_strategy("off", edge_rows, goal)
            if set(wam["answers"]) != set(bu["answers"]):
                print(f"FAIL edges={size}: answer sets diverge "
                      f"(WAM {len(set(wam['answers']))}, "
                      f"bottom-up {len(set(bu['answers']))})")
                failures += 1
            speedup = wam["wall_s"] / bu["wall_s"]
            speedup_at_largest_oracled = speedup
            print(f"{size:>9} {len(set(bu['answers'])):>8} "
                  f"{bu['wall_s']:>10.2f} {bu['sim_ms']:>10.0f} "
                  f"{wam['wall_s']:>11.2f} {wam['sim_ms']:>11.0f} "
                  f"{speedup:>7.1f}x")
        else:
            print(f"{size:>9} {len(set(bu['answers'])):>8} "
                  f"{bu['wall_s']:>10.2f} {bu['sim_ms']:>10.0f} "
                  f"{'(skipped)':>11} {'-':>11} {'-':>8}")

    if args.exposition:
        from repro.obs import MetricsRegistry, render_prometheus
        text = render_prometheus(MetricsRegistry.merge(*snapshots))
        assert "educe_datalog_bottomup" in text
        assert "educe_datalog_fixpoint_iterations" in text
        with open(args.exposition, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nmerged Prometheus exposition "
              f"({len(text.splitlines())} lines) -> {args.exposition}")

    if speedup_at_largest_oracled is not None:
        verdict = "PASS" if (failures == 0
                             and speedup_at_largest_oracled > 1.0) \
            else "FAIL"
        print(f"\nbottom-up vs WAM at the largest oracled size: "
              f"{speedup_at_largest_oracled:.1f}x "
              f"(acceptance: > 1x, answers identical) {verdict}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
