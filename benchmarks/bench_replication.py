"""WAL-shipping replication: catch-up lag, read scaling, failover.

Drives a :class:`~repro.replication.cluster.ReplicaSet` through the
three phases a deployment cares about (docs/REPLICATION.md):

1. **ship** — the primary ingests ``--relations`` fact relations of
   ``--rows`` rows while N replicas tail its WAL; measures write
   throughput with replication on, and the time from the last
   acknowledged write to every replica reaching lag 0 (catch-up);
2. **read** — staleness-bounded point reads fan out over the replicas
   (``max_lag=0`` after the fence, so every answer is differential-
   checked against the primary's);
3. **drill** — the primary is killed; measures time to promote the
   freshest replica and re-attach the stale ones, and verifies the
   promoted primary serves every acknowledged write (zero-loss).

Run:  PYTHONPATH=src python benchmarks/bench_replication.py
      [--replicas 2] [--relations 20] [--rows 200] [--reads 100]
      [--seed 7] [--exposition PATH] [--smoke]

``--smoke`` is the CI entry point: small sizes, non-zero exit when a
differential read diverges, the failover drill loses an acknowledged
write, or the ``replica_*`` gauges are missing from the exposition.
"""

import argparse
import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro.replication import ReplicaSet               # noqa: E402


def build_cluster(directory: str, replicas: int) -> ReplicaSet:
    return ReplicaSet(os.path.join(directory, "bench.edb"),
                      replicas=replicas, primary_workers=2,
                      replica_workers=1, poll_interval=0.002)


def phase_ship(cluster: ReplicaSet, relations: int, rows: int,
               seed: int) -> dict:
    rng = random.Random(seed)
    started = time.perf_counter()
    for i in range(relations):
        data = [(j, rng.randrange(1_000_000)) for j in range(rows)]
        cluster.store_relation(f"rel{i}", data)
    write_s = time.perf_counter() - started

    fence_started = time.perf_counter()
    caught_up = cluster.wait_for_catch_up(timeout=120)
    catch_up_s = time.perf_counter() - fence_started
    return {
        "records": relations,
        "rows": relations * rows,
        "write_s": write_s,
        "write_rps": relations / write_s if write_s else 0.0,
        "caught_up": caught_up,
        "catch_up_s": catch_up_s,
    }


def phase_read(cluster: ReplicaSet, relations: int, rows: int,
               reads: int, seed: int) -> dict:
    rng = random.Random(seed + 1)
    mismatches = 0
    latencies = []
    for _ in range(reads):
        rel = f"rel{rng.randrange(relations)}"
        key = rng.randrange(rows)
        goal = f"{rel}({key}, V)"
        started = time.perf_counter()
        replica_rows = cluster.execute_read(goal, max_lag=0)
        latencies.append(time.perf_counter() - started)
        primary_rows = cluster.execute(goal)
        if sorted(map(str, replica_rows)) != sorted(map(str, primary_rows)):
            mismatches += 1
    latencies.sort()
    return {
        "reads": reads,
        "mismatches": mismatches,
        "p50_ms": latencies[len(latencies) // 2] * 1000,
        "p95_ms": latencies[int(len(latencies) * 0.95) - 1] * 1000,
    }


def phase_drill(cluster: ReplicaSet) -> dict:
    # one more acknowledged write the replicas may not have applied yet
    cluster.store_relation("lastwrite", [(1, 1)])
    cluster.kill_primary()
    started = time.perf_counter()
    winner = cluster.failover(timeout=60)
    promote_s = time.perf_counter() - started
    zero_loss = len(cluster.execute("lastwrite(X, Y)")) == 1
    reattached = cluster.wait_for_catch_up(timeout=60)
    return {
        "winner": winner,
        "promote_s": promote_s,
        "zero_loss": zero_loss,
        "reattached": reattached,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--relations", type=int, default=20)
    parser.add_argument("--rows", type=int, default=200)
    parser.add_argument("--reads", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--exposition", metavar="PATH", default=None,
                        help="write the cluster's final Prometheus "
                        "exposition (lag gauges + replica counters)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes; exit non-zero on any "
                        "differential or zero-loss violation")
    args = parser.parse_args(argv)

    relations = 5 if args.smoke else args.relations
    rows = 50 if args.smoke else args.rows
    reads = 25 if args.smoke else args.reads

    failures = []
    with tempfile.TemporaryDirectory() as directory:
        cluster = build_cluster(directory, args.replicas)
        try:
            ship = phase_ship(cluster, relations, rows, args.seed)
            print(f"ship : {ship['records']} relations "
                  f"({ship['rows']} rows) in {ship['write_s']:.2f}s "
                  f"({ship['write_rps']:.1f} rel/s); catch-up "
                  f"{ship['catch_up_s'] * 1000:.0f}ms "
                  f"(caught_up={ship['caught_up']})")
            if not ship["caught_up"]:
                failures.append("replicas never caught up")

            read = phase_read(cluster, relations, rows, reads, args.seed)
            print(f"read : {read['reads']} lag-bounded reads, "
                  f"p50 {read['p50_ms']:.2f}ms p95 {read['p95_ms']:.2f}ms, "
                  f"{read['mismatches']} differential mismatch(es)")
            if read["mismatches"]:
                failures.append(f"{read['mismatches']} differential "
                                "mismatches")

            drill = phase_drill(cluster)
            print(f"drill: promoted {drill['winner']} in "
                  f"{drill['promote_s'] * 1000:.0f}ms; zero_loss="
                  f"{drill['zero_loss']} reattached={drill['reattached']}")
            if not drill["zero_loss"]:
                failures.append("acknowledged write lost in failover")
            if not drill["reattached"]:
                failures.append("stale replicas failed to re-attach")

            exposition = cluster.exposition()
            for needle in ("educe_replica_lag_epochs",
                           "educe_replica_lag_records",
                           "educe_replica_records_applied",
                           "educe_replica_promotions"):
                if needle not in exposition:
                    failures.append(f"{needle} missing from exposition")
            if args.exposition:
                with open(args.exposition, "w", encoding="utf-8") as fh:
                    fh.write(exposition)
                print(f"exposition ({len(exposition.splitlines())} lines) "
                      f"-> {args.exposition}")
        finally:
            cluster.shutdown()

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
