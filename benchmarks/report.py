#!/usr/bin/env python3
"""Regenerate the paper's tables in the paper's shape.

Runs every experiment and prints Tables 1, 2a, 2b and 3 (plus the §5.4
diskless-workstation comparison) formatted like the originals, with the
paper's numbers alongside where the text preserves them.

    python benchmarks/report.py [--scale S] [--jsonl PATH] [--prom PATH]
    python benchmarks/report.py --diff a.jsonl b.jsonl

Scale 1.0 (default) uses the paper's exact cardinalities; the full run
takes a couple of minutes.  ``--jsonl PATH`` additionally runs a sample
of MVV queries under per-query tracing and appends their observability
profiles (span trees + counter deltas + simulated-ms breakdowns, one
JSON object per line — see docs/OBSERVABILITY.md) to PATH.
``--prom PATH`` writes the sample session's full metrics snapshot —
counters plus latency histograms (latch waits, buffer miss stalls, WAL
appends, ...) — in Prometheus text format to PATH.

``--diff a.jsonl b.jsonl`` runs no experiments: it compares two JSONL
exports record by record — ``query_profile`` lines keyed by goal,
``wam_profile_pred`` lines (the sampled profiler's per-predicate
attribution) keyed by predicate, ``wam_profile`` headers as totals —
and prints every numeric metric that moved between the two runs.
"""

import argparse
import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from repro.engine.stats import (  # noqa: E402
    SUN_3_60_MIPS,
    SUN_3_280S_MIPS,
    CostModel,
    measure,
)


def hr(width: int = 72) -> None:
    print("-" * width)


# =====================================================================
# Table 1 — MVV
# =====================================================================

def table1(scale: float) -> None:
    from repro.workloads import mvv

    print("\nTable 1 — Educe* / Educe: MVV times "
          "(simulated seconds per 10-query sample)")
    hr()
    data = mvv.generate(seed=11, scale=scale)
    star = mvv.load_educestar(data)
    base = mvv.load_baseline(data)
    queries = {
        1: mvv.class1_queries(data, 10),
        2: mvv.class2_queries(data, 10),
    }
    base_queries = {
        1: queries[1][:4],
        2: queries[2][:2],
    }

    print(f"{'Query class':<14}{'E* first':>10}{'E* second':>11}"
          f"{'Educe':>12}")
    for klass in (1, 2):
        star.loader.invalidate()
        with measure(star) as m_first:
            for q in queries[klass]:
                for _ in star.solve(q):
                    pass
        with measure(star) as m_second:
            for q in queries[klass]:
                for _ in star.solve(q):
                    pass
        with measure(base) as m_base:
            for q in base_queries[klass]:
                for _ in base.solve(q):
                    pass
        scale_up = len(queries[klass]) / len(base_queries[klass])
        print(f"{'Class ' + str(klass):<14}"
              f"{m_first.simulated_ms() / 1000:>10.2f}"
              f"{m_second.simulated_ms() / 1000:>11.2f}"
              f"{m_base.simulated_ms() * scale_up / 1000:>12.2f}")
    print("(first run = cold loader & buffers; Educe column scaled to "
          "10 queries)")


# =====================================================================
# Tables 2a / 2b — Wisconsin
# =====================================================================

def table2(scale: float) -> None:
    """Table 2a rows follow the paper: Preprocess / CPU / Buffer
    read-write / Total I/O / Average time, one column per query class."""
    from repro.workloads import wisconsin

    db = wisconsin.WisconsinDB.build(scale=scale)
    model = CostModel()
    columns = []
    for qc in wisconsin.query_classes():
        best = None
        for variant in qc.variants:
            r = wisconsin.run_query(db, qc, variant)
            if best is None or r.measurement.simulated_ms() \
                    < best.measurement.simulated_ms():
                best = r
        c = best.measurement.counters
        columns.append({
            "n": qc.number,
            "preprocess": 0.0,  # planning is negligible in this engine
            "cpu": best.measurement.cpu_ms(model),
            "buffer_rw": (c.get("buffer_hits", 0)
                          + c.get("buffer_misses", 0)),
            "io_pages": c.get("reads", 0) + c.get("writes", 0),
            "io_ms": best.measurement.io_ms(model),
            "avg": best.measurement.simulated_ms(model),
            "rows": best.rows,
        })

    print("\nTable 2a — Educe* Wisconsin times (simulated ms per row "
          "kind, best plan variant)")
    hr()
    header = f"{'Query':>22}" + "".join(
        f"({col['n']})".rjust(10) for col in columns)
    print(header)
    for label, key, fmt in (
        ("Preprocess", "preprocess", "{:>10.1f}"),
        ("CPU", "cpu", "{:>10.1f}"),
        ("Buffer read/write", "buffer_rw", "{:>10d}"),
        ("Total I/O (ms)", "io_ms", "{:>10.1f}"),
        ("Average time", "avg", "{:>10.1f}"),
    ):
        row = f"{label:>22}" + "".join(
            fmt.format(col[key]) for col in columns)
        print(row)
    print(f"{'result rows':>22}" + "".join(
        f"{col['rows']:>10d}" for col in columns))

    print("\nTable 2b — Wisconsin I/O frequencies")
    hr()
    print(f"{'Query':>22}" + "".join(
        f"({col['n']})".rjust(10) for col in columns))
    print(f"{'buffer accesses':>22}" + "".join(
        f"{col['buffer_rw']:>10d}" for col in columns))
    print(f"{'pages read+written':>22}" + "".join(
        f"{col['io_pages']:>10d}" for col in columns))


# =====================================================================
# Per-query observability profiles (--jsonl)
# =====================================================================

def profiles(scale: float, path: "str | None",
             prom: "str | None" = None) -> None:
    """Trace a sample of MVV queries; append their profiles to *path*
    (JSON lines) and/or the session's merged metrics snapshot to
    *prom* (Prometheus text format)."""
    from repro.obs import write_json_lines
    from repro.workloads import mvv

    data = mvv.generate(seed=11, scale=scale)
    star = mvv.load_educestar(data)
    sample = mvv.class1_queries(data, 3) + mvv.class2_queries(data, 2)
    collected = [star.profile(q) for q in sample]
    if path:
        print(f"\nPer-query profiles → {path}")
        hr()
        lines = write_json_lines(path, collected)
        for prof in collected:
            sim = prof.breakdown()
            spans = sum(1 for _ in prof.root.walk()) if prof.root else 0
            print(f"  {prof.goal[:46]:<46} {sim['total_ms']:>9.2f} ms "
                  f"({spans} spans, {prof.solutions} solutions)")
        print(f"({len(collected)} query profiles, {lines} JSON lines; "
              "counter glossary in docs/OBSERVABILITY.md)")
    if prom:
        from repro.obs import render_prometheus
        text = render_prometheus(star.metrics.snapshot(),
                                 gauge_keys=star.metrics.gauge_keys())
        with open(prom, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nPrometheus exposition ({len(text.splitlines())} "
              f"lines) → {prom}")


# =====================================================================
# JSONL diffs (--diff)
# =====================================================================

#: diffable record kinds: (kind, key field, section title)
_DIFF_KINDS = (
    ("query_profile", "goal", "query profiles (by goal)"),
    ("wam_profile_pred", "predicate",
     "sampled profiler attribution (by predicate)"),
    ("wam_profile", "kind", "sampled profiler totals"),
)


def _load_records(path: str):
    import json
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if isinstance(obj, dict):
                records.append(obj)
    return records


def _flatten_numeric(obj: dict, prefix: str = "") -> dict:
    """Numeric leaves of a JSON object, dotted-key flattened."""
    out = {}
    for key, value in obj.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten_numeric(value, name + "."))
        elif isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            out[name] = value
    return out


def diff_jsonl(path_a: str, path_b: str) -> int:
    """Per-key numeric diff of two JSONL exports; returns the number
    of changed metrics (the CLI exit status stays 0 either way —
    a diff is information, not a failure)."""
    recs_a, recs_b = _load_records(path_a), _load_records(path_b)
    print(f"Diff {path_a} -> {path_b}")
    changed = 0
    for kind, key_field, title in _DIFF_KINDS:
        # Last record wins per key: reruns append, and the latest
        # export of a goal/predicate is the one being compared.
        by_a = {r.get(key_field, "?"): r for r in recs_a
                if r.get("kind") == kind}
        by_b = {r.get(key_field, "?"): r for r in recs_b
                if r.get("kind") == kind}
        if not by_a and not by_b:
            continue
        print(f"\n== {title} ==")
        hr()
        for key in sorted(set(by_a) | set(by_b)):
            a, b = by_a.get(key), by_b.get(key)
            if a is None or b is None:
                side = "only in " + (path_b if a is None else path_a)
                print(f"  {key}  ({side})")
                changed += 1
                continue
            flat_a = _flatten_numeric(a)
            flat_b = _flatten_numeric(b)
            rows = []
            for metric in sorted(set(flat_a) | set(flat_b)):
                va, vb = flat_a.get(metric, 0), flat_b.get(metric, 0)
                if va == vb:
                    continue
                delta = vb - va
                pct = f" ({delta / va:+.1%})" if va else ""
                rows.append(f"    {metric:<28} {va:>12g} -> "
                            f"{vb:>12g}  {delta:+g}{pct}")
            if rows:
                print(f"  {key}")
                print("\n".join(rows))
                changed += len(rows)
        if not (set(by_a) | set(by_b)):
            print("  (no records)")
    if not changed:
        print("\nno numeric differences")
    else:
        print(f"\n{changed} metric(s) changed")
    return changed


# =====================================================================
# Table 3 — integrity checking
# =====================================================================

def table3() -> None:
    from repro.workloads import integrity as ic

    print("\nTable 3 — Integrity-constraint preprocess (ms)")
    hr()
    gc_engine = ic.load_good_compiler()
    estar = ic.load_educestar()
    server = CostModel(mips=SUN_3_280S_MIPS)
    client = CostModel(mips=SUN_3_60_MIPS)

    paper_gc = [724, 1079, 2803, 3483, 4258]
    paper_es = [380, 575, 1420, 2890, 2140]

    print(f"{'':<8}{'-- Sun server (4 MIPS) --':^26}"
          f"{'-- Sun client (3 MIPS) --':^26}")
    print(f"{'Update':<8}{'GC':>8}{'E*':>8}{'paper GC/E*':>14}"
          f"{'GC':>8}{'E*':>8}")
    for i, update in enumerate(ic.UPDATES):
        with measure(gc_engine) as m_gc:
            ic.run_preprocess(gc_engine, update)
        with measure(estar) as m_es:
            ic.run_preprocess(estar, update)
        print(f"{i + 1:<8}"
              f"{m_gc.simulated_ms(server):>8.1f}"
              f"{m_es.simulated_ms(server):>8.1f}"
              f"{f'{paper_gc[i]}/{paper_es[i]}':>14}"
              f"{m_gc.simulated_ms(client):>8.1f}"
              f"{m_es.simulated_ms(client):>8.1f}")
    print("(GC = 'A Good Prolog Compiler': the same WAM, all in main "
          "memory; E* = specialiser stored in the EDB)")


# =====================================================================
# §5.4 — diskless workstation
# =====================================================================

def section54(scale: float) -> None:
    from repro.workloads import mvv

    print("\n§5.4 — diskless workstation (same counters, re-priced)")
    hr()
    data = mvv.generate(seed=11, scale=scale)
    star = mvv.load_educestar(data)
    for klass, queries in ((1, mvv.class1_queries(data, 5)),
                           (2, mvv.class2_queries(data, 3))):
        for q in queries:  # warm
            for _ in star.solve(q):
                pass
        with measure(star) as m:
            for q in queries:
                for _ in star.solve(q):
                    pass
        t_server = m.simulated_ms(CostModel(mips=SUN_3_280S_MIPS))
        t_client = m.simulated_ms(CostModel(mips=SUN_3_60_MIPS))
        print(f"Class {klass}: server {t_server:8.1f} ms   "
              f"client {t_client:8.1f} ms   "
              f"deterioration x{t_client / max(t_server, 1e-9):.3f} "
              f"(CPU ratio x{SUN_3_280S_MIPS / SUN_3_60_MIPS:.3f})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = paper cardinalities)")
    parser.add_argument("--jsonl", metavar="PATH", default=None,
                        help="also write per-query observability "
                             "profiles to PATH (JSON lines)")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="also write the sample session's metrics "
                             "snapshot to PATH (Prometheus text format)")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"),
                        default=None,
                        help="compare two JSONL exports per goal/"
                             "predicate and exit (no experiments run)")
    args = parser.parse_args()
    if args.diff:
        diff_jsonl(args.diff[0], args.diff[1])
        return
    for probe in (args.jsonl, args.prom):
        if probe:
            # Fail on an unwritable path now, not after the full run.
            with open(probe, "a", encoding="utf-8"):
                pass

    print("Reproduction of Bocca, 'Compilation of Logic Programs to "
          "Implement Very Large\nKnowledge Base Systems — A Case Study: "
          f"Educe*' (ICDE 1990) — scale {args.scale}")
    table1(args.scale)
    table2(args.scale)
    table3()
    section54(args.scale)
    if args.jsonl or args.prom:
        profiles(args.scale, args.jsonl, args.prom)
    print("\nSee EXPERIMENTS.md for the paper-vs-measured analysis.")


if __name__ == "__main__":
    main()
