"""Ablation — dictionary design (paper §3.3.1).

The paper devotes eight design principles to the segmented closed-hash
dictionary.  This bench quantifies the two levers it discusses:

* identifier-based vs string-based unification ("several orders of
  magnitude faster");
* segment sizing / high-water policy (probe chains vs space).
"""

import pytest

from repro.dictionary import SegmentedDictionary


def _names(n):
    return [(f"functor_{i % 977}_{i}", i % 8) for i in range(n)]


def test_intern_throughput(benchmark):
    names = _names(20_000)

    def run():
        d = SegmentedDictionary(segment_capacity=32_000)
        for name, arity in names:
            d.intern(name, arity)
        return d

    d = benchmark(run)
    benchmark.extra_info["entries"] = len(d)
    benchmark.extra_info["segments"] = d.segment_count
    benchmark.extra_info["probes_per_op"] = round(
        d.stats.probes / max(d.stats.lookups, 1), 2)


def test_lookup_throughput_warm(benchmark):
    names = _names(20_000)
    d = SegmentedDictionary(segment_capacity=32_000)
    ids = [d.intern(n, a) for n, a in names]

    def run():
        total = 0
        for name, arity in names:
            total += d.lookup(name, arity)
        return total

    benchmark(run)
    benchmark.extra_info["probes_per_lookup"] = round(
        d.stats.probes / max(d.stats.lookups, 1), 2)


def test_identifier_vs_string_comparison(benchmark):
    """Unification compares identifiers, not names (§3.3.1 principle 1).
    Quantify the gap the paper calls 'several orders of magnitude' (for
    long names, a large constant factor in Python)."""
    import time
    long_a = "a_rather_long_functor_name_" + "x" * 200
    long_b = "a_rather_long_functor_name_" + "x" * 199 + "y"
    d = SegmentedDictionary()
    ia = d.intern(long_a, 2)
    ib = d.intern(long_b, 2)

    state = {}

    def run():
        n = 200_000
        t0 = time.perf_counter()
        acc = 0
        for _ in range(n):
            acc += ia == ib
        t_id = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n):
            acc += long_a == long_b
        t_str = time.perf_counter() - t0
        state["t_id"] = t_id
        state["t_str"] = t_str

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["id_cmp_s"] = round(state["t_id"], 4)
    benchmark.extra_info["str_cmp_s"] = round(state["t_str"], 4)
    # ints compare at least as fast as 200-char near-equal strings
    assert state["t_id"] <= state["t_str"] * 1.5


@pytest.mark.parametrize("capacity", [1000, 8000, 32000])
def test_segment_capacity_ablation(benchmark, capacity):
    """Smaller segments chain earlier; probe counts and segment counts
    trade off (principles 5 vs 8)."""
    names = _names(15_000)

    def run():
        d = SegmentedDictionary(segment_capacity=capacity)
        for name, arity in names:
            d.intern(name, arity)
        return d

    d = benchmark(run)
    benchmark.extra_info["capacity"] = capacity
    benchmark.extra_info["segments"] = d.segment_count
    benchmark.extra_info["probes_per_op"] = round(
        d.stats.probes / max(d.stats.lookups, 1), 2)
    benchmark.extra_info["collisions"] = d.stats.collisions
