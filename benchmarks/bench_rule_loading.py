"""E8 — compiled-EDB vs source-form rule storage (paper §2, §3.1).

The motivating micro-experiment: a recursive rule set used repeatedly
within one session.

* Educe (source mode): every call retrieves ALL the procedure's clauses,
  parses them, asserts them, and erases them afterwards — "potentially a
  given rule can be asserted and erased thousands of times".
* Educe* (compiled mode): relative code is fetched once per call
  pattern, address-resolved, and cached.

Reported: simulated ms, parse characters, assert/erase counts, loader
cache hits.
"""


from repro.engine.educe_baseline import EduceBaseline
from repro.engine.session import EduceStar
from repro.engine.stats import measure

from conftest import record

PROGRAM = """
tree_sum(leaf(V), V).
tree_sum(node(L, R), S) :-
    tree_sum(L, SL), tree_sum(R, SR), S is SL + SR.

build_tree(0, leaf(1)) :- !.
build_tree(N, node(L, R)) :-
    N1 is N - 1, build_tree(N1, L), build_tree(N1, R).
"""

GOAL = "build_tree(7, T), tree_sum(T, S)"
REPEATS = 5


def test_compiled_edb_rules(benchmark):
    star = EduceStar()
    star.store_program(PROGRAM)

    def run():
        for _ in range(REPEATS):
            assert star.solve_once(GOAL)["S"] == 128

    with measure(star) as m:
        benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, m, system="educe*-compiled",
           cache_hits=star.loader.cache_hits,
           loads=star.loader.loads)


def test_source_edb_rules(benchmark):
    base = EduceBaseline()
    base.store_program(PROGRAM)

    def run():
        for _ in range(REPEATS):
            assert base.solve_once(GOAL)["S"] == 128

    with measure(base) as m:
        benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, m, system="educe-source",
           asserts=m["asserts"], erases=m["erases"],
           parsed_chars=m["parsed_chars"], fetches=m["fetches"])


def test_gap_direction(benchmark):
    """The headline: compiled storage must beat source storage, and the
    baseline's parse/assert volume must grow with call count."""
    star = EduceStar()
    star.store_program(PROGRAM)
    base = EduceBaseline()
    base.store_program(PROGRAM)

    state = {}

    def run():
        with measure(star) as m_star:
            for _ in range(REPEATS):
                star.solve_once(GOAL)
        with measure(base) as m_base:
            for _ in range(REPEATS):
                base.solve_once(GOAL)
        state["star"] = m_star
        state["base"] = m_base

    benchmark.pedantic(run, rounds=1, iterations=1)
    sim_star = state["star"].simulated_ms()
    sim_base = state["base"].simulated_ms()
    benchmark.extra_info["educe_star_ms"] = round(sim_star, 2)
    benchmark.extra_info["educe_ms"] = round(sim_base, 2)
    benchmark.extra_info["speedup"] = round(sim_base / max(sim_star, 1e-9), 1)
    assert sim_star < sim_base
    # The baseline re-asserted clauses many times over (factor 3 of §2).
    assert state["base"]["asserts"] > 100
