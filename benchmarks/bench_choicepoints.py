"""E7 — choice-point reference share (paper §3.2.1).

"Empirical studies of the WAM [19] have asserted that choice point
references are the single most significant contributor to the total
number of data references ... an average of 52% of data references are
identified as choice point references."

The machine counts choice-point field traffic separately, so we can
report the share directly — on a classic non-deterministic program mix
and on the MVV workload — and show how first-argument indexing and the
deterministic EDB collect-at-once erase it.
"""

import pytest

from repro.engine.stats import measure
from repro.wam.machine import Machine

from conftest import record

NONDET_PROGRAM = """
color(r). color(g). color(b). color(y).
adj(1,2). adj(1,3). adj(2,3). adj(2,4). adj(3,4).
ok(A-CA, B-CB) :- (adj(A,B) ; adj(B,A)), !, CA \\== CB.
ok(_, _).
colouring([C1,C2,C3,C4]) :-
    color(C1), color(C2), color(C3), color(C4),
    ok(1-C1, 2-C2), ok(1-C1, 3-C3), ok(2-C2, 3-C3),
    ok(2-C2, 4-C4), ok(3-C3, 4-C4).
"""


def test_choicepoint_share_nondeterministic(benchmark):
    """Unindexed, heavily non-deterministic search: the cp share of data
    references must be substantial (the Touati & Despain regime)."""
    m = Machine(index=False)
    m.consult(NONDET_PROGRAM)

    def run():
        m.count_solutions("colouring(_)")

    with measure(m) as meas:
        benchmark.pedantic(run, rounds=3, iterations=1)
    share = meas["cp_refs"] / max(meas["data_refs"], 1)
    record(benchmark, meas, cp_share=round(share, 3),
           paper_share=0.52, indexing=False)
    assert share > 0.15


def test_indexing_cuts_choicepoint_traffic(benchmark):
    """§3.2.2: indexing turns non-deterministic procedures
    deterministic; cp references collapse."""
    program = "".join(f"item(k{i}, {i}).\n" for i in range(50))
    goals = [f"item(k{i}, _)" for i in range(50)]

    results = {}

    def run():
        for index in (True, False):
            m = Machine(index=index)
            m.consult(program)
            with measure(m) as meas:
                for g in goals:
                    m.solve_once(g)
            results[index] = meas

    benchmark.pedantic(run, rounds=1, iterations=1)
    indexed = results[True]["cp_refs"]
    plain = results[False]["cp_refs"]
    benchmark.extra_info["cp_refs_indexed"] = indexed
    benchmark.extra_info["cp_refs_unindexed"] = plain
    benchmark.extra_info["reduction_factor"] = round(
        plain / max(indexed, 1), 1)
    assert indexed < plain / 3


def test_mvv_choicepoint_profile(benchmark, mvv_star, mvv_data):
    """The share on the real workload, with indexing + deterministic
    EDB fetch in place (the paper's design target: keep it low)."""
    from repro.workloads import mvv
    queries = mvv.class2_queries(mvv_data, 3)

    def run():
        for q in queries:
            for _ in mvv_star.solve(q):
                pass

    with measure(mvv_star) as meas:
        benchmark.pedantic(run, rounds=1, iterations=1)
    share = meas["cp_refs"] / max(meas["data_refs"], 1)
    record(benchmark, meas, cp_share=round(share, 3))
