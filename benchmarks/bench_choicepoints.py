"""E7 — choice-point reference share (paper §3.2.1).

"Empirical studies of the WAM [19] have asserted that choice point
references are the single most significant contributor to the total
number of data references ... an average of 52% of data references are
identified as choice point references."

The machine counts choice-point field traffic separately, so we can
report the share directly — on a classic non-deterministic program mix
and on the MVV workload — and show how first-argument indexing and the
deterministic EDB collect-at-once erase it.

Script mode adds the optimizer axis (E14 in EXPERIMENTS.md): the same
workloads run under ``optimize="off" | "peephole" | "full"`` and the
report shows the choice-point-creation and cp-reference deltas — the
``switch_on_arg`` chain demotion is the pass that moves them.  Answers
are differentially checked across levels.

Run:  PYTHONPATH=src python benchmarks/bench_choicepoints.py
      [--optimize all|off|peephole|full] [--items 50]
      [--exposition PATH] [--smoke]

``--smoke`` is the CI entry point: non-zero exit when any level's
answers diverge from ``optimize="off"`` or ``optimize="full"`` fails to
cut choice-point traffic on the bound-lookup workload.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))


from repro.engine.stats import measure                 # noqa: E402
from repro.wam.machine import Machine                  # noqa: E402
from repro.wam.optimizer import OPT_LEVELS             # noqa: E402

from conftest import record                            # noqa: E402

NONDET_PROGRAM = """
color(r). color(g). color(b). color(y).
adj(1,2). adj(1,3). adj(2,3). adj(2,4). adj(3,4).
ok(A-CA, B-CB) :- (adj(A,B) ; adj(B,A)), !, CA \\== CB.
ok(_, _).
colouring([C1,C2,C3,C4]) :-
    color(C1), color(C2), color(C3), color(C4),
    ok(1-C1, 2-C2), ok(1-C1, 3-C3), ok(2-C2, 3-C3),
    ok(2-C2, 4-C4), ok(3-C3, 4-C4).
"""


def test_choicepoint_share_nondeterministic(benchmark):
    """Unindexed, heavily non-deterministic search: the cp share of data
    references must be substantial (the Touati & Despain regime)."""
    m = Machine(index=False)
    m.consult(NONDET_PROGRAM)

    def run():
        m.count_solutions("colouring(_)")

    with measure(m) as meas:
        benchmark.pedantic(run, rounds=3, iterations=1)
    share = meas["cp_refs"] / max(meas["data_refs"], 1)
    record(benchmark, meas, cp_share=round(share, 3),
           paper_share=0.52, indexing=False)
    assert share > 0.15


def test_indexing_cuts_choicepoint_traffic(benchmark):
    """§3.2.2: indexing turns non-deterministic procedures
    deterministic; cp references collapse."""
    program = "".join(f"item(k{i}, {i}).\n" for i in range(50))
    goals = [f"item(k{i}, _)" for i in range(50)]

    results = {}

    def run():
        for index in (True, False):
            m = Machine(index=index)
            m.consult(program)
            with measure(m) as meas:
                for g in goals:
                    m.solve_once(g)
            results[index] = meas

    benchmark.pedantic(run, rounds=1, iterations=1)
    indexed = results[True]["cp_refs"]
    plain = results[False]["cp_refs"]
    benchmark.extra_info["cp_refs_indexed"] = indexed
    benchmark.extra_info["cp_refs_unindexed"] = plain
    benchmark.extra_info["reduction_factor"] = round(
        plain / max(indexed, 1), 1)
    assert indexed < plain / 3


def test_mvv_choicepoint_profile(benchmark, mvv_star, mvv_data):
    """The share on the real workload, with indexing + deterministic
    EDB fetch in place (the paper's design target: keep it low)."""
    from repro.workloads import mvv
    queries = mvv.class2_queries(mvv_data, 3)

    def run():
        for q in queries:
            for _ in mvv_star.solve(q):
                pass

    with measure(mvv_star) as meas:
        benchmark.pedantic(run, rounds=1, iterations=1)
    share = meas["cp_refs"] / max(meas["data_refs"], 1)
    record(benchmark, meas, cp_share=round(share, 3))


# ------------------------------------------------------- script mode (E14)

def _workloads(items: int):
    """name -> (program, goals, index) — the E7 program shapes."""
    table = "".join(f"item(k{i}, {i}).\n" for i in range(items))
    return {
        "colouring-unindexed": (
            NONDET_PROGRAM, ["colouring(C)"], False),
        "bound-lookups-unindexed": (
            table, [f"item(k{i}, V)" for i in range(items)], False),
        "bound-lookups-indexed": (
            table, [f"item(k{i}, V)" for i in range(items)], True),
    }


def _run_level(program: str, goals, index: bool, level: str) -> dict:
    from repro import term_to_text

    machine = Machine(index=index, optimize=level)
    machine.consult(program)
    answers = []
    with measure(machine) as meas:
        for goal in goals:
            for sol in machine.solve(goal, limit=100):
                answers.append(
                    (goal, tuple(sorted(
                        (name, term_to_text(value))
                        for name, value in sol.bindings.items()))))
    return {
        "answers": answers,
        "cp_created": meas["cp_created"],
        "cp_refs": meas["cp_refs"],
        "instr_count": meas["instr_count"],
        "counters": machine.counters(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--optimize", default="all",
                        choices=("all",) + OPT_LEVELS,
                        help="optimization level axis (default: all)")
    parser.add_argument("--items", type=int, default=50,
                        help="size of the bound-lookup fact table")
    parser.add_argument("--exposition", metavar="PATH", default=None,
                        help="write the merged wam counters as "
                             "Prometheus text format")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: differential-check answers and "
                             "require a cp-reference reduction")
    args = parser.parse_args(argv)
    levels = OPT_LEVELS if args.optimize == "all" else (args.optimize,)

    failures = 0
    snapshots = []
    print(f"{'workload':<26} {'level':<9} {'cp created':>11} "
          f"{'cp refs':>9} {'Δcp refs':>9} {'instr':>9} {'demoted':>8}")
    for name, (program, goals, index) in sorted(
            _workloads(args.items).items()):
        results = {}
        for level in levels:
            results[level] = _run_level(program, goals, index, level)
            snapshots.append(results[level]["counters"])
        base = results.get("off")
        for level in levels:
            r = results[level]
            delta = ("-" if base is None or base is r else
                     f"{(1 - r['cp_refs'] / max(base['cp_refs'], 1)):+.1%}")
            print(f"{name:<26} {level:<9} {r['cp_created']:>11} "
                  f"{r['cp_refs']:>9} {delta:>9} {r['instr_count']:>9} "
                  f"{r['counters']['wam_opt_chains_demoted']:>8}")
            if base is not None and r["answers"] != base["answers"]:
                print(f"FAIL {name}: optimize={level} answers diverge "
                      f"from off")
                failures += 1
            if r["counters"]["wam_opt_rejects"]:
                print(f"FAIL {name}: optimize={level} rejected "
                      f"{r['counters']['wam_opt_rejects']} block(s)")
                failures += 1
        if (args.smoke and base is not None
                and "full" in results
                and name == "bound-lookups-unindexed"
                and results["full"]["cp_refs"] >= base["cp_refs"]):
            print(f"FAIL {name}: optimize=full did not cut "
                  f"choice-point references")
            failures += 1

    if args.exposition:
        from repro.obs import MetricsRegistry, render_prometheus
        text = render_prometheus(MetricsRegistry.merge(*snapshots))
        assert "educe_wam_opt_chains_demoted" in text
        with open(args.exposition, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\nmerged Prometheus exposition "
              f"({len(text.splitlines())} lines) -> {args.exposition}")

    print(f"\n{'PASS' if not failures else 'FAIL'}: answers pinned "
          f"across levels; see EXPERIMENTS.md E14")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
