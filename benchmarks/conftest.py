"""Shared benchmark fixtures.

Scale: ``REPRO_BENCH_SCALE`` (default 1.0) multiplies workload sizes;
1.0 reproduces the paper's cardinalities exactly.  Set e.g. 0.1 for a
quick smoke pass.

Every benchmark records, via ``benchmark.extra_info``:

* ``simulated_ms``       — cost-model milliseconds on the paper's
  Sun 3/280S (4 MIPS, 1990 disc);
* per-layer counters (instructions, data refs, page reads/writes...);
* the paper's corresponding number where one exists (``paper_ms``).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def mvv_data():
    from repro.workloads import mvv
    return mvv.generate(seed=11, scale=SCALE)


@pytest.fixture(scope="session")
def mvv_star(mvv_data):
    from repro.workloads import mvv
    return mvv.load_educestar(mvv_data)


@pytest.fixture(scope="session")
def mvv_educe(mvv_data):
    from repro.workloads import mvv
    return mvv.load_baseline(mvv_data)


@pytest.fixture(scope="session")
def wisconsin_db():
    from repro.workloads import wisconsin
    return wisconsin.WisconsinDB.build(scale=SCALE)


def record(benchmark, measurement, **extra):
    """Attach a Measurement's derived numbers to the benchmark report."""
    from repro.engine.stats import CostModel
    model = CostModel()
    benchmark.extra_info["simulated_ms"] = round(
        measurement.simulated_ms(model), 3)
    benchmark.extra_info["sim_cpu_ms"] = round(
        measurement.cpu_ms(model), 3)
    benchmark.extra_info["sim_io_ms"] = round(measurement.io_ms(model), 3)
    for key in ("instr_count", "data_refs", "cp_refs", "reads", "writes",
                "buffer_hits", "buffer_misses", "tuple_ops",
                "parsed_chars", "inferences"):
        if measurement[key]:
            benchmark.extra_info[key] = measurement[key]
    benchmark.extra_info.update(extra)
