"""E1 — Table 1: MVV knowledge-base query times (paper §5.1).

Reproduces the table's structure: Class 1 (simple) and Class 2
(involved) query samples, first run vs second run (buffer warm-up), on
both systems:

* **Educe*** — compiled rules internal, facts in the EDB;
* **Educe**  — the interpreted baseline with the fetch/parse/assert/
  erase cycle.

The paper's qualitative findings to check (EXPERIMENTS.md):
Educe* well below Educe; no significant first-vs-second-run distortion;
CPU dominates I/O.
"""

import pytest

from repro.engine.stats import measure

from conftest import record

N_QUERIES = 10  # "a sample of ten queries from each class" (§5.1)


def _queries(mvv_data, klass):
    from repro.workloads import mvv
    if klass == 1:
        return mvv.class1_queries(mvv_data, N_QUERIES)
    return mvv.class2_queries(mvv_data, N_QUERIES)


def _run_sample(engine, queries):
    for q in queries:
        for _ in engine.solve(q):
            pass


@pytest.mark.parametrize("klass,paper_first_s,paper_second_s", [
    (1, 0.9, 0.9),    # Table 1 Class 1 magnitude (seconds, Educe*)
    (2, 4.0, 4.0),    # Table 1 Class 2 magnitude
])
def test_educestar_first_run(benchmark, mvv_star, mvv_data,
                             klass, paper_first_s, paper_second_s):
    queries = _queries(mvv_data, klass)
    mvv_star.loader.invalidate()   # cold loader == first run

    def first_run():
        mvv_star.loader.invalidate()
        _run_sample(mvv_star, queries)

    with measure(mvv_star) as m:
        benchmark.pedantic(first_run, rounds=3, iterations=1)
    record(benchmark, m, system="educe*", klass=klass, run="first",
           paper_s=paper_first_s)


@pytest.mark.parametrize("klass", [1, 2])
def test_educestar_second_run(benchmark, mvv_star, mvv_data, klass):
    queries = _queries(mvv_data, klass)
    _run_sample(mvv_star, queries)  # warm the loader cache + buffers

    def second_run():
        _run_sample(mvv_star, queries)

    with measure(mvv_star) as m:
        benchmark.pedantic(second_run, rounds=3, iterations=1)
    record(benchmark, m, system="educe*", klass=klass, run="second")


@pytest.mark.parametrize("klass,n", [(1, 5), (2, 2)])
def test_educe_baseline(benchmark, mvv_educe, mvv_data, klass, n):
    """The Educe column of Table 1 (smaller sample: the baseline is the
    slow system under test)."""
    from repro.workloads import mvv
    queries = (mvv.class1_queries(mvv_data, n) if klass == 1
               else mvv.class2_queries(mvv_data, n))

    def run():
        _run_sample(mvv_educe, queries)

    with measure(mvv_educe) as m:
        benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, m, system="educe", klass=klass,
           asserts=m["asserts"], erases=m["erases"])


def test_cpu_dominates_io(benchmark, mvv_star, mvv_data):
    """§5.1: "we found the impact of I/O very low in this application"
    — the CPU share of simulated time must dominate."""
    queries = _queries(mvv_data, 2)[:5]

    def run():
        _run_sample(mvv_star, queries)

    with measure(mvv_star) as m:
        benchmark.pedantic(run, rounds=1, iterations=1)
    cpu = m.cpu_ms()
    io = m.io_ms()
    record(benchmark, m, cpu_share=round(cpu / max(cpu + io, 1e-9), 3))
    assert cpu > io, "MVV must be CPU-bound (paper §5.1/§5.4)"
