"""E10 — garbage collection cost and necessity (paper §3.3.2, §5.4).

"Since garbage collector activity is accounted for in the figures given
above, it can categorically be said that its effect on overall
performance is negligible.  Any argument for not including a garbage
collector, based on the deterioration in performance that garbage
collection might cause, is thus, demonstrably false."

Measured: MVV-style allocation-heavy work with GC on vs off — wall
time overhead and heap high-water mark (the functionality the collector
buys: bounded memory for continuous operation).
"""


from repro.engine.stats import measure
from repro.wam.machine import Machine

from conftest import record

CHURN = """
work(0, Acc, Acc) :- !.
work(N, Acc0, Acc) :-
    T = t(N, [N, N+1], f(g(N))),
    arg(1, T, V),
    Acc1 is Acc0 + V,
    N1 is N - 1,
    work(N1, Acc1, Acc).
"""

ITERATIONS = 30_000


def _run(machine):
    sol = machine.solve_once(f"work({ITERATIONS}, 0, S)")
    expected = ITERATIONS * (ITERATIONS + 1) // 2
    assert sol["S"] == expected


def test_gc_enabled(benchmark):
    m = Machine(gc_enabled=True, gc_threshold=20_000)
    m.consult(CHURN)

    def run():
        _run(m)

    with measure(m) as meas:
        benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, meas, gc="on",
           gc_runs=m.gc_runs,
           cells_recovered=m.gc_cells_recovered,
           heap_high_water=m.heap_high_water)


def test_gc_disabled(benchmark):
    m = Machine(gc_enabled=False)
    m.consult(CHURN)

    def run():
        _run(m)

    with measure(m) as meas:
        benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, meas, gc="off",
           heap_high_water=m.heap_high_water)


def test_gc_bounds_memory_at_modest_cost(benchmark):
    """The paper's two-sided claim: (a) memory stays bounded with GC,
    (b) the time overhead is small."""
    import time
    state = {}

    def run():
        m_on = Machine(gc_enabled=True, gc_threshold=20_000)
        m_on.consult(CHURN)
        t0 = time.perf_counter()
        _run(m_on)
        t_on = time.perf_counter() - t0

        m_off = Machine(gc_enabled=False)
        m_off.consult(CHURN)
        t0 = time.perf_counter()
        _run(m_off)
        t_off = time.perf_counter() - t0
        state.update(hw_on=m_on.heap_high_water,
                     hw_off=m_off.heap_high_water,
                     t_on=t_on, t_off=t_off,
                     gc_runs=m_on.gc_runs)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["heap_with_gc"] = state["hw_on"]
    benchmark.extra_info["heap_without_gc"] = state["hw_off"]
    benchmark.extra_info["gc_runs"] = state["gc_runs"]
    benchmark.extra_info["time_overhead"] = round(
        state["t_on"] / max(state["t_off"], 1e-9) - 1, 3)
    # (a) an order of magnitude less memory
    assert state["hw_on"] * 5 < state["hw_off"]
    # (b) constantly invoked, as the paper reports
    assert state["gc_runs"] > 5
