"""E9 — pre-unification depth ablation (paper §4).

"At the time of writing, we have not yet established a definitive
strategy for deciding how much of the code should be successfully
executed, before a clause is selected for refined processing.  This we
believe is a matter for empirical experimentation, still to be done."

This is that experiment.  A procedure with many clauses whose heads
agree at the top level but differ in nested arguments is queried at the
three filter depths:

* ``none``    — attribute filter only: every top-level-compatible clause
  is loaded and tried by the emulator;
* ``shallow`` — top-level head code only;
* ``full``    — complete head prefix: only truly unifiable clauses load.
"""

import pytest

from repro.engine.session import EduceStar
from repro.engine.stats import measure

from conftest import record

N_CLAUSES = 60


def _program():
    """Heads share functor f/1 but differ two levels down — invisible to
    the attribute filter, visible to deep pre-unification."""
    lines = []
    for i in range(N_CLAUSES):
        lines.append(f"deep(f(g({i}, h({i}))), {i}).")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def program():
    return _program()


@pytest.mark.parametrize("depth", ["none", "shallow", "full"])
def test_depth(benchmark, program, depth):
    star = EduceStar(preunify_depth=depth)
    star.store_program(program)
    goals = [f"deep(f(g({i}, h({i}))), X)" for i in range(0, N_CLAUSES, 7)]

    def run():
        star.loader.invalidate()
        for g in goals:
            star.solve_once(g)

    with measure(star) as m:
        benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, m, depth=depth,
           delivered=star.loader.clauses_delivered,
           rejected=star.preunifier.rejections)


def test_deeper_filters_deliver_fewer_clauses(benchmark, program):
    """Monotonicity: full <= shallow <= none in clauses delivered to the
    emulator; all three give identical answers."""
    state = {}

    def run():
        answers = {}
        delivered = {}
        for depth in ("none", "shallow", "full"):
            star = EduceStar(preunify_depth=depth)
            star.store_program(program)
            sols = [star.solve_once(f"deep(f(g(5, h(5))), X)")["X"]]
            answers[depth] = sols
            delivered[depth] = star.loader.clauses_delivered
        state["answers"] = answers
        state["delivered"] = delivered

    benchmark.pedantic(run, rounds=1, iterations=1)
    answers = state["answers"]
    delivered = state["delivered"]
    benchmark.extra_info["delivered"] = delivered
    assert answers["none"] == answers["shallow"] == answers["full"] == [5]
    assert delivered["full"] <= delivered["shallow"] <= delivered["none"]
    assert delivered["full"] < delivered["none"]
