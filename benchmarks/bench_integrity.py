"""E4 — Table 3: integrity-constraint preprocess times (paper §5.3).

Columns reproduced:

* **GC** — "A Good Prolog Compiler": our WAM, all in main memory;
* **E*** — Educe* with the specialiser program stored in the EDB as
  compiled code;
* **Sun client vs Sun server** — the same counters priced at 3 MIPS
  (Sun 3/60 diskless) vs 4 MIPS (Sun 3/280S).

Paper's Table 3 values (ms, server): GC 724/1079/2803/3483/4258,
E* 380/575/1420/2890/2140 — the qualitative claim is that E* is
*competitive with* a good compiler (same order, monotone in update
complexity), not a fixed ratio.
"""

import pytest

from repro.engine.stats import SUN_3_60_MIPS, CostModel, measure
from repro.workloads import integrity as ic

from conftest import record

PAPER_GC_MS = [724, 1079, 2803, 3483, 4258]
PAPER_ESTAR_MS = [380, 575, 1420, 2890, 2140]


@pytest.fixture(scope="module")
def gc_engine():
    return ic.load_good_compiler()


@pytest.fixture(scope="module")
def estar_engine():
    return ic.load_educestar()


@pytest.mark.parametrize("update_no", [1, 2, 3, 4, 5])
def test_good_compiler(benchmark, gc_engine, update_no):
    update = ic.UPDATES[update_no - 1]

    def run():
        return ic.run_preprocess(gc_engine, update)

    with measure(gc_engine) as m:
        benchmark.pedantic(run, rounds=5, iterations=1)
    record(benchmark, m, system="good-compiler", update=update_no,
           paper_ms=PAPER_GC_MS[update_no - 1])


@pytest.mark.parametrize("update_no", [1, 2, 3, 4, 5])
def test_educestar(benchmark, estar_engine, update_no):
    update = ic.UPDATES[update_no - 1]

    def run():
        return ic.run_preprocess(estar_engine, update)

    with measure(estar_engine) as m:
        benchmark.pedantic(run, rounds=5, iterations=1)
    record(benchmark, m, system="educe*", update=update_no,
           paper_ms=PAPER_ESTAR_MS[update_no - 1])


def test_monotone_complexity(benchmark, gc_engine):
    """Table 3's times grow with update number; so must ours."""
    costs = []

    def run():
        costs.clear()
        for update in ic.UPDATES:
            with measure(gc_engine) as m:
                ic.run_preprocess(gc_engine, update)
            costs.append(m.simulated_ms())

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["per_update_ms"] = [round(c, 2) for c in costs]
    assert costs[0] < costs[2] < costs[4]


def test_client_vs_server(benchmark, estar_engine):
    """§5.4: the diskless 3-MIPS client is slower by roughly the MIPS
    ratio on this CPU-bound task."""
    server_model = CostModel()
    client_model = CostModel().at_mips(SUN_3_60_MIPS)

    state = {}

    def run():
        with measure(estar_engine) as m:
            for update in ic.UPDATES:
                ic.run_preprocess(estar_engine, update)
        state["m"] = m

    benchmark.pedantic(run, rounds=1, iterations=1)
    m = state["m"]
    server = m.cpu_ms(server_model)
    client = m.cpu_ms(client_model)
    benchmark.extra_info["server_ms"] = round(server, 2)
    benchmark.extra_info["client_ms"] = round(client, 2)
    benchmark.extra_info["ratio"] = round(client / max(server, 1e-9), 3)
    assert client > server
