"""Repo-root pytest configuration.

Makes the source tree importable even when the package is not installed
(offline environments cannot always complete ``pip install -e .``:
modern pip needs the ``wheel`` package for PEP 660 editable installs;
``python setup.py develop`` is the offline-friendly equivalent).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
