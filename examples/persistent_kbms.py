#!/usr/bin/env python3
"""A persistent, typed knowledge base session — Educe* as a KBMS.

Exercises the production-system features beyond the headline benchmarks:

* ``:- pred`` type declarations enforced at storage and call time
  (§3.2.3, the strongly typed sub-language);
* the deterministic record-manager cursor interface (§2.3);
* the relational operators of Educe* — σ, π, ⋈ from Prolog (§4, [9]);
* EDB persistence: compiled relative code saved by one session and
  executed by a *fresh* session whose internal dictionary allocated
  completely different identifiers (§3.1, the point of associative
  addresses).

Run:  python examples/persistent_kbms.py
"""

import os
import tempfile

from repro import EduceStar, term_to_text
from repro.edb.store import ExternalStore


def build_and_save(path: str) -> None:
    print("=== session A: build the knowledge base =====================")
    kb = EduceStar()

    # Typed schema declarations.
    kb.consult("""
        :- pred flight(atom, atom, int, int).
        :- pred airport(atom, atom).
    """)

    kb.store_relation("airport", [
        ("muc", "munich"), ("cdg", "paris"), ("lhr", "london"),
        ("fco", "rome"), ("vie", "vienna"),
    ])
    kb.store_relation("flight", [
        ("muc", "cdg", 700, 95), ("muc", "lhr", 730, 110),
        ("cdg", "lhr", 900, 75), ("cdg", "fco", 940, 120),
        ("lhr", "vie", 1000, 135), ("fco", "vie", 1200, 90),
        ("muc", "vie", 800, 60), ("vie", "fco", 1400, 90),
    ])

    # Rules, compiled into the EDB.
    kb.store_program("""
        % lint: external flight/4
        % lint: disable=L104 itinerary/3
        connected(A, B) :- flight(A, B, _, _).
        itinerary(A, B, [A, B]) :- connected(A, B).
        itinerary(A, B, [A|Rest]) :-
            connected(A, C), C \\== B, itinerary(C, B, Rest).
    """)

    print("type check blocks a bad row:",
          _try(lambda: kb.store_relation("flight", [("x", "y", "late",
                                                     0)])))

    print("itineraries muc -> vie:")
    for sol in kb.solve("itinerary(muc, vie, Route)", limit=4):
        print("   ", term_to_text(sol["Route"]))

    kb.store.save(path)
    print(f"saved EDB to {path} ({os.path.getsize(path)} bytes)")


def reopen_and_use(path: str) -> None:
    print("\n=== session B: fresh session, same EDB ======================")
    kb = EduceStar(store=ExternalStore.load(path))

    # A fresh internal dictionary: divergent identifier allocation.
    for i in range(300):
        kb.machine.dictionary.intern(f"unrelated_{i}", 0)

    # Stored compiled code runs after plain address resolution.
    sol = kb.solve_once("itinerary(muc, fco, R)")
    print("stored rules still run:", term_to_text(sol["R"]))
    print("loader resolutions:", kb.loader.counters()["resolutions"])

    # Relational operators from Prolog: build a departures board.
    kb.solve_once("""
        db_select(flight/4, flight(muc, _, _, _), from_munich),
        db_join(from_munich/4, 2, airport/2, 1, board),
        db_count(board/6, N)
    """)
    print("departures board rows:",
          kb.solve_once("db_count(board/6, N)")["N"])
    for sol in kb.solve("board(_, _, Dep, _, _, City)"):
        print(f"    {sol['Dep']:>5}  ->  {sol['City']}")

    # The deterministic cursor interface over the derived relation.
    kb.consult("""
        % lint: disable=L104 drain/2
        drain(D, [T|Ts]) :- next_tuple(D, T), !, drain(D, Ts).
        drain(_, []).
        early_departures(Limit, Cities) :-
            open_rel(D, board/6),
            drain(D, Rows),
            close_rel(D),
            findall(C, (member(row(_, _, T, _, _, C), Rows),
                        T =< Limit), Cities).
    """)
    sol = kb.solve_once("early_departures(730, Cities)")
    print("departures up to 07:30:", term_to_text(sol["Cities"]))


def _try(thunk) -> str:
    try:
        thunk()
        return "NO (unexpected)"
    except Exception as exc:
        return f"yes ({type(exc).__name__})"


def main() -> None:
    path = os.path.join(tempfile.gettempdir(), "educestar_demo.edb")
    try:
        build_and_save(path)
        reopen_and_use(path)
    finally:
        if os.path.exists(path):
            os.unlink(path)


if __name__ == "__main__":
    main()
