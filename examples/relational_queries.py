#!/usr/bin/env python3
"""Educe* as a conventional relational DBMS (paper §5.2).

Loads the Wisconsin relations and runs the paper's five query classes
through the *goal-oriented* evaluation path — the set-at-a-time
relational engine over the same BANG storage the inference engine uses.
Shows plan variants, cardinalities and I/O profiles (Tables 2a/2b), and
finishes by mixing the two strategies: a relational plan feeding a
Prolog query, "without performance penalties" (§4).

Run:  python examples/relational_queries.py [scale]
"""

import sys

from repro.relational.algebra import Aggregate, Project, Select, execute
from repro.workloads import wisconsin


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    print(f"Building Wisconsin database at scale {scale} ...")
    db = wisconsin.WisconsinDB.build(scale=scale)
    print("  sizes:", db.sizes)

    print("\n--- the five paper queries, all plan variants ---------------")
    header = f"{'query':<36}{'variant':<14}{'rows':>6}{'wall ms':>9}" \
             f"{'sim ms':>9}{'pages':>7}"
    print(header)
    print("-" * len(header))
    for qc in wisconsin.query_classes():
        for variant in qc.variants:
            r = wisconsin.run_query(db, qc, variant)
            c = r.measurement.counters
            pages = c.get("buffer_hits", 0) + c.get("buffer_misses", 0)
            print(f"{qc.title:<36}{variant.name:<14}{r.rows:>6}"
                  f"{r.measurement.wall_s * 1000:>9.2f}"
                  f"{r.measurement.simulated_ms():>9.1f}{pages:>7}")

    print("\n--- ad-hoc algebra over the same store -----------------------")
    tenk1 = db.relation("tenk1")
    count = execute(Aggregate(Select(tenk1, {2: 0}), "count"))[0][0]
    print(f"  even-unique1 rows: {count}")
    top = execute(Project(Select(tenk1, {wisconsin.ONEPERCENT: 0}),
                          [wisconsin.UNIQUE1, wisconsin.STRINGU1]))[:5]
    print(f"  sample onepercent=0 projection: {top}")

    print("\n--- mixing strategies (§4) ----------------------------------")
    # Relational plan computes a set; Prolog consumes it term-at-a-time.
    session = db.session
    selected = execute(Project(
        Select(tenk1, {wisconsin.ONEPERCENT: 7}), [wisconsin.UNIQUE1]))
    session.consult("interesting(X) :- 0 =:= X mod 3.")
    hits = [
        row[0] for row in selected
        if session.solve_once(f"interesting({row[0]})") is not None
    ]
    print(f"  rows with onepercent=7 whose unique1 is divisible by 3: "
          f"{sorted(hits)[:10]}{' ...' if len(hits) > 10 else ''}")


if __name__ == "__main__":
    main()
