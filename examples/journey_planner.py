#!/usr/bin/env python3
"""Journey planning over the MVV knowledge base (paper §5.1).

Builds the synthetic Munich transport network — location2 (2307
tuples), schedule3 (arity 11, 8776 tuples), schedule2 (arity 5, 7260
tuples) at full scale — loads the facts into the EDB and the journey
rules into main memory, then answers both paper query classes:

* Class 1: travel between adjacent major nodes;
* Class 2: routes with at most one change, picking the best arrival.

Run:  python examples/journey_planner.py [scale]
"""

import sys

from repro import measure, term_to_text
from repro.workloads import mvv


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    print(f"Generating MVV network at scale {scale} ...")
    data = mvv.generate(seed=11, scale=scale)
    print(f"  stops: {len(data.stops)}   lines: {len(data.lines)}   "
          f"schedule3: {len(data.schedule3)}   "
          f"schedule2: {len(data.schedule2)}")

    session = mvv.load_educestar(data)
    print(f"  hubs: {', '.join(data.hubs[:5])} ...")

    print("\n--- Class 1: adjacent major nodes -------------------------")
    for query in mvv.class1_queries(data, 3):
        with measure(session) as m:
            solutions = list(session.solve(query, limit=3))
        plans = [term_to_text(s["Plan"]) for s in solutions]
        print(f"  ?- {query}")
        for plan in plans:
            print(f"       {plan}")
        print(f"       [{m.wall_s * 1000:.1f} ms wall, "
              f"{m.simulated_ms():.1f} sim-1990 ms]")

    print("\n--- Class 2: at most one change ----------------------------")
    for query in mvv.class2_queries(data, 3):
        inner = query[len("route("):-1]
        a, b, t0, _ = [s.strip() for s in inner.split(",", 3)]
        best = f"best_route({a}, {b}, {t0}, Plan, Arr)"
        with measure(session) as m:
            solution = session.solve_once(best)
        print(f"  ?- {best}")
        if solution is None:
            print("       no route")
            continue
        print(f"       best: {term_to_text(solution['Plan'])} "
              f"arriving minute {solution['Arr']}")
        print(f"       [{m.wall_s * 1000:.1f} ms wall, "
              f"{m.simulated_ms():.1f} sim-1990 ms]")

    print("\n--- EDB access profile --------------------------------------")
    print("  loader:", session.loader.counters())
    io = session.io_counters()
    print("  pages read:", io["reads"], " written:", io["writes"],
          " buffer hits:", io["buffer_hits"])


if __name__ == "__main__":
    main()
