#!/usr/bin/env python3
"""Database integrity checking with constraint specialisation (§5.3).

The three phases of the Bry/Dahmen IC task:

* **full test**   — check all five constraints against the whole DB;
* **preprocess**  — specialise the constraints w.r.t. an update
  transaction (pure compiled-Prolog computation, no fact access);
* **partial test**— check only the residuals the update can violate.

The preprocess step is run on both engines of Table 3 — "A Good Prolog
Compiler" (the in-memory WAM) and Educe* with the specialiser stored in
the EDB — and priced for the paper's server (4 MIPS) and diskless
client (3 MIPS).

Run:  python examples/integrity_audit.py
"""

from repro import measure, term_to_text
from repro.engine.stats import SUN_3_60_MIPS, CostModel
from repro.workloads import integrity as ic


def main() -> None:
    print("Generating personnel database "
          "(4000-tuple employee relation at scale 0.05) ...")
    data = ic.generate(scale=0.05)

    engine = ic.load_good_compiler()
    engine.consult(ic.CHECKER)
    ic.load_database(engine, data)

    print("\n--- full test (naive, every constraint vs whole DB) --------")
    with measure(engine) as m:
        violated = ic.run_full_test(engine)
    print(f"  violated constraints: {violated}  "
          f"[{m.wall_s * 1000:.1f} ms wall]")

    print("\n--- preprocess: Good Compiler vs Educe*, server vs client ---")
    estar = ic.load_educestar()
    client = CostModel().at_mips(SUN_3_60_MIPS)
    print(f"  {'update':>6} {'GC ms':>9} {'E* ms':>9} {'E* client':>10}")
    for i, update in enumerate(ic.UPDATES, 1):
        with measure(engine) as m_gc:
            ic.run_preprocess(engine, update)
        with measure(estar) as m_es:
            ic.run_preprocess(estar, update)
        print(f"  {i:>6} {m_gc.simulated_ms():>9.1f} "
              f"{m_es.simulated_ms():>9.1f} "
              f"{m_es.simulated_ms(client):>10.1f}")

    print("\n--- specialise + partial test for one transaction ----------")
    update = ic.UPDATES[2]
    print(f"  update: {update}")
    spec = ic.run_preprocess(engine, update)
    print(f"  residuals: {term_to_text(spec)[:110]} ...")
    flagged = ic.run_partial_test(engine, spec)
    print(f"  partial test flags constraints: {flagged}")
    print("  (update 3 inserts a salary above its grade limit — "
          "constraint 2 must fire)")


if __name__ == "__main__":
    main()
