#!/usr/bin/env python3
"""The multi-user kernel: concurrent queries over one shared EDB (§3.3).

Educe* "is a multi-user system": compiled clause code stored in the EDB
is executed by every session.  This example runs a `QueryService` with
four worker sessions over one shared store and walks through the whole
surface:

* concurrent read queries that overlap their simulated disc stalls
  (the buffer pool releases its latch around page reads);
* an interleaved update — it takes the store's exclusive write lock,
  bumps the mutation epoch, and invalidates exactly the affected
  procedure in every worker's loader cache;
* a deadline interrupting a runaway query, and a cancelled ticket;
* the post-run accounting: pins balanced, epochs monotone;
* service telemetry: latency histograms, the flight recorder's event
  tail, and one slow query's full ticket trace
  (admit → queue_wait → execute → engine spans).

Run:  python examples/concurrent_service.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro import QueryService                         # noqa: E402
from repro.bang.pager import Pager                     # noqa: E402
from repro.edb.store import ExternalStore              # noqa: E402
from repro.errors import QueryInterrupted              # noqa: E402


def main() -> None:
    # A small buffer pool plus simulated disc latency makes the
    # workload I/O-bound — the regime where worker concurrency pays.
    store = ExternalStore(pager=Pager(buffer_pages=8))
    # ``slow_query_ms`` arms the flight recorder's slow-query capture:
    # any ticket slower than the threshold keeps its full span tree.
    svc = QueryService(store=store, workers=4, queue_size=32,
                       slow_query_ms=5.0)

    print("Loading the family KB into the shared EDB ...")
    svc.store_relation("parent", [
        ("terach", "abraham"), ("terach", "nachor"), ("terach", "haran"),
        ("abraham", "isaac"), ("haran", "lot"), ("haran", "milcah"),
        ("haran", "yiscah"), ("isaac", "esau"), ("isaac", "jacob"),
    ])
    svc.store_program(
        "% lint: external parent/2\n"
        "% lint: disable=L104 anc/2\n"
        "anc(X, Y) :- parent(X, Y). "
        "anc(X, Z) :- parent(X, Y), anc(Y, Z).")
    store.pager.disk.read_latency_s = 0.002

    print("\n-- 1. a batch of concurrent queries (submit_many) --")
    goals = [f"anc({p}, D)" for p in
             ("terach", "abraham", "haran", "isaac")] * 2
    start = time.perf_counter()
    tickets = svc.submit_many(goals)
    for goal, ticket in zip(goals, tickets):
        solutions = ticket.result(timeout=30)
        print(f"  {goal:<18} -> {len(solutions):>2} solutions  "
              f"(epoch {ticket.store_epoch}, {ticket.worker})")
    print(f"  batch wall time: {time.perf_counter() - start:.3f} s "
          f"(4 workers overlapping page stalls)")

    print("\n-- 2. an update serializes against in-flight queries --")
    before = svc.submit("anc(terach, D)")
    n_before = len(before.result(timeout=30))
    svc.assert_external("parent(jacob, joseph).")
    after = svc.submit("anc(terach, D)")
    n_after = len(after.result(timeout=30))
    print(f"  epoch {before.store_epoch}: {n_before} descendants of "
          f"terach")
    print(f"  epoch {after.store_epoch}: {n_after} descendants "
          f"(joseph arrived with mutation "
          f"{after.store_epoch})")

    print("\n-- 3. deadlines and cancellation --")
    svc.store_program("spin :- spin.")
    runaway = svc.submit("spin", timeout=0.05)
    try:
        runaway.result(timeout=30)
    except QueryInterrupted as err:
        print(f"  runaway query: {err}")
    doomed = svc.submit("spin")
    time.sleep(0.02)
    doomed.cancel()
    try:
        doomed.result(timeout=30)
    except QueryInterrupted as err:
        print(f"  cancelled query: {err}")

    print("\n-- 4. the books balance --")
    svc.shutdown()
    telemetry = svc.final_telemetry   # captured by shutdown()
    snap = telemetry["counters"]
    for key in ("service_submitted", "service_completed",
                "service_timeouts", "service_cancelled",
                "service_queue_depth_peak",
                "buffer_pins", "buffer_unpins", "buffer_pinned",
                "store_mutations", "latch_contentions"):
        print(f"  {key:<24} {snap[key]}")
    assert snap["buffer_pins"] == snap["buffer_unpins"]
    print("  every pin released; mutation epoch = committed updates.")

    print("\n-- 5. what the service saw (telemetry) --")
    for base in ("service_queue_wait_ms", "service_ticket_ms",
                 "buffer_miss_stall_ms", "lock_read_wait_ms"):
        if f"{base}.count" not in snap:
            continue
        print(f"  {base:<24} count={snap[f'{base}.count']:g}  "
              f"p50={snap[f'{base}.p50']:.3f}  "
              f"p99={snap[f'{base}.p99']:.3f}  "
              f"max={snap[f'{base}.max']:.3f}  (ms)")
    print("  flight recorder tail:")
    for event in telemetry["events"][-6:]:
        attrs = "  ".join(f"{k}={v}" for k, v in event.items()
                          if k not in ("seq", "ts", "kind"))
        print(f"    #{event['seq']:<4} {event['kind']:<16} {attrs}")
    slow = telemetry["slow_queries"]
    print(f"  slow queries (> {svc.slow_query_ms:g} ms): {len(slow)}")
    if slow:
        capture = slow[0]
        print(f"  slowest capture — ticket {capture['ticket']} "
              f"({capture['state']}, {capture['total_ms']:.1f} ms), "
              f"trace {capture['trace_id']}:")
        for line in capture["trace"].format_tree().splitlines():
            print("    " + line)


if __name__ == "__main__":
    main()
