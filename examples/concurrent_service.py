#!/usr/bin/env python3
"""The multi-user kernel: concurrent queries over one shared EDB (§3.3).

Educe* "is a multi-user system": compiled clause code stored in the EDB
is executed by every session.  This example runs a `QueryService` with
four worker sessions over one shared store and walks through the whole
surface:

* concurrent read queries that overlap their simulated disc stalls
  (the buffer pool releases its latch around page reads);
* an interleaved update — it takes the store's exclusive write lock,
  bumps the mutation epoch, and invalidates exactly the affected
  procedure in every worker's loader cache;
* a deadline interrupting a runaway query, and a cancelled ticket;
* the post-run accounting: pins balanced, epochs monotone.

Run:  python examples/concurrent_service.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro import QueryService                         # noqa: E402
from repro.bang.pager import Pager                     # noqa: E402
from repro.edb.store import ExternalStore              # noqa: E402
from repro.errors import QueryInterrupted              # noqa: E402


def main() -> None:
    # A small buffer pool plus simulated disc latency makes the
    # workload I/O-bound — the regime where worker concurrency pays.
    store = ExternalStore(pager=Pager(buffer_pages=8))
    svc = QueryService(store=store, workers=4, queue_size=32)

    print("Loading the family KB into the shared EDB ...")
    svc.store_relation("parent", [
        ("terach", "abraham"), ("terach", "nachor"), ("terach", "haran"),
        ("abraham", "isaac"), ("haran", "lot"), ("haran", "milcah"),
        ("haran", "yiscah"), ("isaac", "esau"), ("isaac", "jacob"),
    ])
    svc.store_program(
        "anc(X, Y) :- parent(X, Y). "
        "anc(X, Z) :- parent(X, Y), anc(Y, Z).")
    store.pager.disk.read_latency_s = 0.002

    print("\n-- 1. a batch of concurrent queries (submit_many) --")
    goals = [f"anc({p}, D)" for p in
             ("terach", "abraham", "haran", "isaac")] * 2
    start = time.perf_counter()
    tickets = svc.submit_many(goals)
    for goal, ticket in zip(goals, tickets):
        solutions = ticket.result(timeout=30)
        print(f"  {goal:<18} -> {len(solutions):>2} solutions  "
              f"(epoch {ticket.store_epoch}, {ticket.worker})")
    print(f"  batch wall time: {time.perf_counter() - start:.3f} s "
          f"(4 workers overlapping page stalls)")

    print("\n-- 2. an update serializes against in-flight queries --")
    before = svc.submit("anc(terach, D)")
    n_before = len(before.result(timeout=30))
    svc.assert_external("parent(jacob, joseph).")
    after = svc.submit("anc(terach, D)")
    n_after = len(after.result(timeout=30))
    print(f"  epoch {before.store_epoch}: {n_before} descendants of "
          f"terach")
    print(f"  epoch {after.store_epoch}: {n_after} descendants "
          f"(joseph arrived with mutation "
          f"{after.store_epoch})")

    print("\n-- 3. deadlines and cancellation --")
    svc.store_program("spin :- spin.")
    runaway = svc.submit("spin", timeout=0.05)
    try:
        runaway.result(timeout=30)
    except QueryInterrupted as err:
        print(f"  runaway query: {err}")
    doomed = svc.submit("spin")
    time.sleep(0.02)
    doomed.cancel()
    try:
        doomed.result(timeout=30)
    except QueryInterrupted as err:
        print(f"  cancelled query: {err}")

    print("\n-- 4. the books balance --")
    svc.shutdown()
    snap = svc.metrics.snapshot()
    for key in ("service_submitted", "service_completed",
                "service_timeouts", "service_cancelled",
                "buffer_pins", "buffer_unpins", "buffer_pinned",
                "store_mutations", "latch_contentions"):
        print(f"  {key:<22} {snap[key]}")
    assert snap["buffer_pins"] == snap["buffer_unpins"]
    print("  every pin released; mutation epoch = committed updates.")


if __name__ == "__main__":
    main()
