#!/usr/bin/env python3
"""Quickstart: a knowledge base with facts in the EDB and compiled rules.

Demonstrates the core Educe* loop:

1. create a session (WAM + BANG-backed External Data Base);
2. store an ordinary relation (facts) in the EDB;
3. store rules in the EDB as *compiled code with relative addresses*;
4. query — the machine's unknown-procedure trap fetches, pre-unifies,
   address-resolves and executes the stored code transparently;
5. inspect the counters that the paper's evaluation is built on.

Run:  python examples/quickstart.py
"""

from repro import EduceStar, measure, term_to_text


def main() -> None:
    kb = EduceStar()

    # --- 1. an ordinary relation in the External Data Base -------------
    kb.store_relation("parent", [
        ("terach", "abraham"), ("terach", "nachor"), ("terach", "haran"),
        ("abraham", "isaac"), ("haran", "lot"), ("haran", "milcah"),
        ("haran", "yiscah"), ("isaac", "esau"), ("isaac", "jacob"),
    ])

    # --- 2. rules stored as compiled WAM code in the EDB ---------------
    kb.store_program("""
        % lint: external parent/2
        % lint: disable=L104 ancestor/2 lineage/2
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).

        siblings(X, Y) :- parent(P, X), parent(P, Y), X \\== Y.

        lineage(X, [X]) :- \\+ parent(_, X).
        lineage(X, [X|Up]) :- parent(P, X), lineage(P, Up).
    """)

    # --- 3. query through the inference engine -------------------------
    print("Descendants of terach:")
    for solution in kb.solve("ancestor(terach, D)"):
        print("   ", solution["D"])

    print("\nSiblings of jacob:",
          [str(s["S"]) for s in kb.solve("siblings(jacob, S)")])

    lineage = kb.solve_once("lineage(jacob, L)")
    print("Lineage of jacob:", term_to_text(lineage["L"]))

    # --- 4. the measurement machinery -----------------------------------
    with measure(kb) as m:
        kb.count_solutions("ancestor(_, _)")
    print(f"\nFull ancestor closure: {m.wall_s * 1000:.2f} ms wall, "
          f"{m.simulated_ms():.2f} simulated-1990 ms")
    print("WAM instructions:", m["instr_count"],
          "| data refs:", m["data_refs"],
          "| choice-point refs:", m["cp_refs"])
    print("Loader:", kb.loader.counters())


if __name__ == "__main__":
    main()
