#!/usr/bin/env python3
"""An interactive Educe* top level.

A minimal shell over an :class:`~repro.EduceStar` session:

* ``?- Goal.``  or just ``Goal.``     — solve; ``;`` for more answers
* ``:- Directive.``                    — op/3, pred/1, dynamic/1, ...
* ``[consult 'file.pl'].`` style loading via the commands below
* shell commands (no terminating dot):

  =============  ==============================================
  ``:load F``    consult a Prolog file into main memory
  ``:store F``   compile a Prolog file into the EDB
  ``:save F``    persist the EDB
  ``:open F``    reopen a saved EDB in a fresh session
  ``:listing P`` show clauses / disassembly for predicate P
  ``:stats``     machine + loader + I/O counters
  ``:help``      this text
  ``:quit``      leave
  =============  ==============================================

Run:  python examples/repl.py            (interactive)
      echo "X is 6*7." | python examples/repl.py   (piped)
"""

import sys

from repro import EduceStar, term_to_text
from repro.errors import ReproError


def show_solutions(session, goal_text: str, interactive: bool) -> None:
    try:
        solutions = session.solve(goal_text)
        found = False
        for solution in solutions:
            found = True
            if solution.bindings:
                bindings = ",  ".join(
                    f"{name} = {term_to_text(value)}"
                    for name, value in sorted(solution.bindings.items()))
                print(bindings)
            else:
                print("true.")
                break
            if interactive:
                answer = input("more? (;) ").strip()
                if answer != ";":
                    break
            else:
                break
        if not found:
            print("false.")
    except ReproError as exc:
        print(f"error: {exc}")


def command(session, line: str, interactive: bool):
    parts = line.split(None, 1)
    cmd = parts[0]
    arg = parts[1].strip() if len(parts) > 1 else ""
    if cmd == ":quit":
        return None
    if cmd == ":help":
        print(__doc__)
    elif cmd == ":load" and arg:
        session.machine.consult_file(arg)
        print(f"loaded {arg}")
    elif cmd == ":store" and arg:
        with open(arg, "r", encoding="utf-8") as f:
            session.store_program(f.read())
        print(f"stored {arg} in the EDB")
    elif cmd == ":save" and arg:
        session.save(arg)
        print(f"saved EDB to {arg}")
    elif cmd == ":open" and arg:
        session = EduceStar.open(arg)
        print(f"opened {arg}")
    elif cmd == ":listing" and arg:
        session.machine.output.clear()
        if session.solve_once(f"listing({arg})") is not None:
            print("".join(session.machine.output), end="")
        else:
            print(f"no such predicate: {arg}")
    elif cmd == ":stats":
        for key, value in session.counters().items():
            print(f"  {key}: {value}")
        for key, value in session.io_counters().items():
            print(f"  {key}: {value}")
    else:
        print(f"unknown command {line!r}; :help for help")
    return session


def main() -> None:
    session = EduceStar()
    interactive = sys.stdin.isatty()
    if interactive:
        print("Educe* top level — :help for commands, :quit to leave")
    buffer = ""
    while True:
        try:
            prompt = "?- " if not buffer else "   "
            line = input(prompt if interactive else "")
        except EOFError:
            break
        line = line.strip()
        if not line:
            continue
        if not buffer and line.startswith(":") and not line.startswith(":-"):
            session = command(session, line, interactive)
            if session is None:
                break
            continue
        buffer += " " + line
        if not buffer.rstrip().endswith("."):
            continue
        text = buffer.strip()
        buffer = ""
        if text.startswith("?-"):
            text = text[2:].strip()
        if text.startswith(":-"):
            try:
                session.consult(text + ("" if text.endswith(".") else "."))
                print("true.")
            except ReproError as exc:
                print(f"error: {exc}")
            continue
        show_solutions(session, text.rstrip("."), interactive)


if __name__ == "__main__":
    main()
