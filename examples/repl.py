#!/usr/bin/env python3
"""An interactive Educe* top level.

A minimal shell over an :class:`~repro.EduceStar` session:

* ``?- Goal.``  or just ``Goal.``     — solve; ``;`` for more answers
* ``:- Directive.``                    — op/3, pred/1, dynamic/1, ...
* ``[consult 'file.pl'].`` style loading via the commands below
* shell commands (no terminating dot):

  ==============  ==============================================
  ``:load F``     consult a Prolog file into main memory
  ``:store F``    compile a Prolog file into the EDB
  ``:save F``     persist the EDB (atomic checkpoint; see
                  docs/DURABILITY.md)
  ``:open F``     reopen a saved EDB in a fresh session, running
                  crash recovery; prints the recovery report
  ``:listing P``  show clauses / disassembly for predicate P
  ``:trace``      toggle per-query tracing (``:trace on|off``);
                  when on, each query prints its profile: span
                  tree, counter deltas, simulated-1990-ms breakdown
  ``:stats``      session counters by component + simulated-ms
                  breakdown + the last traced query's profile
  ``:top``        live telemetry dashboard: latency histograms
                  (count/p50/p90/p99/max) and hot counters,
                  refreshing once a second on a tty (Ctrl-C to
                  stop; renders once when piped)
  ``:events N``   tail of the flight recorder — the last N (default
                  20) structured events: evictions, WAL poisoning,
                  recovery, ... (docs/OBSERVABILITY.md)
  ``:export F``   append the last traced query's profile to F
                  as JSON lines (see docs/OBSERVABILITY.md)
  ``:plan G``     explain how goal G would be evaluated without
                  running it: top-down (WAM) or bottom-up
                  (semi-naive Datalog), the planner's reason, the
                  strata, and the magic-set adornment for the bound
                  arguments (docs/DATALOG.md)
  ``:explain G``  the full EXPLAIN plan tree for goal G — strategy
                  decision with cost inputs, magic adornment,
                  strata/rules or compiled code shape, optimizer
                  state; ``:explain analyze G`` also runs the goal
                  and attaches measurements (answers, wall time,
                  counter deltas, per-pass fixpoint delta rows);
                  docs/OBSERVABILITY.md, "Explain plans"
  ``:profile``    sampled WAM profiler (docs/OBSERVABILITY.md):
                  ``:profile on [interval]`` starts sampling,
                  ``:profile off`` stops, ``:profile`` prints the
                  per-predicate attribution table, ``:profile
                  folded F`` writes flamegraph.pl-compatible
                  folded stacks to F, ``:profile reset`` clears
  ``:verify P``   static analysis of predicate P (``name/arity``):
                  structural + abstract verification of its compiled
                  code, first-argument partitions, dead clauses
                  (rule glossary: docs/ANALYSIS.md)
  ``:modes [P]``  whole-program analysis of the loaded program
                  (docs/ANALYSIS.md): inferred call/success modes
                  (``g``/``n``/``a`` letters) and determinism class
                  per predicate — all of them, or just ``name`` /
                  ``name/arity``; ``:modes apply`` feeds the proven
                  bindings to the optimizer (mode-driven dispatch),
                  ``:modes clear`` reverts
  ``:optimize [L]``  show or set the code-optimization level —
                  ``off``, ``peephole`` (superinstruction fusion) or
                  ``full`` (fusion + determinism-driven dispatch);
                  with no argument prints the level and the
                  ``wam_opt_*`` counters (docs/OPTIMIZER.md)
  ``:lint [F]``   lint a Prolog file — or, with no argument, the
                  whole shipped corpus (prelude, workloads,
                  examples), same as ``python -m repro.analysis``
  ``:help``       this text
  ``:quit``       leave
  ==============  ==============================================

Run:  python examples/repl.py            (interactive)
      echo "X is 6*7." | python examples/repl.py   (piped)
"""

import sys
import time

from repro import EduceStar, term_to_text
from repro.errors import ReproError

# Counter groups for :stats (full glossary: docs/OBSERVABILITY.md).
_STATS_GROUPS = (
    ("machine", ("instr_count", "data_refs", "cp_refs", "cp_created",
                 "backtracks", "calls", "unify_ops", "compile_count",
                 "heap_high_water", "gc_runs", "gc_cells_recovered")),
    ("loader", ("loads", "cache_hits", "clauses_fetched",
                "clauses_delivered", "resolutions",
                "preunify_executions", "preunify_rejections")),
    ("parser", ("parsed_chars",)),
    ("storage", ("reads", "writes", "bytes_read", "bytes_written",
                 "pages", "buffer_hits", "buffer_misses",
                 "buffer_evictions", "buffer_writebacks",
                 "buffer_resident")),
)

TRACE = {"on": False}


def show_solutions(session, goal_text: str, interactive: bool) -> None:
    try:
        solutions = session.solve(goal_text, profile=TRACE["on"])
        found = False
        for solution in solutions:
            found = True
            if solution.bindings:
                bindings = ",  ".join(
                    f"{name} = {term_to_text(value)}"
                    for name, value in sorted(solution.bindings.items()))
                print(bindings)
            else:
                print("true.")
                break
            if interactive:
                answer = input("more? (;) ").strip()
                if answer != ";":
                    break
            else:
                break
        if not found:
            print("false.")
        if TRACE["on"]:
            solutions.close()   # finalise the profile
            if session.last_profile is not None:
                print(session.last_profile.format())
    except ReproError as exc:
        print(f"error: {exc}")


def show_stats(session) -> None:
    snapshot = session.metrics.snapshot()
    shown = set()
    for group, keys in _STATS_GROUPS:
        lines = [f"    {key}: {snapshot[key]:g}"
                 for key in keys if key in snapshot]
        shown.update(keys)
        if lines:
            print(f"  {group}:")
            print("\n".join(lines))
    extra = [k for k in sorted(snapshot) if k not in shown]
    if extra:
        print("  other:")
        for key in extra:
            print(f"    {key}: {snapshot[key]:g}")
    sim = session.cost_model.breakdown(snapshot)
    print(f"  simulated 1990 ms (whole session): "
          f"{sim['total_ms']:.2f} "
          f"(cpu {sim['cpu_ms']:.2f} + io {sim['io_ms']:.2f})")
    terms = {**sim["cpu"], **sim["io"]}
    body = "  ".join(f"{k}={v:.2f}" for k, v in terms.items() if v)
    if body:
        print(f"    by term: {body}")
    if session.last_profile is not None:
        print("  last traced query:")
        for line in session.last_profile.format().splitlines():
            print("    " + line)


#: counters worth a dashboard line, in display order
_TOP_COUNTERS = (
    "instr_count", "calls", "backtracks", "loads", "cache_hits",
    "reads", "writes", "buffer_hits", "buffer_misses",
    "buffer_evictions", "wal_appends", "events_recorded",
    "events_dropped",
)


def render_top(snapshot: dict) -> str:
    """The telemetry dashboard: one line per histogram family, then
    the hot counters.  Histogram families are recognised the same way
    the registry recognises them (``X.count`` + ``X.sum``)."""
    from repro.obs.registry import _histogram_families
    lines = [f"  {'histogram (ms)':<24}{'count':>8}{'p50':>9}"
             f"{'p90':>9}{'p99':>9}{'max':>10}"]
    families = sorted(_histogram_families(snapshot))
    for base in families:
        count = snapshot.get(f"{base}.count", 0)
        cells = []
        for suffix in ("p50", "p90", "p99", "max"):
            value = snapshot.get(f"{base}.{suffix}")
            cells.append("-" if value is None else f"{value:.3f}")
        lines.append(f"  {base:<24}{count:>8g}{cells[0]:>9}"
                     f"{cells[1]:>9}{cells[2]:>9}{cells[3]:>10}")
    if not families:
        lines.append("  (no observations yet)")
    lines.append("")
    lines.append("  counters:")
    for key in _TOP_COUNTERS:
        if key in snapshot:
            lines.append(f"    {key:<22} {snapshot[key]:g}")
    return "\n".join(lines)


def show_top(session, interactive: bool) -> None:
    if not interactive:
        print(render_top(session.metrics.snapshot()))
        return
    try:
        while True:
            # Home + clear-to-end keeps the refresh flicker-free.
            print("\033[H\033[J" + render_top(session.metrics.snapshot()))
            print("\n  (refreshing every 1s — Ctrl-C to return)")
            time.sleep(1.0)
    except KeyboardInterrupt:
        print()


def show_events(session, arg: str) -> None:
    try:
        n = int(arg) if arg else 20
    except ValueError:
        print("usage: :events [N]")
        return
    events = session.store.events.tail(n)
    if not events:
        print("  (flight recorder is empty)")
        return
    for event in events:
        attrs = "  ".join(f"{k}={v}" for k, v in event.items()
                          if k not in ("seq", "ts", "kind"))
        stamp = time.strftime("%H:%M:%S", time.localtime(event["ts"]))
        print(f"  #{event['seq']:<6} {stamp}  {event['kind']:<16} {attrs}")


def command(session, line: str, interactive: bool):
    parts = line.split(None, 1)
    cmd = parts[0]
    arg = parts[1].strip() if len(parts) > 1 else ""
    if cmd == ":quit":
        return None
    if cmd == ":help":
        print(__doc__)
    elif cmd == ":load" and arg:
        session.machine.consult_file(arg)
        print(f"loaded {arg}")
    elif cmd == ":store" and arg:
        with open(arg, "r", encoding="utf-8") as f:
            session.store_program(f.read())
        print(f"stored {arg} in the EDB")
    elif cmd == ":save" and arg:
        session.save(arg)
        print(f"saved EDB to {arg} (checkpoint atomic, WAL reset)")
    elif cmd == ":open" and arg:
        session = EduceStar.open(arg)
        report = session.store.recovery
        if report is not None:
            print(report.format())
        else:
            print(f"opened {arg}")
        dropped = [p for p in session.store.procedures()
                   if p.mode == "rules"]
        if dropped and not len(session.store.datalog_rules):
            names = ", ".join(f"{p.name}/{p.arity}" for p in dropped[:8])
            print(f"  note: {len(dropped)} stored rules procedure(s) "
                  f"({names}) have no live Datalog rulebase — it was "
                  "dropped with the checkpoint, so recursive queries "
                  "run on the WAM until re-stored (docs/DATALOG.md)")
    elif cmd == ":listing" and arg:
        session.machine.output.clear()
        if session.solve_once(f"listing({arg})") is not None:
            print("".join(session.machine.output), end="")
        else:
            print(f"no such predicate: {arg}")
    elif cmd == ":stats":
        show_stats(session)
    elif cmd == ":top":
        show_top(session, interactive)
    elif cmd == ":events":
        show_events(session, arg)
    elif cmd == ":trace":
        if arg not in ("", "on", "off"):
            print("usage: :trace [on|off]")
        else:
            TRACE["on"] = (arg == "on") if arg else not TRACE["on"]
            print(f"tracing {'on' if TRACE['on'] else 'off'}")
    elif cmd == ":optimize":
        from repro.wam.optimizer import OPT_LEVELS
        if arg and arg not in OPT_LEVELS:
            print("usage: :optimize [off|peephole|full]")
        elif arg:
            session.set_optimize(arg)
            print(f"optimize {arg}")
        else:
            opt = {k: v for k, v in session.counters().items()
                   if k.startswith("wam_opt_")}
            print(f"optimize {session.optimize} ({opt})")
    elif cmd == ":plan" and arg:
        print(session.datalog.explain(arg.rstrip(".")))
    elif cmd == ":explain" and arg:
        head, _, rest = arg.partition(" ")
        if head == "analyze" and rest:
            print(session.analyze(rest.strip().rstrip(".")).format())
        else:
            print(session.explain(arg.rstrip(".")).format())
    elif cmd == ":profile":
        sub, _, rest = arg.partition(" ")
        rest = rest.strip()
        if sub == "on":
            interval = int(rest) if rest.isdigit() else None
            prof = session.enable_profiling(interval)
            print(f"profiling on (interval {prof.interval})")
        elif sub == "off":
            session.disable_profiling()
            print("profiling off")
        elif sub == "reset":
            if session.profiler is not None:
                session.profiler.reset()
            print("profile cleared")
        elif sub == "folded" and rest:
            if session.profiler is None:
                print("no profiler (:profile on first)")
            else:
                lines = session.profiler.folded()
                with open(rest, "a", encoding="utf-8") as f:
                    for fold in lines:
                        f.write(fold + "\n")
                print(f"appended {len(lines)} folded stacks to {rest}")
        elif sub == "":
            if session.profiler is None:
                print("no profiler (:profile on first)")
            else:
                print(session.profiler.format(
                    cost_model=session.cost_model))
        else:
            print("usage: :profile [on [interval]|off|reset|folded F]")
    elif cmd == ":verify" and arg:
        from repro.analysis import describe_procedure
        name, slash, arity_text = arg.rpartition("/")
        if not slash or not arity_text.isdigit():
            print("usage: :verify name/arity")
        else:
            print(describe_procedure(session, name, int(arity_text)))
    elif cmd == ":modes":
        from repro.analysis import describe_modes
        if arg == "apply":
            report = session.apply_global_modes(refresh=True)
            bound = report.bound_args()
            print(f"applied: {len(bound)} predicate(s) with proven-"
                  "ground arguments feed mode-driven dispatch "
                  f"(wam_opt_mode_guards counts uses)")
            if session.optimize != "full":
                print(f"note: optimize is '{session.optimize}' — "
                      "guards plant only at :optimize full")
        elif arg == "clear":
            session.clear_global_modes()
            print("cleared: optimizer back to call-site-only guards")
        elif arg:
            name, slash, arity_text = arg.rpartition("/")
            if slash and arity_text.isdigit():
                print(describe_modes(session, name, int(arity_text)))
            else:
                print(describe_modes(session, arg))
        else:
            print(describe_modes(session))
    elif cmd == ":lint":
        from repro.analysis.corpus import CorpusEntry, corpus_entries
        from repro.analysis.lint import lint_text
        if arg:
            with open(arg, "r", encoding="utf-8") as f:
                entries = [CorpusEntry(arg, f.read())]
        else:
            entries = corpus_entries()
        total = 0
        for entry in entries:
            findings = lint_text(entry.text, name=entry.name,
                                 extra_defined=entry.extra_defined)
            total += len(findings)
            for finding in findings:
                print(f"  {entry.name}: {finding.rule} "
                      f"{finding.indicator}: {finding.message}")
        print(f"{len(entries)} unit(s), {total} finding(s)")
    elif cmd == ":export" and arg:
        if session.last_profile is None:
            print("no traced query yet (:trace, then run a query)")
        else:
            from repro.obs import write_json_lines
            n = write_json_lines(arg, [session.last_profile])
            print(f"appended {n} JSON lines to {arg}")
    else:
        print(f"unknown command {line!r}; :help for help")
    return session


def main() -> None:
    session = EduceStar()
    interactive = sys.stdin.isatty()
    if interactive:
        print("Educe* top level — :help for commands, :quit to leave")
    buffer = ""
    while True:
        try:
            prompt = "?- " if not buffer else "   "
            line = input(prompt if interactive else "")
        except EOFError:
            break
        line = line.strip()
        if not line:
            continue
        if not buffer and line.startswith(":") and not line.startswith(":-"):
            try:
                session = command(session, line, interactive)
            except (ReproError, OSError) as exc:
                print(f"error: {exc}")
                continue
            if session is None:
                break
            continue
        buffer += " " + line
        if not buffer.rstrip().endswith("."):
            continue
        text = buffer.strip()
        buffer = ""
        if text.startswith("?-"):
            text = text[2:].strip()
        if text.startswith(":-"):
            try:
                session.consult(text + ("" if text.endswith(".") else "."))
                print("true.")
            except ReproError as exc:
                print(f"error: {exc}")
            continue
        show_solutions(session, text.rstrip("."), interactive)


if __name__ == "__main__":
    main()
