#!/usr/bin/env python3
"""Recursive queries two ways: WAM top-down vs semi-naive bottom-up.

Transitive closure (reachability) is the workload where the two
evaluation strategies of docs/DATALOG.md actually diverge:

* the WAM derives one answer **per proof path** — on a dense DAG the
  same pair is re-derived once per path, and on cyclic data top-down
  evaluation does not terminate at all;
* the semi-naive bottom-up engine derives each fact **once**, delta by
  delta, and the magic-set rewrite restricts the fixpoint to the part
  of the graph the query's bound arguments can reach.

This example builds a reachability knowledge base, shows the strategy
planner's reasoning (the same report the REPL prints for ``:plan G``),
runs the same goal under both strategies, and compares the answers and
the ``datalog_*`` counters.

Run:  python examples/datalog_reachability.py
"""

from repro import EduceStar
from repro.workloads import graphs


def build(mode: str, edges) -> EduceStar:
    kb = EduceStar(datalog=mode, datalog_min_rows=64)
    kb.store_relation("edge", edges)
    kb.store_program("""
        % lint: external edge/2
        % lint: disable=L104 reach/2
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- edge(X, Y), reach(Y, Z).
    """)
    return kb


def main() -> None:
    # A random DAG: many distinct paths between the same pairs, which
    # is exactly what separates set-at-a-time from tuple-at-a-time.
    edges = graphs.random_dag(nodes=120, edges=400, seed=7)

    # --- the planner's view (REPL: ``:plan reach(n0, X)``) -------------
    kb = build("auto", edges)
    print("Planner report for reach(n0, X):")
    for line in kb.datalog.explain("reach(n0, X)").splitlines():
        print("   ", line)

    # --- the same goal, both strategies --------------------------------
    topdown = build("off", edges)      # everything on the WAM
    bottomup = build("force", edges)   # everything set-at-a-time

    goal = "reach(n0, X)"
    wam_answers = {str(s["X"]) for s in topdown.solve(goal)}
    wam_proofs = sum(1 for _ in topdown.solve(goal))
    datalog_answers = [str(s["X"]) for s in bottomup.solve(goal)]

    assert set(datalog_answers) == wam_answers, "strategies disagree!"
    assert len(datalog_answers) == len(set(datalog_answers))
    print(f"\nGoal {goal}:")
    print(f"    distinct answers:   {len(wam_answers)} (both strategies)")
    print(f"    WAM solutions:      {wam_proofs} "
          "(one per proof path — duplicates on a DAG)")
    print(f"    bottom-up solutions: {len(datalog_answers)} "
          "(set semantics, duplicate-free)")

    # --- what the evaluation cost, in the session's own telemetry ------
    print("\nBottom-up telemetry (datalog_* counters):")
    for key, value in sorted(bottomup.datalog.counters().items()):
        if value:
            print(f"    {key:<24} {value:g}")
    stats_hist = bottomup.datalog.histograms()["datalog_fixpoint_iterations"]
    print(f"    fixpoint passes observed: {stats_hist.count}")

    # The decision is also visible in the Prometheus exposition — the
    # acceptance surface the service exports (docs/OBSERVABILITY.md).
    from repro.obs import render_prometheus
    text = render_prometheus(bottomup.metrics.snapshot())
    routed = [line for line in text.splitlines()
              if line.startswith("educe_datalog_bottomup")]
    print("\nExposition:", *routed)


if __name__ == "__main__":
    main()
