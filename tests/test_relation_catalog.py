"""Tests for BANG relations, typed key transforms and the catalog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bang.catalog import AttributeSpec, Catalog, RelationSchema
from repro.bang.pager import Pager
from repro.bang.relation import (
    encode_value,
    functor_fraction,
    squash_number,
    string_fraction,
)
from repro.errors import CatalogError, TypeError_


@pytest.fixture
def catalog():
    return Catalog(Pager(buffer_pages=32), bucket_capacity=8)


class TestKeyTransforms:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_squash_monotonic(self, a, b):
        if a < b:
            assert squash_number(a) < squash_number(b)

    def test_squash_handles_64bit_hashes(self):
        a, b = 2**63, 2**63 + 2**40
        assert 0 < squash_number(a) < squash_number(b) < 1

    @given(st.text(max_size=6), st.text(max_size=6))
    def test_string_fraction_order(self, a, b):
        # order-preserving on the first 7 bytes
        fa, fb = string_fraction(a), string_fraction(b)
        if a.encode("utf-8")[:7] < b.encode("utf-8")[:7]:
            assert fa <= fb

    def test_functor_fraction_in_range(self):
        assert 0 <= functor_fraction("foo", 3) < 1

    def test_encode_type_dispatch(self):
        assert 0 < encode_value("int", 5) < 1
        assert 0 < encode_value("real", 2.5) < 1
        assert 0 <= encode_value("atom", "abc") < 1
        assert 0 <= encode_value("term", ("atom", "x")) < 1
        assert 0 <= encode_value("term", ("var",)) < 1

    def test_term_bands_are_disjoint(self):
        kinds = [("int", 3), ("real", 1.0), ("atom", "a"), ("list",),
                 ("struct", "f", 1), ("var",)]
        values = sorted(encode_value("term", k) for k in kinds)
        # six values in six distinct sixths of [0,1)
        bands = {int(v * 6) for v in values}
        assert len(bands) == 6

    def test_bad_values_raise(self):
        with pytest.raises(TypeError_):
            encode_value("int", "not an int")
        with pytest.raises(TypeError_):
            encode_value("term", "bare string")


class TestCatalog:
    def test_create_and_get(self, catalog):
        rel = catalog.create_simple("r", [("a", "int")])
        assert catalog.get("r") is rel
        assert "r" in catalog

    def test_duplicate_rejected(self, catalog):
        catalog.create_simple("r", [("a", "int")])
        with pytest.raises(CatalogError):
            catalog.create_simple("r", [("a", "int")])

    def test_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get("nope")
        assert catalog.lookup("nope") is None

    def test_drop(self, catalog):
        catalog.create_simple("r", [("a", "int")])
        catalog.drop("r")
        assert "r" not in catalog

    def test_attribute_index(self):
        schema = RelationSchema("r", [AttributeSpec("x", "int"),
                                      AttributeSpec("y", "atom")])
        assert schema.attribute_index("y") == 1
        with pytest.raises(CatalogError):
            schema.attribute_index("z")

    def test_invalid_type_rejected(self):
        with pytest.raises(CatalogError):
            AttributeSpec("x", "varchar")


class TestRelationBasics:
    def test_insert_scan(self, catalog):
        rel = catalog.create_simple("r", [("a", "int"), ("b", "atom")])
        rel.insert((1, "x"))
        rel.insert((2, "y"))
        assert sorted(rel.scan()) == [(1, "x"), (2, "y")]
        assert len(rel) == 2

    def test_arity_checked(self, catalog):
        rel = catalog.create_simple("r", [("a", "int")])
        with pytest.raises(CatalogError):
            rel.insert((1, 2))

    def test_exact_query(self, catalog):
        rel = catalog.create_simple("r", [("a", "int"), ("b", "atom")])
        rel.insert_many([(i, f"v{i % 3}") for i in range(50)])
        assert sorted(r[0] for r in rel.query({1: "v1"})) == \
            [i for i in range(50) if i % 3 == 1]

    def test_range_query_inclusive(self, catalog):
        rel = catalog.create_simple("r", [("a", "int")])
        rel.insert_many([(i,) for i in range(30)])
        got = sorted(r[0] for r in rel.range_query(0, 10, 20))
        assert got == list(range(10, 21))

    def test_range_on_term_column_rejected(self, catalog):
        rel = catalog.create_simple("r", [("a", "term")])
        with pytest.raises(TypeError_):
            list(rel.range_query(0, 1, 2))

    def test_delete_exact(self, catalog):
        rel = catalog.create_simple("r", [("a", "int")])
        rel.insert((7,))
        rel.insert((7,))
        assert rel.delete((7,)) == 2
        assert len(rel) == 0

    def test_delete_where(self, catalog):
        rel = catalog.create_simple("r", [("a", "int"), ("b", "atom")])
        rel.insert_many([(i, "keep" if i % 2 else "kill")
                         for i in range(20)])
        assert rel.delete_where({1: "kill"}) == 10
        assert all(r[1] == "keep" for r in rel.scan())


class TestTermColumns:
    def test_var_rows_match_any_query(self, catalog):
        rel = catalog.create_simple("c", [("a", "term"), ("id", "int")])
        rel.insert((("atom", "foo"), 1))
        rel.insert((("var",), 2))
        rel.insert((("int", 9), 3))
        assert sorted(r[1] for r in rel.query({0: ("atom", "foo")})) == [1, 2]
        assert sorted(r[1] for r in rel.query({0: ("int", 9)})) == [2, 3]

    def test_struct_key_by_functor(self, catalog):
        rel = catalog.create_simple("c", [("a", "term"), ("id", "int")])
        rel.insert((("struct", "f", 2), 1))
        rel.insert((("struct", "g", 2), 2))
        assert [r[1] for r in rel.query({0: ("struct", "f", 2)})] == [1]

    def test_type_query_bands(self, catalog):
        rel = catalog.create_simple("c", [("a", "term"), ("id", "int")])
        rows = [(("int", 1), 1), (("atom", "a"), 2), (("list",), 3),
                (("struct", "f", 1), 4), (("var",), 5)]
        rel.insert_many(rows)
        assert [r[1] for r in rel.type_query(0, "list")] == [3]
        assert [r[1] for r in rel.type_query(0, "struct")] == [4]

    def test_type_query_validation(self, catalog):
        rel = catalog.create_simple("c", [("a", "int")])
        with pytest.raises(TypeError_):
            list(rel.type_query(0, "atom"))
        rel2 = catalog.create_simple("c2", [("a", "term")])
        with pytest.raises(TypeError_):
            list(rel2.type_query(0, "weird_band"))


class TestSelectivity:
    def test_point_query_touches_few_pages(self, catalog):
        rel = catalog.create_simple("big", [("a", "int"), ("b", "int")])
        rel.insert_many([(i, i * 7 % 100) for i in range(500)])
        assert rel.pages_for({0: 250}) <= 2
        assert rel.pages_for({}) == rel.grid.leaf_count


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50),
                          st.sampled_from(["a", "b", "c"])),
                min_size=1, max_size=80))
def test_property_query_equals_filter(rows):
    catalog = Catalog(Pager(buffer_pages=16), bucket_capacity=6)
    rel = catalog.create_simple("p", [("n", "int"), ("s", "atom")])
    rel.insert_many(rows)
    for probe in (rows[0][0], 99):
        assert sorted(rel.query({0: probe})) == \
            sorted(r for r in rows if r[0] == probe)
    for s in ("a", "b", "c"):
        assert sorted(rel.query({1: s})) == \
            sorted(r for r in rows if r[1] == s)
    lo, hi = 10, 30
    assert sorted(rel.range_query(0, lo, hi)) == \
        sorted(r for r in rows if lo <= r[0] <= hi)
