"""WAM optimizer: peephole fusion + determinism-driven dispatch.

The correctness net behind docs/OPTIMIZER.md:

* unit tests for the two passes (``fuse_code``, ``chain_guard``);
* execution tests for every fused opcode (both unification modes) and
  for ``switch_on_arg`` dispatch (hit / miss / unbound);
* the corpus differential suite — every ``tests/corpus/*.pl`` program
  and the E1/E7/E8 workloads run under ``optimize="off"``,
  ``"peephole"`` and ``"full"`` with identical answers, order and
  errors, plus pinned expected answers for representative goals;
* golden-file regression listings (before/after disassembly) for a
  dozen representative procedures, regenerated with
  ``REPRO_REGEN_GOLDEN=1``;
* negative paths: the armed-fault reject (F901), verifier and D301
  gate rejections, and the proof that a rejected block falls back to
  exactly the unoptimized code — unverified optimized code never runs.
"""

import importlib.util
import os
import pathlib

import pytest

from repro import EduceStar, measure, term_to_text
from repro.errors import VerifyError
from repro.obs import render_prometheus
from repro.wam import instructions as I
from repro.wam.indexing import build_procedure_code, build_procedure_layout
from repro.wam.machine import Machine
from repro.wam.optimizer import (OPT_LEVELS, Optimizer,
                                 build_optimized_block, chain_guard,
                                 default_level, fuse_code)

TESTS_DIR = pathlib.Path(__file__).parent
CORPUS_DIR = TESTS_DIR / "corpus"
GOLDEN_DIR = CORPUS_DIR / "golden"

A = ("atom", 1)
B = ("atom", 2)
C = ("atom", 3)


# ------------------------------------------------------------------ helpers

def collect(engine, goal, limit=50):
    """``(rendered answers in order, exception class name or None)``."""
    rendered, err = [], None
    try:
        for sol in engine.solve(goal, limit=limit):
            rendered.append(tuple(sorted(
                (name, term_to_text(value))
                for name, value in sol.bindings.items())))
    except Exception as exc:          # differential: compare error types
        err = type(exc).__name__
    return rendered, err


def opcodes(code):
    return {instr[0] for instr in code}


def consulted_procedures(machine, text):
    """Consult *text*; return its procedures sorted by indicator."""
    before = set(machine.procedures)
    machine.consult(text)
    fresh = [proc for pid, proc in machine.procedures.items()
             if pid not in before and not proc.name.startswith("$")]
    return sorted(fresh, key=lambda p: (p.name, p.arity))


def open_goal(name, arity):
    if arity == 0:
        return name
    return f"{name}({', '.join(f'Z{i}' for i in range(arity))})"


# =====================================================================
# Pass 1 unit tests — fuse_code
# =====================================================================

class TestFuseCode:
    def test_get_constant_run_fuses(self):
        code = [(I.GET_CONSTANT, A, 0), (I.GET_CONSTANT, B, 1),
                (I.GET_CONSTANT, C, 2), (I.PROCEED,)]
        fused, n = fuse_code(code)
        assert n == 1
        assert fused == [(I.GET_CONSTANTS, ((A, 0), (B, 1), (C, 2))),
                         (I.PROCEED,)]

    def test_single_get_constant_not_fused(self):
        code = [(I.GET_CONSTANT, A, 0), (I.PROCEED,)]
        fused, n = fuse_code(code)
        assert n == 0 and fused == code

    def test_unify_constant_run_fuses(self):
        code = [(I.GET_STRUCTURE, 9, 0),
                (I.UNIFY_CONSTANT, A), (I.UNIFY_CONSTANT, B),
                (I.PROCEED,)]
        fused, n = fuse_code(code)
        assert n == 1
        assert fused[1] == (I.UNIFY_CONSTANTS, (A, B))

    def test_get_list_vv_triple_fuses(self):
        code = [(I.GET_LIST, 0),
                (I.UNIFY_VARIABLE, ("x", 3)), (I.UNIFY_VARIABLE, ("y", 0)),
                (I.PROCEED,)]
        fused, n = fuse_code(code)
        assert n == 1
        assert fused[0] == (I.GET_LIST_VV, 0, ("x", 3), ("y", 0))

    def test_get_list_with_constant_not_fused(self):
        code = [(I.GET_LIST, 0),
                (I.UNIFY_CONSTANT, A), (I.UNIFY_VARIABLE, ("x", 3)),
                (I.PROCEED,)]
        fused, n = fuse_code(code)
        assert n == 0 and fused == code

    def test_put_run_fuses_mixed(self):
        code = [(I.PUT_VALUE, ("y", 0), 0), (I.PUT_CONSTANT, A, 1),
                (I.PUT_VALUE, ("x", 4), 2), (I.CALL, 7, 1)]
        fused, n = fuse_code(code)
        assert n == 1
        assert fused[0] == (I.PUT_ARGS, (("v", ("y", 0), 0),
                                         ("c", A, 1),
                                         ("v", ("x", 4), 2)))
        assert fused[1] == (I.CALL, 7, 1)

    def test_interrupted_runs_keep_order(self):
        code = [(I.GET_CONSTANT, A, 0), (I.GET_VARIABLE, ("x", 1), 1),
                (I.GET_CONSTANT, B, 2), (I.PROCEED,)]
        fused, n = fuse_code(code)
        assert n == 0 and fused == code

    def test_multiple_runs_in_one_clause(self):
        code = [(I.GET_CONSTANT, A, 0), (I.GET_CONSTANT, B, 1),
                (I.PUT_CONSTANT, C, 0), (I.PUT_VALUE, ("x", 2), 1),
                (I.CALL, 7, 0)]
        fused, n = fuse_code(code)
        assert n == 2
        assert opcodes(fused) == {I.GET_CONSTANTS, I.PUT_ARGS, I.CALL}

    def test_empty_code(self):
        assert fuse_code([]) == ([], 0)


# =====================================================================
# Pass 2 unit tests — chain_guard
# =====================================================================

class FakeClause:
    def __init__(self, arity, arg_keys):
        self.arity = arity
        self.arg_keys = arg_keys


def _const(v):
    return ("constant", v)


class TestChainGuard:
    def test_distinct_constants_guard(self):
        clauses = [FakeClause(1, (_const(A),)), FakeClause(1, (_const(B),))]
        guard = chain_guard(clauses, [0, 1], min_arg=0)
        assert guard == (0, {A: 0, B: 1})

    def test_duplicate_constants_rejected(self):
        clauses = [FakeClause(1, (_const(A),)), FakeClause(1, (_const(A),))]
        assert chain_guard(clauses, [0, 1], min_arg=0) is None

    def test_later_position_used_when_first_dup(self):
        clauses = [FakeClause(2, (_const(A), _const(B))),
                   FakeClause(2, (_const(A), _const(C)))]
        guard = chain_guard(clauses, [0, 1], min_arg=0)
        assert guard == (1, {B: 0, C: 1})

    def test_min_arg_skips_first_position(self):
        clauses = [FakeClause(2, (_const(A), _const(B))),
                   FakeClause(2, (_const(C), _const(B)))]
        assert chain_guard(clauses, [0, 1], min_arg=1) is None
        assert chain_guard(clauses, [0, 1], min_arg=0) == (0, {A: 0, C: 1})

    def test_var_argument_blocks_position(self):
        clauses = [FakeClause(1, (("var", None),)),
                   FakeClause(1, (_const(B),))]
        assert chain_guard(clauses, [0, 1], min_arg=0) is None

    def test_structure_argument_blocks_position(self):
        clauses = [FakeClause(1, (("structure", ("fun", 4)),)),
                   FakeClause(1, (_const(B),))]
        assert chain_guard(clauses, [0, 1], min_arg=0) is None

    def test_nil_counts_as_constant(self):
        clauses = [FakeClause(1, (("nil", A),)), FakeClause(1, (_const(B),))]
        assert chain_guard(clauses, [0, 1], min_arg=0) == (0, {A: 0, B: 1})

    def test_missing_metadata_rejected(self):
        clauses = [FakeClause(1, None), FakeClause(1, (_const(B),))]
        assert chain_guard(clauses, [0, 1], min_arg=0) is None

    def test_single_clause_chain_rejected(self):
        assert chain_guard([FakeClause(1, (_const(A),))], [0],
                           min_arg=0) is None

    def test_table_maps_to_chain_positions(self):
        clauses = [FakeClause(1, (_const(A),)),
                   FakeClause(1, (_const(B),)),
                   FakeClause(1, (_const(C),))]
        # positions select a sub-chain; the table maps back to them
        guard = chain_guard(clauses, [2, 0], min_arg=0)
        assert guard == (0, {C: 2, A: 0})


# =====================================================================
# Fused-opcode execution semantics
# =====================================================================

def machines(program, **kw):
    """The same program consulted at every level."""
    out = {}
    for level in OPT_LEVELS:
        m = Machine(optimize=level, **kw)
        m.consult(program)
        out[level] = m
    return out

def assert_agree(ms, goal, limit=50):
    results = {level: collect(m, goal, limit=limit)
               for level, m in ms.items()}
    baseline = results["off"]
    for level, got in results.items():
        assert got == baseline, (
            f"{goal}: optimize={level} diverged:\n"
            f"  off : {baseline}\n  {level}: {got}")
    return baseline


class TestOptimizedExecution:
    def test_get_constants_read_and_fail_modes(self):
        ms = machines("f3(a, b, c). f3(d, e, f).")
        assert ms["full"].optimizer.fusions > 0
        assert_agree(ms, "f3(a, b, c)")
        assert_agree(ms, "f3(a, b, z)")          # fails mid-run
        assert_agree(ms, "f3(X, Y, Z)")
        assert_agree(ms, "f3(a, Y, c)")

    def test_unify_constants_read_and_write(self):
        ms = machines("pt(p(1, 2, 3)).")
        assert_agree(ms, "pt(p(1, 2, 3))")       # read mode
        assert_agree(ms, "pt(p(1, 9, 3))")       # read-mode mismatch
        answers = assert_agree(ms, "pt(X)")       # write mode
        assert answers == ([(("X", "p(1,2,3)"),)], None)

    def test_get_list_vv_read_and_write(self):
        ms = machines("ht([H|T], H, T).")
        assert_agree(ms, "ht([1, 2, 3], H, T)")   # read mode
        answers = assert_agree(ms, "ht(L, 1, [])")  # write mode builds cell
        assert answers == ([(("L", "[1]"),)], None)
        assert_agree(ms, "ht([], H, T)")           # nil: get_list fails

    def test_put_args_loads_call_arguments(self):
        ms = machines("callee(A, B, f(A, B)). "
                      "caller(X, R) :- callee(X, k, R).")
        answers = assert_agree(ms, "caller(1, R)")
        assert answers == ([(("R", "f(1,k)"),)], None)

    def test_switch_on_arg_hit_miss_unbound(self):
        ms = machines("age(alice, 30). age(bob, 31). age(carol, 32).")
        assert ms["full"].optimizer.chains_demoted > 0
        hit = assert_agree(ms, "age(P, 31)")
        assert hit == ([(("P", "bob"),)], None)
        assert assert_agree(ms, "age(P, 99)") == ([], None)     # table miss
        assert assert_agree(ms, "age(P, [x])") == ([], None)    # list → miss
        unbound = assert_agree(ms, "age(P, N)")                  # var path
        assert [dict(a)["P"] for a in unbound[0]] == \
            ["alice", "bob", "carol"]

    def test_switch_on_arg_inside_multiclause_key(self):
        # key 'paris' selects a 2-clause chain; arg 1 disambiguates it
        ms = machines("road(paris, lyon). road(paris, nice). "
                      "road(lyon, nice).")
        assert_agree(ms, "road(paris, nice)")
        assert_agree(ms, "road(paris, X)")
        assert_agree(ms, "road(X, nice)")

    def test_unindexed_chain_demotion(self):
        program = "".join(f"item(k{i}, {i}). " for i in range(50))
        ms = machines(program, index=False)
        stats = {}
        for level, m in ms.items():
            with measure(m) as meas:
                for i in (0, 13, 37, 49):
                    assert collect(m, f"item(k{i}, V)") == \
                        ([(("V", str(i)),)], None)
            stats[level] = meas
        assert stats["full"]["cp_created"] < stats["off"]["cp_created"]
        assert stats["full"]["instr_count"] < stats["off"]["instr_count"]

    def test_instruction_count_drops_on_list_code(self):
        ms = machines("nrev([], []). "
                      "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).")
        goal = "nrev([a,b,c,d,e,f,g,h], R)"
        stats = {}
        for level, m in ms.items():
            with measure(m) as meas:
                assert collect(m, goal)[0]
            stats[level] = meas
        assert stats["peephole"]["instr_count"] < stats["off"]["instr_count"]
        assert stats["full"]["instr_count"] <= \
            stats["peephole"]["instr_count"]
        # fusion preserves the paper's data-reference accounting
        assert stats["full"]["data_refs"] == stats["off"]["data_refs"]

    def test_set_optimize_rebuilds_at_runtime(self):
        m = Machine(optimize="off")
        m.consult("age(alice, 30). age(bob, 31). age(carol, 32).")
        code_off = list(m.procedure("age", 2).code)
        assert I.SWITCH_ON_ARG not in opcodes(code_off)
        m.set_optimize("full")
        assert I.SWITCH_ON_ARG in opcodes(m.procedure("age", 2).code)
        assert collect(m, "age(P, 31)") == ([(("P", "bob"),)], None)
        m.set_optimize("off")
        assert m.procedure("age", 2).code == code_off

    def test_dynamic_procedures_reoptimized_on_assert(self):
        m = Machine(optimize="full")
        m.solve_once("dynamic(age/2)")
        m.solve_once("assertz(age(alice, 30))")
        m.solve_once("assertz(age(bob, 31))")
        m.solve_once("assertz(age(carol, 32))")
        assert collect(m, "age(P, 32)") == ([(("P", "carol"),)], None)
        assert I.SWITCH_ON_ARG in opcodes(m.procedure("age", 2).code)


# =====================================================================
# Corpus differential suite (every tests/corpus/*.pl, three levels)
# =====================================================================

def _corpus_files():
    return sorted(CORPUS_DIR.glob("*.pl"))


# pinned answers for representative corpus goals (rendered bindings)
PINNED = {
    "indexing_shapes.pl": [
        ("dispatch(b, R)", [(("R", "const_b"),)]),
        ("dispatch(X, int_42)", [(("X", "42"),)]),
        ("only(two, N)", [(("N", "2"),)]),
        ("any(known, R)",
         [(("R", "var_clause(known)"),), (("R", "const"),)]),
    ],
    "cut_negation.pl": [
        ("classify(-5, R)", [(("R", "neg"),)]),
        ("classify(0, R)", [(("R", "zero"),)]),
        ("classify(7, R)", [(("R", "pos"),)]),
        ("guard(13, R)", [(("R", "rejected"),)]),
        ("guard(1, R)", [(("R", "ok"),)]),
    ],
    "disjunction.pl": [
        ("kind(sat, K)", [(("K", "rest"),)]),
        ("kind(mon, K)", [(("K", "work"),)]),
        ("nested(a, Y)", [(("Y", "1"),), (("Y", "2"),)]),
    ],
    "deep_structures.pl": [
        ("sumtree(node(leaf(1), leaf(2)), S)", [(("S", "3"),)]),
        ("build(3, T)", [(("T", "node(node(node(leaf(0),leaf(0)),"
                          "node(leaf(0),leaf(0))),node(node(leaf(0),"
                          "leaf(0)),node(leaf(0),leaf(0))))"),)]),
    ],
}


class TestCorpusDifferential:
    @pytest.mark.parametrize(
        "path", _corpus_files(), ids=lambda p: p.name)
    def test_corpus_agrees_across_levels(self, path):
        text = path.read_text(encoding="utf-8")
        results = {}
        for level in OPT_LEVELS:
            machine = Machine(optimize=level)
            procs = consulted_procedures(machine, text)
            assert procs, f"{path.name}: no procedures consulted"
            level_results = {}
            for proc in procs:
                goal = open_goal(proc.name, proc.arity)
                level_results[goal] = collect(machine, goal)
            for goal, expected in PINNED.get(path.name, ()):
                got, err = collect(machine, goal)
                assert err is None and got == expected, (
                    f"{path.name} @ optimize={level}: {goal} gave "
                    f"{(got, err)}, pinned {expected}")
            assert machine.optimizer.rejects == 0, \
                f"{path.name} @ {level}: gate rejected a block"
            results[level] = level_results
        for level in OPT_LEVELS[1:]:
            assert results[level] == results["off"], (
                f"{path.name}: optimize={level} diverged from off on "
                + ", ".join(g for g in results["off"]
                            if results[level][g] != results["off"][g]))


# =====================================================================
# Workload differential: E1 (MVV), E7 (choice points), E8 (EDB rules)
# =====================================================================

E7_NONDET_PROGRAM = """
color(r). color(g). color(b). color(y).
adj(1,2). adj(1,3). adj(2,3). adj(2,4). adj(3,4).
ok(A-CA, B-CB) :- (adj(A,B) ; adj(B,A)), !, CA \\== CB.
ok(_, _).
colouring([C1,C2,C3,C4]) :-
    color(C1), color(C2), color(C3), color(C4),
    ok(1-C1, 2-C2), ok(1-C1, 3-C3), ok(2-C2, 3-C3),
    ok(2-C2, 4-C4), ok(3-C3, 4-C4).
"""

E8_PROGRAM = """
tree_sum(leaf(V), V).
tree_sum(node(L, R), S) :-
    tree_sum(L, SL), tree_sum(R, SR), S is SL + SR.

build_tree(0, leaf(1)) :- !.
build_tree(N, node(L, R)) :-
    N1 is N - 1, build_tree(N1, L), build_tree(N1, R).
"""


class TestWorkloadDifferential:
    def test_e1_mvv_queries_agree(self):
        from repro.workloads import mvv
        data = mvv.generate(seed=11, scale=0.12)
        queries = mvv.class1_queries(data, 4) + mvv.class2_queries(data, 3)
        results, stats = {}, {}
        for level in ("off", "full"):
            session = mvv.load_educestar(
                data, session=EduceStar(optimize=level))
            with measure(session.machine) as meas:
                results[level] = [collect(session, q) for q in queries]
            stats[level] = meas
            assert session.machine.optimizer.rejects == 0
        assert results["full"] == results["off"]
        assert any(answers for answers, _ in results["off"])
        assert stats["full"]["instr_count"] < stats["off"]["instr_count"]

    def test_e7_colouring_agrees_unindexed(self):
        ms = machines(E7_NONDET_PROGRAM, index=False)
        answers = assert_agree(ms, "colouring(C)", limit=40)
        assert len(answers[0]) == 40 and answers[1] is None

    def test_e7_bound_lookups_drop_choicepoints(self):
        program = "".join(f"item(k{i}, {i}).\n" for i in range(50))
        stats = {}
        for level in ("off", "full"):
            m = Machine(index=False, optimize=level)
            m.consult(program)
            with measure(m) as meas:
                for i in range(50):
                    assert m.solve_once(f"item(k{i}, _)") is not None
            stats[level] = meas
        # the guard dispatches every bound lookup straight to its
        # clause: all 50 chain choice points disappear (one per query
        # remains for the top-level goal itself)
        assert stats["off"]["cp_created"] - stats["full"]["cp_created"] >= 45
        assert stats["full"]["instr_count"] < stats["off"]["instr_count"] / 2

    def test_e8_stored_rules_agree(self):
        results = {}
        for level in ("off", "full"):
            star = EduceStar(optimize=level)
            star.store_program(E8_PROGRAM)
            results[level] = collect(
                star, "build_tree(7, T), tree_sum(T, S)", limit=1)
            assert star.machine.optimizer.rejects == 0
        assert results["full"] == results["off"]
        answers, err = results["off"]
        assert err is None and dict(answers[0])["S"] == "128"


# =====================================================================
# Golden-file regression listings (before/after disassembly)
# =====================================================================

GOLDEN_PROGRAM = """
facts3(a, b, c).
facts3(d, e, f).

point(p(1, 2, 3)).
point(p(4, 5, 6)).

headtail([H|T], H, T).

callee(A, B, f(A, B)).
caller(X, R) :- callee(X, k, R).

agetab(alice, 30).
agetab(bob, 31).
agetab(carol, 32).

road(paris, lyon).
road(paris, nice).
road(lyon, nice).

member2(X, [X|_]).
member2(X, [_|T]) :- member2(X, T).

nrev2([], []).
nrev2([H|T], R) :- nrev2(T, RT), append(RT, [H], R).

classify2(N, neg) :- N < 0, !.
classify2(0, zero) :- !.
classify2(_, pos).

zip2([], [], []).
zip2([X|Xs], [Y|Ys], [X-Y|Zs]) :- zip2(Xs, Ys, Zs).

weekend2(sat).
weekend2(sun).
"""

GOLDEN_PROCEDURES = [
    ("facts3", 3), ("point", 1), ("headtail", 3), ("callee", 3),
    ("caller", 2), ("agetab", 2), ("road", 2), ("member2", 2),
    ("nrev2", 2), ("classify2", 2), ("zip2", 3), ("weekend2", 1),
]


def _golden_listing(name, arity):
    from repro.wam.debugger import disassemble
    sections = []
    for level in ("off", "full"):
        machine = Machine(optimize=level)
        machine.consult(GOLDEN_PROGRAM)
        sections.append(f"%% optimize={level}\n"
                        f"{disassemble(machine, name, arity)}\n")
    return "\n".join(sections)


class TestGoldenListings:
    @pytest.mark.parametrize(
        "name,arity", GOLDEN_PROCEDURES,
        ids=[f"{n}_{a}" for n, a in GOLDEN_PROCEDURES])
    def test_listing_matches_golden(self, name, arity):
        listing = _golden_listing(name, arity)
        path = GOLDEN_DIR / f"{name}_{arity}.txt"
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(listing, encoding="utf-8")
            return
        assert path.exists(), \
            f"{path} missing — regenerate with REPRO_REGEN_GOLDEN=1"
        assert listing == path.read_text(encoding="utf-8"), (
            f"{name}/{arity} listing changed; review the diff and "
            "regenerate with REPRO_REGEN_GOLDEN=1 if intended")

    def test_goldens_exercise_the_passes(self):
        full = "".join(
            (GOLDEN_DIR / f"{n}_{a}.txt").read_text(encoding="utf-8")
            .split("%% optimize=full", 1)[1]
            for n, a in GOLDEN_PROCEDURES
            if (GOLDEN_DIR / f"{n}_{a}.txt").exists())
        assert I.GET_CONSTANTS in full
        assert I.UNIFY_CONSTANTS in full
        assert I.GET_LIST_VV in full
        assert I.PUT_ARGS in full
        assert I.SWITCH_ON_ARG in full


# =====================================================================
# Negative paths — the gate never lets unverified code run
# =====================================================================

class TestNegativePaths:
    def test_armed_reject_falls_back(self):
        m = Machine(optimize="full")
        m.optimizer.arm_reject(1)
        m.consult("conf(a, 1). conf(b, 2).")
        assert m.optimizer.rejects == 1
        assert m.optimizer.last_reject[0] == "conf/2"
        assert m.optimizer.last_reject[1] == "F901"
        # the block that runs is the unoptimized one...
        assert I.SWITCH_ON_ARG not in opcodes(m.procedure("conf", 2).code)
        # ...and it still answers correctly
        assert collect(m, "conf(X, 2)") == ([(("X", "b"),)], None)
        # the armed fault is consumed: the next block optimizes again
        m.consult("conf2(a, 1). conf2(b, 2).")
        assert m.optimizer.rejects == 1
        assert I.SWITCH_ON_ARG in opcodes(m.procedure("conf2", 2).code)

    def test_reject_lands_on_flight_recorder(self):
        """A gate fallback is a `wam_opt.reject` event on the session
        store's ring, interleaved with the rest of the event stream and
        carrying the rule id and procedure that tripped it."""
        from repro import EduceStar
        kb = EduceStar()
        kb.store.events.enabled = True
        kb.machine.optimizer.arm_reject(1)
        kb.consult("conf(a, 1). conf(b, 2).")
        rejects = [e for e in kb.store.events.tail(50)
                   if e["kind"] == "wam_opt.reject"]
        assert len(rejects) == 1
        event = rejects[0]
        assert event["procedure"] == "conf/2"
        assert event["rule"] == "F901"
        assert isinstance(event["offset"], int)
        # Ring disabled (the default for bare sessions): no recording.
        kb.store.events.enabled = False
        kb.machine.optimizer.arm_reject(1)
        kb.consult("conf3(a, 1). conf3(b, 2).")
        assert kb.machine.optimizer.rejects == 2
        assert not [e for e in kb.store.events.tail(50)
                    if e["kind"] == "wam_opt.reject"
                    and e["procedure"] == "conf3/2"]

    def _compiled(self, program, name, arity):
        m = Machine(optimize="off")
        m.consult(program)
        return m, m.procedure(name, arity).compiled

    def test_gate_rejects_verifier_finding(self):
        m, compiled = self._compiled("pair(a, b). pair(c, d).",
                                     "pair", 2)
        opt = Optimizer("full")
        layout = build_procedure_layout(compiled, index=True,
                                        optimizer=opt)
        # corrupt a fused constant to a dead dictionary id (V103)
        for offset, instr in enumerate(layout.code):
            if instr[0] == I.GET_CONSTANTS:
                items = tuple(((("atom", 10 ** 6), ai) if i == 0
                               else (const, ai))
                              for i, (const, ai) in enumerate(instr[1]))
                layout.code[offset] = (I.GET_CONSTANTS, items)
                break
        else:
            pytest.fail("expected a get_constants instruction")
        with pytest.raises(VerifyError) as exc:
            opt.gate(compiled, layout, index=True,
                     dictionary=m.dictionary, procedure="pair/2")
        assert exc.value.rule.startswith("V")

    def test_gate_rejects_rebuild_mismatch(self):
        m, compiled = self._compiled("pair(a, b). pair(c, d).",
                                     "pair", 2)
        opt = Optimizer("full")
        layout = build_procedure_layout(compiled, index=True,
                                        optimizer=opt)
        # reverse the items inside one superinstruction: the code still
        # verifies (same shape, same registers, live constants), but no
        # longer equals the rebuild of its clause set (D301)
        for offset, instr in enumerate(layout.code):
            if instr[0] == I.GET_CONSTANTS:
                layout.code[offset] = (I.GET_CONSTANTS,
                                       tuple(reversed(instr[1])))
                break
        else:
            pytest.fail("expected a get_constants instruction")
        with pytest.raises(VerifyError) as exc:
            opt.gate(compiled, layout, index=True,
                     dictionary=m.dictionary, procedure="pair/2")
        assert exc.value.rule == "D301"

    def test_rejected_block_is_exactly_the_naive_code(self, monkeypatch):
        m, compiled = self._compiled(
            "age(alice, 30). age(bob, 31). age(carol, 32).", "age", 2)
        opt = Optimizer("full")

        def failing_gate(*args, **kwargs):
            raise VerifyError("X999", 0, "injected", "age/2")

        monkeypatch.setattr(Optimizer, "gate", failing_gate)
        code = build_optimized_block(compiled, index=True, optimizer=opt,
                                     dictionary=m.dictionary,
                                     procedure="age/2")
        assert code == build_procedure_code(compiled, index=True)
        assert opt.rejects == 1
        assert opt.last_reject == ("age/2", "X999", 0)

    def test_gate_passes_untampered_block(self):
        m, compiled = self._compiled("pair(a, b). pair(c, d).",
                                     "pair", 2)
        opt = Optimizer("full")
        layout = build_procedure_layout(compiled, index=True,
                                        optimizer=opt)
        opt.gate(compiled, layout, index=True,
                 dictionary=m.dictionary, procedure="pair/2")  # no raise


# =====================================================================
# Knob plumbing: session, loader cache, REPL, exposition, counters
# =====================================================================

class TestKnobPlumbing:
    def test_suite_default_is_full(self):
        # conftest flips the process default so the whole suite runs
        # optimized (docs/OPTIMIZER.md)
        assert default_level() == "full"
        assert Machine().optimizer.level == "full"

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            Machine(optimize="fast")
        with pytest.raises(ValueError):
            Optimizer("o2")
        with pytest.raises(ValueError):
            Machine(optimize="full").set_optimize("turbo")

    def test_session_knob_and_property(self):
        star = EduceStar(optimize="peephole")
        assert star.optimize == "peephole"
        star.set_optimize("full")
        assert star.optimize == "full"
        assert star.machine.optimizer is star.loader.optimizer

    def test_loader_serves_fresh_blocks_after_flip(self):
        star = EduceStar(optimize="full")
        star.store_program("edge(a, b). edge(b, c). edge(c, d).")
        expected = ([(("X", "b"),)], None)
        assert collect(star, "edge(a, X)") == expected
        star.set_optimize("off")
        assert collect(star, "edge(a, X)") == expected
        star.set_optimize("full")
        assert collect(star, "edge(a, X)") == expected

    def test_counters_flow_into_machine_and_session(self):
        star = EduceStar(optimize="full")
        star.machine.consult("f3(a, b, c). f3(d, e, f).")
        counters = star.counters()
        assert counters["wam_opt_blocks"] > 0
        assert counters["wam_opt_fusions"] > 0
        assert counters["wam_opt_rejects"] == 0

    def test_counters_in_prometheus_exposition(self):
        star = EduceStar(optimize="full")
        star.machine.consult("f3(a, b, c). f3(d, e, f).")
        text = render_prometheus(star.metrics.snapshot())
        for counter in ("wam_opt_blocks", "wam_opt_fusions",
                        "wam_opt_chains_demoted", "wam_opt_rejects"):
            assert f"educe_{counter}" in text

    def test_reset_counters_covers_optimizer(self):
        m = Machine(optimize="full")
        m.consult("f3(a, b, c).")
        assert m.counters()["wam_opt_blocks"] > 0
        m.reset_counters()
        assert m.counters()["wam_opt_blocks"] == 0


def _load_repl():
    path = TESTS_DIR.parent / "examples" / "repl.py"
    spec = importlib.util.spec_from_file_location("educe_repl", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReplCommand:
    def test_optimize_set_and_show(self, capsys):
        repl = _load_repl()
        star = EduceStar(optimize="full")
        repl.command(star, ":optimize peephole", interactive=False)
        assert star.optimize == "peephole"
        assert "optimize peephole" in capsys.readouterr().out
        repl.command(star, ":optimize", interactive=False)
        out = capsys.readouterr().out
        assert "optimize peephole" in out and "wam_opt_blocks" in out

    def test_optimize_rejects_unknown_level(self, capsys):
        repl = _load_repl()
        star = EduceStar(optimize="full")
        repl.command(star, ":optimize warp", interactive=False)
        assert "usage: :optimize" in capsys.readouterr().out
        assert star.optimize == "full"
