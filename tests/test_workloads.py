"""Tests for the three workload generators (paper §5)."""

import pytest

from repro.lang.writer import term_to_text
from repro.workloads import integrity as ic
from repro.workloads import mvv, wisconsin


# =====================================================================
# MVV (§5.1)
# =====================================================================

@pytest.fixture(scope="module")
def mvv_small():
    return mvv.generate(seed=11, scale=0.12)


@pytest.fixture(scope="module")
def mvv_session(mvv_small):
    return mvv.load_educestar(mvv_small)


class TestMVVGenerator:
    def test_paper_cardinalities_at_full_scale(self):
        data = mvv.generate(scale=1.0)
        assert len(data.location2) == mvv.N_STOPS == 2307
        assert len(data.schedule3) == mvv.N_SCHEDULE3 == 8776
        assert len(data.schedule2) == mvv.N_SCHEDULE2 == 7260

    def test_arities_match_paper(self):
        data = mvv.generate(scale=0.1)
        assert len(data.location2[0]) == 2
        assert len(data.schedule3[0]) == 11
        assert len(data.schedule2[0]) == 5

    def test_deterministic_by_seed(self):
        a = mvv.generate(seed=4, scale=0.1)
        b = mvv.generate(seed=4, scale=0.1)
        assert a.schedule3 == b.schedule3
        assert a.schedule2 == b.schedule2

    def test_different_seed_differs(self):
        a = mvv.generate(seed=4, scale=0.1)
        b = mvv.generate(seed=5, scale=0.1)
        assert a.schedule3 != b.schedule3

    def test_lines_form_network_with_hubs(self, mvv_small):
        assert mvv_small.hubs
        hub_lines = set()
        for line in mvv_small.lines:
            if mvv_small.hubs[0] in line.stops:
                hub_lines.add(line.name)
        assert len(hub_lines) >= 2  # a hub is on several lines

    def test_all_transport_types_present(self, mvv_small):
        assert {l.type for l in mvv_small.lines} == \
            {"ubahn", "sbahn", "tram", "bus"}


class TestMVVQueries:
    def test_class1_queries_have_answers(self, mvv_small, mvv_session):
        for q in mvv.class1_queries(mvv_small, 5):
            assert mvv_session.solve_once(q) is not None, q

    def test_class1_plan_shape(self, mvv_small, mvv_session):
        q = mvv.class1_queries(mvv_small, 1)[0]
        plan = mvv_session.solve_once(q)["Plan"]
        assert plan.indicator == ("journey", 4)

    def test_class2_queries_have_answers(self, mvv_small, mvv_session):
        for q in mvv.class2_queries(mvv_small, 3):
            assert mvv_session.solve_once(q) is not None, q

    def test_best_route_picks_min_arrival(self, mvv_small, mvv_session):
        q = mvv.class2_queries(mvv_small, 1)[0]
        inner = q[len("route("):-1]
        a, b, t0, _ = [s.strip() for s in inner.split(",", 3)]
        sol = mvv_session.solve_once(
            f"best_route({a}, {b}, {t0}, Plan, Arr)")
        assert sol is not None
        arrivals = [
            s2["A"] for s2 in mvv_session.solve(
                f"plan_of({a}, {b}, {t0}, _, A)")
        ]
        assert sol["Arr"] == min(arrivals)

    def test_baseline_agrees_with_educestar(self, mvv_small):
        session = mvv.load_educestar(mvv_small)
        baseline = mvv.load_baseline(mvv_small)
        for q in mvv.class1_queries(mvv_small, 2):
            star = sorted(term_to_text(s["Plan"])
                          for s in session.solve(q))
            base = sorted(term_to_text(b["Plan"])
                          for b in baseline.solve(q))
            assert star == base, q


# =====================================================================
# Wisconsin (§5.2)
# =====================================================================

@pytest.fixture(scope="module")
def wdb():
    return wisconsin.WisconsinDB.build(scale=0.1)


class TestWisconsinGenerator:
    def test_unique_attributes(self):
        rows = wisconsin.generate_rows(200, seed=2)
        assert sorted(r[wisconsin.UNIQUE1] for r in rows) == \
            list(range(200))
        assert [r[wisconsin.UNIQUE2] for r in rows] == list(range(200))

    def test_modulo_attributes(self):
        rows = wisconsin.generate_rows(50, seed=2)
        for r in rows:
            u1 = r[wisconsin.UNIQUE1]
            assert r[2] == u1 % 2
            assert r[wisconsin.ONEPERCENT] == u1 % 100

    def test_deterministic(self):
        assert wisconsin.generate_rows(100, 7) == \
            wisconsin.generate_rows(100, 7)

    def test_strings_well_formed(self):
        rows = wisconsin.generate_rows(30, seed=1)
        assert all(len(r[wisconsin.STRINGU1]) == 7 for r in rows)


class TestWisconsinQueries:
    def test_selectivities(self, wdb):
        n = wdb.sizes["tenk1"]
        results = {}
        for qc in wisconsin.query_classes():
            for variant in qc.variants:
                r = wisconsin.run_query(wdb, qc, variant)
                results.setdefault(qc.number, []).append(r.rows)
        assert results[1][0] == int(n * 0.01)
        assert results[2][0] == int(n * 0.10)
        assert results[3][0] == 1

    def test_variants_agree_on_cardinality(self, wdb):
        for qc in wisconsin.query_classes():
            rows = {wisconsin.run_query(wdb, qc, v).rows
                    for v in qc.variants}
            assert len(rows) == 1, f"Q{qc.number} variants disagree"

    def test_join_results_match_reference(self, wdb):
        qc = wisconsin.query_classes()[3]  # two-way join
        r = wisconsin.run_query(wdb, qc, qc.variants[0])
        n = wdb.sizes["tenk1"]
        assert r.rows == int(n * 0.10)

    def test_measurements_capture_tuple_ops(self, wdb):
        qc = wisconsin.query_classes()[0]
        r = wisconsin.run_query(wdb, qc, qc.variants[0])
        assert r.measurement.counters.get("tuple_ops", 0) > 0


# =====================================================================
# Integrity checking (§5.3)
# =====================================================================

class TestICGenerator:
    def test_shape_matches_paper(self):
        data = ic.generate(scale=1.0)
        assert len(data.employees) == 4000
        assert len(data.employees[0]) == 7
        assert len(data.projects) == 50
        assert len(data.small_relations) == 15
        assert all(len(rows) <= 20
                   for rows in data.small_relations.values())

    def test_deterministic(self):
        assert ic.generate(seed=9, scale=0.02).employees == \
            ic.generate(seed=9, scale=0.02).employees


class TestPreprocess:
    @pytest.fixture(scope="class")
    def gc_engine(self):
        return ic.load_good_compiler()

    def test_all_updates_specialise(self, gc_engine):
        for update in ic.UPDATES:
            spec = ic.run_preprocess(gc_engine, update)
            assert spec is not None

    def test_no_fact_access_needed(self):
        """Preprocess runs without the database loaded (§5.3)."""
        engine = ic.load_good_compiler()  # facts NOT loaded
        spec = ic.run_preprocess(engine, ic.UPDATES[2])
        assert spec is not None

    def test_residual_references_violated_constraint(self, gc_engine):
        spec = ic.run_preprocess(gc_engine, ic.UPDATES[2])
        text = term_to_text(spec)
        # update 3 inserts a salary over the grade limit: denial 2 must
        # appear with the ground salary propagated in
        assert "grade_limit(2," in text
        assert "99000" in text

    def test_work_grows_with_update_complexity(self, gc_engine):
        costs = []
        for update in ic.UPDATES:
            gc_engine.reset_counters()
            ic.run_preprocess(gc_engine, update)
            costs.append(gc_engine.instr_count)
        assert costs[0] < costs[2] < costs[4]

    def test_educestar_gets_same_residuals(self, gc_engine):
        es = ic.load_educestar()
        for update in ic.UPDATES[:3]:
            a = term_to_text(ic.run_preprocess(gc_engine, update))
            b = term_to_text(ic.run_preprocess(es, update))
            assert a == b


class TestFullAndPartial:
    @pytest.fixture(scope="class")
    def loaded(self):
        engine = ic.load_good_compiler()
        engine.consult(ic.CHECKER)
        ic.load_database(engine, ic.generate(scale=0.02))
        return engine

    def test_full_test_runs(self, loaded):
        violated = ic.run_full_test(loaded)
        assert isinstance(violated, list)

    def test_partial_consistent_with_update_semantics(self, loaded):
        # update 3 inserts an over-limit salary: partial test over the
        # specialised residual must flag constraint 2
        spec = ic.run_preprocess(loaded, ic.UPDATES[2])
        assert 2 in ic.run_partial_test(loaded, spec)

    def test_benign_update_passes_partial(self, loaded):
        spec = ic.run_preprocess(
            loaded,
            "[insert(employee(9100, ok_1, eng, 44000, 3, 1, 1980))]")
        violated = ic.run_partial_test(loaded, spec)
        assert 2 not in violated and 3 not in violated
