"""Shared fixtures and hypothesis strategies."""

import pytest
from hypothesis import strategies as st

from repro.analysis import enable_self_verify
from repro.terms import Atom, Struct

# Every compile and every assembly in the test suite runs under the
# static verifier (docs/ANALYSIS.md): a clause the compiler emits that
# fails verification is a bug in either the compiler or the verifier,
# and the whole suite is the property harness that finds it.
enable_self_verify()

# Every machine/session constructed without an explicit ``optimize=``
# runs at the highest optimization level, so the whole suite doubles as
# the optimizer's regression net (docs/OPTIMIZER.md).  Tests pinning
# exact unoptimized codegen pass ``optimize="off"`` explicitly.
from repro.wam.optimizer import set_default_level  # noqa: E402

set_default_level("full")


@pytest.fixture
def machine():
    from repro.wam.machine import Machine
    return Machine()


@pytest.fixture
def session():
    from repro.engine.session import EduceStar
    return EduceStar()


@pytest.fixture
def interpreter():
    from repro.engine.interpreter import Interpreter
    return Interpreter()


@pytest.fixture
def pager():
    from repro.bang.pager import Pager
    return Pager(buffer_pages=16)


# ---------------------------------------------------------------- strategies

_atom_names = st.sampled_from(
    ["a", "b", "c", "foo", "bar", "baz", "x1", "hello_world", "[]"])

atoms = _atom_names.map(Atom)
integers = st.integers(min_value=-1000, max_value=1000)
floats = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6)


def ground_terms(max_depth: int = 3):
    """Ground Prolog terms of bounded depth."""
    leaves = st.one_of(atoms, integers,
                       floats.map(lambda f: round(f, 3)))
    return st.recursive(
        leaves,
        lambda children: st.builds(
            lambda name, args: Struct(name, tuple(args)),
            st.sampled_from(["f", "g", "pair", "."]),
            st.lists(children, min_size=1, max_size=3),
        ).filter(lambda t: not (t.name == "." and t.arity != 2)),
        max_leaves=8,
    )


def term_lists(max_size: int = 6):
    from repro.terms import make_list
    return st.lists(ground_terms(), max_size=max_size).map(make_list)
