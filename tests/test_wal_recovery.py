"""Crash-safety tests: WAL framing, atomic checkpoints, recovery.

The deterministic :class:`~repro.bang.faults.FaultInjector` lets these
tests kill the "process" at every interesting instant of a log append
or checkpoint and then reopen the database exactly as a restarted
server would.  The invariant under test throughout: reopening restores
the last committed state, or replays the log to it — never silently
wrong data.
"""

import os
import zlib

import pytest

from repro.bang.faults import (FaultInjector, InjectedCrash,
                               InjectedIOError, NULL_FAULTS)
from repro.bang.pager import FileDiskStore
from repro.bang.wal import WriteAheadLog
from repro.dictionary import SegmentedDictionary
from repro.edb.store import (CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
                             _CKPT_HEADER, ExternalStore)
from repro.errors import CatalogError, PageError, WalError
from repro.lang.reader import read_term, read_terms
from repro.wam.compiler import CompileContext


@pytest.fixture
def ctx():
    return CompileContext(SegmentedDictionary(segment_capacity=1024))


def seeded_store(path, ctx):
    """A durable EDB at *path* with one facts and one rules procedure,
    checkpointed."""
    store = ExternalStore.open(path)
    store.store_facts("edge", 2, [(1, 2), (2, 3)], types=("int", "int"))
    store.store_rules(
        "path", 2,
        read_terms("path(X,Y) :- edge(X,Y). "
                   "path(X,Z) :- edge(X,Y), path(Y,Z)."), ctx)
    store.save(path)
    return store


def arm(store, faults):
    """Plug one injector into every I/O path of a live store."""
    store.faults = faults
    store.pager.disk.faults = faults
    if store.wal is not None:
        store.wal.faults = faults
    return faults


def edge_rows(store):
    return sorted(store.lookup("edge", 2).relation.scan())


# ---------------------------------------------------------------- injector


class TestFaultInjector:
    def test_fail_nth_write_is_io_error(self, tmp_path):
        f = open(tmp_path / "t", "wb", buffering=0)
        faults = FaultInjector().arm_fail_write(2)
        faults.write(f, b"one")
        with pytest.raises(InjectedIOError):
            faults.write(f, b"two")
        faults.write(f, b"three")           # plan is one-shot
        f.close()
        assert (tmp_path / "t").read_bytes() == b"onethree"
        assert faults.fired == ["fail_write#2"]

    def test_torn_write_keeps_prefix_then_crashes(self, tmp_path):
        f = open(tmp_path / "t", "wb", buffering=0)
        faults = FaultInjector().arm_torn_write(1, keep=0.5)
        with pytest.raises(InjectedCrash):
            faults.write(f, b"abcdefgh")
        f.close()
        assert (tmp_path / "t").read_bytes() == b"abcd"

    def test_bitflip_read_flips_exactly_one_bit(self, tmp_path):
        (tmp_path / "t").write_bytes(b"\x00\x00")
        f = open(tmp_path / "t", "rb")
        faults = FaultInjector().arm_bitflip_read(1, bit=9)
        assert faults.read(f, 2) == b"\x00\x02"
        f.close()

    def test_crash_point_skip_counts_hits(self):
        faults = FaultInjector().arm_crash_point("cp", skip=2)
        faults.crash_point("cp")
        faults.crash_point("cp")
        with pytest.raises(InjectedCrash):
            faults.crash_point("cp")
        faults.crash_point("cp")            # disarmed after firing

    def test_io_error_point_survivable_and_one_shot(self):
        faults = FaultInjector().arm_io_error_point("cp", skip=1)
        faults.crash_point("cp")
        with pytest.raises(InjectedIOError):
            faults.crash_point("cp")
        faults.crash_point("cp")            # disarmed after firing
        assert faults.fired == ["io_error@cp"]

    def test_null_faults_refuses_arming(self):
        with pytest.raises(ValueError):
            NULL_FAULTS.arm_crash_point("anything")
        with pytest.raises(ValueError):
            NULL_FAULTS.arm_io_error_point("anything")


# --------------------------------------------------------------------- WAL


class TestWriteAheadLog:
    def test_append_scan_roundtrip(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        payloads = [b"first", b"second", b"", b"fourth" * 100]
        assert [wal.append(p) for p in payloads] == [0, 1, 2, 3]
        wal.close()

        wal2 = WriteAheadLog(path)
        records, torn, good_end = wal2.scan()
        assert records == payloads
        assert not torn
        assert good_end == os.path.getsize(path)
        assert wal2.next_lsn == 4

    def test_torn_append_truncated_then_log_reusable(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, faults=FaultInjector())
        wal.append(b"committed")
        wal.faults.arm_crash_point("wal.append.mid")
        with pytest.raises(InjectedCrash):
            wal.append(b"torn away")
        wal.close()

        wal2 = WriteAheadLog(path)
        records, torn, good_end = wal2.scan()
        assert records == [b"committed"]
        assert torn
        wal2.truncate_to(good_end)
        assert wal2.append(b"after repair") == 1
        records, torn, _ = WriteAheadLog(path).scan()
        assert records == [b"committed", b"after repair"] and not torn

    def test_corrupt_frame_stops_scan(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(b"good record")
        wal.append(b"soon corrupt")
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.seek(size - 1)
            byte = f.read(1)
            f.seek(size - 1)
            f.write(bytes([byte[0] ^ 0x40]))
        records, torn, _ = WriteAheadLog(path).scan()
        assert records == [b"good record"]
        assert torn

    def test_trailing_garbage_reported_torn(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(b"fine")
        wal.close()
        with open(path, "ab") as f:
            f.write(b"\x01\x02\x03")        # shorter than a header
        records, torn, _ = WriteAheadLog(path).scan()
        assert records == [b"fine"] and torn

    def test_truncate_resets_lsn(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        wal.append(b"x")
        wal.append(b"y")
        wal.truncate()
        assert wal.next_lsn == 0
        assert os.path.getsize(wal.path) == 0

    def test_oversized_record_refused(self, tmp_path):
        from repro.bang import wal as wal_mod
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        with pytest.raises(WalError):
            wal.append(b"\x00" * (wal_mod.MAX_RECORD_BYTES + 1))

    def test_closed_log_raises_typed_error(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        wal.append(b"x")
        wal.close()
        wal.close()                         # idempotent
        for operation in (lambda: wal.append(b"y"),
                          wal.scan,
                          lambda: wal.truncate_to(0),
                          wal.truncate):
            with pytest.raises(WalError, match="closed"):
                operation()


# ----------------------------------------------------------- FileDiskStore


class TestFileDiskStore:
    def test_write_read_roundtrip(self, tmp_path):
        disk = FileDiskStore(str(tmp_path / "pages"))
        pid = disk.allocate()
        disk.write(pid, {"rows": list(range(20))})
        assert disk.read(pid) == {"rows": list(range(20))}

    def test_rewrite_supersedes_and_read_sees_latest(self, tmp_path):
        disk = FileDiskStore(str(tmp_path / "pages"))
        pid = disk.allocate()
        disk.write(pid, "v1")
        disk.write(pid, "v2")
        assert disk.read(pid) == "v2"

    def test_bitflip_detected_and_quarantined(self, tmp_path):
        faults = FaultInjector()
        disk = FileDiskStore(str(tmp_path / "pages"), faults=faults)
        pid = disk.allocate()
        disk.write(pid, list(range(50)))
        faults.arm_bitflip_read(1, bit=200)
        with pytest.raises(PageError):
            disk.read(pid)
        assert pid in disk.quarantined
        # fail-fast on the next read, no I/O needed
        with pytest.raises(PageError):
            disk.read(pid)
        # a rewrite heals the page
        disk.write(pid, "healed")
        assert disk.read(pid) == "healed"

    def test_on_disk_corruption_detected_by_crc(self, tmp_path):
        disk = FileDiskStore(str(tmp_path / "pages"))
        pid = disk.allocate()
        disk.write(pid, list(range(50)))
        offset, frame_len = disk._index[pid]
        with open(disk.path, "r+b") as f:
            f.seek(offset + frame_len - 1)
            byte = f.read(1)
            f.seek(offset + frame_len - 1)
            f.write(bytes([byte[0] ^ 0x10]))
        with pytest.raises(PageError, match="CRC mismatch"):
            disk.read(pid)

    def test_verify_all_finds_corruption_without_counting_reads(
            self, tmp_path):
        disk = FileDiskStore(str(tmp_path / "pages"))
        pids = [disk.allocate() for _ in range(3)]
        for pid in pids:
            disk.write(pid, f"page {pid}")
        offset, _ = disk._index[pids[1]]
        with open(disk.path, "r+b") as f:
            f.seek(offset)
            f.write(b"XX")                  # clobber the frame magic
        reads_before = disk.reads
        assert disk.verify_all() == [pids[1]]
        assert disk.reads == reads_before
        assert disk.read(pids[2]) == f"page {pids[2]}"

    def test_compaction_drops_dead_records(self, tmp_path):
        disk = FileDiskStore(str(tmp_path / "pages"))
        pid = disk.allocate()
        for i in range(10):
            disk.write(pid, f"version {i}")
        old_size = os.path.getsize(disk.path)
        disk.compact_to(str(tmp_path / "pages.2"), new_epoch=2)
        assert os.path.getsize(disk.path) < old_size
        assert disk.epoch == 2
        assert disk.read(pid) == "version 9"

    def test_detached_store_raises_typed_error(self, tmp_path):
        import pickle
        disk = FileDiskStore(str(tmp_path / "pages"))
        pid = disk.allocate()
        disk.write(pid, "data")
        clone = pickle.loads(pickle.dumps(disk))
        with pytest.raises(PageError, match="detached"):
            clone.read(pid)
        clone.reattach(disk.path)
        assert clone.read(pid) == "data"


# ----------------------------------------------------- checkpoint validation


class TestCheckpointValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CatalogError, match="no such EDB"):
            ExternalStore.load(str(tmp_path / "absent.edb"))

    def test_junk_magic_named_in_error(self, tmp_path):
        path = tmp_path / "junk.edb"
        path.write_bytes(b"#!/usr/bin/env python\nprint('not an edb')\n")
        with pytest.raises(CatalogError, match="bad magic"):
            ExternalStore.load(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.edb"
        path.write_bytes(CHECKPOINT_MAGIC + b"\x00")
        with pytest.raises(CatalogError, match="truncated"):
            ExternalStore.load(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "future.edb"
        payload = b"whatever"
        header = _CKPT_HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION + 7,
                                   0, len(payload), zlib.crc32(payload))
        path.write_bytes(header + payload)
        with pytest.raises(CatalogError, match="version"):
            ExternalStore.load(str(path))

    def test_truncated_payload(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        seeded_store(path, ctx)
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[:len(data) - 40])
        with pytest.raises(CatalogError, match="truncated"):
            ExternalStore.load(path)

    def test_payload_crc_mismatch(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        seeded_store(path, ctx)
        with open(path, "r+b") as f:
            f.seek(_CKPT_HEADER.size + 11)
            byte = f.read(1)
            f.seek(_CKPT_HEADER.size + 11)
            f.write(bytes([byte[0] ^ 0x20]))
        with pytest.raises(CatalogError, match="checksum mismatch"):
            ExternalStore.load(path)

    def test_error_names_the_path(self, tmp_path):
        path = tmp_path / "named.edb"
        path.write_bytes(b"garbage here")
        with pytest.raises(CatalogError, match="named.edb"):
            ExternalStore.load(str(path))


# ----------------------------------------------------------- crash recovery


@pytest.mark.fault_injection
class TestCrashRecovery:
    """The crash matrix: die at every durability instant, reopen, and
    check the database is the last committed state (or the log replayed
    onto it) — never silently wrong."""

    def test_fresh_create_reports_created(self, tmp_path):
        store = ExternalStore.open(str(tmp_path / "new.edb"))
        assert store.recovery.created and store.recovery.clean
        assert isinstance(store.pager.disk, FileDiskStore)
        assert os.path.exists(str(tmp_path / "new.edb"))

    def test_open_missing_without_create_raises(self, tmp_path):
        with pytest.raises(CatalogError):
            ExternalStore.open(str(tmp_path / "nope.edb"), create=False)

    def test_committed_op_survives_crash(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)
        del store                            # crash: no checkpoint

        reopened = ExternalStore.open(path, create=False)
        assert (9, 9) in [r[:2] for r in edge_rows(reopened)]
        assert reopened.recovery.ops_replayed == {"assert_fact": 1}

    @pytest.mark.parametrize("crash_point,rows_after,expect_torn", [
        # dies before the record is logged: the op never happened
        ("wal.append.before", 2, False),
        # dies mid-frame: torn tail truncated, op never happened
        ("wal.append.mid", 2, True),
        # dies after fsync: the op is committed and replays
        ("wal.append.synced", 3, False),
    ])
    def test_crash_during_wal_append(self, tmp_path, ctx, crash_point,
                                     rows_after, expect_torn):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        arm(store, FaultInjector().arm_crash_point(crash_point))
        with pytest.raises(InjectedCrash):
            store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)

        reopened = ExternalStore.open(path, create=False)
        assert len(edge_rows(reopened)) == rows_after
        assert reopened.recovery.wal_torn_tail is expect_torn
        assert not reopened.recovery.errors

    @pytest.mark.parametrize("crash_point", [
        "pages.append.before",        # during pages-file compaction
        "checkpoint.write.mid",       # mid checkpoint temp-file write
        "checkpoint.pre_rename",      # temp file complete, not yet live
        "checkpoint.post_rename",     # new checkpoint live, WAL not reset
    ])
    def test_crash_during_checkpoint(self, tmp_path, ctx, crash_point):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)
        arm(store, FaultInjector().arm_crash_point(crash_point))
        with pytest.raises(InjectedCrash):
            store.save(path)

        reopened = ExternalStore.open(path, create=False)
        # Whichever instant the crash hit, the committed state — three
        # edge rows — is restored: either the old checkpoint plus a WAL
        # replay, or the new checkpoint with its stale records fenced.
        assert len(edge_rows(reopened)) == 3
        report = reopened.recovery
        if crash_point == "checkpoint.post_rename":
            # the new checkpoint already contains the row: replaying the
            # old record would double-apply, so era fencing skips it
            assert report.wal_records_stale == 1
            assert report.wal_records_replayed == 0
        else:
            assert report.wal_records_replayed == 1
        assert not report.errors

    def test_failed_checkpoint_write_keeps_old_checkpoint(self, tmp_path,
                                                          ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)
        # the checkpoint temp-file write itself fails (disc full) —
        # after the page flush and compaction writes already succeeded
        arm(store, FaultInjector().arm_io_error_point("checkpoint.write.mid"))
        with pytest.raises(InjectedIOError):
            store.save(path)
        assert store.faults.fired == ["io_error@checkpoint.write.mid"]

        # the era bump was not committed, so the surviving session keeps
        # logging under the era of the checkpoint actually on disc and
        # acknowledged writes stay replayable
        assert store.wal_era == 2
        store.assert_clause("edge", 2, read_term("edge(8,8)"), ctx)

        reopened = ExternalStore.open(path, create=False)
        assert len(edge_rows(reopened)) == 4
        assert reopened.recovery.wal_records_replayed == 2
        assert not reopened.recovery.errors

    def test_future_era_wal_record_is_an_error_not_stale(self, tmp_path,
                                                         ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        # simulate checkpoint/log divergence: a record tagged with an
        # era ahead of the on-disc checkpoint must be reported loudly,
        # never silently dropped as "stale"
        store.wal_era += 1
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)

        reopened = ExternalStore.open(path, create=False)
        report = reopened.recovery
        assert any("ahead of checkpoint era" in e for e in report.errors)
        assert report.wal_records_stale == 0
        assert report.wal_records_replayed == 0

    def test_failed_wal_append_poisons_store_until_checkpoint(
            self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.wal.faults = FaultInjector().arm_fail_write(1)
        with pytest.raises(InjectedIOError):
            store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)

        # the mutation is in memory but has no durable redo record:
        # further updates are refused so nothing is ever logged on top
        # of unlogged state
        with pytest.raises(WalError, match="read-only"):
            store.assert_clause("edge", 2, read_term("edge(8,8)"), ctx)
        with pytest.raises(WalError, match="read-only"):
            store.retract_clause("path", 2, 0)
        with pytest.raises(WalError, match="read-only"):
            store.store_facts("other", 1, [(1,)], types=("int",))

        # a fresh checkpoint captures the full in-memory state (the
        # unlogged row included) and lifts the embargo
        store.save(path)
        store.assert_clause("edge", 2, read_term("edge(7,7)"), ctx)

        reopened = ExternalStore.open(path, create=False)
        rows = [r[:2] for r in edge_rows(reopened)]
        assert (9, 9) in rows and (7, 7) in rows
        assert len(rows) == 4
        assert not reopened.recovery.errors

    def test_materialise_and_drop_replay_from_wal(self, tmp_path, ctx):
        # The relational operators' mutations (db_select materialising
        # an output relation, db_drop) are WAL-logged like any other
        # mutator; recovery must replay replace-and-drop faithfully.
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.materialise_facts("out", 2, [(1, "a")])
        store.materialise_facts("out", 2, [(2, "b"), (1, "a")])
        store.store_facts("tmp", 1, [(9,)], types=("int",))
        assert store.drop_procedure("tmp", 1) is True
        assert store.drop_procedure("tmp", 1) is False  # already gone

        reopened = ExternalStore.open(path, create=False)
        assert not reopened.recovery.errors
        assert sorted(reopened.fetch_facts("out", 2)) == [(1, "a"),
                                                          (2, "b")]
        assert reopened.lookup("tmp", 1) is None
        # the version floor replays with the drop: a re-created tmp/1
        # starts above every version the dropped one served under
        recreated = reopened.store_facts("tmp", 1, [(1,)], types=("int",))
        assert recreated.version >= 1

    def test_recovery_is_idempotent(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)
        del store
        for _ in range(3):                  # crash during every restart
            reopened = ExternalStore.open(path, create=False)
            assert len(edge_rows(reopened)) == 3
            assert reopened.recovery.wal_records_replayed == 1

    def test_save_resets_wal_and_clears_replay(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)
        reopened = ExternalStore.open(path, create=False)
        reopened.save(path)

        again = ExternalStore.open(path, create=False)
        assert again.recovery.wal_records_seen == 0
        assert len(edge_rows(again)) == 3

    def test_bitflipped_page_quarantined_at_recovery(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        disk = store.pager.disk
        victim = next(p for p in sorted(disk._index)
                      if disk._index[p] is not None)
        offset, frame_len = disk._index[victim]
        with open(disk.path, "r+b") as f:
            f.seek(offset + frame_len - 2)
            byte = f.read(1)
            f.seek(offset + frame_len - 2)
            f.write(bytes([byte[0] ^ 0x04]))

        reopened = ExternalStore.open(path, create=False)
        report = reopened.recovery
        assert report.pages_quarantined == [victim]
        assert not report.clean
        with pytest.raises(PageError):
            reopened.pager.disk.read(victim)

    def test_checkpoint_leaves_single_pages_epoch(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.save(path)
        store.save(path)
        sidecars = [n for n in os.listdir(tmp_path)
                    if ".pages." in n]
        assert len(sidecars) == 1
        assert sidecars[0].endswith(f"{store.pager.disk.epoch:08d}")


# ----------------------------------------------------------------- reporting


class TestRecoveryReport:
    def test_clean_report_formats(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        seeded_store(path, ctx)
        report = ExternalStore.open(path, create=False).recovery
        text = report.format()
        assert "clean" in text and path in text
        assert report.as_dict()["clean"] is True

    def test_findings_surface_in_format(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)
        wal_path = path + ".wal"
        with open(wal_path, "ab") as f:
            f.write(b"torn tail bytes")
        report = ExternalStore.open(path, create=False).recovery
        assert report.wal_torn_tail
        text = report.format()
        assert "torn tail truncated" in text
        assert "assert_fact=1" in text


# ------------------------------------------- crashes under concurrency


@pytest.mark.fault_injection
class TestCrashWithConcurrentReaders:
    """The crash matrix, with company: the fault fires while reader
    threads hold **pinned** buffer pages (the §2.2 block-at-a-time
    contract mid-iteration).  Pins are volatile state — they must
    neither leak into the checkpoint image nor affect what recovery
    rebuilds: reopen always yields the last committed state."""

    @staticmethod
    def _pinned_readers(store, hold, pinned):
        """Threads that pin every allocated page and hold the pins."""
        pids = list(range(store.pager.disk.page_count))

        def reader(pid):
            with store.pager.pinned(pid):
                pinned.wait(10)     # all pins taken before the crash
                hold.wait(10)       # released only after the crash

        threads = [__import__("threading").Thread(target=reader,
                                                  args=(pid,))
                   for pid in pids]
        for t in threads:
            t.start()
        return threads

    @pytest.mark.parametrize("crash_point,rows_after", [
        ("wal.append.before", 2),   # op never logged: not committed
        ("wal.append.mid", 2),      # torn frame: truncated, not committed
        ("wal.append.synced", 3),   # synced: committed, must replay
    ])
    def test_crash_during_append_with_pinned_pages(self, tmp_path, ctx,
                                                   crash_point,
                                                   rows_after):
        import threading
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        # eviction pressure: the pool is far smaller than the page set,
        # so the pinned frames are exactly what eviction would pick
        store.pager.buffer.capacity = 2

        hold, pinned = threading.Event(), threading.Event()
        threads = self._pinned_readers(store, hold, pinned)
        try:
            assert store.pager.io_counters()["buffer_pinned"] >= 1
            pinned.set()
            arm(store, FaultInjector().arm_crash_point(crash_point))
            with pytest.raises(InjectedCrash):
                store.assert_clause("edge", 2, read_term("edge(9,9)"),
                                    ctx)
        finally:
            pinned.set()
            hold.set()
            for t in threads:
                t.join(10)

        counters = store.pager.io_counters()
        assert counters["buffer_pins"] == counters["buffer_unpins"]
        assert counters["buffer_pinned"] == 0

        reopened = ExternalStore.open(path, create=False)
        assert len(edge_rows(reopened)) == rows_after
        assert not reopened.recovery.errors
        fresh = reopened.pager.io_counters()
        assert fresh["buffer_pinned"] == 0      # pins never persist

    @pytest.mark.parametrize("crash_point", [
        "checkpoint.write.mid",
        "checkpoint.pre_rename",
        "checkpoint.post_rename",
    ])
    def test_crash_during_checkpoint_with_pinned_pages(self, tmp_path,
                                                       ctx, crash_point):
        import threading
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(9,9)"), ctx)
        store.pager.buffer.capacity = 2

        hold, pinned = threading.Event(), threading.Event()
        threads = self._pinned_readers(store, hold, pinned)
        try:
            pinned.set()
            arm(store, FaultInjector().arm_crash_point(crash_point))
            with pytest.raises(InjectedCrash):
                store.save(path)
        finally:
            pinned.set()
            hold.set()
            for t in threads:
                t.join(10)

        reopened = ExternalStore.open(path, create=False)
        assert len(edge_rows(reopened)) == 3
        assert not reopened.recovery.errors
        assert reopened.pager.io_counters()["buffer_pinned"] == 0


# ----------------------------------------------- incremental scan / tailing


class TestIncrementalScan:
    """`scan_from` (the shared recovery/replication cursor) and the
    live-tailer races it must survive (docs/REPLICATION.md)."""

    def test_recovery_report_carries_good_end(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        store = seeded_store(path, ctx)
        store.assert_clause("edge", 2, read_term("edge(5,5)"), ctx)
        expected_end = os.path.getsize(path + ".wal")
        reopened = ExternalStore.open(path, create=False)
        assert reopened.recovery.wal_good_end == expected_end
        assert "wal_good_end" in reopened.recovery.as_dict()

    def test_tailer_sees_only_committed_prefix_mid_append(self, tmp_path):
        """The torn-tail race from the replica's side: a short read of
        an in-flight frame is "wait and retry", and the retry ships the
        frame once the append lands — the owner's log is never cut."""
        from repro.replication import WalTailer
        faults = FaultInjector()
        wal = WriteAheadLog(str(tmp_path / "t.wal"), faults=faults)
        wal.append(b"committed")
        tailer = WalTailer(wal.path)
        status, records = tailer.poll()
        assert status == "ok" and records == [(0, b"committed")]
        faults.arm_torn_write(faults.writes_seen + 1, keep=0.5)
        with pytest.raises(InjectedCrash):
            wal.append(b"torn-in-flight")   # half the frame hits disc
        status, records = tailer.poll()
        assert status == "wait" and records == []
        size = os.path.getsize(wal.path)
        tailer.poll()                        # retries must not truncate
        assert os.path.getsize(wal.path) == size
        # the owner's own recovery truncates its crashed tail; the
        # tailer then resumes cleanly from its committed offset
        payloads, torn, good_end = wal.scan()
        assert torn and payloads == [b"committed"]
        wal.truncate_to(good_end)
        wal.next_lsn = 1
        wal.append(b"after-recovery")
        status, records = tailer.poll()
        assert status == "ok" and records == [(1, b"after-recovery")]

    def test_scan_from_resumes_after_committed_frames(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(b"first")
        mid = os.path.getsize(wal.path)
        wal.append(b"second")
        cursor = wal.scan_from(mid, expected_lsn=1)
        assert list(cursor) == [b"second"]
        assert cursor.status == "ok"


class TestRulebaseReplay:
    """Replayed ``rules`` records carry surface clauses: bottom-up
    evaluation survives a crash (docs/DATALOG.md, *Failure modes*)."""

    RULES = ("% lint: external link/2\n"
             "reach(X, Y) :- link(X, Y).\n"
             "reach(X, Z) :- link(X, Y), reach(Y, Z).")

    def test_replayed_rules_restore_bottom_up(self, tmp_path):
        from repro import EduceStar
        path = str(tmp_path / "db.edb")
        session = EduceStar(store=ExternalStore.open(path))
        session.store_relation("link", [(1, 2), (2, 3), (3, 4)])
        session.store_program(self.RULES)
        del session                          # crash: no checkpoint

        reopened = EduceStar.open(path, datalog="force")
        assert reopened.store.recovery.ops_replayed.get("rules") == 1
        assert ("reach", 2) in reopened.store.datalog_rules
        assert len(list(reopened.solve("reach(1, X)"))) == 3
        counters = reopened.datalog.counters()
        assert counters["datalog_bottomup"] == 1
        assert counters["datalog_rulebase_missing"] == 0

    def test_checkpointed_rules_still_cold(self, tmp_path):
        """The checkpoint truncates the log: programs stored before it
        keep the documented top-down fallback."""
        from repro import EduceStar
        path = str(tmp_path / "db.edb")
        session = EduceStar(store=ExternalStore.open(path))
        session.store_relation("link", [(1, 2), (2, 3)])
        session.store_program(self.RULES)
        session.save(path)

        reopened = EduceStar.open(path, datalog="force")
        assert ("reach", 2) not in reopened.store.datalog_rules
        assert len(list(reopened.solve("reach(1, X)"))) == 2
        assert reopened.datalog.counters()[
            "datalog_rulebase_missing"] >= 1

    def test_replayed_retract_untracks(self, tmp_path):
        from repro import EduceStar
        path = str(tmp_path / "db.edb")
        session = EduceStar(store=ExternalStore.open(path))
        session.store_relation("link", [(1, 2)])
        session.store_program(self.RULES)
        session.store.retract_clause("reach", 2, 0)
        del session                          # crash: no checkpoint

        reopened = EduceStar.open(path, datalog="force")
        assert ("reach", 2) not in reopened.store.datalog_rules
