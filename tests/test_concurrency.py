"""Concurrency: the multi-user kernel against a serial oracle.

The centrepiece is the **differential** suite: N worker threads query
through a :class:`~repro.service.QueryService` while a writer thread
interleaves EDB mutations.  Every query records the store's
``mutation_epoch`` it observed under the read lock; a serial replay of
the same op sequence — prefix by prefix, on a single-threaded session —
provides the oracle.  A query that saw epoch E must return exactly the
oracle's answer after the first E mutations: any torn read, lost
update or stale cache block shows up as a mismatch.

After every run the accounting must balance: every buffer pin
released, every loader cache epoch monotone, the store's epoch equal
to the number of mutations applied.

``pytest -m stress`` additionally runs the bounded soak
(:class:`TestStressSoak`): queries + writes hammering a buffer pool
sized to ~10% of the working set for ``STRESS_SECONDS`` (default 30),
asserting liveness — no deadlock, no pin leak, evictions advancing.
"""

import os
import random
import threading
import time

import pytest

from repro import EduceStar, QueryService
from repro.bang.pager import DiskStore, Pager
from repro.edb.store import ExternalStore
from repro.errors import (ExistenceError, LockOrderError, PageError,
                          QueryInterrupted, ServiceClosed, ServiceSaturated)
from repro.locks import Latch, ReadWriteLock

# Differential seeds: 5 by default (CI-fast); CONCURRENCY_SEEDS=50 for
# the full local sweep the acceptance criteria ask for.
SEEDS = list(range(int(os.environ.get("CONCURRENCY_SEEDS", "5"))))


# =====================================================================
# The differential suite
# =====================================================================

SETUP_PROGRAM = (
    "val(0). "
    "alt(0). "
    "both(X, Y) :- val(X), alt(Y)."
)
GOALS = ["val(X)", "alt(X)", "both(X, Y)"]


def _ops_for(rng: random.Random, count: int):
    """The writer's deterministic op script: clause asserted + target."""
    return [("val" if rng.random() < 0.5 else "alt", k)
            for k in range(1, count + 1)]


def _normalise(solutions):
    """Order-insensitive, machine-independent view of a result set."""
    return sorted(
        tuple(sorted((name, str(term))
                     for name, term in sol.bindings.items()))
        for sol in solutions)


def _serial_oracle(ops):
    """Expected answers per (epoch-offset, goal), by serial replay."""
    kb = EduceStar()
    kb.store_program(SETUP_PROGRAM)
    base = kb.store.mutation_epoch
    expected = {}

    def record(offset):
        for goal in GOALS:
            expected[(offset, goal)] = _normalise(kb.solve(goal))

    record(0)
    for offset, (proc, k) in enumerate(ops, start=1):
        kb.assert_external(f"{proc}({k}).")
        assert kb.store.mutation_epoch == base + offset
        record(offset)
    return base, expected


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_against_serial_oracle(seed):
    rng = random.Random(seed)
    n_ops = rng.randint(10, 25)
    ops = _ops_for(rng, n_ops)
    base, expected = _serial_oracle(ops)

    store = ExternalStore(pager=Pager(buffer_pages=4))
    workers = rng.randint(2, 4)
    svc = QueryService(store=store, workers=workers, queue_size=128)
    try:
        svc.store_program(SETUP_PROGRAM)
        assert store.mutation_epoch == base

        epochs_before = [s.loader.cache_epoch for s in svc.sessions]

        def writer():
            for proc, k in ops:
                svc.assert_external(f"{proc}({k}).")
                if rng.random() < 0.5:
                    time.sleep(rng.random() * 0.002)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()

        tickets = []
        for _ in range(rng.randint(30, 60)):
            goal = rng.choice(GOALS)
            tickets.append((goal, svc.submit(goal)))
            if rng.random() < 0.3:
                time.sleep(rng.random() * 0.002)
        writer_thread.join(30)
        assert not writer_thread.is_alive(), "writer deadlocked"

        for goal, ticket in tickets:
            result = ticket.result(timeout=30)
            offset = ticket.store_epoch - base
            assert 0 <= offset <= len(ops), (
                f"epoch {ticket.store_epoch} outside the mutation order")
            assert _normalise(result) == expected[(offset, goal)], (
                f"seed={seed} goal={goal!r} at epoch offset {offset}: "
                "concurrent result diverged from the serial oracle")
    finally:
        svc.shutdown(timeout=30)

    # -------- post-run accounting: the books must balance -----------
    snapshot = svc.metrics.snapshot()
    assert snapshot["buffer_pins"] == snapshot["buffer_unpins"], (
        "pin leak: every pin must be released after a quiescent run")
    assert snapshot["buffer_pinned"] == 0
    assert store.mutation_epoch == base + len(ops)
    # setup (store_program broadcasts per procedure) + one broadcast
    # per writer op reached every worker's loader, monotonically.
    for session, before in zip(svc.sessions, epochs_before):
        assert session.loader.cache_epoch >= before + len(ops)


# =====================================================================
# Service API semantics
# =====================================================================

def _blocker(release: threading.Event, started: threading.Event):
    def goal(_session):
        started.set()
        assert release.wait(30), "test forgot to release the blocker"
        return "done"
    return goal


class TestServiceAPI:
    def test_string_goal_solutions(self):
        with QueryService(workers=2, queue_size=8) as svc:
            svc.store_relation("edge", [(1, 2), (2, 3)])
            sols = svc.execute("edge(X, Y)")
            assert _normalise(sols) == _normalise(
                EduceStarWith("edge", [(1, 2), (2, 3)]).solve("edge(X, Y)"))

    def test_callable_goal(self):
        with QueryService(workers=1, queue_size=8) as svc:
            svc.store_relation("edge", [(1, 2), (2, 3)])
            assert svc.execute(
                lambda s: s.count_solutions("edge(X, Y)")) == 2

    def test_deadline_interrupts_runaway_query(self):
        with QueryService(workers=1, queue_size=8) as svc:
            svc.store_program("loop :- loop.")
            ticket = svc.submit("loop", timeout=0.2)
            with pytest.raises(QueryInterrupted) as err:
                ticket.result(timeout=30)
            assert err.value.reason == "deadline"
            assert svc.counters()["service_timeouts"] == 1

    def test_cancel_running_query(self):
        with QueryService(workers=1, queue_size=8) as svc:
            svc.store_program("loop :- loop.")
            ticket = svc.submit("loop")
            time.sleep(0.05)
            assert ticket.cancel()
            with pytest.raises(QueryInterrupted) as err:
                ticket.result(timeout=30)
            assert err.value.reason == "cancelled"

    def test_cancel_queued_ticket_never_runs(self):
        release, started = threading.Event(), threading.Event()
        with QueryService(workers=1, queue_size=8) as svc:
            svc.submit(_blocker(release, started))
            assert started.wait(10)
            queued = svc.submit("true")
            assert queued.cancel()
            release.set()
            with pytest.raises(QueryInterrupted):
                queued.result(timeout=30)
            assert queued.worker is None  # dropped at dequeue, not run

    def test_saturation_rejects(self):
        release, started = threading.Event(), threading.Event()
        svc = QueryService(workers=1, queue_size=2)
        try:
            svc.submit(_blocker(release, started))
            assert started.wait(10)
            svc.submit("true")
            svc.submit("true")
            with pytest.raises(ServiceSaturated):
                svc.submit("true")
            assert svc.counters()["service_rejected"] == 1
        finally:
            release.set()
            svc.shutdown(timeout=30)

    def test_submit_many_is_all_or_nothing(self):
        release, started = threading.Event(), threading.Event()
        svc = QueryService(workers=1, queue_size=3)
        try:
            svc.submit(_blocker(release, started))
            assert started.wait(10)
            svc.submit("true")
            depth = svc.counters()["service_queue_depth"]
            with pytest.raises(ServiceSaturated):
                svc.submit_many(["true", "true", "true"])
            assert svc.counters()["service_queue_depth"] == depth
            tickets = svc.submit_many(["true", "true"])
            release.set()
            for ticket in tickets:
                ticket.result(timeout=30)
        finally:
            release.set()
            svc.shutdown(timeout=30)

    def test_closed_service_rejects(self):
        svc = QueryService(workers=1, queue_size=8)
        svc.shutdown(timeout=30)
        with pytest.raises(ServiceClosed):
            svc.submit("true")

    def test_shutdown_drains_queued_work(self):
        svc = QueryService(workers=1, queue_size=16)
        svc.store_relation("edge", [(1, 2)])
        tickets = svc.submit_many(["edge(X, Y)"] * 8)
        svc.shutdown(drain=True, timeout=30)
        assert all(t.state == "done" for t in tickets)
        assert svc.counters()["service_workers"] == 0

    def test_shutdown_without_drain_cancels_queued(self):
        release, started = threading.Event(), threading.Event()
        svc = QueryService(workers=1, queue_size=16)
        blocked = svc.submit(_blocker(release, started))
        assert started.wait(10)
        queued = svc.submit_many(["true"] * 4)
        release.set()
        svc.shutdown(drain=False, timeout=30)
        assert blocked.result(timeout=1) == "done"  # in-flight completed
        assert all(t.state == "cancelled" for t in queued)

    def test_query_cannot_upgrade_to_writer(self):
        # The read→write upgrade (a query mutating the store) must fail
        # fast with LockOrderError, not deadlock — see CONCURRENCY.md.
        with QueryService(workers=1, queue_size=8) as svc:
            ticket = svc.submit(
                lambda s: s.store_relation("sneaky", [(1,)]))
            with pytest.raises(LockOrderError):
                ticket.result(timeout=30)

    def test_cancel_already_finished_returns_false(self):
        with QueryService(workers=1, queue_size=8) as svc:
            svc.store_relation("edge", [(1, 2)])
            ticket = svc.submit("edge(X, Y)")
            ticket.wait(30)
            assert ticket.cancel() is False
            assert len(ticket.result(timeout=1)) == 1

    def test_cancel_racing_finish_reports_actual_outcome(self):
        # A worker completing the ticket between cancel()'s finished
        # check and its flag set must not make cancel() promise a
        # cancellation that can no longer happen.
        from repro.service.query_service import QueryTicket
        ticket = QueryTicket(1, "goal", None, None)
        real_set = ticket._cancel.set

        def finish_then_set():
            ticket._finish("done", value=["v"])
            real_set()

        ticket._cancel.set = finish_then_set
        assert ticket.cancel() is False
        assert ticket.result(timeout=1) == ["v"]

    def test_db_drop_from_worker_refused_before_mutating(self):
        # db_drop is a mutator: from a worker (shared read lock held)
        # it must fail fast with LockOrderError, leaving the relation,
        # its catalog entry and the mutation epoch untouched.
        with QueryService(workers=1, queue_size=8) as svc:
            svc.store_relation("r", [(1, 2), (3, 4)])
            epoch = svc.store.mutation_epoch
            ticket = svc.submit("db_drop(r/2)")
            with pytest.raises(LockOrderError):
                ticket.result(timeout=30)
            assert svc.store.mutation_epoch == epoch
            assert svc.store.lookup("r", 2) is not None
            assert len(svc.execute("r(X, Y)")) == 2

    def test_materialise_from_worker_refused_without_partial_state(self):
        # db_select over an *existing* output relation used to drop it
        # under the read lock and then die in store_facts, leaving a
        # half-applied mutation.  Now the whole replace is one write-
        # locked section, so the worker is refused before any change.
        with QueryService(workers=1, queue_size=8) as svc:
            svc.store_relation("emp", [(1, "eng"), (2, "hr")])
            svc.execute_admin("db_select(emp/2, [], out)")
            epoch = svc.store.mutation_epoch
            ticket = svc.submit("db_select(emp/2, emp(1, _), out)")
            with pytest.raises(LockOrderError):
                ticket.result(timeout=30)
            assert svc.store.mutation_epoch == epoch
            assert len(svc.execute("out(X, Y)")) == 2  # old rows intact

    def test_execute_admin_runs_relational_mutators(self):
        with QueryService(workers=2, queue_size=8) as svc:
            svc.store_relation("emp", [(1, "eng"), (2, "hr"), (3, "eng")])
            svc.execute_admin("db_select(emp/2, emp(_, eng), engs)")
            assert len(svc.execute("engs(X, Y)")) == 2
            svc.execute_admin("db_drop(engs/2)")
            ticket = svc.submit("engs(X, Y)")
            with pytest.raises(ExistenceError):
                ticket.result(timeout=30)

    def test_drop_recreate_never_serves_stale_cached_code(self):
        # Versions are monotone per indicator across drop+recreate (the
        # store keeps a version floor), so a worker whose loader cached
        # the old code under (name, arity, version, ...) can never hit
        # that key again after the relation is dropped and rebuilt —
        # even though nobody invalidated its cache.
        store = ExternalStore()
        admin = EduceStar(store=store)
        worker = EduceStar(store=store)
        admin.store_relation("r", [(1,), (2,)])
        assert len(list(worker.solve("r(X)"))) == 2  # worker caches r/1
        assert admin.solve_once("db_drop(r/1)") is not None
        admin.store_relation("r", [(7,), (8,), (9,)])
        got = sorted(str(s["X"]) for s in worker.solve("r(X)"))
        assert got == ["7", "8", "9"]

    def test_per_procedure_invalidation_broadcast(self):
        with QueryService(workers=2, queue_size=8) as svc:
            svc.store_relation("edge", [(1, 2)])
            for _ in range(4):
                svc.execute("edge(X, Y)")
            before = [s.loader.counters() for s in svc.sessions]
            svc.store_relation("other", [(9,)])
            for session, b in zip(svc.sessions, before):
                after = session.loader.counters()
                # unrelated procedure: cached blocks survive, hit
                # counter never reset
                assert after["cache_hits"] >= b["cache_hits"]
                assert (after["loader_cache_entries"]
                        >= b["loader_cache_entries"])
                assert after["cache_epoch"] == b["cache_epoch"] + 1


def EduceStarWith(name, rows):
    kb = EduceStar()
    kb.store_relation(name, rows)
    return kb


# =====================================================================
# Buffer pins under contention
# =====================================================================

class TestBufferPins:
    def test_pinned_frame_survives_eviction_pressure(self):
        pager = Pager(buffer_pages=2)
        pids = [pager.allocate(initial=f"page-{i}") for i in range(4)]
        payload = pager.pin(pids[0])
        for pid in pids[1:]:
            pager.get(pid)  # evicts LRU — but never the pinned frame
        counters = pager.io_counters()
        assert counters["buffer_evictions"] > 0
        assert payload == "page-0"
        assert pager.buffer._frames[pids[0]] == "page-0"
        pager.unpin(pids[0])
        assert pager.io_counters()["buffer_pinned"] == 0

    def test_unmatched_unpin_raises(self):
        pager = Pager(buffer_pages=2)
        pid = pager.allocate(initial="p")
        with pytest.raises(PageError):
            pager.unpin(pid)

    def test_all_pinned_pool_grows_instead_of_deadlocking(self):
        pager = Pager(buffer_pages=2)
        pids = [pager.allocate(initial=i) for i in range(3)]
        for pid in pids:
            assert pager.pin(pid) == pids.index(pid)
        counters = pager.io_counters()
        assert counters["buffer_pin_overflows"] >= 1
        assert counters["buffer_resident"] == 3
        for pid in pids:
            pager.unpin(pid)

    def test_concurrent_misses_deduplicate_the_disc_read(self):
        disk = DiskStore()
        pager = Pager(disk=disk, buffer_pages=4)
        pid = pager.allocate(initial="shared")
        pager.buffer.flush()
        pager.buffer.discard(pid)       # force the next get to miss
        disk.read_latency_s = 0.05
        reads_before = disk.io_counters()["reads"]
        results, errors = [], []

        def fetch():
            try:
                results.append(pager.get(pid))
            except BaseException as e:  # noqa: BLE001
                errors.append(e)

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        assert results == ["shared"] * 4
        assert disk.io_counters()["reads"] == reads_before + 1

    def test_pinned_context_manager_balances(self):
        pager = Pager(buffer_pages=2)
        pid = pager.allocate(initial="x")
        with pager.pinned(pid) as payload:
            assert payload == "x"
            assert pager.io_counters()["buffer_pinned"] == 1
        assert pager.io_counters()["buffer_pinned"] == 0
        assert (pager.io_counters()["buffer_pins"]
                == pager.io_counters()["buffer_unpins"])


# =====================================================================
# Buffer write-backs happen outside the latch
# =====================================================================

class _SlowWriteDisk(DiskStore):
    """A disc whose writes block on a gate — models an fsync stall."""

    def __init__(self):
        super().__init__()
        self.write_entered = threading.Event()
        self.write_gate = threading.Event()

    def write(self, page_id, payload):
        self.write_entered.set()
        assert self.write_gate.wait(10)
        super().write(page_id, payload)


class _FlakyDisk(DiskStore):
    """First write fails; everything after succeeds."""

    def __init__(self):
        super().__init__()
        self.fail_next = True

    def write(self, page_id, payload):
        if self.fail_next:
            self.fail_next = False
            raise PageError("injected write failure")
        super().write(page_id, payload)


class TestBufferWritebacks:
    def test_flush_does_not_hold_latch_across_disc_writes(self):
        disk = _SlowWriteDisk()
        pager = Pager(disk=disk, buffer_pages=8)
        pager.allocate(initial="dirty")
        clean_pid = pager.allocate(initial="clean")

        flusher = threading.Thread(target=pager.flush, daemon=True)
        flusher.start()
        assert disk.write_entered.wait(10)
        # Flush is stalled inside a disc write; a frame hit must still
        # get through the latch.
        got = []
        done = threading.Event()

        def reader():
            got.append(pager.get(clean_pid))
            done.set()

        threading.Thread(target=reader, daemon=True).start()
        assert done.wait(5), "get() stalled behind flush's disc write"
        assert got == ["clean"]
        disk.write_gate.set()
        flusher.join(10)

    def test_eviction_writeback_outside_latch_and_fetch_waits(self):
        disk = _SlowWriteDisk()
        pager = Pager(disk=disk, buffer_pages=1)
        pool = pager.buffer
        pid_a = disk.allocate()
        pool.install(pid_a, "A")            # dirty, resident
        pid_b = disk.allocate()

        evictor = threading.Thread(target=pool.install,
                                   args=(pid_b, "B"), daemon=True)
        evictor.start()                     # evicts A → slow write-back
        assert disk.write_entered.wait(10)

        # While A's write-back is in flight, a fetch of A must wait for
        # it (not read the stale disc image) ...
        got_a = []
        a_done = threading.Event()

        def fetch_a():
            got_a.append(pool.get(pid_a))
            a_done.set()

        threading.Thread(target=fetch_a, daemon=True).start()
        # ... while a fetch of the resident page B sails through.
        time.sleep(0.05)
        assert pool.get(pid_b) == "B"
        assert not a_done.is_set()
        disk.write_gate.set()
        assert a_done.wait(10)
        assert got_a == ["A"]
        evictor.join(10)
        # A's eviction write-back, plus B's when fetch_a re-admitted A
        # into the single frame.
        assert pool.counters()["buffer_writebacks"] == 2

    def test_flush_failure_keeps_unwritten_pages_dirty(self):
        disk = _FlakyDisk()
        pager = Pager(disk=disk, buffer_pages=8)
        p1 = pager.allocate(initial="one")
        p2 = pager.allocate(initial="two")
        with pytest.raises(PageError):
            pager.flush()
        pager.flush()                       # retries both pages
        pager.buffer.discard(p1)
        pager.buffer.discard(p2)
        assert pager.get(p1) == "one"       # re-read from disc
        assert pager.get(p2) == "two"

    def test_failed_eviction_writeback_readmits_frame_dirty(self):
        disk = _FlakyDisk()
        pager = Pager(disk=disk, buffer_pages=1)
        pool = pager.buffer
        pid_a = disk.allocate()
        pool.install(pid_a, "A")
        pid_b = disk.allocate()
        with pytest.raises(PageError):
            pool.install(pid_b, "B")        # eviction write-back fails
        # A's payload was the only copy: still resident and dirty.
        assert pool.get(pid_a) == "A"
        pool.flush()
        pool.discard(pid_a)
        assert pool.get(pid_a) == "A"       # survived via the retry


# =====================================================================
# Locks
# =====================================================================

class TestReadWriteLock:
    def test_reentrant_read(self):
        rw = ReadWriteLock("t")
        rw.acquire_read()
        rw.acquire_read()   # re-entry: no queueing, not a fresh acquisition
        rw.release_read()
        rw.release_read()
        assert rw.counters()["latch_read_acquisitions"] == 1
        # fully released: a writer can get in
        rw.acquire_write()
        rw.release_write()

    def test_reentrant_write_and_writer_as_reader(self):
        rw = ReadWriteLock("t")
        rw.acquire_write()
        rw.acquire_write()
        rw.acquire_read()     # mutators call reader helpers internally
        rw.release_read()
        rw.release_write()
        rw.release_write()

    def test_read_to_write_upgrade_refused(self):
        rw = ReadWriteLock("t")
        rw.acquire_read()
        try:
            with pytest.raises(LockOrderError):
                rw.acquire_write()
        finally:
            rw.release_read()

    def test_writer_excludes_readers(self):
        rw = ReadWriteLock("t")
        order = []
        rw.acquire_write()

        def reader():
            rw.acquire_read()
            order.append("read")
            rw.release_read()

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        order.append("write-release")
        rw.release_write()
        t.join(10)
        assert order == ["write-release", "read"]

    def test_writer_preference_over_new_readers(self):
        rw = ReadWriteLock("t")
        order = []
        rw.acquire_read()         # main thread holds a read lock
        writer_waiting = threading.Event()

        def writer():
            writer_waiting.set()
            rw.acquire_write()
            order.append("write")
            rw.release_write()

        def late_reader():
            rw.acquire_read()
            order.append("late-read")
            rw.release_read()

        wt = threading.Thread(target=writer)
        wt.start()
        assert writer_waiting.wait(10)
        time.sleep(0.05)          # writer is now queued on the lock
        rt = threading.Thread(target=late_reader)
        rt.start()
        time.sleep(0.05)
        rw.release_read()
        wt.join(10)
        rt.join(10)
        assert order[0] == "write", (
            "a reader arriving behind a queued writer must not overtake")

    def test_non_lifo_release_downgrades_write_to_read(self):
        # write → read → release_write is a write→read downgrade: the
        # residual read must hold off a queued writer until released.
        rw = ReadWriteLock("t")
        rw.acquire_write()
        rw.acquire_read()
        rw.release_write()
        order = []
        done = threading.Event()

        def writer():
            rw.acquire_write()
            order.append("write")
            rw.release_write()
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert order == [], "writer overtook the downgraded read hold"
        order.append("read-release")
        rw.release_read()
        assert done.wait(10)
        assert order == ["read-release", "write"]

    def test_non_lifo_release_keeps_reader_accounting_balanced(self):
        # The writer-nested read was never counted in _active_readers;
        # releasing it after the write must not drive the count to -1
        # (which would wedge every future acquire_write forever).
        rw = ReadWriteLock("t")
        for _ in range(3):
            rw.acquire_write()
            rw.acquire_read()
            rw.release_write()
            rw.release_read()
        done = threading.Event()

        def writer():
            rw.acquire_write()
            rw.release_write()
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert done.wait(10), "reader accounting went negative"

    def test_latch_counts_contention(self):
        latch = Latch("t")
        held = threading.Event()
        release = threading.Event()

        def holder():
            with latch:
                held.set()
                release.wait(10)

        t = threading.Thread(target=holder)
        t.start()
        assert held.wait(10)
        acquired = []

        def contender():
            with latch:
                acquired.append(True)

        c = threading.Thread(target=contender)
        c.start()
        time.sleep(0.02)
        release.set()
        t.join(10)
        c.join(10)
        counters = latch.counters()
        assert acquired == [True]
        assert counters["latch_contentions"] >= 1


# =====================================================================
# Stress soak (pytest -m stress; excluded from the default run)
# =====================================================================

@pytest.mark.stress
class TestStressSoak:
    def test_soak_small_buffer_no_deadlock_no_pin_leak(self):
        seconds = float(os.environ.get("STRESS_SECONDS", "30"))
        rng = random.Random(0xEDCE)

        # Working set: a relation spread over many pages; pool at ~10%.
        rows = [(i, i % 7, f"name_{i}") for i in range(400)]
        probe = EduceStar()
        probe.store_relation("item", rows)
        working_set = probe.store.pager.io_counters()["pages"]
        pool = max(2, working_set // 10)

        store = ExternalStore(pager=Pager(buffer_pages=pool))
        svc = QueryService(store=store, workers=4, queue_size=64)
        stop = threading.Event()
        writer_ops = [0]

        def writer():
            k = 1000
            while not stop.is_set():
                svc.assert_external(f"extra({k}).")
                writer_ops[0] += 1
                k += 1
                time.sleep(0.01)

        try:
            svc.store_relation("item", rows)
            svc.store_program("extra(0). "
                              "pick(K, N) :- item(K, _, N). "
                              "width(G, K) :- item(K, G, _).")
            evictions_start = svc.metrics.snapshot()["buffer_evictions"]
            wt = threading.Thread(target=writer)
            wt.start()

            deadline = time.monotonic() + seconds
            completed = 0
            while time.monotonic() < deadline:
                goals = []
                for _ in range(rng.randint(4, 12)):
                    which = rng.random()
                    if which < 0.45:
                        goals.append(f"pick({rng.randrange(400)}, N)")
                    elif which < 0.9:
                        goals.append(f"width({rng.randrange(7)}, K)")
                    else:
                        goals.append("extra(X)")
                try:
                    tickets = svc.submit_many(goals, timeout=25.0)
                except ServiceSaturated:
                    time.sleep(0.005)
                    continue
                for ticket in tickets:
                    # A ticket that cannot finish within its generous
                    # deadline means a stuck worker — i.e. a deadlock.
                    ticket.result(timeout=30)
                    completed += 1
            stop.set()
            wt.join(30)
            assert not wt.is_alive(), "writer thread deadlocked"
        finally:
            stop.set()
            svc.shutdown(timeout=60)

        snapshot = svc.metrics.snapshot()
        assert completed > 0 and writer_ops[0] > 0
        assert snapshot["service_queue_depth"] == 0
        assert snapshot["service_inflight"] == 0
        assert snapshot["buffer_pins"] == snapshot["buffer_unpins"], (
            "pin leak under sustained eviction pressure")
        assert snapshot["buffer_pinned"] == 0
        assert snapshot["buffer_evictions"] > evictions_start, (
            "a pool at 10% of the working set must be evicting")
        assert snapshot["buffer_pin_overflows"] == 0 or pool < 4
        # Telemetry under soak: the flight recorder stays within its
        # hard bound no matter how many events the run produced, every
        # terminal ticket was observed by the latency histogram, and
        # the maintained peak gauge saw the backlog.
        ring = store.events
        assert len(ring) <= ring.capacity, (
            "event ring exceeded its bound under stress")
        ring_counters = ring.counters()
        assert ring_counters["events_recorded"] >= 2 * completed
        assert snapshot["service_ticket_ms.count"] == \
            snapshot["service_submitted"], (
            "every admitted ticket must be observed exactly once")
        assert snapshot["service_queue_depth_peak"] >= 1
