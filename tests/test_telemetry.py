"""Service-wide telemetry: end-to-end ticket tracing, lifecycle events,
latency histograms, and the maintained queue gauges.

The differential tests reconstruct each ticket's full lifecycle —
admission, queue wait, execution, terminal state — from
``QueryService.telemetry()`` **alone**, for every terminal state the
service can produce, and cross-check the three telemetry planes
(events, traces, histograms) against each other.
"""

import threading
import time

import pytest

from repro.errors import QueryInterrupted
from repro.obs import EventRing
from repro.service import QueryService

_TERMINAL_KIND = {
    "done": "ticket.done",
    "timeout": "ticket.deadline",
    "cancelled": "ticket.cancelled",
    "failed": "ticket.failed",
}


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_size", 16)
    kwargs.setdefault("tracing", True)
    svc = QueryService(**kwargs)
    svc.store_relation("edge", [(1, 2), (2, 3), (3, 4)])
    svc.store_program("spin :- spin.")
    return svc


def lifecycle(telemetry, trace_id):
    """Reconstruct one ticket's lifecycle from a telemetry aggregate
    alone: its admission event, terminal event, summary row and span
    tree, located purely by trace id."""
    events = [e for e in telemetry["events"]
              if e.get("trace_id") == trace_id]
    admits = [e for e in events if e["kind"] == "ticket.admit"]
    terminals = [e for e in events
                 if e["kind"] in _TERMINAL_KIND.values()]
    summaries = [t for t in telemetry["tickets"]
                 if t["trace_id"] == trace_id]
    traces = [t for t in telemetry["traces"]
              if t.attrs.get("trace_id") == trace_id]
    assert len(admits) == 1, f"expected one admission for {trace_id}"
    assert len(terminals) == 1, f"expected one terminal for {trace_id}"
    assert len(summaries) == 1
    assert len(traces) == 1
    return {"admit": admits[0], "terminal": terminals[0],
            "summary": summaries[0], "trace": traces[0]}


def check_lifecycle(telemetry, ticket, expected_state, executed):
    """The differential: every plane of telemetry must tell the same
    story about this ticket."""
    life = lifecycle(telemetry, ticket.trace_id)
    # ordering: admission strictly precedes the terminal event
    assert life["admit"]["seq"] < life["terminal"]["seq"]
    # terminal state agrees across event kind, event attr, summary
    assert life["terminal"]["kind"] == _TERMINAL_KIND[expected_state]
    assert life["terminal"]["state"] == expected_state
    assert life["summary"]["state"] == expected_state
    assert ticket.state == expected_state
    # the span tree: ticket root, queue_wait always, execute iff run
    root = life["trace"]
    assert root.name == "ticket"
    assert root.attrs["state"] == expected_state
    waits = root.find("queue_wait")
    executes = root.find("execute")
    assert len(waits) == 1
    assert len(executes) == (1 if executed else 0)
    # timings agree between summary, events and spans
    assert life["summary"]["total_ms"] == pytest.approx(
        root.wall_s * 1000.0)
    assert life["terminal"]["total_ms"] == pytest.approx(
        life["summary"]["total_ms"], abs=0.01)
    assert life["summary"]["queue_wait_ms"] == pytest.approx(
        waits[0].wall_s * 1000.0)
    return life


class TestTicketLifecycles:
    def test_done_lifecycle(self):
        svc = make_service()
        try:
            ticket = svc.submit("edge(X, Y)")
            assert len(ticket.result(timeout=30)) == 3
            life = check_lifecycle(svc.telemetry(), ticket,
                                   "done", executed=True)
            assert life["summary"]["store_epoch"] is not None
        finally:
            svc.shutdown()

    def test_failed_lifecycle(self):
        svc = make_service()
        try:
            def boom(session):
                raise RuntimeError("kaboom")
            ticket = svc.submit(boom)
            with pytest.raises(RuntimeError):
                ticket.result(timeout=30)
            check_lifecycle(svc.telemetry(), ticket,
                            "failed", executed=True)
        finally:
            svc.shutdown()

    def test_deadline_lifecycle(self):
        svc = make_service()
        try:
            ticket = svc.submit("spin", timeout=0.05)
            with pytest.raises(QueryInterrupted):
                ticket.result(timeout=30)
            check_lifecycle(svc.telemetry(), ticket,
                            "timeout", executed=True)
        finally:
            svc.shutdown()

    def test_cancelled_lifecycle(self):
        svc = make_service()
        try:
            started = threading.Event()

            def running_spin(session):
                started.set()
                return list(session.solve("spin"))
            ticket = svc.submit(running_spin)
            assert started.wait(timeout=30)
            ticket.cancel()
            with pytest.raises(QueryInterrupted):
                ticket.result(timeout=30)
            check_lifecycle(svc.telemetry(), ticket,
                            "cancelled", executed=True)
        finally:
            svc.shutdown()

    def test_cancelled_while_queued_still_emits_terminal(self):
        """A ticket that never reaches a worker still gets a terminal
        event and a trace — with no execute span."""
        svc = make_service(workers=1)
        try:
            started = threading.Event()

            def blocker(session):
                started.set()
                return list(session.solve("spin"))
            runner = svc.submit(blocker)
            assert started.wait(timeout=30)
            queued = svc.submit("edge(X, Y)")
            assert queued.cancel()
            runner.cancel()
            with pytest.raises(QueryInterrupted):
                queued.result(timeout=30)
            check_lifecycle(svc.telemetry(), queued,
                            "cancelled", executed=False)
        finally:
            svc.shutdown()

    def test_deadline_while_queued_still_emits_terminal(self):
        svc = make_service(workers=1)
        try:
            started = threading.Event()

            def blocker(session):
                started.set()
                return list(session.solve("spin"))
            runner = svc.submit(blocker)
            assert started.wait(timeout=30)
            doomed = svc.submit("edge(X, Y)", timeout=0.01)
            time.sleep(0.05)           # expire while queued
            runner.cancel()
            with pytest.raises(QueryInterrupted):
                doomed.result(timeout=30)
            check_lifecycle(svc.telemetry(), doomed,
                            "timeout", executed=False)
        finally:
            svc.shutdown()

    def test_shutdown_drain_false_drops_get_terminal_events(self):
        svc = make_service(workers=1)
        started = threading.Event()

        def blocker(session):
            started.set()
            return list(session.solve("spin"))
        runner = svc.submit(blocker)
        assert started.wait(timeout=30)
        dropped = svc.submit("edge(X, Y)")
        runner.cancel()
        svc.shutdown(drain=False)
        assert dropped.state == "cancelled"
        check_lifecycle(svc.final_telemetry, dropped,
                        "cancelled", executed=False)


class TestSpanGeometry:
    def test_queue_wait_ends_exactly_where_execute_starts(self):
        svc = make_service()
        try:
            ticket = svc.submit("edge(X, Y)")
            ticket.result(timeout=30)
            life = lifecycle(svc.telemetry(), ticket.trace_id)
            root = life["trace"]
            wait = root.find("queue_wait")[0]
            execute = root.find("execute")[0]
            wait_end = wait.start_s + wait.wall_s
            assert wait_end == pytest.approx(execute.start_s, abs=1e-6)
            assert wait_end <= execute.start_s + 1e-6
            # and the two phases tile the root span
            assert wait.wall_s + execute.wall_s == pytest.approx(
                root.wall_s, abs=1e-4)
        finally:
            svc.shutdown()

    def test_trace_id_propagates_into_engine_spans(self):
        """The tentpole: one trace id from submit() through the queue
        into the worker session's own query spans."""
        svc = make_service()
        try:
            ticket = svc.submit("edge(X, Y)")
            ticket.result(timeout=30)
            life = lifecycle(svc.telemetry(), ticket.trace_id)
            execute = life["trace"].find("execute")[0]
            queries = execute.find("query")
            assert queries, "engine query span missing under execute"
            assert queries[0].attrs["trace_id"] == ticket.trace_id
            # nested loader spans exist under the engine span
            assert queries[0].find("loader.fetch")
        finally:
            svc.shutdown()

    def test_no_tracing_means_no_traces_but_full_events(self):
        svc = make_service(tracing=False)
        try:
            ticket = svc.submit("edge(X, Y)")
            ticket.result(timeout=30)
            telemetry = svc.telemetry()
            assert telemetry["traces"] == []
            assert ticket.trace is None
            # events and histograms are always on
            kinds = [e["kind"] for e in telemetry["events"]
                     if e.get("trace_id") == ticket.trace_id]
            assert kinds == ["ticket.admit", "ticket.done"]
            assert telemetry["counters"]["service_ticket_ms.count"] == 1
        finally:
            svc.shutdown()

    def test_worker_tracer_left_disabled_between_tickets(self):
        svc = make_service()
        try:
            svc.submit("edge(X, Y)").result(timeout=30)
            time.sleep(0.05)
            for session in svc.sessions:
                assert not session.tracer.enabled
                assert session.tracer.trace_id is None
                assert session.tracer.roots == []
        finally:
            svc.shutdown()


class TestSlowQueryCapture:
    def test_slow_query_captured_with_trace(self):
        svc = make_service(tracing=False, slow_query_ms=0.0)
        try:
            ticket = svc.submit("edge(X, Y)")
            ticket.result(timeout=30)
            telemetry = svc.telemetry()
            slow = [s for s in telemetry["slow_queries"]
                    if s["trace_id"] == ticket.trace_id]
            assert len(slow) == 1
            # the capture carries the full ticket trace even though
            # fleet-wide tracing is off
            assert slow[0]["trace"].find("execute")
            kinds = [e["kind"] for e in telemetry["events"]
                     if e.get("trace_id") == ticket.trace_id]
            assert "query.slow" in kinds
            # but the fleet-wide trace deque stays empty
            assert telemetry["traces"] == []
        finally:
            svc.shutdown()

    def test_fast_queries_not_captured(self):
        svc = make_service(tracing=False, slow_query_ms=60_000.0)
        try:
            svc.submit("edge(X, Y)").result(timeout=30)
            telemetry = svc.telemetry()
            assert telemetry["slow_queries"] == []
            assert not any(e["kind"] == "query.slow"
                           for e in telemetry["events"])
        finally:
            svc.shutdown()


class TestGaugesAndHistograms:
    def test_depth_peak_and_inflight(self):
        svc = make_service(workers=1)
        try:
            started = threading.Event()

            def blocker(session):
                started.set()
                return list(session.solve("spin"))
            runner = svc.submit(blocker)
            assert started.wait(timeout=30)
            queued = [svc.submit("edge(X, Y)") for _ in range(3)]
            counters = svc.counters()
            assert counters["service_queue_depth"] == 3
            assert counters["service_queue_depth_peak"] >= 3
            assert counters["service_inflight"] == 1
            runner.cancel()
            for t in queued:
                t.result(timeout=30)
        finally:
            svc.shutdown()
        counters = svc.counters()
        assert counters["service_queue_depth"] == 0
        assert counters["service_inflight"] == 0
        assert counters["service_queue_depth_peak"] >= 3   # sticky

    def test_every_terminal_ticket_observed_once(self):
        svc = make_service(workers=1)
        started = threading.Event()

        def blocker(session):
            started.set()
            return list(session.solve("spin"))
        runner = svc.submit(blocker)
        assert started.wait(timeout=30)
        done = [svc.submit("edge(X, Y)") for _ in range(3)]
        queued_cancel = svc.submit("edge(X, Y)")
        queued_cancel.cancel()
        runner.cancel()
        for t in done:
            t.result(timeout=30)
        svc.shutdown()
        snap = svc.final_telemetry["counters"]
        # 1 cancelled runner + 3 done + 1 cancelled-in-queue
        assert snap["service_ticket_ms.count"] == 5
        assert snap["service_queue_wait_ms.count"] == 5
        assert snap["service_completed"] == 3
        assert snap["service_cancelled"] == 2

    def test_histograms_survive_metrics_merge(self):
        svc = make_service()
        try:
            for _ in range(4):
                svc.submit("edge(X, Y)").result(timeout=30)
            time.sleep(0.05)
            snap = svc.metrics.snapshot()
            from repro.obs import MetricsRegistry
            merged = MetricsRegistry.merge(snap, snap)
            assert merged["service_ticket_ms.count"] == \
                2 * snap["service_ticket_ms.count"]
            assert merged["service_ticket_ms.max"] == \
                snap["service_ticket_ms.max"]
        finally:
            svc.shutdown()


class TestRingBoundedUnderLoad:
    def test_ring_never_exceeds_bound_under_soak(self):
        """Soak the service with more tickets than the ring can hold:
        the bound holds, drops are counted, and the newest terminal
        events are still present."""
        from repro.edb.store import ExternalStore
        store = ExternalStore()
        ring = EventRing(capacity=48, stripes=4)
        store.events = ring
        store.pager.events = ring
        svc = QueryService(store=store, workers=4, queue_size=64)
        svc.store_relation("edge", [(1, 2), (2, 3)])
        tickets = [svc.submit("edge(X, Y)") for _ in range(60)]
        for t in tickets:
            t.result(timeout=60)
        svc.shutdown()
        assert len(ring) <= ring.capacity
        counters = ring.counters()
        assert counters["events_recorded"] >= 120   # admit + terminal
        assert counters["events_dropped"] > 0
        snap = svc.final_telemetry["counters"]
        assert snap["events_recorded"] == counters["events_recorded"]
        # the tail still ends with recent, well-formed events
        tail = ring.tail(5)
        assert len(tail) == 5
        assert all("kind" in e and "seq" in e for e in tail)


class TestExplicitTraceSurface:
    def test_ticket_trace_attribute(self):
        svc = make_service()
        try:
            ticket = svc.submit("edge(X, Y)")
            ticket.result(timeout=30)
            time.sleep(0.05)   # telemetry lands just before _finish
            assert ticket.trace is not None
            assert ticket.trace.attrs["trace_id"] == ticket.trace_id
            assert ticket.queue_wait_ms is not None
            assert ticket.execute_ms is not None
            assert ticket.total_ms >= ticket.queue_wait_ms
        finally:
            svc.shutdown()

    def test_trace_ids_unique_and_minted_at_submit(self):
        svc = make_service()
        try:
            tickets = svc.submit_many(["edge(X, Y)"] * 5)
            ids = [t.trace_id for t in tickets]
            assert all(ids), "trace ids minted at submission"
            assert len(set(ids)) == 5
        finally:
            svc.shutdown()


PATH_PROGRAM = (
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Z) :- edge(X, Y), path(Y, Z).\n")


class TestDatalogSpans:
    def test_datalog_evaluate_span_carries_trace_id(self):
        """A bottom-up ticket's fixpoint span is part of the ticket's
        trace: nested under execute, stamped with the ticket's id."""
        svc = QueryService(workers=1, queue_size=8, tracing=True,
                           datalog="force")
        try:
            svc.store_relation("edge", [(1, 2), (2, 3), (3, 4)])
            svc.store_program(PATH_PROGRAM)
            ticket = svc.submit("path(1, X)")
            assert len(ticket.result(timeout=30)) == 3
            life = lifecycle(svc.telemetry(), ticket.trace_id)
            execute = life["trace"].find("execute")[0]
            evals = execute.find("datalog.evaluate")
            assert evals, "fixpoint ran outside the ticket's trace"
            assert evals[0].attrs["trace_id"] == ticket.trace_id
            assert evals[0].attrs["strategy"] == "bottomup"
        finally:
            svc.shutdown()

    def test_replica_read_nests_datalog_span_under_ticket(self, tmp_path):
        """Cluster-wide service kwargs: a replica-drained bottom-up
        read produces the same ticket → execute → datalog.evaluate
        span nesting as a primary read, with the replica ticket's own
        trace id on every engine span."""
        from repro.replication import ReplicaSet
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=2,
                             primary_workers=1, replica_workers=1,
                             tracing=True, datalog="force")
        try:
            cluster.store_relation("edge", [(1, 2), (2, 3), (3, 4)])
            cluster.store_program(PATH_PROGRAM)
            assert cluster.wait_for_catch_up(timeout=15)
            ticket = cluster.submit_read("path(1, X)", max_lag=0)
            assert len(ticket.result(timeout=30)) == 3
            assert ticket.trace_id
            traces = []
            for replica in cluster.replicas:
                traces += [
                    t for t in replica.service.telemetry()["traces"]
                    if t.attrs.get("trace_id") == ticket.trace_id]
            assert len(traces) == 1, "read not traced on exactly one replica"
            assert traces[0].name == "ticket"
            execute = traces[0].find("execute")[0]
            evals = execute.find("datalog.evaluate")
            assert evals, "replica fixpoint ran outside the ticket trace"
            assert evals[0].attrs["trace_id"] == ticket.trace_id
            assert evals[0].attrs["strategy"] == "bottomup"
        finally:
            cluster.shutdown()
