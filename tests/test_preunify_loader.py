"""Tests for pre-unification and the dynamic loader (paper §3.1, §4)."""

import pytest

from repro.edb.loader import DynamicLoader
from repro.edb.preunify import PreUnifier
from repro.edb.store import ExternalStore
from repro.engine.session import EduceStar
from repro.wam.machine import Machine


def make_session(depth="full", index=True):
    return EduceStar(preunify_depth=depth, index=index)


PROG = """
p(a, 1).
p(b, 2).
p(f(1), 3).
p(f(2), 4).
p([x], 5).
p(_, 6).
"""


class TestSummariesFromRegisters:
    def test_bound_args_summarised(self):
        m = Machine()
        cell, _ = m._build(m.reader.read_term("probe(foo, 42, 2.5, [a], "
                                              "g(1), X)"), {})
        a = cell[1]
        for i in range(6):
            m.x[i] = m.heap[a + 1 + i]
        out = PreUnifier.summaries_from_registers(m, 6)
        assert out[0] == ("atom", "foo")
        assert out[1] == ("int", 42)
        assert out[2] == ("real", 2.5)
        assert out[3] == ("list",)
        assert out[4] == ("struct", "g", 1)
        assert 5 not in out  # unbound


class TestFilteringSemantics:
    """The filter must never reject a clause that would unify
    (necessary-condition property, §4) and at depth=full must reject
    exactly the non-unifiable ones."""

    @pytest.mark.parametrize("depth", ["none", "shallow", "full"])
    def test_all_depths_sound(self, depth):
        s = make_session(depth=depth)
        s.store_program(PROG)
        assert [sol["N"] for sol in s.solve("p(a, N)")] == [1, 6]
        assert [sol["N"] for sol in s.solve("p(f(1), N)")] == [3, 6]
        assert [sol["N"] for sol in s.solve("p([x], N)")] == [5, 6]
        assert [sol["N"] for sol in s.solve("p(zzz, N)")] == [6]
        assert sorted(sol["N"] for sol in s.solve("p(_, N)")) == \
            [1, 2, 3, 4, 5, 6]

    def test_full_depth_rejects_nonmatching_nested(self):
        s = make_session(depth="full")
        s.store_program("q(f(g(1)), hit1). q(f(g(2)), hit2).")
        s.solve_once("q(f(g(2)), _)")
        # full pre-unification rejected the g(1) clause outright
        assert s.preunifier.rejections >= 1

    def test_shallow_depth_keeps_nested_mismatches(self):
        deep = make_session(depth="full")
        shallow = make_session(depth="shallow")
        for s in (deep, shallow):
            s.store_program("q(f(g(1)), hit1). q(f(g(2)), hit2).")
            list(s.solve("q(f(g(2)), R)"))
        # both answer correctly...
        assert deep.preunifier.rejections > shallow.preunifier.rejections

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PreUnifier("bogus")

    def test_shallow_skip_does_not_read_stale_registers(self):
        """Regression (found by hypothesis): in shallow mode a skipped
        unify_variable must still *define* its register; otherwise a
        later get_structure on it tests stale caller data and rejects a
        matching clause."""
        s = make_session(depth="shallow")
        s.store_program("p(a, a, 0).\np(a, f(f(_)), 1).")
        sol = s.solve_once("findall(I, p(a, _, I), L)")
        from repro.lang.writer import term_to_text
        assert term_to_text(sol["L"]) == "[0,1]"

    def test_filter_leaves_no_residue(self):
        """Pre-unification must not leak bindings or heap cells."""
        s = make_session(depth="full")
        s.store_program(PROG)
        m = s.machine
        list(s.solve("p(a, N)"))
        heap_before = len(m.heap)
        trail_before = len(m.trail)
        list(s.solve("p(f(1), N)"))
        assert len(m.heap) == heap_before
        assert len(m.trail) == trail_before


class TestLoader:
    def test_cache_hit_on_repeat_pattern(self):
        s = make_session()
        s.store_program(PROG)
        s.solve_once("p(a, _)")
        loads_after_first = s.loader.loads
        s.solve_once("p(a, _)")
        assert s.loader.loads == loads_after_first
        assert s.loader.cache_hits >= 1

    def test_distinct_patterns_load_separately(self):
        s = make_session()
        s.store_program(PROG)
        s.solve_once("p(a, _)")
        s.solve_once("p(b, _)")
        assert s.loader.loads >= 2

    def test_cache_invalidated_by_assert(self):
        s = make_session()
        s.store_program("r(1).")
        assert [sol["X"] for sol in s.solve("r(X)")] == [1]
        s.assert_external("r(2)")
        assert [sol["X"] for sol in s.solve("r(X)")] == [1, 2]

    def test_per_procedure_invalidation_spares_unrelated(self):
        # Regression: invalidate() used to clear the WHOLE cache on any
        # mutation — every procedure re-resolved after every assert.
        s = make_session()
        s.store_program(PROG)
        s.store_program("r(1).")
        s.solve_once("p(a, _)")
        s.solve_once("r(X)")
        loads = s.loader.loads
        hits = s.loader.cache_hits
        entries = s.loader.counters()["loader_cache_entries"]

        s.assert_external("r(2)")           # invalidates r/1 only
        assert s.loader.counters()["loader_cache_entries"] < entries
        s.solve_once("p(a, _)")             # unrelated: still cached
        assert s.loader.loads == loads
        assert s.loader.cache_hits == hits + 1, (
            "cache_hits must keep accruing, never reset")
        assert [sol["X"] for sol in s.solve("r(X)")] == [1, 2]

    def test_invalidate_returns_dropped_and_bumps_epoch(self):
        s = make_session()
        s.store_program(PROG)
        s.store_program("r(1).")
        s.solve_once("p(a, _)")
        s.solve_once("r(X)")
        epoch = s.loader.cache_epoch
        assert s.loader.invalidate("r", 1) == 1
        assert s.loader.invalidate("r", 1) == 0   # already pruned
        assert s.loader.cache_epoch == epoch + 2  # monotone per call
        dropped_all = s.loader.invalidate()       # global clear
        assert dropped_all >= 1
        assert s.loader.counters()["loader_cache_entries"] == 0

    def test_resolutions_counted(self):
        s = make_session()
        s.store_program(PROG)
        s.solve_once("p(a, _)")
        assert s.loader.counters()["resolutions"] > 0

    def test_loads_facts_with_indexed_code(self):
        s = make_session()
        s.store_relation("city", [("munich", 1), ("paris", 2),
                                  ("rome", 3)])
        assert s.solve_once("city(paris, N)")["N"] == 2
        assert s.machine.cp_created <= 2  # barrier (+possible fact chain)

    def test_unknown_procedure_still_raises(self):
        s = make_session()
        from repro.errors import ExistenceError
        with pytest.raises(ExistenceError):
            s.solve_once("never_stored(1)")

    def test_none_for_unstored(self):
        store = ExternalStore()
        loader = DynamicLoader(store)
        assert loader.procedure_code(Machine(), "missing", 2) is None


class TestRecursionThroughEDB:
    def test_recursive_rules_in_edb(self):
        s = make_session()
        s.store_relation("edge", [("a", "b"), ("b", "c"), ("c", "d")])
        s.store_program("""
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        """)
        reach = sorted(str(sol["Y"]) for sol in s.solve("path(a, Y)"))
        assert reach == ["b", "c", "d"]

    def test_mixed_internal_and_external(self):
        s = make_session()
        s.store_relation("base", [(1,), (2,), (3,)])
        s.consult("doubled(X, Y) :- base(X), Y is 2 * X.")
        assert sorted(sol["Y"] for sol in s.solve("doubled(_, Y)")) == \
            [2, 4, 6]

    def test_edb_rule_calling_internal(self):
        s = make_session()
        s.consult("local(10).")
        s.store_program("uses_local(X) :- local(X).")
        assert s.solve_once("uses_local(X)")["X"] == 10
