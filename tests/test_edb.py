"""Tests for the EDB layer: external dictionary, codec, store."""

import pytest

from repro.bang.catalog import Catalog
from repro.bang.pager import Pager
from repro.dictionary import SegmentedDictionary, fnv1a
from repro.edb.codec import decode_code, encode_code, measure_code
from repro.edb.external_dict import ExternalDictionary
from repro.edb.store import ExternalStore, summarize_arg
from repro.errors import CatalogError, ExistenceError
from repro.lang.reader import read_term, read_terms
from repro.terms import Var
from repro.wam.compiler import ClauseCompiler, CompileContext


@pytest.fixture
def ext_dict():
    return ExternalDictionary(Catalog(Pager(buffer_pages=16)))


@pytest.fixture
def store():
    return ExternalStore()


@pytest.fixture
def ctx():
    return CompileContext(SegmentedDictionary(segment_capacity=1024))


class TestExternalDictionary:
    def test_intern_resolve_roundtrip(self, ext_dict):
        ident = ext_dict.intern("foo", 3)
        assert ext_dict.resolve(ident) == ("foo", 3)

    def test_external_id_is_the_hash(self, ext_dict):
        # §4: "computed by applying the hash function of the internal
        # dictionary, without clash resolution"
        assert ext_dict.intern("bar", 1) == fnv1a("bar", 1)

    def test_intern_idempotent(self, ext_dict):
        assert ext_dict.intern("x", 0) == ext_dict.intern("x", 0)
        assert len(ext_dict) == 1

    def test_unknown_id_raises(self, ext_dict):
        with pytest.raises(ExistenceError):
            ext_dict.resolve(12345)

    def test_lookup_absent(self, ext_dict):
        assert ext_dict.lookup("ghost", 2) is None

    def test_survives_cache_wipe(self, ext_dict):
        """Entries live in storage, not just the session cache."""
        ident = ext_dict.intern("persistent", 4)
        ext_dict._by_hash.clear()
        ext_dict._by_functor.clear()
        assert ext_dict.resolve(ident) == ("persistent", 4)

    def test_name_range_query(self, ext_dict):
        for name in ("alpha", "beta", "gamma", "delta"):
            ext_dict.intern(name, 0)
        names = sorted(row[1] for row in ext_dict.name_range("b", "e"))
        assert names == ["beta", "delta"]


class TestCodec:
    def _compile(self, ctx, text):
        return ClauseCompiler(ctx).compile_clause(read_term(text))

    def test_roundtrip_simple_fact(self, ctx, ext_dict):
        code = self._compile(ctx, "p(a, 1, 2.5)").code
        relative = encode_code(code, ctx.dictionary, ext_dict)
        back = decode_code(relative, ctx.dictionary, ext_dict)
        assert back == code

    def test_roundtrip_rule_with_structures(self, ctx, ext_dict):
        code = self._compile(
            ctx, "p(f(X, [a|T])) :- q(g(X)), r(T, h(1)).").code
        relative = encode_code(code, ctx.dictionary, ext_dict)
        assert decode_code(relative, ctx.dictionary, ext_dict) == code

    def test_relative_code_has_no_internal_ids(self, ctx, ext_dict):
        code = self._compile(ctx, "p(hello) :- world(hello).").code
        relative = encode_code(code, ctx.dictionary, ext_dict)
        for instr in relative:
            if instr[0] in ("get_constant", "put_constant"):
                assert instr[1][0] == "atom"
                assert instr[1][1][0] == "ext"
            if instr[0] in ("call", "execute"):
                assert instr[1][0] == "ext"

    def test_decode_into_fresh_dictionary(self, ctx, ext_dict):
        """A new session (new internal dictionary) can run stored code."""
        code = self._compile(ctx, "p(shared_atom).").code
        relative = encode_code(code, ctx.dictionary, ext_dict)
        fresh = SegmentedDictionary(segment_capacity=256)
        decoded = decode_code(relative, fresh, ext_dict)
        cid = decoded[0][1][1]
        assert fresh.name(cid) == "shared_atom"

    def test_measure_code_positive(self, ctx, ext_dict):
        code = self._compile(ctx, "p(a).").code
        assert measure_code(encode_code(code, ctx.dictionary,
                                        ext_dict)) > 0


class TestSummaries:
    @pytest.mark.parametrize("text,expect", [
        ("foo", ("atom", "foo")),
        ("42", ("int", 42)),
        ("2.5", ("real", 2.5)),
        ("[a]", ("list",)),
        ("[]", ("atom", "[]")),
        ("f(1, 2)", ("struct", "f", 2)),
    ])
    def test_kinds(self, text, expect):
        assert summarize_arg(read_term(text)) == expect

    def test_var(self):
        assert summarize_arg(Var()) == ("var",)


class TestStoreRules:
    def test_store_and_fetch_all(self, store, ctx):
        clauses = read_terms("p(a, 1). p(b, 2). p(c, 3).")
        store.store_rules("p", 2, clauses, ctx)
        fetched = store.fetch_clauses("p", 2)
        assert [sc.clause_id for sc in fetched] == [0, 1, 2]
        assert all(sc.relative_code for sc in fetched)

    def test_fetch_filters_by_summary(self, store, ctx):
        clauses = read_terms("p(a, 1). p(b, 2). p(X, 9).")
        store.store_rules("p", 2, clauses, ctx)
        got = store.fetch_clauses("p", 2, {0: ("atom", "b")})
        # clause with b + the var-headed clause
        assert [sc.clause_id for sc in got] == [1, 2]

    def test_metadata(self, store, ctx):
        store.store_rules("q", 1, read_terms("q(1). q(2)."), ctx)
        proc = store.get("q", 1)
        assert proc.mode == "rules" and proc.nclauses == 2

    def test_duplicate_rejected(self, store, ctx):
        store.store_rules("p", 0, read_terms("p."), ctx)
        with pytest.raises(CatalogError):
            store.store_rules("p", 0, read_terms("p."), ctx)

    def test_missing_raises(self, store):
        with pytest.raises(ExistenceError):
            store.get("ghost", 1)
        assert store.lookup("ghost", 1) is None

    def test_aux_procedures_stored_recursively(self, store, ctx):
        clauses = read_terms("p(X) :- (X > 0 -> q(X) ; r(X)).")
        store.store_rules("p", 1, clauses, ctx)
        aux = [sp for sp in store.procedures()
               if sp.name.startswith("$aux")]
        assert aux, "control-construct aux procedure must be stored"

    def test_code_bytes_accounted(self, store, ctx):
        before = store.code_bytes_stored
        store.store_rules("p", 1, read_terms("p(a)."), ctx)
        assert store.code_bytes_stored > before


class TestStoreFacts:
    def test_store_and_fetch(self, store):
        rows = [(1, "a"), (2, "b"), (3, "a")]
        store.store_facts("f", 2, rows)
        assert sorted(store.fetch_facts("f", 2)) == sorted(rows)
        assert sorted(store.fetch_facts("f", 2, {1: "a"})) == \
            [(1, "a"), (3, "a")]

    def test_types_inferred(self, store):
        store.store_facts("g", 3, [(1, 2.5, "x")])
        types = [a.type for a in store.get("g", 3).relation.schema.attributes]
        assert types == ["int", "real", "atom"]

    def test_relation_of_gives_engine_access(self, store):
        store.store_facts("h", 1, [(5,), (6,)])
        rel = store.relation_of("h", 1)
        assert sorted(rel.scan()) == [(5,), (6,)]

    def test_fetch_clauses_on_facts_rejected(self, store):
        store.store_facts("h2", 1, [(5,)])
        with pytest.raises(CatalogError):
            store.fetch_clauses("h2", 1)


class TestStoreSource:
    def test_source_mode_keeps_text(self, store):
        clauses = read_terms("s(a). s(X) :- t(X).")
        store.store_source("s", 1, clauses)
        fetched = store.fetch_clauses("s", 1)
        assert fetched[0].source == "s(a)."
        assert ":-" in fetched[1].source
        assert fetched[0].relative_code == []

    def test_source_bytes_accounted(self, store):
        before = store.source_bytes_stored
        store.store_source("s2", 1, read_terms("s2(hello_world_atom)."))
        assert store.source_bytes_stored > before


class TestUpdates:
    def test_assert_appends(self, store, ctx):
        store.store_rules("p", 1, read_terms("p(a)."), ctx)
        store.assert_clause("p", 1, read_term("p(b)"), ctx)
        assert [sc.clause_id for sc in store.fetch_clauses("p", 1)] == [0, 1]
        assert store.get("p", 1).version == 1

    def test_assert_into_facts(self, store, ctx):
        store.store_facts("f", 2, [(1, "a")])
        store.assert_clause("f", 2, read_term("f(2, b)"), ctx)
        assert sorted(store.fetch_facts("f", 2)) == [(1, "a"), (2, "b")]

    def test_retract_by_clause_id(self, store, ctx):
        store.store_rules("p", 1, read_terms("p(a). p(b)."), ctx)
        store.retract_clause("p", 1, 0)
        fetched = store.fetch_clauses("p", 1)
        assert [sc.clause_id for sc in fetched] == [1]
        assert store.get("p", 1).nclauses == 1
