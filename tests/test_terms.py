"""Unit tests for the surface term model."""

import pytest
from hypothesis import given

from repro.errors import TypeError_
from repro.terms import (
    NIL,
    Atom,
    Struct,
    Var,
    compare_terms,
    deref,
    ground,
    indicator_of,
    is_proper_list,
    iter_subterms,
    list_to_python,
    make_list,
    make_struct,
    rename_term,
    resolve_term,
    term_variables,
    terms_equal,
)

from .conftest import ground_terms


class TestAtomInterning:
    def test_same_name_is_same_object(self):
        assert Atom("foo") is Atom("foo")

    def test_different_names_differ(self):
        assert Atom("foo") is not Atom("bar")

    def test_nil_is_interned(self):
        assert Atom("[]") is NIL

    def test_hash_equals_name_hash(self):
        assert hash(Atom("xyz")) == hash("xyz")

    def test_str(self):
        assert str(Atom("hello")) == "hello"


class TestVar:
    def test_fresh_vars_are_distinct(self):
        assert Var() is not Var()

    def test_named_var_keeps_name(self):
        assert Var("X").name == "X"

    def test_anonymous_names_are_unique(self):
        assert Var().name != Var().name

    def test_deref_unbound(self):
        v = Var()
        assert deref(v) is v

    def test_deref_chain(self):
        a, b = Var(), Var()
        a.ref = b
        b.ref = Atom("end")
        assert deref(a) is Atom("end")


class TestStruct:
    def test_requires_args(self):
        with pytest.raises(TypeError_):
            Struct("f", ())

    def test_indicator(self):
        assert Struct("f", (1, 2)).indicator == ("f", 2)

    def test_equality_structural(self):
        assert Struct("f", (1, Atom("a"))) == Struct("f", (1, Atom("a")))
        assert Struct("f", (1,)) != Struct("g", (1,))

    def test_make_struct_collapses_to_atom(self):
        assert make_struct("a") is Atom("a")
        assert isinstance(make_struct("f", 1), Struct)


class TestLists:
    def test_make_and_unmake_roundtrip(self):
        items = [1, Atom("a"), 2.5]
        assert list_to_python(make_list(items)) == items

    def test_empty_list(self):
        assert make_list([]) is NIL
        assert list_to_python(NIL) == []

    def test_improper_list_raises(self):
        with pytest.raises(TypeError_):
            list_to_python(Struct(".", (1, Atom("not_nil"))))

    def test_is_proper_list(self):
        assert is_proper_list(make_list([1, 2]))
        assert not is_proper_list(Struct(".", (1, Var())))
        assert not is_proper_list(Atom("a"))

    def test_tail_parameter(self):
        tail = Var()
        lst = make_list([1], tail)
        assert deref(lst.args[1]) is tail


class TestIndicator:
    def test_atom(self):
        assert indicator_of(Atom("x")) == ("x", 0)

    def test_struct(self):
        assert indicator_of(Struct("f", (1, 2, 3))) == ("f", 3)

    def test_non_callable_raises(self):
        with pytest.raises(TypeError_):
            indicator_of(42)


class TestTermVariables:
    def test_order_is_first_occurrence(self):
        x, y = Var("X"), Var("Y")
        t = Struct("f", (y, Struct("g", (x, y))))
        assert term_variables(t) == [y, x]

    def test_ground_term_has_none(self):
        assert term_variables(make_list([1, 2, Atom("a")])) == []

    def test_bound_vars_skipped(self):
        x = Var()
        x.ref = Atom("bound")
        assert term_variables(Struct("f", (x,))) == []
        x.ref = None


class TestRenameResolve:
    def test_rename_preserves_sharing(self):
        x = Var("X")
        t = Struct("f", (x, x))
        fresh = rename_term(t)
        assert fresh.args[0] is fresh.args[1]
        assert fresh.args[0] is not x

    def test_rename_keeps_constants(self):
        t = Struct("f", (1, Atom("a")))
        assert rename_term(t) == t

    def test_resolve_replaces_bindings(self):
        x = Var()
        x.ref = 42
        assert resolve_term(Struct("f", (x,))) == Struct("f", (42,))
        x.ref = None


class TestCompareTerms:
    def test_type_ordering(self):
        # Var < Number < Atom < Compound
        v = Var()
        assert compare_terms(v, 1) == -1
        assert compare_terms(1, Atom("a")) == -1
        assert compare_terms(Atom("a"), Struct("f", (1,))) == -1

    def test_numbers_by_value(self):
        assert compare_terms(1, 2) == -1
        assert compare_terms(2.5, 1) == 1

    def test_int_float_tie(self):
        assert compare_terms(1.0, 1) == -1
        assert compare_terms(1, 1.0) == 1

    def test_atoms_alphabetical(self):
        assert compare_terms(Atom("abc"), Atom("abd")) == -1

    def test_compound_by_arity_first(self):
        assert compare_terms(Struct("z", (1,)), Struct("a", (1, 2))) == -1

    def test_compound_by_name_second(self):
        assert compare_terms(Struct("a", (9,)), Struct("b", (0,))) == -1

    def test_compound_by_args_third(self):
        assert compare_terms(Struct("f", (1, 2)), Struct("f", (1, 3))) == -1

    def test_deep_lists_no_recursion_error(self):
        big = make_list(list(range(50_000)))
        big2 = make_list(list(range(50_000)))
        assert compare_terms(big, big2) == 0

    @given(ground_terms())
    def test_reflexive(self, t):
        assert compare_terms(t, t) == 0

    @given(ground_terms(), ground_terms())
    def test_antisymmetric(self, a, b):
        assert compare_terms(a, b) == -compare_terms(b, a)

    @given(ground_terms(), ground_terms(), ground_terms())
    def test_transitive(self, a, b, c):
        if compare_terms(a, b) <= 0 and compare_terms(b, c) <= 0:
            assert compare_terms(a, c) <= 0

    @given(ground_terms(), ground_terms())
    def test_equal_iff_terms_equal(self, a, b):
        assert (compare_terms(a, b) == 0) == terms_equal(a, b)


class TestIterAndGround:
    def test_iter_subterms_preorder(self):
        t = Struct("f", (Atom("a"), Struct("g", (1,))))
        subs = list(iter_subterms(t))
        assert subs[0] is t
        assert Atom("a") in subs
        assert 1 in subs

    def test_ground_detects_vars(self):
        assert ground(Struct("f", (1, Atom("a"))))
        assert not ground(Struct("f", (Var(),)))

    @given(ground_terms())
    def test_generated_ground_terms_are_ground(self, t):
        assert ground(t)
