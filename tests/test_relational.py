"""Tests for the goal-oriented relational engine (algebra + planner)."""

import pytest

from repro.bang.catalog import Catalog
from repro.bang.pager import Pager
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    IndexJoin,
    Materialize,
    Project,
    RangeSelect,
    Scan,
    Select,
    execute,
)
from repro.relational.planner import (
    best_access_path,
    estimate_rows,
    plan_join,
)

EMP = [(i, f"name{i}", ["sales", "eng", "hr"][i % 3], 100 * (i % 7))
       for i in range(60)]
DEPT = [("sales", "london"), ("eng", "munich"), ("hr", "paris")]


@pytest.fixture
def db():
    catalog = Catalog(Pager(buffer_pages=16), bucket_capacity=8)
    emp = catalog.create_simple(
        "emp", [("id", "int"), ("name", "atom"),
                ("dept", "atom"), ("sal", "int")])
    emp.insert_many(EMP)
    dept = catalog.create_simple(
        "dept", [("dname", "atom"), ("city", "atom")])
    dept.insert_many(DEPT)
    return emp, dept


class TestLeafNodes:
    def test_scan_returns_everything(self, db):
        emp, _ = db
        assert sorted(execute(Scan(emp))) == sorted(EMP)

    def test_select_exact(self, db):
        emp, _ = db
        rows = execute(Select(emp, {2: "eng"}))
        assert sorted(rows) == sorted(r for r in EMP if r[2] == "eng")

    def test_range_select(self, db):
        emp, _ = db
        rows = execute(RangeSelect(emp, 0, 10, 19))
        assert sorted(r[0] for r in rows) == list(range(10, 20))

    def test_rows_out_counted(self, db):
        emp, _ = db
        plan = Scan(emp)
        execute(plan)
        assert plan.rows_out == len(EMP)


class TestUnaryNodes:
    def test_filter(self, db):
        emp, _ = db
        rows = execute(Filter(Scan(emp), lambda r: r[3] > 400))
        assert all(r[3] > 400 for r in rows)
        assert len(rows) == len([r for r in EMP if r[3] > 400])

    def test_project(self, db):
        emp, _ = db
        rows = execute(Project(Scan(emp), [2, 0]))
        assert set(rows) == {(r[2], r[0]) for r in EMP}

    def test_distinct(self, db):
        emp, _ = db
        rows = execute(Distinct(Project(Scan(emp), [2])))
        assert sorted(rows) == [("eng",), ("hr",), ("sales",)]

    def test_materialize_reusable(self, db):
        emp, _ = db
        mat = Materialize(Scan(emp))
        first = execute(mat)
        second = execute(mat)
        assert first == second


class TestJoins:
    def reference_join(self):
        return sorted(
            e + d for e in EMP for d in DEPT if e[2] == d[0])

    def test_hash_join(self, db):
        emp, dept = db
        rows = execute(HashJoin(Scan(emp), Scan(dept), 2, 0))
        assert sorted(rows) == self.reference_join()

    def test_index_join(self, db):
        emp, dept = db
        rows = execute(IndexJoin(Scan(emp), dept, 2, 0))
        assert sorted(rows) == self.reference_join()

    def test_join_methods_agree(self, db):
        emp, dept = db
        h = execute(HashJoin(Scan(dept), Scan(emp), 0, 2))
        i = execute(IndexJoin(Scan(dept), emp, 0, 2))
        assert sorted(h) == sorted(i)

    def test_empty_join(self, db):
        emp, dept = db
        rows = execute(HashJoin(Select(emp, {2: "nothing"}),
                                Scan(dept), 2, 0))
        assert rows == []


class TestAggregates:
    def test_count(self, db):
        emp, _ = db
        assert execute(Aggregate(Scan(emp), "count")) == [(60,)]

    def test_sum_min_max_avg(self, db):
        emp, _ = db
        sals = [r[3] for r in EMP]
        assert execute(Aggregate(Scan(emp), "sum", 3)) == [(sum(sals),)]
        assert execute(Aggregate(Scan(emp), "min", 3)) == [(min(sals),)]
        assert execute(Aggregate(Scan(emp), "max", 3)) == [(max(sals),)]
        avg = execute(Aggregate(Scan(emp), "avg", 3))[0][0]
        assert abs(avg - sum(sals) / 60) < 1e-9

    def test_empty_aggregate(self, db):
        emp, _ = db
        empty = Select(emp, {2: "none"})
        assert execute(Aggregate(empty, "count")) == [(0,)]
        empty2 = Select(emp, {2: "none"})
        assert execute(Aggregate(empty2, "max", 3)) == [(None,)]

    def test_unknown_aggregate(self, db):
        emp, _ = db
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            Aggregate(Scan(emp), "median")


class TestPlanner:
    def test_point_assignment_picks_select(self, db):
        emp, _ = db
        plan = best_access_path(emp, {0: 5})
        assert isinstance(plan, Select)

    def test_empty_assignment_picks_scan(self, db):
        emp, _ = db
        assert isinstance(best_access_path(emp, {}), Scan)

    def test_estimate_rows_sane(self, db):
        emp, _ = db
        full = estimate_rows(emp, {})
        point = estimate_rows(emp, {0: 5})
        assert point <= full
        assert abs(full - len(EMP)) < len(EMP)  # right ballpark

    def test_plan_join_small_outer_selective_probe_prefers_index(self, db):
        emp, dept = db
        # Probing emp's highly selective id attribute: 1 outer row x 1-2
        # pages per probe beats a full hash-join pass.
        plan = plan_join(Scan(dept), 1.0, emp, 0, 0)
        assert isinstance(plan, IndexJoin)

    def test_plan_join_large_outer_prefers_hash(self, db):
        emp, dept = db
        plan = plan_join(Scan(emp), 1e6, dept, 2, 0)
        assert isinstance(plan, HashJoin)

    def test_planner_plans_execute_correctly(self, db):
        emp, dept = db
        plan = plan_join(Scan(dept), 3.0, emp, 0, 2)
        rows = execute(plan)
        want = sorted(d + e for d in DEPT for e in EMP if d[0] == e[2])
        assert sorted(rows) == want
