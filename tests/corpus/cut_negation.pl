% Regression corpus: cut and negation shapes that once stressed the
% verifier's environment-discipline and cut-barrier rules.
% lint: disable=L104 classify/2 guard/2

classify(N, neg) :- N < 0, !.
classify(0, zero) :- !.
classify(_, pos).

guard(X, ok) :- \+ bad(X), !.
guard(_, rejected).

bad(13).
bad(666).

deep_cut(X, R) :-
    ( X > 100 -> R = big
    ; X > 10, !, R = medium
    ; R = small
    ).

double_negative(X) :- \+ \+ bad(X).
