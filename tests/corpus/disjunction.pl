% Regression corpus: disjunctions compile to auxiliary procedures;
% these shapes pin the aux-procedure entry/environment conventions.
% lint: disable=L104 weekend/1

weekend(sat).
weekend(sun).

kind(D, K) :-
    ( weekend(D) -> K = rest ; K = work ).

pick(X) :- ( X = 1 ; X = 2 ; X = 3 ; X > 10 ).

nested(X, Y) :-
    ( X = a, ( Y = 1 ; Y = 2 )
    ; X = b, ( Y = 3 ; weekend(Y) )
    ).

shared_var(X, Y) :-
    Y = f(X),
    ( X = left ; X = right ),
    Y = f(X).
