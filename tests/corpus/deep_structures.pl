% Regression corpus: deeply nested structures and long lists drive the
% unify read/write-mode tracking and register allocation.

tree(node(node(leaf(1), leaf(2)), node(leaf(3), node(leaf(4), leaf(5))))).

mirror(leaf(X), leaf(X)).
mirror(node(L, R), node(MR, ML)) :- mirror(L, ML), mirror(R, MR).

sumtree(leaf(X), X).
sumtree(node(L, R), S) :-
    sumtree(L, SL), sumtree(R, SR), S is SL + SR.

zip([], [], []).
zip([X|Xs], [Y|Ys], [X-Y|Zs]) :- zip(Xs, Ys, Zs).

build(0, leaf(0)) :- !.
build(N, node(T, T)) :- M is N - 1, build(M, T).
