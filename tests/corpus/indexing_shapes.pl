% Regression corpus: first-argument shapes that exercise every branch
% of switch_on_term / switch_on_constant / switch_on_structure.

dispatch(a, const_a).
dispatch(b, const_b).
dispatch(42, int_42).
dispatch([], empty_list).
dispatch([H|_], list(H)).
dispatch(f(X), struct_f(X)).
dispatch(g(X, Y), struct_g(X, Y)).

% a var clause woven into every dispatch chain
% lint: disable=L104 any/2
any(X, var_clause(X)) :- atom(X).
any(known, const).

% single-key deterministic dispatch
only(one, 1).
only(two, 2).
only(three, 3).
