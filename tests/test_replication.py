"""WAL-shipping read replicas: bootstrap, replay, lag, failover.

The replication contract under test (docs/REPLICATION.md):

* a replica's answers are **equal to the primary's** at every fenced
  epoch (the differential suite runs 25 seeded interleavings);
* staleness-bounded reads: ``max_lag`` routes to the freshest
  admissible replica or fails typed (:class:`ReplicaLagExceeded`);
* the supervised failover drill loses **zero acknowledged writes** —
  acknowledged means WAL-fsynced — and stale replicas re-attach to
  the new primary cleanly;
* ``replica_*`` counters and lag gauges surface in the Prometheus
  exposition, and lifecycle events in the flight recorder.
"""

import os
import random
import threading

import pytest

from repro.bang.faults import FaultInjector
from repro.bang.wal import WriteAheadLog, _FRAME
from repro.dictionary import SegmentedDictionary
from repro.edb.store import ExternalStore
from repro.errors import (ReadOnlyService, ReadOnlyStore,
                          ReplicaLagExceeded, ServiceClosed)
from repro.lang.reader import read_terms
from repro.replication import Replica, ReplicaSet, WalTailer
from repro.replication.stream import CORRUPT, OK, RESET, WAIT
from repro.service import QueryService
from repro.wam.compiler import CompileContext


def answers(result):
    """Order-insensitive rendering of a solution list."""
    return sorted(str(s) for s in result)


def parse_exposition(text):
    """Prometheus text → {metric_name: value} (samples only)."""
    parsed = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(None, 1)
        parsed[name] = float(value)
    return parsed


def wait_until(predicate, timeout=10.0, interval=0.002):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ------------------------------------------------------- scan_from (WAL)


class TestScanFrom:
    """The incremental WAL cursor shared by recovery and tailing."""

    def test_scan_from_zero_equals_scan(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        payloads = [b"a", b"bb", b"ccc"]
        for p in payloads:
            wal.append(p)
        cursor = wal.scan_from(0)
        assert list(cursor) == payloads
        assert cursor.status == "ok"
        assert not cursor.torn
        scanned, torn, good_end = wal.scan()
        assert scanned == payloads and not torn
        assert good_end == cursor.offset

    def test_scan_from_mid_offset_resumes(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(b"one")
        first_end = os.path.getsize(wal.path)
        wal.append(b"two")
        wal.append(b"three")
        cursor = wal.scan_from(first_end, expected_lsn=1)
        assert list(cursor) == [b"two", b"three"]
        assert cursor.next_lsn == 3

    def test_scan_from_reports_torn_tail(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(b"whole")
        good_end = os.path.getsize(wal.path)
        with open(wal.path, "ab") as f:
            f.write(_FRAME.pack(b"WA", 1, 100, 0)[:7])  # header prefix
        cursor = wal.scan_from(0)
        assert list(cursor) == [b"whole"]
        assert cursor.torn and cursor.status == "torn"
        assert cursor.offset == good_end

    def test_scan_does_not_mutate_cursor_state(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(b"x")
        before = wal.next_lsn
        list(wal.scan_from(0))
        assert wal.next_lsn == before  # scan_from is side-effect free


# ------------------------------------------------------------ WalTailer


class TestWalTailer:
    def test_missing_file_is_wait(self, tmp_path):
        tailer = WalTailer(str(tmp_path / "absent.wal"))
        assert tailer.poll() == (WAIT, [])

    def test_poll_ships_incrementally(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        tailer = WalTailer(wal.path)
        wal.append(b"one")
        status, records = tailer.poll()
        assert status == OK and records == [(0, b"one")]
        assert tailer.poll() == (OK, [])       # caught up
        wal.append(b"two")
        status, records = tailer.poll()
        assert records == [(1, b"two")]
        assert tailer.records_streamed == 2

    def test_torn_tail_is_wait_and_file_untouched(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(b"whole")
        with open(wal.path, "ab") as f:
            f.write(b"\x00" * 5)  # append in flight
        size = os.path.getsize(wal.path)
        tailer = WalTailer(wal.path)
        status, records = tailer.poll()
        assert status == WAIT and records == [(0, b"whole")]
        # wait-and-retry NEVER truncates someone else's log
        assert os.path.getsize(wal.path) == size
        # retrying from the same position is stable
        assert tailer.poll() == (WAIT, [])

    def test_shrunk_log_is_reset(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(b"abcdef")
        tailer = WalTailer(wal.path)
        tailer.poll()
        wal.truncate_to(0)  # the owner checkpointed
        status, records = tailer.poll()
        assert status == RESET and records == []
        assert tailer.offset == 0 and tailer.next_lsn == 0

    def test_complete_frame_bad_crc_is_corrupt(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(b"payload-bytes")
        with open(wal.path, "r+b") as f:
            f.seek(_FRAME.size + 2)
            byte = f.read(1)
            f.seek(_FRAME.size + 2)
            f.write(bytes([byte[0] ^ 0x40]))
        status, records = WalTailer(wal.path).poll()
        assert status == CORRUPT and records == []

    def test_max_records_batches(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        for i in range(10):
            wal.append(bytes([i]))
        tailer = WalTailer(wal.path)
        status, records = tailer.poll(max_records=4)
        assert status == OK and len(records) == 4
        status, records = tailer.poll(max_records=None)
        assert len(records) == 6


# -------------------------------------------------------------- Replica


@pytest.fixture
def ctx():
    return CompileContext(SegmentedDictionary(segment_capacity=1024))


def seeded_primary(path, ctx):
    store = ExternalStore.open(path)
    store.store_facts("edge", 2, [(1, 2), (2, 3)], types=("int", "int"))
    store.store_rules(
        "path", 2,
        read_terms("path(X,Y) :- edge(X,Y). "
                   "path(X,Z) :- edge(X,Y), path(Y,Z)."), ctx)
    store.save(path)
    return store


class TestReplica:
    def test_bootstrap_serves_checkpoint_state(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        primary = seeded_primary(path, ctx)
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, start=False)
        try:
            rows = sorted(r[:2] for r in
                          replica.store.lookup("edge", 2).relation.scan())
            assert rows == [(1, 2), (2, 3)]
            assert replica.bootstraps == 1
            assert replica.applied_epoch == replica.store.checkpoint_epoch
        finally:
            replica.shutdown()

    def test_replica_store_and_service_are_fenced(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        seeded_primary(path, ctx)
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, start=False)
        try:
            with pytest.raises(ReadOnlyStore, match="read-only"):
                replica.store.store_facts("x", 1, [(1,)], types=("int",))
            with pytest.raises(ReadOnlyService):
                replica.service.store_program("p(1).")
            with pytest.raises(ReadOnlyService):
                replica.service.assert_external("edge(9, 9).")
        finally:
            replica.shutdown()

    def test_continuous_replay_applies_new_writes(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        primary = seeded_primary(path, ctx)
        replica = Replica("r0", path, str(tmp_path / "r0"), workers=1)
        try:
            primary.store_facts("hop", 2, [(7, 8)], types=("int", "int"))
            assert wait_until(lambda: replica.records_applied >= 1)
            rows = sorted(r[:2] for r in
                          replica.store.lookup("hop", 2).relation.scan())
            assert rows == [(7, 8)]
            assert replica.applied_epoch == primary.mutation_epoch
        finally:
            replica.shutdown()

    def test_replica_files_are_private(self, tmp_path, ctx):
        """The only shared artefact is the primary's WAL (read-only);
        the replica's pager must never touch the primary's sidecars."""
        path = str(tmp_path / "db.edb")
        primary = seeded_primary(path, ctx)
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, start=False)
        try:
            disk_path = replica.store.pager.disk.path
            assert str(tmp_path / "r0") in disk_path
            assert disk_path != primary.pager.disk.path
        finally:
            replica.shutdown()

    def test_truncation_horizon_triggers_rebootstrap(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        primary = seeded_primary(path, ctx)
        replica = Replica("r0", path, str(tmp_path / "r0"), workers=1)
        try:
            primary.store_facts("a", 1, [(1,)], types=("int",))
            assert wait_until(lambda: replica.records_applied >= 1)
            # checkpoint truncates the log below the replica's offset
            # only once a *new* record makes the size test observable;
            # the era fence catches it regardless
            primary.save(path)
            primary.store_facts("b", 1, [(2,)], types=("int",))
            assert wait_until(lambda: replica.rebootstraps >= 1)
            assert wait_until(
                lambda: replica.store.lookup("b", 1) is not None)
            assert replica.store.wal_era == primary.wal_era
        finally:
            replica.shutdown()

    def test_counters_and_gauge_keys(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        seeded_primary(path, ctx)
        replica = Replica("r7", path, str(tmp_path / "r7"),
                          workers=1, start=False)
        try:
            counters = replica.counters()
            for key in ("replica_records_applied", "replica_records_stale",
                        "replica_bootstraps", "replica_rebootstraps",
                        "replica_quarantines", "replica_stream_retries",
                        "replica_torn_tail_waits", "replica_promotions"):
                assert key in counters
            assert "replica_lag_epochs.r7" in counters
            assert set(replica.gauge_keys()) <= set(counters)
        finally:
            replica.shutdown()


# ------------------------------------------------- differential suite


@pytest.fixture(scope="module")
def diff_cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("diffcluster")
    cluster = ReplicaSet(str(root / "db.edb"), replicas=2,
                         primary_workers=1, replica_workers=1)
    cluster.store_program("edge(a,b). edge(b,c). edge(c,d).")
    yield cluster
    cluster.shutdown()


@pytest.mark.parametrize("seed", range(25))
def test_differential_interleaving(diff_cluster, seed):
    """One seeded interleaving of writes, checkpoints and fenced reads:
    at the fence (catch-up) every replica's answers equal the
    primary's, for both the fresh data and the shared base relation."""
    cluster = diff_cluster
    rng = random.Random(seed)
    rows = sorted({(rng.randrange(50), rng.randrange(50))
                   for _ in range(rng.randrange(3, 12))})
    relation = f"d{seed}"
    cluster.store_relation(relation, rows)
    if rng.random() < 0.3:
        cluster.checkpoint()
    for _ in range(rng.randrange(0, 3)):
        a, b = rng.randrange(100, 200), rng.randrange(100, 200)
        cluster.assert_external(f"edge({a}, {b}).")
    assert cluster.wait_for_catch_up(timeout=15), \
        f"seed {seed}: replicas never reached the fence"
    for goal in (f"{relation}(X, Y)", "edge(X, Y)"):
        expected = answers(cluster.execute(goal))
        for replica in cluster.replicas:
            assert answers(replica.execute(goal)) == expected, \
                f"seed {seed}: {replica.name} diverged on {goal}"
    got = answers(cluster.execute_read(f"{relation}(X, Y)", max_lag=0))
    assert got == answers(cluster.execute(f"{relation}(X, Y)"))


# -------------------------------------------------- staleness bounds


class TestMaxLag:
    def test_lag_bound_rejects_then_admits(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        seeded_primary(path, ctx).save(path)
        # A huge poll interval freezes the replica right after its
        # bootstrap: deterministic, bounded staleness.
        cluster = ReplicaSet(path, replicas=1, primary_workers=1,
                             replica_workers=1, poll_interval=60.0)
        try:
            assert answers(cluster.execute_read("edge(X, Y)",
                                                max_lag=0)) \
                == answers(cluster.execute("edge(X, Y)"))
            cluster.store_relation("fresh", [(1, 1)])
            with pytest.raises(ReplicaLagExceeded) as excinfo:
                cluster.execute_read("fresh(X, Y)", max_lag=0)
            assert excinfo.value.max_lag == 0
            assert excinfo.value.best_lag >= 1
            # a loose bound serves the stale snapshot
            stale = cluster.execute_read("edge(X, Y)", max_lag=100)
            assert answers(stale) == answers(cluster.execute("edge(X, Y)"))
        finally:
            cluster.shutdown()

    def test_no_replicas_falls_through_to_primary(self, tmp_path):
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=0,
                             primary_workers=1)
        try:
            cluster.store_relation("r", [(1,)])
            assert answers(cluster.execute_read("r(X)")) == \
                answers(cluster.execute("r(X)"))
        finally:
            cluster.shutdown()


# ------------------------------------------------------ failover drill


class TestFailoverDrill:
    def test_kill_primary_promote_zero_acknowledged_loss(self, tmp_path):
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=2,
                             primary_workers=1, replica_workers=1)
        try:
            cluster.store_program("edge(a,b). edge(b,c).")
            cluster.store_relation("num", [(i,) for i in range(10)])
            assert cluster.wait_for_catch_up(timeout=15)
            # an acknowledged write the replicas have NOT applied yet:
            # it is fsynced in the WAL, so failover must preserve it
            cluster.store_relation("late", [(42,)])
            cluster.kill_primary()
            winner = cluster.failover()
            assert winner in ("r0", "r1")
            assert not cluster.primary_dead
            late = cluster.execute("late(X)")
            assert len(late) == 1 and "42" in str(late[0])
            assert len(cluster.execute("num(X)")) == 10
            # the new primary owns a fresh WAL generation (era bump)
            assert cluster.primary_store.wal_era >= 2
            # writes flow again and the re-attached replica follows
            cluster.store_relation("post", [(1,)])
            assert cluster.wait_for_catch_up(timeout=15)
            assert len(cluster.replicas) == 1
            survivor = cluster.replicas[0]
            assert answers(survivor.execute("post(X)")) == \
                answers(cluster.execute("post(X)"))
            assert survivor.rebootstraps >= 1
        finally:
            cluster.shutdown()

    def test_freshest_replica_wins(self, tmp_path):
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=2,
                             primary_workers=1, replica_workers=1)
        try:
            cluster.store_relation("seedrel", [(1,)])
            assert cluster.wait_for_catch_up(timeout=15)
            # freeze r1's apply loop; r0 keeps up and must be chosen
            cluster.replicas[1].stop_apply()
            cluster.store_relation("onlyr0", [(2,)])
            assert wait_until(
                lambda: cluster.replicas[0].applied_epoch
                >= cluster.primary_store.mutation_epoch)
            cluster.kill_primary()
            assert cluster.failover() == "r0"
            assert len(cluster.execute("onlyr0(X)")) == 1
        finally:
            cluster.shutdown()

    def test_poisoned_primary_fails_over(self, tmp_path):
        from repro.bang.faults import InjectedIOError
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=1,
                             primary_workers=1, replica_workers=1)
        try:
            cluster.store_relation("good", [(1,), (2,)])
            assert cluster.wait_for_catch_up(timeout=15)
            # the next WAL append fails: the write is NOT acknowledged
            # and the primary store poisons itself (PR 2 semantics)
            cluster.primary_store.wal.faults = \
                FaultInjector().arm_fail_write(1)
            with pytest.raises(InjectedIOError):
                cluster.store_relation("doomed", [(3,)])
            assert cluster.poisoned() is not None
            winner = cluster.failover()
            assert cluster.poisoned() is None  # new primary is clean
            # every acknowledged write survives; the unacknowledged
            # one is (correctly) absent
            assert len(cluster.execute("good(X)")) == 2
            from repro.errors import ExistenceError
            with pytest.raises(ExistenceError):
                cluster.execute("doomed(X)")
            cluster.store_relation("after", [(4,)])
            assert len(cluster.execute("after(X)")) == 1
        finally:
            cluster.shutdown()

    def test_promote_events_and_counters_surface(self, tmp_path):
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=1,
                             primary_workers=1, replica_workers=1)
        try:
            cluster.store_relation("r", [(1,)])
            assert cluster.wait_for_catch_up(timeout=15)
            cluster.kill_primary()
            winner = cluster.failover()
            expo = cluster.exposition()
            parsed = parse_exposition(expo)
            assert parsed["educe_replica_promotions"] >= 1
            telemetry = cluster.telemetry()
            kinds = {e["kind"] for e in telemetry["events"]}
            assert "replica.promote" in kinds
        finally:
            cluster.shutdown()


# -------------------------------------------------- exposition / events


class TestClusterObservability:
    def test_lag_gauges_and_counters_in_exposition(self, tmp_path):
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=2,
                             primary_workers=1, replica_workers=1)
        try:
            cluster.store_relation("r", [(1,)])
            assert cluster.wait_for_catch_up(timeout=15)
            expo = cluster.exposition()
            parsed = parse_exposition(expo)
            for key in ("educe_replica_lag_epochs",
                        "educe_replica_lag_records",
                        "educe_replica_lag_epochs_r0",
                        "educe_replica_lag_records_r1",
                        "educe_replica_records_applied",
                        "educe_replica_bootstraps"):
                assert key in parsed, key
            # caught-up cluster: zero lag on every gauge
            assert parsed["educe_replica_lag_epochs"] == 0
            # gauges are typed gauge, not counter
            assert "# TYPE educe_replica_lag_epochs gauge" in expo
            assert "# TYPE educe_replica_records_applied counter" in expo
        finally:
            cluster.shutdown()

    def test_telemetry_carries_replica_summaries(self, tmp_path):
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=1,
                             primary_workers=1, replica_workers=1)
        try:
            telemetry = cluster.telemetry()
            (summary,) = telemetry["replicas"]
            assert summary["name"] == "r0"
            assert summary["alive"] is True
            kinds = {e["kind"] for e in summary["events"]}
            assert "replica.bootstrap" in kinds
        finally:
            cluster.shutdown()


# ------------------------------------------- shutdown idempotency (S4)


class TestShutdownIdempotency:
    def test_service_shutdown_twice_is_noop(self, tmp_path):
        service = QueryService(workers=1)
        service.submit("X is 1 + 1").result()
        service.shutdown()
        first = service.final_telemetry
        service.shutdown()          # second call returns immediately
        assert service.final_telemetry is first
        with pytest.raises(ServiceClosed):
            service.submit("true")

    def test_concurrent_shutdowns_single_winner(self):
        service = QueryService(workers=2)
        errors = []

        def closer():
            try:
                service.shutdown()
            except Exception as exc:   # pragma: no cover - must not
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        assert service.final_telemetry is not None

    def test_replica_shutdown_idempotent(self, tmp_path, ctx):
        path = str(tmp_path / "db.edb")
        seeded_primary(path, ctx)
        replica = Replica("r0", path, str(tmp_path / "r0"), workers=1)
        replica.shutdown()
        replica.shutdown()
        assert not replica.alive

    def test_cluster_shutdown_with_attached_replicas(self, tmp_path):
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=2,
                             primary_workers=1, replica_workers=1)
        cluster.store_relation("r", [(i,) for i in range(5)])
        # shut down while replicas may still be draining the stream
        cluster.shutdown()
        cluster.shutdown()          # idempotent at cluster level too
        for replica in cluster.replicas:
            assert not replica.alive
        with pytest.raises(ServiceClosed):
            cluster.execute("r(X)")


# ------------------------------ reopened-store Datalog fallback (S2)


class TestDatalogRulebaseMissing:
    def _saved_session(self, tmp_path):
        from repro import EduceStar
        path = str(tmp_path / "db.edb")
        session = EduceStar(store=ExternalStore.open(path))
        session.store_relation("link", [(1, 2), (2, 3), (3, 4)])
        session.store_program(
            "% lint: external link/2\n"
            "reach(X, Y) :- link(X, Y).\n"
            "reach(X, Z) :- link(X, Y), reach(Y, Z).")
        session.save(path)
        return path

    def test_fallback_counted_and_recorded(self, tmp_path):
        from repro import EduceStar
        path = self._saved_session(tmp_path)
        reopened = EduceStar.open(path)
        assert reopened.store.datalog_rules_dropped
        # the query still answers (WAM fallback) ...
        assert next(reopened.solve("reach(1, X)"), None) is not None
        # ... and the silent strategy change is now observable
        assert reopened.datalog.counters()[
            "datalog_rulebase_missing"] >= 1
        kinds = {e["kind"] for e in reopened.store.events.tail(50)}
        assert "datalog.rulebase_missing" in kinds

    def test_event_reported_once_per_procedure(self, tmp_path):
        from repro import EduceStar
        path = self._saved_session(tmp_path)
        reopened = EduceStar.open(path)
        list(reopened.solve("reach(1, X)"))
        list(reopened.solve("reach(2, X)"))
        events = [e for e in reopened.store.events.tail(50)
                  if e["kind"] == "datalog.rulebase_missing"]
        assert len(events) == 1
        assert events[0]["procedure"] == "reach/2"
        assert reopened.datalog.counters()[
            "datalog_rulebase_missing"] == 2

    def test_fresh_store_never_counts(self, tmp_path):
        from repro import EduceStar
        session = EduceStar()
        session.store_relation("link", [(1, 2)])
        session.store_program(
            "% lint: external link/2\n"
            "reach(X, Y) :- link(X, Y).")
        list(session.solve("reach(1, X)"))
        assert session.datalog.counters()[
            "datalog_rulebase_missing"] == 0
