"""The static-analysis framework: verifier, abstract interpreter,
determinism analysis, linter, loader gate and CLI (docs/ANALYSIS.md)."""

import pytest

from repro.analysis import (analyze_clauses, check_code,
                            lint_text, verify_code)
from repro.analysis.cli import main as cli_main
from repro.errors import VerifyError
from repro.wam import instructions as I


def rules_of(findings):
    return {f.rule for f in findings}


def compile_clauses(machine, text):
    """The compiled clauses of a program text, flattened."""
    from repro.wam.compiler import ClauseCompiler
    cc = ClauseCompiler(machine.ctx)
    return [cc.compile_clause(term)
            for term in machine.reader.read_terms(text)]


# =====================================================================
# Structural verification (V1xx)
# =====================================================================

class TestStructural:
    def test_clean_block_is_clean(self, machine):
        machine.consult("p(1). p(2). p(f(X)) :- p(X).")
        proc = machine.procedure("p", 1)
        assert check_code(proc.code, arity=1,
                          dictionary=machine.dictionary) == []

    def test_v101_unknown_opcode(self):
        findings = check_code([("fet_variable", ("x", 0), 0),
                               (I.PROCEED,)])
        assert "V101" in rules_of(findings)

    def test_v101_malformed_operand(self):
        findings = check_code([(I.GET_CONSTANT, "not_a_const", 0),
                               (I.PROCEED,)])
        assert "V101" in rules_of(findings)

    def test_v101_wrong_operand_count(self):
        findings = check_code([(I.PROCEED, 1, 2)])
        assert "V101" in rules_of(findings)

    def test_v102_jump_out_of_range(self):
        findings = check_code([(I.TRY_ME_ELSE, 99), (I.PROCEED,),
                               (I.TRUST_ME,), (I.PROCEED,)])
        assert "V102" in rules_of(findings)

    def test_v103_dead_dictionary_id(self, machine):
        machine.consult("q(a).")
        code = [(I.GET_CONSTANT, ("atom", 999_999), ("x", 0)),
                (I.PROCEED,)]
        findings = check_code(code, dictionary=machine.dictionary)
        assert "V103" in rules_of(findings)

    def test_v104_broken_chain(self):
        # try_me_else points at a plain proceed, not retry/trust
        findings = check_code([(I.TRY_ME_ELSE, 2), (I.PROCEED,),
                               (I.PROCEED,)])
        assert "V104" in rules_of(findings)

    def test_v105_unbalanced_allocate(self):
        findings = check_code([(I.ALLOCATE, 1), (I.PROCEED,)])
        assert "V105" in rules_of(findings)

    def test_v105_deallocate_without_env(self):
        findings = check_code([(I.DEALLOCATE,), (I.PROCEED,)])
        assert "V105" in rules_of(findings)

    def test_v106_empty_and_fallthrough(self):
        assert "V106" in rules_of(check_code([]))
        assert "V106" in rules_of(
            check_code([(I.GET_NIL, ("x", 0))]))

    def test_v107_unregistered_escape(self):
        findings = check_code([(I.ESCAPE, "no_such_builtin", 2),
                               (I.PROCEED,)])
        assert "V107" in rules_of(findings)

    def test_v108_malformed_switch_table(self):
        findings = check_code(
            [(I.SWITCH_ON_CONSTANT, "not_a_dict", 1), (I.FAIL_OP,)])
        assert "V108" in rules_of(findings)

    def test_v109_label_in_assembled_code(self):
        findings = check_code([(I.LABEL, "L1"), (I.PROCEED,)])
        assert "V109" in rules_of(findings)

    def test_v110_try_without_chain(self):
        findings = check_code([(I.TRY, 2), (I.PROCEED,), (I.PROCEED,)])
        assert "V110" in rules_of(findings)

    def test_verify_code_raises_typed_error(self):
        with pytest.raises(VerifyError) as excinfo:
            verify_code([("bogus_op",), (I.PROCEED,)], procedure="p/0")
        err = excinfo.value
        assert err.rule == "V101"
        assert err.offset == 0
        assert "p/0" in str(err)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            check_code([(I.PROCEED,)], level="paranoid")


# =====================================================================
# Abstract interpretation (A2xx)
# =====================================================================

class TestAbstract:
    def test_a201_read_before_write(self):
        code = [(I.PUT_VALUE, ("x", 3), ("x", 0)),
                (I.ESCAPE, "var", 1), (I.PROCEED,)]
        assert "A201" in rules_of(check_code(code, arity=1))

    def test_arity_registers_are_initialised(self):
        code = [(I.PUT_VALUE, ("x", 1), ("x", 0)),
                (I.ESCAPE, "var", 1), (I.PROCEED,)]
        assert check_code(code, arity=2) == []

    def test_a202_y_read_before_write(self):
        code = [(I.ALLOCATE, 2),
                (I.PUT_VALUE, ("y", 1), ("x", 0)),
                (I.PUT_VALUE, ("y", 0), ("x", 1)),
                (I.CALL, 7, 2),
                (I.DEALLOCATE,), (I.PROCEED,)]
        assert "A202" in rules_of(check_code(code, arity=0))

    def test_a202_y_out_of_range(self):
        code = [(I.ALLOCATE, 1),
                (I.GET_VARIABLE, ("y", 5), ("x", 0)),
                (I.PUT_VALUE, ("y", 5), ("x", 0)),
                (I.CALL, 7, 1),
                (I.DEALLOCATE,), (I.PROCEED,)]
        assert "A202" in rules_of(check_code(code, arity=1))

    def test_a203_y_touch_without_env(self):
        code = [(I.GET_VARIABLE, ("y", 0), ("x", 0)), (I.PROCEED,)]
        assert "A203" in rules_of(check_code(code, arity=1))

    def test_a204_unify_outside_mode(self):
        code = [(I.UNIFY_VARIABLE, ("x", 1)), (I.PROCEED,)]
        assert "A204" in rules_of(check_code(code, arity=1))

    def test_a204_mode_killed_by_call_boundary(self):
        code = [(I.ALLOCATE, 1),
                (I.GET_STRUCTURE, 1, ("x", 0)),
                (I.UNIFY_VARIABLE, ("y", 0)),
                (I.PUT_VALUE, ("y", 0), ("x", 0)),
                (I.CALL, 7, 1),
                (I.UNIFY_VALUE, ("x", 0)),   # stale mode after the call
                (I.DEALLOCATE,), (I.PROCEED,)]
        findings = check_code(code, arity=1)
        assert "A204" in rules_of(findings)

    def test_a205_oversized_environment(self):
        code = [(I.ALLOCATE, 3),
                (I.GET_VARIABLE, ("y", 0), ("x", 0)),
                (I.PUT_VALUE, ("y", 0), ("x", 0)),
                (I.CALL, 7, 1),
                (I.DEALLOCATE,), (I.EXECUTE, 7, 0)]
        findings = check_code(code, arity=1)
        a205 = [f for f in findings if f.rule == "A205"]
        # one finding naming both unused slots
        assert len(a205) == 1 and "[1, 2]" in a205[0].message

    def test_a206_unsafe_value_before_nonfinal_call(self):
        code = [(I.ALLOCATE, 1),
                (I.GET_VARIABLE, ("y", 0), ("x", 0)),
                (I.PUT_UNSAFE_VALUE, ("y", 0), ("x", 0)),
                (I.CALL, 7, 1),
                (I.PUT_VALUE, ("y", 0), ("x", 0)),
                (I.CALL, 7, 1),
                (I.DEALLOCATE,), (I.PROCEED,)]
        assert "A206" in rules_of(check_code(code, arity=1))

    def test_backtrack_edge_restores_only_arity_registers(self):
        # x2 written in clause 1 is NOT available in clause 2: the
        # choice point saved only x0..arity-1
        code = [(I.TRY_ME_ELSE, 3),
                (I.GET_VARIABLE, ("x", 2), ("x", 0)),
                (I.PROCEED,),
                (I.TRUST_ME,),
                (I.PUT_VALUE, ("x", 2), ("x", 0)),
                (I.ESCAPE, "var", 1),
                (I.PROCEED,)]
        assert "A201" in rules_of(check_code(code, arity=2))

    def test_compiler_output_is_clean(self, machine):
        machine.consult("""
            len([], 0).
            len([_|T], N) :- len(T, M), N is M + 1.
            rev([], A, A).
            rev([H|T], A, R) :- rev(T, [H|A], R).
            cutty(X) :- X > 0, !, X < 10.
            cutty(_).
            disj(X) :- (X = 1 ; X = 2 ; X > 5).
            negy(X) :- \\+ disj(X).
        """)
        for name, arity in (("len", 2), ("rev", 3), ("cutty", 1),
                            ("disj", 1), ("negy", 1)):
            proc = machine.procedure(name, arity)
            findings = check_code(proc.code, arity=arity,
                                  dictionary=machine.dictionary)
            assert findings == [], (name, findings)


# =====================================================================
# Determinism / indexing analysis (D3xx)
# =====================================================================

class TestDeterminism:
    def _compiled(self, machine, text):
        return compile_clauses(machine, text)

    def test_partitions_and_deterministic_keys(self, machine):
        clauses = self._compiled(machine, """
            color(red, 1). color(green, 2). color(blue, 3).
        """)
        report = analyze_clauses(clauses)
        assert len(report.partitions) == 3
        assert report.deterministic_keys == 3
        assert report.findings == []
        assert report.dead_clauses == []

    def test_var_clause_joins_every_partition(self, machine):
        clauses = self._compiled(machine, """
            p(a, 1). p(X, 2) :- q(X). p(b, 3).
        """)
        report = analyze_clauses(clauses)
        # a var-headed clause is a candidate for every key
        assert report.deterministic_keys == 0

    def test_d301_tampered_block(self, machine):
        from repro.wam.indexing import build_procedure_code
        clauses = self._compiled(machine, "f(a). f(b).")
        block = list(build_procedure_code(clauses))
        block[0] = (I.FAIL_OP,)   # stale/tampered dispatch
        report = analyze_clauses(clauses, code=block)
        assert "D301" in rules_of(report.findings)

    def test_d302_dead_clause(self, machine):
        from repro.wam.indexing import build_procedure_layout
        clauses = self._compiled(machine, "g(a, 1). g(b, 2).")
        layout = build_procedure_layout(clauses)
        # drop clause 1 from every dispatch path: retarget its try/me
        # chain by rebuilding with only clause 0, then analyze the
        # two-clause set against a block that only reaches clause 0
        solo = build_procedure_layout(clauses[:1])
        report = analyze_clauses(clauses[:1] + clauses[1:],
                                 code=list(solo.code))
        assert "D301" in rules_of(report.findings) or \
            "D302" in rules_of(report.findings)
        # and the honest block has no dead code at all
        clean = analyze_clauses(clauses, code=list(layout.code))
        assert clean.dead_clauses == []

    def test_fail_sentinel_not_reported_dead(self, machine):
        clauses = self._compiled(machine, """
            h(a). h(b). h(c). h(d).
        """)
        report = analyze_clauses(clauses)
        assert report.findings == []


# =====================================================================
# Lint (L1xx)
# =====================================================================

class TestLint:
    def test_l101_singleton(self):
        findings = lint_text("p(X, Y) :- q(X).")
        assert any(f.rule == "L101" and "Y" in f.message
                   for f in findings)

    def test_l101_underscore_names_exempt(self):
        findings = lint_text("p(X, _Y, _) :- q(X).")
        assert "L101" not in rules_of(findings)

    def test_l102_undefined_predicate(self):
        findings = lint_text("p(X) :- mystery(X).")
        assert any(f.rule == "L102" and "mystery/1" in f.message
                   for f in findings)

    def test_l102_sees_through_metapredicates(self):
        findings = lint_text(
            "p(L) :- findall(X, hidden(X), L).")
        assert any("hidden/1" in f.message for f in findings
                   if f.rule == "L102")

    def test_l102_call_n_partial_application(self):
        # call(missing2, G) invokes missing2(G) — missing2/1
        findings = lint_text("p(G) :- call(missing2, G).")
        assert any("missing2/1" in f.message for f in findings
                   if f.rule == "L102")

    def test_prelude_and_builtins_are_defined(self):
        assert lint_text("p(L, S) :- msort(L, S), length(S, _N).",
                         name="t") == [
            f for f in lint_text("p(L, S) :- msort(L, S), "
                                 "length(S, _N).", name="t")
            if f.rule != "L102"]

    def test_l103_discontiguous(self):
        findings = lint_text("a(1). b(2). a(3).")
        assert any(f.rule == "L103" and f.indicator == "a/1"
                   for f in findings)

    def test_l104_all_var_heads(self):
        findings = lint_text("m(X, Y) :- n(X, Y). m(X, Y) :- o(X, Y).",
                             extra_defined=(("n", 2), ("o", 2)))
        assert any(f.rule == "L104" and f.indicator == "m/2"
                   for f in findings)

    def test_l104_single_clause_exempt(self):
        findings = lint_text("one(X) :- two(X).",
                             extra_defined=(("two", 1),))
        assert "L104" not in rules_of(findings)

    def test_pragma_disable_scoped(self):
        text = ("% lint: disable=L104 m/2\n"
                "m(X, Y) :- n(X, Y). m(X, Y) :- o(X, Y).\n"
                "k(A) :- p(A). k(B) :- q(B).\n")
        findings = lint_text(text, extra_defined=(
            ("n", 2), ("o", 2), ("p", 1), ("q", 1)))
        assert not any(f.rule == "L104" and f.indicator == "m/2"
                       for f in findings)
        assert any(f.rule == "L104" and f.indicator == "k/1"
                   for f in findings)

    def test_pragma_external(self):
        text = ("% lint: external edb_rel/2\n"
                "view(X) :- edb_rel(X, _).")
        assert not any(f.rule == "L102"
                       for f in lint_text(text))

    def test_op_directives_respected(self):
        text = (":- op(700, xfx, ===).\n"
                "eq(X, Y) :- X === Y.\n"
                "'==='(A, A).")
        findings = lint_text(text)
        assert "L102" not in rules_of(findings)

    def test_dynamic_declares_definition(self):
        findings = lint_text(":- dynamic(counter/1).\n"
                             "bump(N) :- counter(N).")
        assert "L102" not in rules_of(findings)

    def test_l105_unstratified_negation(self):
        text = ("% lint: external edge/2\n"
                "win(X) :- edge(X, Y), \\+ win(Y).")
        findings = lint_text(text)
        assert any(f.rule == "L105" and f.indicator == "win/1"
                   and "negation" in f.message for f in findings)

    def test_l105_mutual_unstratified_cycle(self):
        text = ("% lint: external move/2\n"
                "trapped(X) :- move(X, Y), \\+ escapes(Y).\n"
                "escapes(X) :- move(X, Y), \\+ trapped(Y).")
        findings = lint_text(text)
        flagged = {f.indicator for f in findings if f.rule == "L105"}
        assert flagged == {"trapped/1", "escapes/1"}

    def test_l105_non_range_restricted_head(self):
        # recursive, Datalog-shaped, but the head variable C is never
        # bound by a positive body literal
        text = ("% lint: external edge/2\n"
                "tag(X, C) :- edge(X, Y), tag(Y, _C0).")
        findings = lint_text(text)
        assert any(f.rule == "L105" and f.indicator == "tag/2"
                   and "C" in f.message for f in findings)

    def test_l105_stratified_negation_clean(self):
        text = ("% lint: external edge/2 node/1\n"
                "reach(X, Y) :- edge(X, Y).\n"
                "reach(X, Z) :- edge(X, Y), reach(Y, Z).\n"
                "unreachable(X, Y) :- node(X), node(Y), "
                "\\+ reach(X, Y).")
        assert "L105" not in rules_of(lint_text(text))

    def test_l105_non_datalog_recursion_exempt(self):
        # arithmetic in the body puts the clause outside the Datalog
        # fragment: WAM execution is its normal path, nothing to flag
        text = ("% lint: external edge/2\n"
                "depth(X, N) :- edge(X, Y), depth(Y, M), N is M + 1.")
        assert "L105" not in rules_of(lint_text(text))

    def test_l105_disable_pragma(self):
        text = ("% lint: disable=L105 win/1\n"
                "% lint: external edge/2\n"
                "win(X) :- edge(X, Y), \\+ win(Y).")
        assert "L105" not in rules_of(lint_text(text))


# =====================================================================
# The loader gate
# =====================================================================

class TestLoaderGate:
    def _populated(self, **kwargs):
        from repro.engine.session import EduceStar
        session = EduceStar(**kwargs)
        session.store_relation("edge", [(1, 2), (2, 3), (3, 4)])
        session.store_program(
            "% lint: external edge/2\n"
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- edge(X, Y), path(Y, Z).")
        return session

    @pytest.mark.parametrize("level", ["off", "structural", "full"])
    def test_all_levels_answer_identically(self, level):
        session = self._populated(verify=level)
        answers = sorted((s["X"], s["Y"])
                         for s in session.solve("path(X, Y)"))
        assert len(answers) == 6

    def test_counters_and_histogram(self):
        session = self._populated(verify="full")
        assert session.count_solutions("path(1, Y)") == 3
        counters = session.loader.counters()
        assert counters["verify_checks"] > 0
        assert counters["verify_rejects"] == 0
        hist = session.loader.histograms()["verify_ms"]
        assert hist.count > 0

    def test_off_level_does_no_checks(self):
        session = self._populated(verify="off")
        assert session.count_solutions("path(1, Y)") == 3
        assert session.loader.counters()["verify_checks"] == 0

    def test_facts_path_exempt(self):
        from repro.engine.session import EduceStar
        session = EduceStar(verify="full")
        session.store_relation("f", [(1,), (2,)])
        assert session.count_solutions("f(_)") == 2
        assert session.loader.counters()["verify_checks"] == 0

    def test_bad_level_rejected(self):
        from repro.engine.session import EduceStar
        with pytest.raises(ValueError):
            EduceStar(verify="fast")

    def test_workloads_verify_full_clean(self):
        """The acceptance bar: the integrity workload's whole program
        (rules + constraints + specialiser) stored in the EDB and run
        at verify="full" — many checks, zero rejects."""
        from repro.engine.session import EduceStar
        from repro.workloads import integrity
        session = integrity.load_educestar(EduceStar(verify="full"))
        integrity.load_database(session, integrity.generate(scale=0.5))
        result = integrity.run_preprocess(session, integrity.UPDATES[2])
        assert result is not None
        counters = session.loader.counters()
        assert counters["verify_checks"] > 0
        assert counters["verify_rejects"] == 0


# =====================================================================
# Self-verify choke point
# =====================================================================

class TestSelfVerify:
    def test_suite_runs_with_self_verify_on(self):
        from repro.analysis import self_verify_enabled
        assert self_verify_enabled()   # armed in conftest.py

    def test_assembler_self_verify_catches_corruption(self):
        from repro.wam.assembler import assemble
        with pytest.raises(VerifyError):
            assemble([("bogus_op", 1), (I.PROCEED,)])


# =====================================================================
# Regression corpus (tests/corpus/*.pl)
# =====================================================================

def _regression_files():
    import glob
    import os
    here = os.path.dirname(__file__)
    return sorted(glob.glob(os.path.join(here, "corpus", "*.pl")))


@pytest.mark.parametrize("path", _regression_files(),
                         ids=lambda p: p.rsplit("/", 1)[-1])
class TestRegressionCorpus:
    def test_lints_clean(self, path):
        with open(path, "r", encoding="utf-8") as f:
            assert lint_text(f.read(), name=path) == []

    def test_compiles_and_verifies_full(self, path, session):
        """Consult (under the suite-wide self-verify) and then fully
        verify every resulting procedure block."""
        with open(path, "r", encoding="utf-8") as f:
            session.consult(f.read())
        machine = session.machine
        checked = 0
        for proc in machine.procedures.values():
            if not proc.code:
                continue
            checked += 1
            findings = check_code(proc.code, arity=proc.arity,
                                  dictionary=machine.dictionary)
            assert findings == [], (proc.name, proc.arity, findings)
        assert checked > 0

    def test_stored_in_edb_verifies_at_load(self, path):
        """The same programs through the loader gate at verify="full":
        every stored procedure is fetched (open-goal call), verified
        and accepted."""
        from repro.engine.session import EduceStar
        session = EduceStar(verify="full")
        with open(path, "r", encoding="utf-8") as f:
            stored = session.store_program(f.read())
        from repro.errors import ReproError
        for name, arity in stored:
            goal = name if arity == 0 else \
                f"{name}({', '.join('_' for _ in range(arity))})"
            try:
                session.solve_once(goal)   # forces fetch + verify
            except VerifyError:
                raise
            except ReproError:
                pass   # open call may be insufficiently instantiated
        counters = session.loader.counters()
        assert counters["verify_checks"] > 0
        assert counters["verify_rejects"] == 0


# =====================================================================
# CLI
# =====================================================================

class TestCli:
    def test_corpus_is_clean(self, capsys):
        assert cli_main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_file_with_findings_exits_1(self, tmp_path, capsys):
        f = tmp_path / "dirty.pl"
        f.write_text("p(X) :- q(X).")
        assert cli_main(["lint", str(f)]) == 1
        assert "L102" in capsys.readouterr().out

    def test_verify_clean_file_exits_0(self, tmp_path, capsys):
        f = tmp_path / "clean.pl"
        f.write_text("% lint: external base/1\n"
                     "p(a). p(b).\n"
                     "q(X) :- p(X), base(X).\n")
        assert cli_main(["verify", str(f)]) == 0
        assert "procedures verified" in capsys.readouterr().out

    def test_missing_file_exits_2(self):
        assert cli_main(["lint", "/no/such/file.pl"]) == 2

    def test_usage_exits_2(self):
        assert cli_main(["frobnicate"]) == 2
