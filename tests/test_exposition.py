"""Prometheus text exposition: format validity and round-tripping.

A small, strict parser for the Prometheus text format lives here (no
dependency — the point of `repro.obs.exposition` is stdlib-only
exposition), and every surface that renders a snapshot is validated
through it:

* direct rendering of live / merged `MetricsRegistry` snapshots;
* `QueryService.exposition()`;
* `benchmarks/bench_concurrency.py --exposition PATH` (the CI
  telemetry job runs exactly this, briefly).
"""

import math
import os
import re
import subprocess
import sys

import pytest

from repro.obs import MetricsRegistry, render_prometheus
from repro.service import QueryService

REPO = os.path.join(os.path.dirname(__file__), os.pardir)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')


def parse_prometheus(text):
    """Strict parse of Prometheus text format.

    Returns ``(samples, types)`` where samples maps
    ``(name, labels_tuple)`` → float value and types maps metric name
    → declared type.  Raises AssertionError on any malformed line,
    undeclared sample, duplicate series, or non-cumulative histogram.
    """
    samples = {}
    types = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            assert parts[:2] == ["#", "TYPE"], \
                f"line {lineno}: unexpected comment {line!r}"
            assert len(parts) == 4, f"line {lineno}: bad TYPE {line!r}"
            name, mtype = parts[2], parts[3]
            assert _NAME_RE.match(name), f"line {lineno}: name {name!r}"
            assert mtype in ("counter", "gauge", "histogram"), mtype
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = mtype
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"line {lineno}: malformed sample {line!r}"
        name = m.group("name")
        labels = ()
        if m.group("labels"):
            pairs = []
            for part in m.group("labels").split(","):
                lm = _LABEL_RE.match(part)
                assert lm, f"line {lineno}: malformed label {part!r}"
                pairs.append((lm.group("key"), lm.group("val")))
            labels = tuple(pairs)
        raw = m.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        assert not math.isnan(value), f"line {lineno}: NaN sample"
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in types or base in types, \
            f"line {lineno}: sample {name!r} has no TYPE declaration"
        key = (name, labels)
        assert key not in samples, f"line {lineno}: duplicate {key}"
        samples[key] = value
    _check_histograms(samples, types)
    return samples, types


def _check_histograms(samples, types):
    for name, mtype in types.items():
        if mtype != "histogram":
            continue
        buckets = [(lbls, v) for (n, lbls), v in samples.items()
                   if n == f"{name}_bucket"]
        assert buckets, f"histogram {name} has no buckets"
        count = samples[(f"{name}_count", ())]
        assert (f"{name}_sum", ()) in samples
        les = []
        for lbls, value in buckets:
            assert len(lbls) == 1 and lbls[0][0] == "le"
            le = lbls[0][1]
            les.append((float("inf") if le == "+Inf" else float(le),
                        value))
        les.sort()
        assert les[-1][0] == float("inf"), f"{name}: no +Inf bucket"
        assert les[-1][1] == count, f"{name}: +Inf bucket != count"
        cumulative = [v for _, v in les]
        assert cumulative == sorted(cumulative), \
            f"{name}: buckets not cumulative"


def sanitize(name):
    """Independent re-implementation of the exposition name mangling
    (kept deliberately separate from the production code)."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if out[0].isdigit():
        out = "_" + out
    return "educe_" + out


def service_snapshot(**kwargs):
    svc = QueryService(workers=2, queue_size=8, **kwargs)
    try:
        svc.store_relation("edge", [(1, 2), (2, 3), (3, 4)])
        for t in svc.submit_many(["edge(X, Y)"] * 4):
            t.result(timeout=30)
    finally:
        svc.shutdown()
    return svc


class TestRenderValidity:
    def test_empty_snapshot(self):
        samples, types = parse_prometheus(render_prometheus({}))
        assert samples == {} and types == {}

    def test_plain_counters_and_gauges(self):
        text = render_prometheus({"reads": 7, "pages": 3},
                                 gauge_keys=("pages",))
        samples, types = parse_prometheus(text)
        assert types["educe_reads"] == "counter"
        assert types["educe_pages"] == "gauge"
        assert samples[("educe_reads", ())] == 7

    def test_name_sanitization(self):
        text = render_prometheus({"weird-name.p99": 1.5,
                                  "weird-name.count": 2,
                                  "weird-name.sum": 3.0})
        samples, _ = parse_prometheus(text)
        assert all(_NAME_RE.match(n) for n, _ in samples)

    def test_service_snapshot_parses(self):
        svc = service_snapshot()
        snap = svc.final_telemetry["counters"]
        samples, types = parse_prometheus(
            render_prometheus(snap, gauge_keys=svc.metrics.gauge_keys()))
        assert types["educe_service_ticket_ms"] == "histogram"
        assert types["educe_service_inflight"] == "gauge"
        assert samples[("educe_service_completed", ())] == 4


class TestRoundTrip:
    def test_merged_service_snapshot_round_trips_every_counter(self):
        """The acceptance differential: merge two services' snapshots,
        render, parse, and verify every glossary counter (every plain
        key of the merged snapshot) comes back with its exact value —
        histogram families included."""
        a = service_snapshot().final_telemetry["counters"]
        svc = service_snapshot()
        b = svc.final_telemetry["counters"]
        merged = MetricsRegistry.merge(a, b)
        text = render_prometheus(merged,
                                 gauge_keys=svc.metrics.gauge_keys())
        samples, types = parse_prometheus(text)

        for key, value in merged.items():
            if not isinstance(value, (int, float)):
                continue
            if "." in key:
                base, suffix = key.split(".", 1)
                name = sanitize(base)
                if suffix in ("count", "sum"):
                    got = samples[(f"{name}_{suffix}", ())]
                elif suffix in ("min", "max", "p50", "p90", "p99"):
                    got = samples[(f"{name}_{suffix}", ())]
                elif suffix.startswith("bucket.le_"):
                    le = suffix[len("bucket.le_"):]
                    le = "+Inf" if le == "inf" else le
                    got = samples[(f"{name}_bucket", (("le", le),))]
                else:  # pragma: no cover - new suffixes must be added
                    pytest.fail(f"unknown histogram suffix {key}")
            else:
                got = samples[(sanitize(key), ())]
            assert got == pytest.approx(value), key
        # and the merged families stayed structurally valid histograms
        assert types[sanitize("service_ticket_ms")] == "histogram"
        assert samples[(sanitize("service_ticket_ms") + "_count", ())] \
            == 8

    def test_service_exposition_method(self):
        svc = QueryService(workers=1, queue_size=4)
        try:
            svc.store_relation("edge", [(1, 2)])
            svc.submit("edge(X, Y)").result(timeout=30)
            samples, types = parse_prometheus(svc.exposition())
            assert ("educe_service_submitted", ()) in samples
        finally:
            svc.shutdown()


class TestObservabilityCounters:
    def test_profiler_and_explain_counters_render(self):
        """The profiler/explain counters introduced for EXPLAIN/ANALYZE
        and sampled profiling survive the strict parser as ordinary
        counters with their exact values."""
        svc = QueryService(workers=1, queue_size=8, profiling=True,
                           profile_interval=64, explain=True)
        try:
            svc.store_relation("edge", [(i, i + 1) for i in range(40)])
            for t in svc.submit_many(["edge(X, Y)"] * 4):
                t.result(timeout=30)
            report = svc.profile_report()
            samples, types = parse_prometheus(svc.exposition())
            for key in ("profiler_samples", "profiler_sampled_instr",
                        "profiler_sampled_data_refs",
                        "profiler_truncated_stacks",
                        "profiler_unknown_blocks"):
                name = sanitize(key)
                assert types[name] == "counter", key
                assert samples[(name, ())] == report["counters"][key]
            assert samples[(sanitize("profiler_samples"), ())] > 0
            assert types[sanitize("explain_queries")] == "counter"
            assert samples[(sanitize("explain_queries"), ())] >= 4
        finally:
            svc.shutdown()

    def test_per_replica_dotted_gauges_round_trip(self, tmp_path):
        """Per-replica dotted keys (``replica_lag_epochs.r0``) must
        come out of the cluster exposition as per-replica gauges — the
        dot mangled to an underscore, typed gauge not counter, and the
        value intact."""
        from repro.replication import ReplicaSet
        cluster = ReplicaSet(str(tmp_path / "db.edb"), replicas=2,
                             primary_workers=1, replica_workers=1)
        try:
            cluster.store_relation("edge", [(1, 2), (2, 3)])
            assert cluster.wait_for_catch_up(timeout=15)
            counters = cluster.counters()
            samples, types = parse_prometheus(cluster.exposition())
            for replica in ("r0", "r1"):
                for family in ("replica_lag_epochs",
                               "replica_lag_records"):
                    dotted = f"{family}.{replica}"
                    name = sanitize(dotted)
                    assert name.endswith(f"_{replica}")
                    assert types[name] == "gauge", dotted
                    assert samples[(name, ())] == counters[dotted]
            # The summed family keys stay gauges too.
            assert types[sanitize("replica_lag_epochs")] == "gauge"
        finally:
            cluster.shutdown()


class TestBenchmarkExposition:
    def test_bench_concurrency_emits_valid_exposition(self, tmp_path):
        """The CI telemetry job in miniature: a very brief benchmark
        run must produce parseable Prometheus text containing the
        service latency histograms."""
        out = tmp_path / "bench.prom"
        proc = subprocess.run(
            [sys.executable,
             os.path.join(REPO, "benchmarks", "bench_concurrency.py"),
             "--queries", "8", "--workers", "1", "--scale", "0.02",
             "--latency-ms", "0.1", "--exposition", str(out)],
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")})
        assert proc.returncode == 0, proc.stderr[-2000:]
        samples, types = parse_prometheus(out.read_text())
        assert types["educe_service_ticket_ms"] == "histogram"
        assert types["educe_service_queue_wait_ms"] == "histogram"
        assert samples[("educe_service_completed", ())] == 8
        assert samples[
            ("educe_service_ticket_ms_count", ())] == 8
