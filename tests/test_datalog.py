"""Unit tests for the Datalog subsystem (docs/DATALOG.md).

Covers rule extraction and its rejection reasons, stratification and
SCC analysis, the new algebra nodes, semi-naive fixpoints (including
stratified negation), magic-set rewriting, the strategy planner, the
session/service wiring, and the documented failure modes (retract,
checkpoint reopen).
"""

import pytest

from repro import EduceStar
from repro.lang.reader import Reader
from repro.relational.algebra import (CrossJoin, Filter, LookupJoin, Rows,
                                      describe, execute)
from repro.relational.datalog import (DEFAULT_MIN_ROWS, NotDatalog, analyze,
                                      choose, rule_from_clause, stratify)
from repro.relational.datalog.magic import rewrite
from repro.relational.datalog.rules import (V, range_restriction_violation)

READER = Reader()


def clause(text):
    return READER.read_term(text)


def rules_map(text, edb=()):
    """program text -> {indicator: [Rule]} grouped by head."""
    grouped = {}
    for term in READER.read_terms(text):
        rule = rule_from_clause(term)
        grouped.setdefault(rule.head.pred, []).append(rule)
    return grouped


# =====================================================================
# Extraction
# =====================================================================

class TestExtraction:
    def test_fact_and_rule(self):
        rule = rule_from_clause(clause("p(a, 7)."))
        assert rule.head.pred == ("p", 2)
        assert rule.head.args == ("a", 7)
        assert rule.body == ()
        rule = rule_from_clause(clause("p(X) :- q(X, Y), r(Y)."))
        assert [l.pred for l in rule.body] == [("q", 2), ("r", 1)]

    def test_variables_shared_across_literals(self):
        rule = rule_from_clause(clause("p(X) :- q(X, Y), r(Y)."))
        q, r = rule.body
        assert q.args[1] == r.args[0]          # same V for Y

    def test_negation_extracted(self):
        rule = rule_from_clause(clause("p(X) :- q(X), \\+ r(X)."))
        assert rule.body[1].negated
        assert rule.body[1].pred == ("r", 1)

    @pytest.mark.parametrize("text", [
        "p(X) :- X = 1.",                    # builtin
        "p(X) :- q(X), !.",                  # cut
        "p(X) :- (q(X) ; r(X)).",            # disjunction
        "p(X) :- Y is X + 1, q(Y).",         # arithmetic
        "p(f(X)) :- q(X).",                  # compound head arg
        "p(X) :- q(f(X)).",                  # compound body arg
        "p(X) :- \\+ G.",                    # metacall under negation
    ])
    def test_non_datalog_rejected(self, text):
        with pytest.raises(NotDatalog):
            rule_from_clause(clause(text))

    def test_range_restriction(self):
        safe = rule_from_clause(clause("p(X) :- q(X)."))
        assert range_restriction_violation(safe) is None
        unsafe = rule_from_clause(clause("p(X, Y) :- q(X)."))
        assert "Y" in (range_restriction_violation(unsafe) or "")
        neg = rule_from_clause(clause("p(X) :- q(X), \\+ r(X, Z)."))
        assert range_restriction_violation(neg) is not None


# =====================================================================
# Stratification
# =====================================================================

class TestStratify:
    def test_recursion_detected(self):
        rules = rules_map("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """)
        strata, recursive, error = stratify(rules)
        assert error is None
        assert ("reach", 2) in recursive
        assert strata[("reach", 2)] == 0

    def test_negation_raises_stratum(self):
        rules = rules_map("""
            p(X) :- base(X).
            q(X) :- base(X), \\+ p(X).
        """)
        strata, _recursive, error = stratify(rules)
        assert error is None
        assert strata[("q", 1)] == strata[("p", 1)] + 1

    def test_unstratified_negation(self):
        rules = rules_map("""
            win(X) :- move(X, Y), \\+ win(Y).
        """)
        strata, recursive, error = stratify(rules)
        assert strata is None
        assert "win/1" in error

    def test_mutual_recursion_same_stratum(self):
        rules = rules_map("""
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
        """)
        strata, recursive, error = stratify(rules)
        assert error is None
        assert ("even", 1) in recursive and ("odd", 1) in recursive
        assert strata[("even", 1)] == strata[("odd", 1)]


# =====================================================================
# Whole-program analysis
# =====================================================================

class TestAnalyze:
    def edb(self, *inds):
        members = set(inds)
        return lambda ind: ind in members

    def clause_map(self, text):
        grouped = {}
        for term in READER.read_terms(text):
            rule = rule_from_clause(term)      # heads only, for grouping
            grouped.setdefault(rule.head.pred, []).append(term)
        return grouped

    def test_evaluable_program(self):
        analysis = analyze(self.clause_map("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """), self.edb(("edge", 2)))
        assert ("reach", 2) in analysis.evaluable
        assert ("edge", 2) in analysis.edb
        assert ("reach", 2) in analysis.recursive

    def test_missing_dependency_blocks(self):
        analysis = analyze(self.clause_map("""
            p(X) :- mystery(X).
        """), self.edb())
        assert ("p", 1) in analysis.blocked
        assert "mystery/1" in analysis.blocked[("p", 1)]

    def test_blocked_status_propagates(self):
        analysis = analyze(self.clause_map("""
            top(X) :- mid(X).
            mid(X) :- mystery(X).
        """), self.edb())
        assert ("top", 1) in analysis.blocked
        assert ("mid", 1) in analysis.blocked

    def test_unstratified_poisons_only_its_scc(self):
        analysis = analyze(self.clause_map("""
            win(X) :- move(X, Y), \\+ win(Y).
            reach(X, Y) :- move(X, Y).
            reach(X, Z) :- move(X, Y), reach(Y, Z).
        """), self.edb(("move", 2)))
        assert ("win", 1) in analysis.blocked
        assert "unstratified" in analysis.blocked[("win", 1)]
        assert ("reach", 2) in analysis.evaluable


# =====================================================================
# Algebra additions
# =====================================================================

class TestAlgebraNodes:
    def test_rows_and_describe(self):
        node = Rows([(1,), (2,)], "delta")
        assert execute(node) == [(1,), (2,)]
        assert describe(node) == "Rows#2(delta)"

    def test_lookup_join_reuses_index(self):
        index = {1: [(1, "a")], 2: [(2, "b"), (2, "c")]}
        join = LookupJoin(Rows([(1,), (2,), (3,)], "outer"), index, 0,
                          "edge")
        assert execute(join) == [(1, 1, "a"), (2, 2, "b"), (2, 2, "c")]
        assert "edge" in describe(join)

    def test_cross_join(self):
        plan = CrossJoin(Rows([(1,), (2,)], "l"), Rows([("x",)], "r"))
        assert sorted(execute(plan)) == [(1, "x"), (2, "x")]

    def test_filter_over_lookup_join(self):
        index = {1: [(1, 1)], 2: [(2, 9)]}
        join = LookupJoin(Rows([(1,), (2,)], "o"), index, 0)
        filtered = Filter(join, lambda row: row[1] == row[2])
        assert execute(filtered) == [(1, 1, 1)]


# =====================================================================
# Magic rewriting
# =====================================================================

class TestMagic:
    def reach_rules(self):
        return rules_map("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """)

    def test_rewrite_structure(self):
        program = rewrite(self.reach_rules(), ("reach", 2), {0},
                          ((0, "a"),))
        assert program is not None
        assert program.adornment == "bf"
        assert program.query_pred == ("reach@bf", 2)
        assert ("magic$reach@bf", 1) in program.magic_preds
        # seed fact for the query constant
        seed = program.rules[("magic$reach@bf", 1)][0]
        assert seed.body == () or any(
            r.body == () and r.head.args == ("a",)
            for r in program.rules[("magic$reach@bf", 1)])

    def test_no_bound_positions_no_rewrite(self):
        assert rewrite(self.reach_rules(), ("reach", 2), set(), ()) is None

    def test_rewritten_program_is_stratifiable(self):
        program = rewrite(self.reach_rules(), ("reach", 2), {0},
                          ((0, "a"),))
        strata, _rec, error = stratify(program.rules)
        assert error is None


# =====================================================================
# Strategy planner
# =====================================================================

class TestStrategy:
    def session(self, edges, datalog="auto", **kwargs):
        kb = EduceStar(datalog=datalog, **kwargs)
        kb.store_relation("edge", edges)
        kb.store_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
            direct(X, Y) :- edge(X, Y).
        """)
        return kb

    def big_edges(self):
        from repro.workloads.graphs import k_ary_tree
        return k_ary_tree(DEFAULT_MIN_ROWS + 64)

    def test_small_edb_stays_topdown(self):
        kb = self.session([("a", "b"), ("b", "c")])
        decision = choose(kb.datalog.analysis(), ("reach", 2), kb.store)
        assert decision.strategy == "topdown"
        assert "small EDB" in decision.reason

    def test_large_recursive_goes_bottomup(self):
        kb = self.session(self.big_edges())
        decision = choose(kb.datalog.analysis(), ("reach", 2), kb.store)
        assert decision.strategy == "bottomup"
        assert decision.base_rows >= DEFAULT_MIN_ROWS

    def test_non_recursive_stays_topdown(self):
        kb = self.session(self.big_edges())
        decision = choose(kb.datalog.analysis(), ("direct", 2), kb.store)
        assert decision.strategy == "topdown"
        assert "non-recursive" in decision.reason

    def test_force_overrides_size(self):
        kb = self.session([("a", "b")])
        decision = choose(kb.datalog.analysis(), ("reach", 2), kb.store,
                          mode="force")
        assert decision.strategy == "bottomup"

    def test_off_disables(self):
        kb = self.session(self.big_edges())
        decision = choose(kb.datalog.analysis(), ("reach", 2), kb.store,
                          mode="off")
        assert decision.strategy == "topdown"

    def test_auto_routes_large_goal(self):
        kb = self.session(self.big_edges())
        answers = list(kb.solve("reach(n0, X)"))
        assert kb.datalog.bottomup == 1
        assert len(answers) == DEFAULT_MIN_ROWS + 64

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EduceStar(datalog="sometimes")


# =====================================================================
# Engine behaviour
# =====================================================================

class TestEngine:
    def reach_kb(self, n=30, **kwargs):
        from repro.workloads.graphs import chain
        kb = EduceStar(datalog="force", **kwargs)
        kb.store_relation("edge", chain(n))
        kb.store_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """)
        return kb

    def test_bound_query_uses_magic(self):
        kb = self.reach_kb()
        answers = list(kb.solve("reach(n0, X)"))
        assert len(answers) == 30
        assert kb.datalog.magic_rewrites == 1
        assert kb.datalog.magic_facts > 0

    def test_unbound_query_full_fixpoint(self):
        kb = self.reach_kb(10)
        answers = list(kb.solve("reach(X, Y)"))
        assert len(answers) == 55                    # 10+9+...+1
        assert kb.datalog.magic_rewrites == 0

    def test_ground_query(self):
        kb = self.reach_kb(10)
        assert list(kb.solve("reach(n0, n10)")) != []
        assert list(kb.solve("reach(n10, n0)")) == []

    def test_repeated_query_variable(self):
        kb = self.reach_kb(10)
        assert list(kb.solve("reach(X, X)")) == []

    def test_limit_respected(self):
        kb = self.reach_kb(20)
        assert len(list(kb.solve("reach(n0, X)", limit=5))) == 5

    def test_solutions_deterministic(self):
        kb = self.reach_kb(15)
        first = [s.bindings for s in kb.solve("reach(n0, X)")]
        second = [s.bindings for s in kb.solve("reach(n0, X)")]
        assert first == second

    def test_counters_and_histogram(self):
        kb = self.reach_kb()
        list(kb.solve("reach(n0, X)"))
        counters = kb.counters()
        assert counters["datalog_queries"] == 1
        assert counters["datalog_bottomup"] == 1
        assert counters["datalog_iterations"] > 0
        hist = kb.datalog.histograms()["datalog_fixpoint_iterations"]
        assert hist.count == 1
        snapshot = kb.metrics.snapshot()
        assert "datalog_fixpoint_iterations.count" in snapshot

    def test_span_emitted_under_profile(self):
        kb = self.reach_kb()
        profile = kb.profile("reach(n0, X)")
        names = {span.name for span in profile.root.walk()} \
            if profile.root else set()
        assert "datalog.evaluate" in names

    def test_assert_extends_rulebase(self):
        kb = self.reach_kb(10)
        kb.store_relation("special", [("n3",)])
        before = set(
            tuple(sorted(s.bindings.items())) for s in kb.solve("reach(n0, X)"))
        kb.assert_external("reach(zzz, qqq).")
        answers = list(kb.solve("reach(n0, X)"))
        assert len(answers) == len(before)
        assert list(kb.solve("reach(zzz, X)")) != []

    def test_retract_falls_back_to_wam(self):
        kb = self.reach_kb(10)
        assert list(kb.solve("reach(n0, X)"))
        assert kb.datalog.bottomup == 1
        kb.store.retract_clause("reach", 2, 1)       # drop recursive rule
        kb.loader.invalidate("reach", 2)
        answers = list(kb.solve("reach(n0, X)"))
        assert len(answers) == 1                     # only the base rule
        assert kb.datalog.bottomup == 1              # not routed again

    def test_reopened_store_falls_back(self, tmp_path):
        path = str(tmp_path / "kb.edb")
        kb = EduceStar.create(path, datalog="force")
        kb.store_relation("edge", [("a", "b"), ("b", "c")])
        kb.store_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """)
        assert list(kb.solve("reach(a, X)"))
        assert kb.datalog.bottomup == 1
        kb.save(path)

        reopened = EduceStar.open(path, datalog="force")
        assert len(reopened.store.datalog_rules) == 0
        answers = list(reopened.solve("reach(a, X)"))
        assert len(answers) == 2                     # WAM answered
        assert reopened.datalog.bottomup == 0

    def test_negation_program(self):
        from repro.workloads.graphs import UNREACHABLE_PROGRAM
        kb = EduceStar(datalog="force")
        kb.store_relation("edge", [("a", "b"), ("b", "c")])
        kb.store_relation("node", [("a",), ("b",), ("c",)])
        kb.store_program(UNREACHABLE_PROGRAM)
        got = {s["X"].name for s in kb.solve("unreachable(c, X)")}
        assert got == {"a", "b", "c"}
        assert kb.datalog.bottomup == 1

    def test_explain(self):
        kb = self.reach_kb()
        text = kb.datalog.explain("reach(n0, X)")
        assert "bottomup" in text
        assert "stratum 0" in text
        assert "bf" in text
        assert "not routable" in kb.datalog.explain("foo(X), bar(X)")

    def test_conjunction_not_routed(self):
        kb = self.reach_kb(10)
        answers = list(kb.solve("reach(n0, X), reach(X, n10)"))
        assert answers                               # WAM handled it
        assert kb.datalog.bottomup == 0


# =====================================================================
# Service integration
# =====================================================================

class TestService:
    def test_service_routes_and_exposes(self):
        from repro.obs import render_prometheus
        from repro.service import QueryService
        from repro.workloads.graphs import k_ary_tree

        svc = QueryService(workers=2, datalog="force")
        try:
            svc.store_relation("edge", k_ary_tree(100))
            svc.store_program("""
                reach(X, Y) :- edge(X, Y).
                reach(X, Z) :- edge(X, Y), reach(Y, Z).
            """)
            answers = svc.submit("reach(n0, X)").result(timeout=30)
            assert len(answers) == 100
            snapshot = svc.metrics.snapshot()
            assert snapshot["datalog_bottomup"] >= 1
            text = render_prometheus(snapshot)
            assert "datalog_bottomup" in text
        finally:
            svc.shutdown()
