"""Whole-program analysis: call graph, modes, determinism, consumers.

Covers the `repro.analysis.global_` package (docs/ANALYSIS.md,
"Whole-program analysis") and its three consumers: the WAM optimizer's
mode-driven dispatch, the Datalog strategy planner's determinism
short-circuit, and the linter's M rules.
"""

import json
import re


from repro import EduceStar
from repro.analysis.global_ import (ANY, GROUND, NONVAR, analyze_program,
                                    build_call_graph, builtin_signature,
                                    infer_cardinality, infer_modes, join,
                                    leq, mode_string, program_from_text,
                                    refine, tarjan_sccs)

# A dispatch shape no local analysis can index: the key column (arg 1)
# repeats constants, the first argument is a variable in every head.
DISPATCH = """
    act(S, k1, on) :- mark(on).
    act(S, k1, off) :- mark(off).
    act(S, k2, off).
    mark(_).
    route(S, R) :- lookup(S, K), act(S, K, R).
    lookup(c, k1).
    lookup(d, k2).
"""


def analyzed(text):
    return analyze_program(program_from_text(text))


# =====================================================================
# Mode lattice
# =====================================================================

class TestLattice:
    def test_join_weakens(self):
        assert join(GROUND, NONVAR) == NONVAR
        assert join(GROUND, ANY) == ANY
        assert join(GROUND, GROUND) == GROUND

    def test_refine_strengthens(self):
        assert refine(ANY, NONVAR) == NONVAR
        assert refine(NONVAR, GROUND) == GROUND
        assert refine(GROUND, ANY) == GROUND

    def test_order(self):
        assert leq(GROUND, NONVAR) and leq(NONVAR, ANY)
        assert not leq(ANY, GROUND)

    def test_mode_string_letters(self):
        assert mode_string((GROUND, NONVAR, ANY)) == "gna"


# =====================================================================
# Call graph
# =====================================================================

class TestCallGraph:
    def test_edges_and_sites(self):
        program = program_from_text(DISPATCH)
        graph = build_call_graph(program)
        assert graph.edges[("route", 2)] == {("lookup", 2), ("act", 3)}
        callees = {site.callee for site in graph.sites
                   if site.caller == ("route", 2)}
        assert callees == {("lookup", 2), ("act", 3)}

    def test_metapredicate_goal_arguments(self):
        program = program_from_text("""
            p(1).
            q(L) :- length(L, _).
            main :- findall(X, p(X), L), q(L).
            % lint: external main/0
        """)
        graph = build_call_graph(program)
        assert ("p", 1) in graph.edges[("main", 0)]
        assert ("q", 1) in graph.edges[("main", 0)]

    def test_dynamic_declaration_is_external(self):
        program = program_from_text("""
            :- dynamic(counter/1).
            bump :- counter(N).
            % lint: external bump/0
        """)
        assert ("counter", 1) in program.externals

    def test_pragma_external(self):
        program = program_from_text("p :- helper(1).\n"
                                    "% lint: external helper/1\n")
        assert ("helper", 1) in program.externals

    def test_recursive_detection(self):
        program = program_from_text("""
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            edge(a, b).
        """)
        graph = build_call_graph(program)
        assert graph.recursive(("path", 2))
        assert not graph.recursive(("edge", 2))

    def test_sccs_reverse_topological(self):
        program = program_from_text(DISPATCH)
        graph = build_call_graph(program)
        for site in graph.sites:
            if graph.scc_of[site.caller] != graph.scc_of[site.callee]:
                assert graph.scc_of[site.callee] < \
                    graph.scc_of[site.caller]

    def test_tarjan_on_cycle(self):
        a, b, c = ("a", 0), ("b", 0), ("c", 0)
        sccs = tarjan_sccs({a: {b}, b: {a, c}, c: set()})
        assert [c] in sccs
        assert sorted([a, b]) in [sorted(s) for s in sccs]

    def test_entries_are_uncalled_roots(self):
        program = program_from_text(DISPATCH)
        assert program.entries == [("route", 2)]

    def test_recursive_root_is_entry(self):
        """A predicate only its own recursion reaches must seed at ⊤ —
        otherwise its call modes would be self-justified by the
        bootstrap call."""
        program = program_from_text("""
            path(X, Z) :- edge(X, Y), path(Y, Z).
            path(X, Y) :- edge(X, Y).
            edge(a, b).
        """)
        assert ("path", 2) in program.entries


# =====================================================================
# Groundness / mode inference
# =====================================================================

class TestModes:
    def test_builtin_signatures(self):
        sig = builtin_signature(("is", 2))
        assert sig.demands == (1,)
        assert sig.success[0] == GROUND
        assert builtin_signature(("no_such_builtin", 3)) is None

    def test_facts_succeed_ground(self):
        report = analyzed("p(1). p(2). main :- p(X).\n"
                          "% lint: external main/0\n")
        info = report.info("p", 1)
        assert mode_string(info.success_modes) == "g"
        assert mode_string(info.call_modes) == "a"

    def test_call_modes_from_call_sites(self):
        report = analyzed(DISPATCH)
        act = report.info("act", 3)
        # S and K flow from lookup/2's ground facts; R is the output.
        assert mode_string(act.call_modes) == "gga"
        assert mode_string(act.success_modes) == "ggg"

    def test_entry_call_modes_are_top(self):
        report = analyzed(DISPATCH)
        route = report.info("route", 2)
        assert route.entry
        assert mode_string(route.call_modes) == "aa"

    def test_unification_refines_both_sides(self):
        report = analyzed("eq(X) :- X = done. main :- eq(V).\n"
                          "% lint: external main/0\n")
        assert mode_string(report.info("eq", 1).success_modes) == "g"

    def test_findall_output_nonvar(self):
        report = analyzed("""
            p(1).
            collect(L) :- findall(X, p(X), L).
            main :- collect(Out).
            % lint: external main/0
        """)
        succ = report.info("collect", 1).success_modes
        assert leq(succ[0], NONVAR)

    def test_recursive_program_terminates_without_widening(self):
        program = program_from_text("""
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            edge(a, b). edge(b, c).
            main :- path(a, T).
            % lint: external main/0
        """)
        result = infer_modes(program)
        assert not result.widened
        assert mode_string(result.call_modes[("path", 2)]) == "ga"
        assert mode_string(result.success_modes[("path", 2)]) == "gg"

    def test_called_tracking(self):
        program = program_from_text(DISPATCH)
        result = infer_modes(program)
        assert ("act", 3) in result.called
        assert ("route", 2) not in result.called


# =====================================================================
# Cardinality / determinism classes
# =====================================================================

class TestCardinality:
    def test_class_spectrum(self):
        report = analyzed("""
            f(X) :- fail.
            id(X).
            s(a).
            m(X) :- X = a.
            m(X) :- X = b.
            b. b.
            main :- f(A), id(B), s(C), m(D), b.
            % lint: external main/0
        """)
        expect = {("f", 1): "fails", ("id", 1): "det",
                  ("s", 1): "semidet", ("m", 1): "nondet",
                  ("b", 0): "multi"}
        for (name, arity), cls in expect.items():
            assert report.info(name, arity).determinism == cls, name

    def test_recursion_widens_max(self):
        report = analyzed("""
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            edge(a, b).
            main :- path(a, T).
            % lint: external main/0
        """)
        assert report.info("path", 2).determinism in ("nondet", "multi")

    def test_det_under_modes_discriminating_position(self):
        """Pairwise-distinct constants at a position every call site
        binds drop the max to one solution — the advisory analog of
        the optimizer's mode-driven dispatch."""
        report = analyzed("""
            d(X, k1).
            d(X, k2).
            main :- d(foo, k1).
            % lint: external main/0
        """)
        info = report.info("d", 2)
        assert info.determinism == "semidet"
        assert info.det_arg == 1

    def test_no_det_under_modes_when_keys_repeat(self):
        report = analyzed(DISPATCH)
        assert report.info("act", 3).det_arg is None

    def test_cardinality_direct(self):
        program = program_from_text("one(X) :- X = a. main :- one(Z).\n"
                                    "% lint: external main/0\n")
        graph = build_call_graph(program)
        cards = infer_cardinality(program, graph)
        low, high = cards.cards[("one", 1)]
        assert (low, high) == (0, 1)


# =====================================================================
# Report surface
# =====================================================================

class TestReport:
    def test_counters(self):
        counters = analyzed(DISPATCH).counters()
        for key in ("analysis_global_predicates", "analysis_global_sccs",
                    "analysis_global_iterations",
                    "analysis_global_widenings"):
            assert key in counters
        assert counters["analysis_global_predicates"] == 4

    def test_bound_args_excludes_entries(self):
        bound = analyzed(DISPATCH).bound_args()
        assert bound[("act", 3)] == (0, 1)
        assert ("route", 2) not in bound  # entry: call modes are ⊤

    def test_to_dict_is_json_clean(self):
        payload = json.loads(json.dumps(analyzed(DISPATCH).to_dict()))
        assert payload["kind"] == "global_analysis"
        by_ind = {p["indicator"]: p for p in payload["predicates"]}
        assert by_ind["act/3"]["call_modes"] == "gga"
        assert by_ind["act/3"]["determinism"] == "nondet"
        assert payload["entries"] == ["route/2"]

    def test_describe_single_predicate(self):
        report = analyzed(DISPATCH)
        text = report.describe("act", 3)
        assert "call=gga" in text and "succ=ggg" in text
        assert "no analysed predicate" in report.describe("nope", 9)


# =====================================================================
# M rules (via the linter)
# =====================================================================

class TestModeRules:
    def lint(self, text):
        from repro.analysis.lint import lint_text
        return lint_text(text)

    def rules(self, text):
        return {(f.rule, f.indicator) for f in self.lint(text)}

    def test_m201_fresh_variable_demanded_ground(self):
        found = self.rules("p(X) :- Y is Z + 1, X = Y.\n"
                           "main :- p(V).\n"
                           "% lint: external main/0\n"
                           "% lint: disable=L101\n")
        assert ("M201", "p/1") in found

    def test_m201_quiet_when_bound_upstream(self):
        found = self.rules("p(X, Y) :- X = 2, Y is X + 1.\n"
                           "main :- p(A, B).\n"
                           "% lint: external main/0\n")
        assert not any(rule == "M201" for rule, _ in found)

    def test_m202_always_fails(self):
        found = self.rules("p(X) :- q(X), fail.\nq(1).\n"
                           "main :- p(V).\n"
                           "% lint: external main/0\n"
                           "% lint: disable=L101\n")
        assert ("M202", "p/1") in found
        assert ("M202", "main/0") in found  # failure propagates up

    def test_m203_dead_choice_point(self):
        found = self.rules("d(X, k1).\nd(X, k2).\n"
                           "main :- d(foo, k1).\n"
                           "% lint: external main/0\n"
                           "% lint: disable=L101\n")
        assert ("M203", "d/2") in found

    def test_m_rules_waivable(self):
        clean = self.lint("% lint: disable=M202\n"
                          "% lint: disable=L101\n"
                          "p(X) :- fail.\nmain :- p(V).\n"
                          "% lint: external main/0\n")
        assert not any(f.rule.startswith("M") for f in clean)

    def test_l106_unknown_rule_id(self):
        found = self.rules("% lint: disable=Z999\np(1).\n"
                           "main :- p(X).\n"
                           "% lint: external main/0\n"
                           "% lint: disable=L101\n")
        assert ("L106", "Z999") in found

    def test_l106_itself_waivable(self):
        clean = self.lint("% lint: disable=Z999\n"
                          "% lint: disable=L106\n"
                          "% lint: disable=L101\n"
                          "p(1).\nmain :- p(X).\n"
                          "% lint: external main/0\n")
        assert not any(f.rule == "L106" for f in clean)

    def test_pragma_on_clause_continuation_line(self):
        """Pragmas are file-scoped comments; one trailing a clause
        continuation line waives the same way as a line of its own."""
        clean = self.lint("p(X) :-\n"
                          "    q(X).   % lint: disable=L102\n"
                          "main :- p(V).\n"
                          "% lint: external main/0\n"
                          "% lint: disable=L101\n")
        assert not any(f.rule == "L102" for f in clean)


# =====================================================================
# Optimizer consumer: mode-driven dispatch
# =====================================================================

def _compiled(program_text, name, arity, **kwargs):
    kb = EduceStar(optimize="full", **kwargs)
    kb.consult(program_text)
    return kb, kb.machine.procedure(name, arity)


class TestModeGuardPlanning:
    def test_mode_guard_plans_subchains(self):
        from repro.wam.optimizer import mode_guard
        kb, proc = _compiled(DISPATCH, "act", 3)
        plan = mode_guard(proc.compiled, range(len(proc.compiled)), 0,
                          bound_positions=(0, 1))
        assert plan is not None and plan.mode_driven
        assert plan.argpos == 1
        # two keys: k1 -> the sub-chain {0, 1}, k2 -> clause 2 alone
        assert sorted(plan.table.values()) == [(0, 1), (2,)]
        assert plan.var_positions == ()

    def test_mode_guard_needs_two_keys(self):
        from repro.wam.optimizer import mode_guard
        kb, proc = _compiled("a(X, k) :- t. a(Y, k) :- t. t.", "a", 2)
        assert mode_guard(proc.compiled, range(2), 0, (1,)) is None

    def test_mode_guard_refuses_structure_keys(self):
        from repro.wam.optimizer import mode_guard
        kb, proc = _compiled(
            "a(X, f(1)) :- t. a(X, k1) :- t. a(X, k1). t.", "a", 2)
        assert mode_guard(proc.compiled,
                          range(len(proc.compiled)), 0, (1,)) is None

    def test_plan_guard_uses_global_map(self):
        kb, proc = _compiled(DISPATCH, "act", 3)
        optimizer = kb.machine.optimizer
        assert optimizer.plan_guard(proc.compiled,
                                    list(range(3)), 0) is None
        optimizer.set_global_modes({("act", 3): (0, 1)})
        plan = optimizer.plan_guard(proc.compiled, list(range(3)), 0)
        assert plan is not None and plan.mode_driven

    def test_set_global_modes_bumps_epoch(self):
        kb = EduceStar(optimize="full")
        optimizer = kb.machine.optimizer
        before = optimizer.modes_epoch
        optimizer.set_global_modes({})
        assert optimizer.modes_epoch == before + 1


class TestModeGuardDifferential:
    GOALS = ("route(c, R)", "route(d, R)", "route(X, Y)",
             "act(c, k1, R)", "act(c, k2, R)", "act(c, k9, R)",
             "act(c, K, off)", "act(V, W, Z)", "act(c, [k1], R)")

    @staticmethod
    def answers(kb, goal):
        sols = [tuple(sorted((n, repr(v)) for n, v in s.bindings.items()))
                for s in kb.solve(goal)]
        return re.sub(r"_G\d+", "_", repr(sols))

    def test_answers_identical_across_all_call_patterns(self):
        base = EduceStar(optimize="full")
        base.consult(DISPATCH)
        modes = EduceStar(optimize="full")
        modes.consult(DISPATCH)
        report = modes.apply_global_modes()
        assert ("act", 3) in report.bound_args()
        for goal in self.GOALS:
            assert self.answers(modes, goal) == \
                self.answers(base, goal), goal
        assert modes.machine.counters()["wam_opt_mode_guards"] >= 1

    def test_no_modes_means_identical_listing(self):
        """Without an applied analysis the generalized guard planner
        must emit byte-identical code to the legacy path."""
        one = EduceStar(optimize="full")
        one.consult(DISPATCH)
        two = EduceStar(optimize="full")
        two.consult(DISPATCH)
        two.apply_global_modes()
        two.clear_global_modes()
        for name, arity in (("act", 3), ("route", 2), ("mark", 1)):
            pa = one.machine.procedure(name, arity)
            pb = two.machine.procedure(name, arity)
            assert [str(i) for i in pa.code] == [str(i) for i in pb.code]

    def test_mode_guard_cuts_instructions(self):
        base = EduceStar(optimize="full")
        base.consult(DISPATCH)
        modes = EduceStar(optimize="full")
        modes.consult(DISPATCH)
        modes.apply_global_modes()

        def instructions(kb):
            before = kb.machine.instr_count
            for _ in kb.solve("route(c, R)"):
                pass
            return kb.machine.instr_count - before

        assert instructions(modes) < instructions(base)


# =====================================================================
# Session integration
# =====================================================================

class TestSessionIntegration:
    def test_analysis_cached_until_program_changes(self):
        kb = EduceStar()
        kb.consult("p(1).")
        first = kb.global_analysis()
        assert kb.global_analysis() is first
        kb.consult("q(2).")
        second = kb.global_analysis()
        assert second is not first
        assert kb.local_counters()["analysis_global_runs"] == 2

    def test_counters_surface(self):
        kb = EduceStar()
        kb.consult(DISPATCH)
        kb.global_analysis()
        counters = kb.local_counters()
        assert counters["analysis_global_predicates"] >= 4
        assert counters["analysis_global_sccs"] >= 4

    def test_apply_and_clear(self):
        kb = EduceStar(optimize="full")
        kb.consult(DISPATCH)
        kb.apply_global_modes()
        assert kb.machine.optimizer.global_bound_args
        kb.clear_global_modes()
        assert not kb.machine.optimizer.global_bound_args

    def test_explain_procedure_annotations(self):
        kb = EduceStar(optimize="full")
        kb.consult(DISPATCH)
        kb.apply_global_modes()
        plan = kb.explain("act(c, k1, R)")
        node = plan.root.find("procedure")
        assert node is not None
        assert node.attrs["call_modes"] == "gga"
        assert node.attrs["success_modes"] == "ggg"
        assert node.attrs["determinism"] == "nondet"

    def test_describe_modes_helper(self):
        from repro.analysis import describe_modes
        kb = EduceStar()
        kb.consult(DISPATCH)
        assert "act/3" in describe_modes(kb)
        assert "call=gga" in describe_modes(kb, "act", 3)


# =====================================================================
# Datalog consumer: determinism short-circuit
# =====================================================================

class TestDatalogShortcut:
    def session(self):
        kb = EduceStar()
        kb.store_relation("edge", [("a", "b"), ("b", "c")])
        kb.store_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """)
        return kb

    def test_choose_short_circuits_on_det(self):
        from repro.relational.datalog.strategy import choose
        kb = self.session()
        decision = choose(kb.datalog.analysis(), ("reach", 2), kb.store,
                          global_info=((GROUND, GROUND), "det"))
        assert decision.strategy == "topdown"
        assert decision.mode_shortcut
        assert decision.determinism == "det"
        assert decision.call_modes == "gg"

    def test_force_overrides_shortcut(self):
        from repro.relational.datalog.strategy import choose
        kb = self.session()
        decision = choose(kb.datalog.analysis(), ("reach", 2), kb.store,
                          mode="force",
                          global_info=((GROUND, GROUND), "det"))
        assert decision.strategy == "bottomup"
        assert not decision.mode_shortcut

    def test_multi_keeps_costing(self):
        from repro.relational.datalog.strategy import choose
        kb = self.session()
        decision = choose(kb.datalog.analysis(), ("reach", 2), kb.store,
                          global_info=((ANY, ANY), "nondet"))
        assert not decision.mode_shortcut
        assert decision.determinism == "nondet"

    def test_engine_counts_shortcuts(self):
        kb = self.session()
        kb.datalog.modes_provider = \
            lambda ind: ((GROUND, GROUND), "semidet")
        list(kb.solve("reach(a, X)"))
        assert kb.datalog.mode_shortcuts >= 1
        assert kb.datalog.counters()["datalog_mode_shortcuts"] >= 1

    def test_strategy_never_changes_answers(self):
        kb = self.session()
        kb.datalog.modes_provider = \
            lambda ind: ((GROUND, GROUND), "semidet")
        shortcut = sorted(str(s.bindings) for s in kb.solve("reach(a, X)"))
        plain = self.session()
        plain.datalog.modes_provider = None
        assert shortcut == sorted(str(s.bindings)
                                  for s in plain.solve("reach(a, X)"))


# =====================================================================
# CLI exit-code matrix
# =====================================================================

class TestCliExitCodes:
    def run(self, *argv):
        from repro.analysis.cli import main
        return main(list(argv))

    def write(self, tmp_path, text, name="unit.pl"):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    CLEAN = ("p(1).\np(2).\nmain :- p(X), write(X).\n"
             "% lint: external main/0\n")
    FINDING = "p(X) :- fail.\nmain :- p(V).\n% lint: external main/0\n"
    BROKEN = "p(1"

    def test_corpus_clean(self, capsys):
        assert self.run("corpus") == 0

    def test_lint_matrix(self, tmp_path, capsys):
        assert self.run("lint", self.write(tmp_path, self.CLEAN)) == 0
        assert self.run("lint", self.write(tmp_path, self.FINDING)) == 1
        assert self.run("lint", self.write(tmp_path, self.BROKEN)) == 2
        assert self.run("lint", str(tmp_path / "missing.pl")) == 2

    def test_verify_matrix(self, tmp_path, capsys):
        assert self.run("verify", self.write(tmp_path, self.CLEAN)) == 0
        assert self.run("verify", self.write(tmp_path, self.BROKEN)) == 2

    def test_modes_matrix(self, tmp_path, capsys):
        assert self.run("modes", self.write(tmp_path, self.CLEAN)) == 0
        assert self.run("modes", self.write(tmp_path, self.FINDING)) == 1
        assert self.run("modes", self.write(tmp_path, self.BROKEN)) == 2
        assert self.run("modes", str(tmp_path / "missing.pl")) == 2

    def test_modes_corpus_sweep_is_clean(self, capsys):
        assert self.run("modes") == 0
        out = capsys.readouterr().out
        assert "0 mode finding(s)" in out

    def test_modes_json(self, tmp_path, capsys):
        assert self.run("modes", "--json",
                        self.write(tmp_path, self.CLEAN)) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["report"]["kind"] == "global_analysis"

    def test_usage_error(self, capsys):
        assert self.run("frobnicate") == 2
        assert self.run("modes", "--bogus-flag") == 2
