"""Tests for the paged disc store and the LRU buffer pool."""

import pytest

from repro.bang.buffer import BufferPool
from repro.bang.pager import DiskStore, Pager
from repro.errors import PageError


class TestDiskStore:
    def test_allocate_distinct_ids(self):
        disk = DiskStore()
        assert disk.allocate() != disk.allocate()

    def test_write_read_roundtrip(self):
        disk = DiskStore()
        pid = disk.allocate()
        disk.write(pid, {"rows": [1, 2, 3]})
        assert disk.read(pid) == {"rows": [1, 2, 3]}

    def test_read_fresh_page_is_none(self):
        disk = DiskStore()
        assert disk.read(disk.allocate()) is None

    def test_unknown_page_raises(self):
        disk = DiskStore()
        with pytest.raises(PageError):
            disk.read(999)
        with pytest.raises(PageError):
            disk.write(999, [])

    def test_io_counters(self):
        disk = DiskStore(page_size=1024)
        pid = disk.allocate()
        disk.write(pid, [1])
        disk.read(pid)
        c = disk.io_counters()
        assert c["reads"] == 1 and c["writes"] == 1
        assert c["bytes_read"] == 1024 and c["bytes_written"] == 1024

    def test_free_removes(self):
        disk = DiskStore()
        pid = disk.allocate()
        disk.free(pid)
        with pytest.raises(PageError):
            disk.read(pid)

    def test_reset_counters(self):
        disk = DiskStore()
        pid = disk.allocate()
        disk.write(pid, [])
        disk.reset_counters()
        assert disk.io_counters()["writes"] == 0


class TestBufferPool:
    def _pool(self, capacity=3):
        disk = DiskStore()
        return disk, BufferPool(disk, capacity=capacity)

    def test_hit_avoids_disk_read(self):
        disk, pool = self._pool()
        pool.install(disk.allocate(), ["x"])
        pool.get(0)
        assert disk.reads == 0
        assert pool.hits == 1

    def test_miss_reads_from_disk(self):
        disk, pool = self._pool(capacity=1)
        p0, p1 = disk.allocate(), disk.allocate()
        pool.install(p0, ["a"])
        pool.install(p1, ["b"])  # evicts p0 (dirty -> writeback)
        assert pool.get(p0) == ["a"]
        assert disk.reads == 1
        assert disk.writes >= 1

    def test_lru_eviction_order(self):
        disk, pool = self._pool(capacity=2)
        pages = [disk.allocate() for _ in range(3)]
        pool.install(pages[0], [0])
        pool.install(pages[1], [1])
        pool.get(pages[0])            # page0 most-recent
        pool.install(pages[2], [2])   # evicts page1
        pool.flush()
        disk.reset_counters()
        pool.get(pages[0])
        assert disk.reads == 0        # still resident
        pool.get(pages[1])
        assert disk.reads == 1        # was evicted

    def test_dirty_writeback_on_eviction(self):
        disk, pool = self._pool(capacity=1)
        p0 = disk.allocate()
        pool.install(p0, ["v1"])
        pool.put(p0, ["v2"])
        p1 = disk.allocate()
        pool.install(p1, [])          # evicts dirty p0
        assert disk.read(p0) == ["v2"]

    def test_flush_writes_all_dirty(self):
        disk, pool = self._pool(capacity=8)
        pages = [disk.allocate() for _ in range(4)]
        for i, p in enumerate(pages):
            pool.install(p, [i])
        pool.flush()
        for i, p in enumerate(pages):
            assert disk.read(p) == [i]

    def test_capacity_must_be_positive(self):
        disk = DiskStore()
        with pytest.raises(ValueError):
            BufferPool(disk, capacity=0)

    def test_counters(self):
        disk, pool = self._pool(capacity=2)
        p = disk.allocate()
        pool.install(p, [1])
        pool.get(p)
        c = pool.counters()
        assert c["buffer_hits"] == 1
        assert c["buffer_resident"] == 1


class TestPagerFacade:
    def test_allocate_get_put(self):
        pager = Pager(buffer_pages=4)
        pid = pager.allocate(["init"])
        assert pager.get(pid) == ["init"]
        pager.put(pid, ["new"])
        assert pager.get(pid) == ["new"]

    def test_io_counters_merged(self):
        pager = Pager(buffer_pages=2)
        for i in range(5):
            pager.allocate([i])
        c = pager.io_counters()
        assert "reads" in c and "buffer_hits" in c
        assert c["buffer_evictions"] >= 3

    def test_eviction_roundtrip_through_disk(self):
        pager = Pager(buffer_pages=2)
        pids = [pager.allocate([i]) for i in range(10)]
        for i, pid in enumerate(pids):
            assert pager.get(pid) == [i]
