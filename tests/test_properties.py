"""Cross-layer property tests (hypothesis).

These pin the system's load-bearing invariants:

* pre-unification soundness — the filter never loses a clause the
  emulator could use, at any depth (§4's "necessary but not sufficient");
* codec totality — every compilable clause round-trips through the
  relative-address encoding;
* EDB-vs-main-memory equivalence — a program answers identically
  whether compiled internally or stored in the EDB and dynamically
  loaded.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.session import EduceStar
from repro.lang.writer import format_clause, term_to_text
from repro.terms import Atom, Struct, Var
from repro.wam.machine import Machine

# ------------------------------------------------------------ term makers

_const_names = st.sampled_from(["a", "b", "c", "d", "e"])
_functors = st.sampled_from(["f", "g", "h"])


def head_args(depth=2):
    """Head-argument terms: constants, ints, vars, nested structures."""
    leaves = st.one_of(
        _const_names.map(Atom),
        st.integers(0, 9),
        st.just(None),  # placeholder for a fresh Var (built later)
    )
    return st.recursive(
        leaves,
        lambda children: st.builds(
            lambda n, args: ("struct", n, tuple(args)),
            _functors,
            st.lists(children, min_size=1, max_size=2),
        ),
        max_leaves=4,
    )


def _reify(spec):
    if spec is None:
        return Var()
    if isinstance(spec, tuple) and spec[0] == "struct":
        return Struct(spec[1], tuple(_reify(a) for a in spec[2]))
    return spec


def _probe_goal(probe):
    """findall(I, p(A, B, I), L) as a term with named query vars."""
    ivar, lvar = Var("I"), Var("Found")
    call = Struct("p", (_reify(probe[0]), _reify(probe[1]), ivar))
    return Struct("findall", (ivar, call, lvar))


@settings(max_examples=40, deadline=None)
@given(
    heads=st.lists(st.tuples(head_args(), head_args()),
                   min_size=1, max_size=8),
    probe=st.tuples(head_args(), head_args()),
)
def test_preunification_soundness(heads, probe):
    """At every depth, querying the EDB-stored facts returns exactly
    what the in-memory compiled program returns (same clause ids, same
    order)."""
    clauses = [
        Struct("p", (_reify(a), _reify(b), i))
        for i, (a, b) in enumerate(heads)
    ]
    program = "\n".join(format_clause(c) for c in clauses)

    reference = Machine()
    reference.consult(program)
    want = term_to_text(reference.solve_once(_probe_goal(probe))["Found"])

    for depth in ("none", "shallow", "full"):
        session = EduceStar(preunify_depth=depth)
        session.store_program(program)
        got = term_to_text(
            session.solve_once(_probe_goal(probe))["Found"])
        assert got == want, f"depth={depth}"


@settings(max_examples=40, deadline=None)
@given(
    heads=st.lists(st.tuples(head_args(), head_args()),
                   min_size=1, max_size=6),
)
def test_codec_roundtrip_random_clauses(heads):
    from repro.dictionary import SegmentedDictionary
    from repro.edb.codec import decode_code, encode_code
    from repro.edb.external_dict import ExternalDictionary
    from repro.bang.catalog import Catalog
    from repro.bang.pager import Pager
    from repro.wam.compiler import ClauseCompiler, CompileContext

    ctx = CompileContext(SegmentedDictionary(segment_capacity=512))
    compiler = ClauseCompiler(ctx)
    ext = ExternalDictionary(Catalog(Pager(buffer_pages=8)))
    for i, (a, b) in enumerate(heads):
        clause = Struct("q", (_reify(a), _reify(b), i))
        code = compiler.compile_clause(clause).code
        relative = encode_code(code, ctx.dictionary, ext)
        assert decode_code(relative, ctx.dictionary, ext) == code


@settings(max_examples=25, deadline=None)
@given(
    facts=st.lists(st.tuples(st.integers(0, 5), _const_names),
                   min_size=1, max_size=10),
    pivot=st.integers(0, 5),
)
def test_edb_equals_main_memory(facts, pivot):
    """Same program: EDB-stored vs consulted — identical answers."""
    program = "".join(
        f"r({n}, {s}).\n" for n, s in dict.fromkeys(facts))
    program += "pick(S) :- r(%d, S).\n" % pivot

    internal = Machine()
    internal.consult(program)
    want = sorted(str(s["S"]) for s in internal.solve("pick(S)"))

    session = EduceStar()
    session.store_program(program)
    got = sorted(str(s["S"]) for s in session.solve("pick(S)"))
    assert got == want


@settings(max_examples=40, deadline=None)
@given(
    heads=st.lists(st.tuples(head_args(), head_args()),
                   min_size=1, max_size=8),
    body_len=st.integers(0, 3),
)
def test_random_clauses_verify_clean(heads, body_len):
    """Everything the compiler emits passes full static verification
    (docs/ANALYSIS.md): every clause, and the assembled procedure block
    with its switch tables.  The determinism analysis of the honest
    block reports no findings either."""
    from repro.analysis import analyze_clauses, check_clause, check_code
    from repro.dictionary import SegmentedDictionary
    from repro.wam.compiler import ClauseCompiler, CompileContext
    from repro.wam.indexing import build_procedure_layout

    ctx = CompileContext(SegmentedDictionary(segment_capacity=512))
    compiler = ClauseCompiler(ctx)
    compiled = []
    for i, (a, b) in enumerate(heads):
        head = Struct("p", (_reify(a), _reify(b), i))
        if body_len:
            # a chain body exercises environments and permanent vars
            shared = Var()
            goals = [Struct("q", (shared, _reify(a)))
                     for _ in range(body_len)]
            body = goals[0]
            for goal in goals[1:]:
                body = Struct(",", (body, goal))
            clause = Struct(":-", (head, body))
        else:
            clause = head
        compiled.append(compiler.compile_clause(clause))
    for cc in compiled:
        assert check_clause(cc, dictionary=ctx.dictionary) == []
    layout = build_procedure_layout(compiled)
    assert check_code(list(layout.code), arity=3,
                      dictionary=ctx.dictionary) == []
    report = analyze_clauses(compiled, layout=layout)
    assert report.findings == []


@settings(max_examples=25, deadline=None)
@given(rows=st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(["x", "y", "z"])),
    min_size=1, max_size=25))
def test_relops_match_python_semantics(rows):
    """db_select/db_project/db_count agree with plain Python."""
    session = EduceStar()
    rows = list(dict.fromkeys(rows))
    session.store_relation("t", rows)

    assert session.solve_once("db_count(t/2, N)")["N"] == len(rows)

    session.solve_once("db_select(t/2, t(_, x), only_x)")
    want = len([r for r in rows if r[1] == "x"])
    assert session.solve_once("db_count(only_x/2, N)")["N"] == want

    session.solve_once("db_project(t/2, [2], tags)")
    want = len({r[1] for r in rows})
    assert session.solve_once("db_count(tags/1, N)")["N"] == want


# ================================================================
# Optimizer differential fuzzer (docs/OPTIMIZER.md)
#
# Random clause sets run on two machines — ``optimize="off"`` and
# ``optimize="full"`` — and must produce identical answers *in the
# same order* for every goal, while every consulted procedure passes
# ``verify="full"`` on both.  Failures print the seed so the case can
# be replayed with ``_optimizer_fuzz_case(seed)``.
# ================================================================

_FUZZ_ATOMS = ("a", "b", "c", "d", "e")


def _random_program(rng):
    lines = []
    for name, arity in (("p", 2), ("q", 1), ("r", 3)):
        for _ in range(rng.randint(2, 6)):
            args = []
            for _k in range(arity):
                roll = rng.random()
                if roll < 0.5:
                    args.append(rng.choice(_FUZZ_ATOMS))
                elif roll < 0.8:
                    args.append(str(rng.randint(0, 5)))
                else:
                    args.append(f"V{rng.randint(0, 1)}")
            lines.append(f"{name}({', '.join(args)}).")
    # rules drive put_args fusion and call-chain codegen
    lines.append("s(X, Y) :- p(X, Y).")
    lines.append("s(X, Y) :- q(X), r(X, Y, _).")
    lines.append("u(X) :- p(a, X).")
    # list clauses drive get_list_vv and unify fusion
    lines.append("t([H|T], H, T).")
    lines.append("t([], nil, nil).")
    return "\n".join(lines)


def _random_goals(rng):
    goals = ["p(A, B)", "q(A)", "r(A, B, C)", "s(A, B)", "u(A)",
             "t(A, B, C)", "t([a, b, c], H, T)"]
    goals.append(f"p({rng.choice(_FUZZ_ATOMS)}, B)")
    goals.append(f"p(A, {rng.randint(0, 5)})")
    goals.append(f"r(A, {rng.choice(_FUZZ_ATOMS)}, C)")
    goals.append(f"s({rng.choice(_FUZZ_ATOMS)}, B)")
    return goals


def _collect_answers(machine, goal, limit=30):
    from tests.test_optimizer import collect
    return collect(machine, goal, limit=limit)


def _optimizer_fuzz_case(seed, off, full):
    import random

    from repro.analysis.verifier import verify_code

    rng = random.Random(seed)
    program = _random_program(rng)
    goals = _random_goals(rng)
    for machine in (off, full):
        before = set(machine.procedures)
        machine.consult(program)
        for pid, proc in machine.procedures.items():
            if pid in before or proc.name.startswith("$"):
                continue
            verify_code(list(proc.code), arity=proc.arity,
                        dictionary=machine.dictionary, level="full",
                        procedure=f"{proc.name}/{proc.arity}")
    for goal in goals:
        got_off = _collect_answers(off, goal)
        got_full = _collect_answers(full, goal)
        assert got_full == got_off, (
            f"optimizer fuzz seed={seed}: {goal} diverged\n"
            f"  program:\n{program}\n"
            f"  off : {got_off}\n  full: {got_full}")
    assert full.optimizer.rejects == 0, (
        f"optimizer fuzz seed={seed}: gate rejected a block "
        f"{full.optimizer.last_reject}")


def test_optimizer_differential_fuzz():
    """≥100 random clause sets: off and full agree answer-for-answer,
    in order, and every block is verify="full" clean on both sides."""
    off = Machine(optimize="off")
    full = Machine(optimize="full")
    for seed in range(120):
        _optimizer_fuzz_case(seed, off, full)


def test_optimizer_differential_fuzz_unindexed():
    """The same differential with first-argument indexing disabled:
    the chain-demotion pass guards whole procedures (positions ≥ 0)."""
    off = Machine(optimize="off", index=False)
    full = Machine(optimize="full", index=False)
    for seed in range(200, 230):
        _optimizer_fuzz_case(seed, off, full)

# ================================================================
# Whole-program analysis soundness (docs/ANALYSIS.md)
# ================================================================

def _is_ground_term(term):
    if isinstance(term, Var):
        return False
    if isinstance(term, Struct):
        return all(_is_ground_term(a) for a in term.args)
    return True


def _modes_conforming_goal(ind, call_modes, rng):
    """A top-level goal at least as bound as the inferred call modes:
    ground terms where the analysis proved ground/nonvar, fresh
    variables elsewhere.  Such a call sits below the call abstraction,
    so the inferred success modes and cardinality bounds apply."""
    from repro.analysis.global_ import ANY
    name, arity = ind
    args, var_names = [], []
    for i, m in enumerate(call_modes):
        if m == ANY:
            args.append(f"M{i}")
            var_names.append((i, f"M{i}"))
        elif rng.random() < 0.7:
            args.append(rng.choice(_FUZZ_ATOMS))
        else:
            args.append(str(rng.randint(0, 5)))
    goal = f"{name}({', '.join(args)})" if arity else name
    return goal, var_names


def _modes_soundness_case(seed, machine):
    import random

    from repro.analysis.global_ import (GROUND, NONVAR, analyze_program,
                                        program_from_text)

    rng = random.Random(seed)
    program_text = _random_program(rng)
    machine.consult(program_text)
    report = analyze_program(program_from_text(program_text))
    assert not report.modes.widened, (
        f"modes fuzz seed={seed}: fixpoint widened on a program this "
        f"small\n{program_text}")

    limit = 60
    for ind, info in sorted(report.infos.items()):
        if info.source != "clauses":
            continue
        goal, var_names = _modes_conforming_goal(
            ind, info.call_modes, rng)
        solutions = []
        for sol in machine.solve(goal):
            solutions.append(dict(sol.bindings))
            if len(solutions) >= limit:
                break

        # Success-mode soundness: every answer binding at a position
        # inferred ground/nonvar must actually be ground/nonvar.
        for bindings in solutions:
            for pos, var_name in var_names:
                value = bindings.get(var_name)
                if value is None:
                    continue
                succ = info.success_modes[pos]
                if succ == GROUND:
                    assert _is_ground_term(value), (
                        f"modes fuzz seed={seed}: {goal} bound "
                        f"{var_name}={value!r} but position {pos} of "
                        f"{info.indicator} has success mode ground\n"
                        f"{program_text}")
                elif succ == NONVAR:
                    assert not isinstance(value, Var), (
                        f"modes fuzz seed={seed}: {goal} left "
                        f"{var_name} unbound but position {pos} of "
                        f"{info.indicator} has success mode nonvar\n"
                        f"{program_text}")

        # Cardinality soundness: the observed solution count must sit
        # inside the inferred [min, max] interval.
        low, high = report.cards.cards[ind]
        count = len(solutions)
        assert count >= low, (
            f"modes fuzz seed={seed}: {goal} produced {count} "
            f"solution(s), below the inferred minimum {low} "
            f"({info.determinism})\n{program_text}")
        if count < limit:
            assert count <= high, (
                f"modes fuzz seed={seed}: {goal} produced {count} "
                f"solution(s), above the inferred maximum {high} "
                f"({info.determinism})\n{program_text}")


def test_global_analysis_soundness_fuzz():
    """≥100 random programs: for calls conforming to the inferred call
    modes, observed runtime bindings respect the inferred success
    modes and observed solution counts respect the inferred
    cardinality interval."""
    machine = Machine(optimize="full")
    for seed in range(110):
        _modes_soundness_case(seed, machine)


def test_global_analysis_corpus_totality():
    """The fixpoint terminates without widening on every shipped
    corpus unit, and the analysis is total: every defined predicate
    gets call modes, success modes, and a determinism class."""
    from repro.analysis.corpus import corpus_entries
    from repro.analysis.global_ import analyze_program, program_from_text

    for entry in corpus_entries():
        program = program_from_text(entry.text,
                                    extra_defined=tuple(entry.extra_defined))
        report = analyze_program(program)
        assert not report.modes.widened, entry.name
        for ind in program.clauses:
            info = report.infos[ind]
            assert info.call_modes is not None, (entry.name, ind)
            assert info.success_modes is not None, (entry.name, ind)
            assert info.determinism in ("fails", "det", "semidet",
                                        "multi", "nondet"), \
                (entry.name, ind)
