"""Tests for the observability layer (repro.obs).

Registry snapshot/diff semantics, tracing span nesting and budgets, and
end-to-end per-query profiles from an EduceStar session.
"""

import json

import pytest

from repro import EduceStar
from repro.obs import (
    DEFAULT_GAUGE_KEYS,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    QueryProfile,
    Span,
    Tracer,
    write_json_lines,
)


class FakeSource:
    def __init__(self, **values):
        self.values = dict(values)

    def counters(self):
        return dict(self.values)


class FakeIOSource:
    def __init__(self, **values):
        self.values = dict(values)

    def io_counters(self):
        return dict(self.values)


# =====================================================================
# MetricsRegistry
# =====================================================================

class TestMetricsRegistry:
    def test_own_counters(self):
        reg = MetricsRegistry()
        reg.inc("loads")
        reg.inc("loads", 4)
        assert reg.snapshot()["loads"] == 5

    def test_attached_sources_summed(self):
        reg = MetricsRegistry()
        reg.attach(FakeSource(n=2))
        reg.attach(FakeSource(n=3, m=1))
        snap = reg.snapshot()
        assert snap["n"] == 5 and snap["m"] == 1

    def test_io_counters_source(self):
        reg = MetricsRegistry()
        reg.attach(FakeIOSource(reads=7))
        assert reg.snapshot()["reads"] == 7

    def test_attach_is_idempotent(self):
        reg = MetricsRegistry()
        src = FakeSource(n=1)
        reg.attach(src)
        reg.attach(src)
        assert reg.snapshot()["n"] == 1

    def test_detach_removes_source(self):
        reg = MetricsRegistry()
        src = reg.attach(FakeSource(n=1))
        reg.detach(src)
        assert "n" not in reg.snapshot()

    def test_non_numeric_values_skipped(self):
        reg = MetricsRegistry()
        reg.attach(FakeSource(n=1, label="hi"))
        assert reg.snapshot() == {"n": 1}

    def test_gauge_reports_level_not_delta(self):
        reg = MetricsRegistry()
        reg.gauge("water", 10)
        before = reg.snapshot()
        reg.gauge("water", 4)
        diff = reg.diff(reg.snapshot(), before)
        assert diff["water"] == 4  # current level, not -6

    def test_default_gauge_keys_respected(self):
        reg = MetricsRegistry()
        assert "buffer_resident" in DEFAULT_GAUGE_KEYS
        diff = reg.diff({"buffer_resident": 3}, {"buffer_resident": 9})
        assert diff["buffer_resident"] == 3

    def test_attach_time_gauges(self):
        reg = MetricsRegistry()
        reg.attach(FakeSource(depth=5), gauges=("depth",))
        diff = reg.diff({"depth": 2}, {"depth": 5})
        assert diff["depth"] == 2
        assert "depth" in reg.gauge_keys()

    def test_counter_diff_plain(self):
        reg = MetricsRegistry()
        assert reg.diff({"n": 9}, {"n": 4}) == {"n": 5}

    def test_counter_reset_reports_post_reset_value(self):
        # n was reset between snapshots; 3 accumulated since.
        reg = MetricsRegistry()
        assert reg.diff({"n": 3}, {"n": 100}) == {"n": 3}

    def test_disappeared_key_omitted(self):
        reg = MetricsRegistry()
        assert reg.diff({}, {"gone": 12}) == {}

    def test_new_key_is_full_value(self):
        reg = MetricsRegistry()
        assert reg.diff({"fresh": 6}, {}) == {"fresh": 6}

    def test_histogram_summary_in_snapshot(self):
        reg = MetricsRegistry()
        for v in (2.0, 8.0, 5.0):
            reg.observe("fetch_ms", v)
        snap = reg.snapshot()
        assert snap["fetch_ms.count"] == 3
        assert snap["fetch_ms.sum"] == 15.0
        assert snap["fetch_ms.min"] == 2.0
        assert snap["fetch_ms.max"] == 8.0
        assert reg.histogram("fetch_ms").mean == 5.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.as_dict("x") == {"x.count": 0, "x.sum": 0.0}

    def test_static_merge(self):
        merged = MetricsRegistry.merge({"a": 1}, {"a": 2, "b": 3})
        assert merged == {"a": 3, "b": 3}


# =====================================================================
# Histogram percentiles / family diff & merge
# =====================================================================

class FakeHistSource:
    def __init__(self, **hists):
        self.hists = dict(hists)

    def counters(self):
        return {}

    def histograms(self):
        return dict(self.hists)


def hist_of(*values):
    h = Histogram()
    for v in values:
        h.observe(v)
    return h


class TestHistogramPercentiles:
    def test_percentiles_bucketed(self):
        h = hist_of(*([1.0] * 90 + [100.0] * 10))
        # p50/p90 land in the bucket whose upper bound is 1.0
        assert h.percentile(0.50) == 1.0
        assert h.percentile(0.90) == 1.0
        # p99 lands in the tail bucket; clamped to the exact max
        assert h.percentile(0.99) == 100.0

    def test_percentile_clamped_to_observed_range(self):
        h = hist_of(3.0)
        # bucket upper bound is 5.0, but max observed is 3.0
        assert h.percentile(0.99) == 3.0
        assert h.percentile(0.50) == 3.0

    def test_as_dict_buckets_cumulative(self):
        h = hist_of(0.01, 0.2, 400.0)
        d = h.as_dict("x")
        assert d["x.count"] == 3
        assert d["x.bucket.le_0.05"] == 1
        assert d["x.bucket.le_0.25"] == 2
        assert d["x.bucket.le_500"] == 3
        assert d["x.bucket.le_inf"] == 3
        # the estimate is the containing bucket's upper bound
        assert d["x.p50"] == pytest.approx(0.25)

    def test_merge_from_mismatched_ladders_is_conservative(self):
        a = Histogram(boundaries=(1.0, 2.0))
        a.observe(1.5)
        b = hist_of(0.01)
        a.merge_from(b)
        assert a.count == 2
        assert a.min == 0.01 and a.max == 1.5

    def test_source_histograms_in_snapshot(self):
        reg = MetricsRegistry()
        reg.attach(FakeHistSource(wait_ms=hist_of(1.0, 2.0)))
        snap = reg.snapshot()
        assert snap["wait_ms.count"] == 2
        assert snap["wait_ms.max"] == 2.0

    def test_same_named_source_histograms_fold(self):
        reg = MetricsRegistry()
        reg.attach(FakeHistSource(wait_ms=hist_of(1.0)))
        reg.attach(FakeHistSource(wait_ms=hist_of(9.0)))
        snap = reg.snapshot()
        assert snap["wait_ms.count"] == 2
        assert snap["wait_ms.min"] == 1.0
        assert snap["wait_ms.max"] == 9.0

    def test_diff_drops_family_without_new_observations(self):
        reg = MetricsRegistry()
        src = FakeHistSource(wait_ms=hist_of(1.0))
        reg.attach(src)
        before = reg.snapshot()
        diff = reg.diff(reg.snapshot(), before)
        assert not any(k.startswith("wait_ms") for k in diff)

    def test_diff_recomputes_percentiles_from_bucket_deltas(self):
        reg = MetricsRegistry()
        h = Histogram()
        src = FakeHistSource(wait_ms=h)
        reg.attach(src)
        for _ in range(100):
            h.observe(1.0)           # slow era
        before = reg.snapshot()
        for _ in range(100):
            h.observe(100.0)         # fast-forward era
        diff = reg.diff(reg.snapshot(), before)
        assert diff["wait_ms.count"] == 100
        # the delta's distribution is all-100s, not the lifetime mix
        assert diff["wait_ms.p50"] == 100.0

    def test_merge_preserves_tails(self):
        """Merging snapshots must not average away extremes — the
        satellite fix for mean-only histograms."""
        fast = hist_of(*([1.0] * 99)).as_dict("lat")
        slow = hist_of(5000.0).as_dict("lat")
        merged = MetricsRegistry.merge(fast, slow)
        assert merged["lat.count"] == 100
        assert merged["lat.max"] == 5000.0     # tail survives
        assert merged["lat.min"] == 1.0
        assert merged["lat.p99"] == 1.0        # 99% of obs are <= 1.0
        assert merged["lat.bucket.le_inf"] == 100


# =====================================================================
# EventRing — the flight recorder
# =====================================================================

class TestEventRing:
    def test_record_and_tail_ordered(self):
        from repro.obs import EventRing
        ring = EventRing(capacity=16, stripes=2)
        for i in range(5):
            ring.record("k", n=i)
        tail = ring.tail()
        assert [e["n"] for e in tail] == [0, 1, 2, 3, 4]
        assert [e["seq"] for e in tail] == sorted(
            e["seq"] for e in tail)
        assert all(e["kind"] == "k" and e["ts"] > 0 for e in tail)

    def test_tail_n_returns_most_recent(self):
        from repro.obs import EventRing
        ring = EventRing(capacity=16, stripes=1)
        for i in range(10):
            ring.record("k", n=i)
        assert [e["n"] for e in ring.tail(3)] == [7, 8, 9]

    def test_bounded_and_drop_counted(self):
        from repro.obs import EventRing
        ring = EventRing(capacity=8, stripes=1)
        for i in range(50):
            ring.record("k", n=i)
        assert len(ring) == 8
        counters = ring.counters()
        assert counters["events_recorded"] == 50
        assert counters["events_dropped"] == 42
        # oldest dropped, newest retained
        assert [e["n"] for e in ring.tail()] == list(range(42, 50))

    def test_capacity_never_exceeded_multithreaded(self):
        import threading
        from repro.obs import EventRing
        ring = EventRing(capacity=64, stripes=4)

        def hammer(tid):
            for i in range(500):
                ring.record("k", tid=tid, n=i)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ring) <= ring.capacity
        counters = ring.counters()
        assert counters["events_recorded"] == 4000
        assert counters["events_recorded"] - counters["events_dropped"] \
            == len(ring)

    def test_null_ring_disabled_and_locked(self):
        from repro.obs import NULL_EVENTS
        assert not NULL_EVENTS.enabled
        NULL_EVENTS.record("k")
        assert len(NULL_EVENTS) == 0
        with pytest.raises(ValueError):
            NULL_EVENTS.enabled = True
        NULL_EVENTS.enabled = False   # idempotent no-op allowed

    def test_clear(self):
        from repro.obs import EventRing
        ring = EventRing(capacity=8)
        ring.record("k")
        ring.clear()
        assert len(ring) == 0
        assert ring.counters()["events_recorded"] == 1


# =====================================================================
# Tracer / Span
# =====================================================================

class TestTracer:
    def test_disabled_yields_none(self):
        tracer = Tracer(enabled=False)
        with tracer.span("query") as span:
            assert span is None
        assert tracer.roots == []

    def test_null_tracer_cannot_be_enabled(self):
        with pytest.raises(ValueError):
            NULL_TRACER.enabled = True
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x") as span:
            assert span is None

    def test_nesting_and_ordering(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query") as q:
            with tracer.span("loader.fetch", procedure="p/1"):
                with tracer.span("codec.resolve"):
                    pass
            with tracer.span("preunify.filter"):
                pass
        assert [s.name for s in q.walk()] == [
            "query", "loader.fetch", "codec.resolve", "preunify.filter"]
        fetch = q.children[0]
        assert fetch.parent_id == q.span_id
        assert fetch.children[0].name == "codec.resolve"
        assert q.span_id < fetch.span_id  # ids allocated in open order
        assert tracer.roots == [q]

    def test_current_span(self):
        tracer = Tracer(enabled=True)
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_counter_deltas_per_span(self):
        reg = MetricsRegistry()
        tracer = Tracer(snapshot=reg.snapshot, diff=reg.diff, enabled=True)
        with tracer.span("outer"):
            reg.inc("work", 2)
            with tracer.span("inner"):
                reg.inc("work", 5)
        outer = tracer.roots[0]
        assert outer.counters["work"] == 7  # includes the child's work
        assert outer.children[0].counters["work"] == 5

    def test_zero_deltas_filtered(self):
        reg = MetricsRegistry()
        reg.inc("idle", 3)
        tracer = Tracer(snapshot=reg.snapshot, diff=reg.diff, enabled=True)
        with tracer.span("quiet"):
            pass
        assert tracer.roots[0].counters == {}

    def test_events_attach_to_current_span(self):
        tracer = Tracer(enabled=True)
        tracer.event("orphan")  # no current span: dropped silently
        with tracer.span("io") as span:
            tracer.event("page.read", page=3, bytes=4096)
        assert span.events == [
            {"event": "page.read", "page": 3, "bytes": 4096}]

    def test_event_budget(self):
        tracer = Tracer(enabled=True, max_events_per_span=2)
        with tracer.span("io") as span:
            for i in range(5):
                tracer.event("page.read", page=i)
        assert len(span.events) == 2
        assert span.events_dropped == 3

    def test_span_budget(self):
        tracer = Tracer(enabled=True, max_spans=2)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            with tracer.span("c") as c:  # over budget
                assert c is None
        assert tracer.dropped_spans == 1
        assert len(tracer.roots) == 2

    def test_take_roots_drains(self):
        tracer = Tracer(enabled=True)
        with tracer.span("one"):
            pass
        roots = tracer.take_roots()
        assert [s.name for s in roots] == ["one"]
        assert tracer.take_roots() == []

    def test_stack_repair_on_leaked_inner_span(self):
        # An abandoned generator can leave an inner span open; closing
        # the outer span must still pop cleanly.
        tracer = Tracer(enabled=True)
        outer_cm = tracer.span("outer")
        inner_cm = tracer.span("inner")
        outer = outer_cm.__enter__()
        inner_cm.__enter__()
        outer_cm.__exit__(None, None, None)  # inner never exited
        assert tracer.current_span() is None
        assert tracer.roots == [outer]

    def test_wall_time_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("t") as span:
            pass
        assert span.wall_s >= 0.0

    def test_json_lines_roundtrip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query", goal="p(X)"):
            with tracer.span("loader.fetch"):
                tracer.event("page.read", page=1)
        lines = tracer.to_json_lines()
        objs = [json.loads(line) for line in lines]
        assert [o["name"] for o in objs] == ["query", "loader.fetch"]
        assert objs[1]["parent_id"] == objs[0]["span_id"]
        assert objs[1]["events"] == [{"event": "page.read", "page": 1}]

    def test_span_find_and_format_tree(self):
        root = Span("query", 1)
        child = Span("loader.fetch", 2, parent_id=1, attrs={"mode": "rules"})
        root.children.append(child)
        assert root.find("loader.fetch") == [child]
        text = root.format_tree()
        assert "query" in text and "loader.fetch" in text
        assert "mode=rules" in text


# =====================================================================
# QueryProfile + session integration
# =====================================================================

PROGRAM = """
parent(terach, abraham).  parent(terach, nachor).  parent(terach, haran).
parent(abraham, isaac).   parent(haran, lot).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
"""


@pytest.fixture()
def kb():
    session = EduceStar()
    session.store_program(PROGRAM)
    return session


class TestQueryProfile:
    def test_profile_returns_query_profile(self, kb):
        prof = kb.profile("ancestor(terach, D)")
        assert isinstance(prof, QueryProfile)
        assert prof.solutions == 5
        assert prof.root is not None and prof.root.name == "query"
        assert prof.root.attrs["solutions"] == 5
        assert prof.counters["instr_count"] > 0

    def test_span_tree_shows_loader_activity(self, kb):
        prof = kb.profile("ancestor(terach, D)")
        fetches = prof.root.find("loader.fetch")
        assert fetches, "stored-procedure query must record loader.fetch"
        procs = {s.attrs["procedure"] for s in fetches}
        assert "ancestor/2" in procs
        rules = [s for s in fetches if s.attrs["mode"] == "rules"]
        assert rules and rules[0].find("codec.resolve")
        assert prof.root.find("preunify.filter")

    def test_breakdown_sums(self, kb):
        prof = kb.profile("parent(terach, C)")
        sim = prof.breakdown()
        assert sim["total_ms"] == pytest.approx(
            sim["cpu_ms"] + sim["io_ms"])
        assert sim["cpu_ms"] == pytest.approx(sum(sim["cpu"].values()))
        assert sim["io_ms"] == pytest.approx(sum(sim["io"].values()))
        assert prof.total_ms() == pytest.approx(sim["total_ms"])

    def test_tracing_disabled_after_profile(self, kb):
        kb.profile("parent(terach, C)")
        assert kb.tracer.enabled is False
        # and an untraced solve records no spans
        for _ in kb.solve("parent(terach, C)"):
            pass
        assert kb.tracer.roots == []

    def test_solve_profile_true_sets_last_profile_on_close(self, kb):
        solutions = kb.solve("parent(terach, C)", profile=True)
        next(solutions)
        solutions.close()  # early break, not exhaustion
        prof = kb.last_profile
        assert prof is not None and prof.solutions == 1
        assert prof.root.attrs["solutions"] == 1

    def test_json_lines_header_plus_spans(self, kb, tmp_path):
        prof = kb.profile("ancestor(terach, D)")
        lines = prof.to_json_lines()
        header = json.loads(lines[0])
        assert header["kind"] == "query_profile"
        assert header["solutions"] == 5
        assert header["spans"] == len(lines) - 1
        assert all(json.loads(l)["kind"] == "span" for l in lines[1:])

        path = tmp_path / "profiles.jsonl"
        n = write_json_lines(str(path), [prof])
        n2 = write_json_lines(str(path), [prof])  # appends
        assert n == n2 == len(lines)
        assert len(path.read_text().splitlines()) == 2 * n

    def test_format_is_readable(self, kb):
        text = kb.profile("ancestor(terach, D)").format()
        assert "goal: ancestor(terach, D)" in text
        assert "simulated 1990" in text
        assert "query" in text and "loader.fetch" in text

    def test_metrics_snapshot_covers_all_layers(self, kb):
        for _ in kb.solve("ancestor(terach, D)"):
            pass
        snap = kb.metrics.snapshot()
        for key in ("instr_count", "data_refs", "loads", "parsed_chars",
                    "buffer_hits", "pages"):
            assert key in snap, key

    def test_relational_execute_span(self, kb):
        from repro.relational.algebra import Scan, execute
        kb.store_relation("emp", [(i, i * 10) for i in range(20)])
        tracer = Tracer(enabled=True)
        rows = execute(Scan(kb.relation("emp", 2)), tracer=tracer)
        assert len(rows) == 20
        span = tracer.roots[-1]
        assert span.name == "relational.execute"
        assert span.attrs["rows"] == 20
        assert span.attrs["plan"].startswith("Scan#20")

    def test_page_events_recorded_under_buffer_pressure(self):
        from repro.bang.pager import Pager
        kb = EduceStar(pager=Pager(buffer_pages=2))
        kb.store_relation("num", [(i,) for i in range(2000)])
        prof = kb.profile("num(0)")
        events = [e for s in prof.root.walk() for e in s.events]
        names = {e["event"] for e in events}
        assert "page.read" in names
        read = next(e for e in events if e["event"] == "page.read")
        assert "page" in read and "bytes" in read
