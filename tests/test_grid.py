"""Tests for the BANG-style multidimensional partition index."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bang.grid import BangGrid, point_box
from repro.bang.pager import Pager


def make_grid(ndims=2, capacity=8, buffer_pages=64):
    return BangGrid(ndims, Pager(buffer_pages=buffer_pages),
                    bucket_capacity=capacity)


class TestInsertQuery:
    def test_single_insert_roundtrip(self):
        g = make_grid()
        g.insert((0.5, 0.5), "rec")
        assert list(g.scan()) == ["rec"]

    def test_point_query(self):
        g = make_grid()
        g.insert((0.1, 0.2), "a")
        g.insert((0.3, 0.4), "b")
        box = ((0.1, 0.1), (0.2, 0.2))
        assert list(g.query(box)) == ["a"]

    def test_range_query(self):
        g = make_grid(ndims=1)
        for i in range(20):
            g.insert((i / 20.0,), i)
        got = sorted(g.query(((0.25, 0.5),)))
        assert got == [i for i in range(20) if 0.25 <= i / 20.0 <= 0.5]

    def test_wrong_arity_raises(self):
        g = make_grid(ndims=2)
        with pytest.raises(ValueError):
            g.insert((0.5,), "x")

    def test_needs_dimension(self):
        with pytest.raises(ValueError):
            BangGrid(0, Pager())


class TestSplitting:
    def test_splits_on_overflow(self):
        g = make_grid(ndims=2, capacity=4)
        rng = random.Random(1)
        for i in range(100):
            g.insert((rng.random(), rng.random()), i)
        assert g.leaf_count > 1
        assert g.splits == g.leaf_count - 1
        assert sorted(g.scan()) == list(range(100))

    def test_duplicate_keys_allowed_oversized_bucket(self):
        g = make_grid(ndims=1, capacity=4)
        for i in range(20):
            g.insert((0.5,), i)
        assert sorted(g.query(((0.5, 0.5),))) == list(range(20))

    def test_median_split_balances_skew(self):
        g = make_grid(ndims=1, capacity=10)
        # heavily skewed keys near 0.9
        for i in range(200):
            g.insert((0.9 + i * 1e-6,), i)
        sizes = []
        stack = [g.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                sizes.append(node.count)
            else:
                stack.extend([node.left, node.right])
        assert max(sizes) <= 11  # capacity + in-flight insert


class TestDeletion:
    def test_delete_exact(self):
        g = make_grid()
        g.insert((0.5, 0.5), "a")
        g.insert((0.5, 0.5), "b")
        removed = g.delete((0.5, 0.5), lambda r: r == "a")
        assert removed == 1
        assert list(g.scan()) == ["b"]
        assert g.size == 1

    def test_delete_no_match(self):
        g = make_grid()
        g.insert((0.5, 0.5), "a")
        assert g.delete((0.5, 0.5), lambda r: r == "zzz") == 0


class TestCompaction:
    def test_explicit_compact_merges_underfull_siblings(self):
        import random
        rng = random.Random(4)
        pager = Pager(buffer_pages=64)
        g = BangGrid(1, pager, bucket_capacity=8)
        keys = [(rng.random(),) for _ in range(200)]
        for i, key in enumerate(keys):
            g.insert(key, i)
        leaves_full = g.leaf_count
        # delete most entries
        survivors = {}
        for i, key in enumerate(keys):
            if i % 10 == 0:
                survivors[i] = key
            else:
                g.delete(key, lambda r, i=i: r == i)
        g.compact()
        assert g.leaf_count < leaves_full
        assert g.merges > 0
        assert sorted(g.scan()) == sorted(survivors)
        for i, key in survivors.items():
            assert i in list(g.query(((key[0], key[0]),)))

    def test_compact_frees_disc_pages(self):
        pager = Pager(buffer_pages=64)
        g = BangGrid(1, pager, bucket_capacity=4)
        for i in range(60):
            g.insert((i / 60.0,), i)
        pages_before = pager.disk.page_count
        for i in range(60):
            g.delete((i / 60.0,), lambda r, i=i: r == i)
        g.compact()
        assert pager.disk.page_count < pages_before
        assert g.size == 0

    def test_auto_compact_triggered_by_delete_volume(self):
        pager = Pager(buffer_pages=64)
        g = BangGrid(1, pager, bucket_capacity=4)
        g.compact_every = 50
        for i in range(120):
            g.insert((i / 120.0,), i)
        for i in range(110):
            g.delete((i / 120.0,), lambda r, i=i: r == i)
        assert g.merges > 0  # compaction ran without an explicit call

    def test_compact_noop_on_full_tree(self):
        pager = Pager(buffer_pages=64)
        g = BangGrid(1, pager, bucket_capacity=4)
        for i in range(40):
            g.insert((i / 40.0,), i)
        assert g.compact() == 0
        assert sorted(g.scan()) == list(range(40))


class TestPartialMatch:
    def test_point_box_helper(self):
        box = point_box({1: 0.5}, 3)
        assert box == ((0.0, 1.0), (0.5, 0.5), (0.0, 1.0))

    def test_partial_match_visits_fewer_leaves(self):
        g = make_grid(ndims=2, capacity=4)
        rng = random.Random(7)
        for i in range(300):
            g.insert((rng.random(), rng.random()), i)
        total = g.leaf_count
        partial = g.leaves_for(((0.25, 0.25), (0.0, 1.0)))
        point = g.leaves_for(((0.25, 0.25), (0.75, 0.75)))
        assert point <= partial <= total
        assert partial < total

    def test_io_accounting_per_leaf_visit(self):
        pager = Pager(buffer_pages=2)
        g = BangGrid(1, pager, bucket_capacity=4)
        for i in range(50):
            g.insert((i / 50.0,), i)
        pager.reset_counters()
        list(g.query(((0.0, 1.0),)))
        c = pager.io_counters()
        touched = c["buffer_hits"] + c["buffer_misses"]
        assert touched == g.leaf_count


class TestStats:
    def test_stats_keys(self):
        g = make_grid()
        g.insert((0.5, 0.5), 1)
        s = g.stats()
        assert s["size"] == 1 and s["leaves"] == 1


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=0.999),
              st.floats(min_value=0.0, max_value=0.999)),
    min_size=1, max_size=150))
def test_property_grid_equals_brute_force(points):
    """Every box query returns exactly the brute-force answer."""
    g = make_grid(ndims=2, capacity=6)
    for i, key in enumerate(points):
        g.insert(key, i)
    boxes = [
        ((0.0, 1.0), (0.0, 1.0)),
        ((0.2, 0.7), (0.0, 1.0)),
        ((0.0, 0.5), (0.5, 1.0)),
        (tuple([points[0][0], points[0][0]]),
         tuple([points[0][1], points[0][1]])),
    ]
    for box in boxes:
        got = sorted(g.query(box))
        want = sorted(
            i for i, (x, y) in enumerate(points)
            if box[0][0] <= x <= box[0][1]
            and box[1][0] <= y <= box[1][1])
        assert got == want
