"""Tests for the Prolog-level relational operators (paper §4, [9])."""

import pytest

from repro.engine.session import EduceStar
from repro.errors import CatalogError, ExistenceError, TypeError_


@pytest.fixture
def kb():
    s = EduceStar()
    s.store_relation("emp", [
        (1, "ann", "eng", 90), (2, "bob", "hr", 60),
        (3, "cleo", "eng", 80), (4, "dan", "ops", 70),
    ])
    s.store_relation("dept", [
        ("eng", "munich"), ("hr", "paris"), ("ops", "rome"),
    ])
    return s


class TestSelect:
    def test_pattern_selection(self, kb):
        kb.solve_once("db_select(emp/4, emp(_, _, eng, _), out)")
        assert kb.count_solutions("out(_, _, _, _)") == 2

    def test_empty_pattern_copies(self, kb):
        kb.solve_once("db_select(emp/4, [], all_emp)")
        assert kb.count_solutions("all_emp(_, _, _, _)") == 4

    def test_numeric_selection(self, kb):
        kb.solve_once("db_select(emp/4, emp(2, _, _, _), one)")
        assert str(kb.solve_once("one(_, N, _, _)")["N"]) == "bob"

    def test_empty_result_is_usable(self, kb):
        kb.solve_once("db_select(emp/4, emp(_, _, nowhere, _), none)")
        assert kb.solve_once("none(_, _, _, _)") is None
        assert kb.solve_once("db_count(none/4, 0)") is not None

    def test_rematerialisation_replaces(self, kb):
        kb.solve_once("db_select(emp/4, emp(_, _, eng, _), out)")
        kb.solve_once("db_select(emp/4, emp(_, _, hr, _), out)")
        assert kb.count_solutions("out(_, _, _, _)") == 1

    def test_wrong_arity_pattern_raises(self, kb):
        with pytest.raises(TypeError_):
            kb.solve_once("db_select(emp/4, emp(_, _), out)")


class TestProjectJoin:
    def test_project_distinct(self, kb):
        kb.solve_once("db_project(emp/4, [3], depts)")
        got = sorted(str(s["D"]) for s in kb.solve("depts(D)"))
        assert got == ["eng", "hr", "ops"]

    def test_project_multiple_columns(self, kb):
        kb.solve_once("db_project(emp/4, [2, 3], pairs)")
        assert kb.count_solutions("pairs(_, _)") == 4

    def test_project_column_out_of_range(self, kb):
        with pytest.raises(CatalogError):
            kb.solve_once("db_project(emp/4, [9], bad)")

    def test_join(self, kb):
        kb.solve_once("db_join(emp/4, 3, dept/2, 1, located)")
        assert kb.count_solutions("located(_, _, _, _, _, _)") == 4
        city = kb.solve_once("located(1, _, _, _, _, C)")["C"]
        assert str(city) == "munich"

    def test_join_results_queryable_recursively(self, kb):
        """Derived relations feed straight back into inference (§4:
        mixing strategies 'without performance penalties')."""
        kb.solve_once("db_join(emp/4, 3, dept/2, 1, located)")
        kb.consult("""
        colleague_city(A, B, City) :-
            located(A, _, D, _, _, City),
            located(B, _, D, _, _, City),
            A \\== B.
        """)
        pairs = sorted((s["A"], s["B"]) for s in
                       kb.solve("colleague_city(A, B, _)"))
        assert pairs == [(1, 3), (3, 1)]


class TestSetOps:
    def test_union_set_semantics(self, kb):
        kb.solve_once("""
            db_select(emp/4, emp(_, _, eng, _), a),
            db_select(emp/4, emp(1, _, _, _), b),
            db_union(a/4, b/4, u)
        """)
        assert kb.count_solutions("u(_, _, _, _)") == 2  # ann dedup'd

    def test_diff(self, kb):
        kb.solve_once("""
            db_select(emp/4, [], every),
            db_select(emp/4, emp(_, _, eng, _), engs),
            db_diff(every/4, engs/4, rest)
        """)
        names = sorted(str(s["N"]) for s in kb.solve("rest(_, N, _, _)"))
        assert names == ["bob", "dan"]

    def test_arity_mismatch_raises(self, kb):
        with pytest.raises(CatalogError):
            kb.solve_once("db_union(emp/4, dept/2, nope)")


class TestCountDrop:
    def test_count(self, kb):
        assert kb.solve_once("db_count(emp/4, N)")["N"] == 4
        assert kb.solve_once("db_count(emp/4, 4)") is not None
        assert kb.solve_once("db_count(emp/4, 5)") is None

    def test_drop_removes(self, kb):
        kb.solve_once("db_select(emp/4, [], tmp)")
        assert kb.solve_once("db_drop(tmp/4)") is not None
        with pytest.raises(ExistenceError):
            kb.solve_once("tmp(_, _, _, _)")

    def test_drop_missing_fails(self, kb):
        assert kb.solve_once("db_drop(never_was/3)") is None

    def test_unknown_relation_raises(self, kb):
        with pytest.raises(ExistenceError):
            kb.solve_once("db_count(ghost/2, _)")

    def test_rules_are_not_relations(self, kb):
        kb.store_program("derived(X) :- emp(X, _, _, _).")
        with pytest.raises(ExistenceError):
            kb.solve_once("db_count(derived/1, _)")
