"""Tests for counters and the 1990-hardware cost model."""


from repro.engine.stats import (
    SUN_3_60_MIPS,
    SUN_3_280S_MIPS,
    CostModel,
    Measurement,
    diff_counters,
    measure,
    merge_counters,
)


class TestCostModel:
    def test_cpu_scales_inversely_with_mips(self):
        counters = {"instr_count": 1_000_000}
        fast = CostModel(mips=4.0).cpu_ms(counters)
        slow = CostModel(mips=3.0).cpu_ms(counters)
        assert abs(slow / fast - 4.0 / 3.0) < 1e-9

    def test_io_independent_of_mips(self):
        counters = {"reads": 10, "bytes_read": 40960}
        assert CostModel(mips=4.0).io_ms(counters) == \
            CostModel(mips=1.0).io_ms(counters)

    def test_total_is_sum(self):
        m = CostModel()
        counters = {"instr_count": 1000, "reads": 2}
        assert m.total_ms(counters) == \
            m.cpu_ms(counters) + m.io_ms(counters)

    def test_at_mips_clone(self):
        base = CostModel(mips=SUN_3_280S_MIPS)
        client = base.at_mips(SUN_3_60_MIPS)
        assert client.mips == 3.0
        assert base.mips == 4.0
        assert client.disc_access_ms == base.disc_access_ms

    def test_at_mips_preserves_non_default_fields(self):
        # Regression: at_mips used CostModel(**self.__dict__), which
        # breaks as soon as the clone path and the field list drift;
        # it must be a dataclasses.replace so every customised field
        # (here a non-default disc) survives the re-pricing.
        base = CostModel(disc_access_ms=50.0, native_per_wam_instr=99)
        client = base.at_mips(2.0)
        assert isinstance(client, CostModel)
        assert client.mips == 2.0
        assert client.disc_access_ms == 50.0
        assert client.native_per_wam_instr == 99
        assert base.mips != 2.0  # original untouched

    def test_every_counter_kind_priced(self):
        m = CostModel()
        for key in ("instr_count", "data_refs", "parsed_chars",
                    "compile_count", "resolutions", "tuple_ops",
                    "inferences"):
            assert m.cpu_ms({key: 1000}) > 0

    def test_zero_counters_cost_zero(self):
        assert CostModel().total_ms({}) == 0.0


class TestMeasurement:
    def test_simulated_ms_default_model(self):
        meas = Measurement(counters={"instr_count": 4000})
        assert meas.simulated_ms() > 0

    def test_getitem_default_zero(self):
        assert Measurement()["anything"] == 0


class TestCounterHelpers:
    def test_merge(self):
        assert merge_counters({"a": 1}, {"a": 2, "b": 3}) == \
            {"a": 3, "b": 3}

    def test_merge_ignores_non_numeric(self):
        assert merge_counters({"a": 1, "s": "str"}) == {"a": 1}

    def test_diff(self):
        assert diff_counters({"a": 5, "b": 1}, {"a": 2}) == \
            {"a": 3, "b": 1}

    def test_merge_floats(self):
        merged = merge_counters({"ms": 1.5, "n": 1}, {"ms": 2.25})
        assert merged == {"ms": 3.75, "n": 1}
        assert isinstance(merged["ms"], float)

    def test_diff_reset_default_goes_negative(self):
        # A counter that shrank (reset between snapshots) yields a raw
        # negative delta by default — the historical contract.
        assert diff_counters({"a": 3}, {"a": 100}) == {"a": -97}

    def test_diff_reset_clamped(self):
        # clamp_resets reads a shrunk counter as "reset, then
        # accumulated this much" (the registry's monotonic semantics).
        assert diff_counters({"a": 3}, {"a": 100},
                             clamp_resets=True) == {"a": 3}

    def test_diff_disappearing_counter_ignored(self):
        # Keys only in *before* (source detached) are not reported.
        assert diff_counters({"a": 5}, {"a": 2, "gone": 9}) == {"a": 3}


class TestMeasureContext:
    class FakeSource:
        def __init__(self):
            self.n = 0

        def counters(self):
            return {"n": self.n}

    def test_captures_delta(self):
        src = self.FakeSource()
        src.n = 10
        with measure(src) as m:
            src.n = 25
        assert m.counters == {"n": 15}
        assert m.wall_s >= 0

    def test_multiple_sources_merged(self):
        a, b = self.FakeSource(), self.FakeSource()
        with measure(a, b) as m:
            a.n = 1
            b.n = 2
        assert m.counters == {"n": 3}

    def test_nested_measure_blocks(self):
        # Inner deltas must not leak into or steal from the outer
        # measurement: the outer block sees the whole accumulation,
        # the inner block only its own extent.
        src = self.FakeSource()
        with measure(src) as outer:
            src.n += 2
            with measure(src) as inner:
                src.n += 5
            src.n += 1
        assert inner.counters == {"n": 5}
        assert outer.counters == {"n": 8}

    def test_nested_measure_sibling_blocks(self):
        src = self.FakeSource()
        with measure(src) as outer:
            with measure(src) as first:
                src.n += 3
            with measure(src) as second:
                src.n += 4
        assert first.counters == {"n": 3}
        assert second.counters == {"n": 4}
        assert outer.counters == {"n": 7}
