"""Tests for counters and the 1990-hardware cost model."""

import pytest

from repro.engine.stats import (
    SUN_3_60_MIPS,
    SUN_3_280S_MIPS,
    CostModel,
    Measurement,
    diff_counters,
    measure,
    merge_counters,
)


class TestCostModel:
    def test_cpu_scales_inversely_with_mips(self):
        counters = {"instr_count": 1_000_000}
        fast = CostModel(mips=4.0).cpu_ms(counters)
        slow = CostModel(mips=3.0).cpu_ms(counters)
        assert abs(slow / fast - 4.0 / 3.0) < 1e-9

    def test_io_independent_of_mips(self):
        counters = {"reads": 10, "bytes_read": 40960}
        assert CostModel(mips=4.0).io_ms(counters) == \
            CostModel(mips=1.0).io_ms(counters)

    def test_total_is_sum(self):
        m = CostModel()
        counters = {"instr_count": 1000, "reads": 2}
        assert m.total_ms(counters) == \
            m.cpu_ms(counters) + m.io_ms(counters)

    def test_at_mips_clone(self):
        base = CostModel(mips=SUN_3_280S_MIPS)
        client = base.at_mips(SUN_3_60_MIPS)
        assert client.mips == 3.0
        assert base.mips == 4.0
        assert client.disc_access_ms == base.disc_access_ms

    def test_every_counter_kind_priced(self):
        m = CostModel()
        for key in ("instr_count", "data_refs", "parsed_chars",
                    "compile_count", "resolutions", "tuple_ops",
                    "inferences"):
            assert m.cpu_ms({key: 1000}) > 0

    def test_zero_counters_cost_zero(self):
        assert CostModel().total_ms({}) == 0.0


class TestMeasurement:
    def test_simulated_ms_default_model(self):
        meas = Measurement(counters={"instr_count": 4000})
        assert meas.simulated_ms() > 0

    def test_getitem_default_zero(self):
        assert Measurement()["anything"] == 0


class TestCounterHelpers:
    def test_merge(self):
        assert merge_counters({"a": 1}, {"a": 2, "b": 3}) == \
            {"a": 3, "b": 3}

    def test_merge_ignores_non_numeric(self):
        assert merge_counters({"a": 1, "s": "str"}) == {"a": 1}

    def test_diff(self):
        assert diff_counters({"a": 5, "b": 1}, {"a": 2}) == \
            {"a": 3, "b": 1}


class TestMeasureContext:
    class FakeSource:
        def __init__(self):
            self.n = 0

        def counters(self):
            return {"n": self.n}

    def test_captures_delta(self):
        src = self.FakeSource()
        src.n = 10
        with measure(src) as m:
            src.n = 25
        assert m.counters == {"n": 15}
        assert m.wall_s >= 0

    def test_multiple_sources_merged(self):
        a, b = self.FakeSource(), self.FakeSource()
        with measure(a, b) as m:
            a.n = 1
            b.n = 2
        assert m.counters == {"n": 3}
