"""Tests for the disassembler, tracer and instruction profiler."""

import pytest

from repro.errors import ExistenceError
from repro.wam.debugger import (
    Tracer,
    disassemble,
    format_instruction,
    instruction_profile,
)


class TestDisassemble:
    def test_static_procedure_listing(self, machine):
        machine.consult("p(a, X) :- q(X).")
        text = disassemble(machine, "p", 2)
        assert "% p/2 (static)" in text
        assert "get_constant 'a', X0" in text
        assert "execute q/1" in text

    def test_indexing_shown_symbolically(self, machine):
        machine.consult("k(a). k(b). k(f(1)).")
        text = disassemble(machine, "k", 1)
        assert "switch_on_term" in text
        assert "'a'->" in text
        assert "f/1->" in text

    def test_dynamic_procedure_compiled_on_demand(self, machine):
        machine.solve_once("assertz(d(1))")
        text = disassemble(machine, "d", 1)
        assert "get_constant 1, X0" in text

    def test_unknown_procedure_raises(self, machine):
        with pytest.raises(ExistenceError):
            disassemble(machine, "nope", 3)

    def test_format_single_instruction(self, machine):
        machine.consult("p(x).")
        proc = machine.procedure("p", 1)
        line = format_instruction(machine, proc.code[0])
        assert line == "get_constant 'x', X0"


class TestTracer:
    def test_captures_calls(self, machine):
        # The top-level goal itself is metacalled (no CALL instruction);
        # everything it invokes from compiled code is traced.
        machine.consult("t :- a, b. a :- b. b.")
        with Tracer(machine) as tracer:
            machine.solve_once("t")
        assert ("a", 0) in tracer.calls
        assert tracer.calls.count(("b", 0)) == 2

    def test_spypoints_filter_events(self, machine):
        machine.consult("outer :- inner1, inner2. inner1. inner2.")
        with Tracer(machine, spypoints=[("inner2", 0)]) as tracer:
            machine.solve_once("outer")
        spy_events = [e for e in tracer.events if "inner" in e]
        assert spy_events and all("inner2" in e for e in spy_events)

    def test_opcode_counts(self, machine):
        machine.consult("f(1). f(2).")
        with Tracer(machine) as tracer:
            machine.count_solutions("f(_)")
        assert tracer.opcode_counts["proceed"] >= 2

    def test_hook_restored_on_exit(self, machine):
        with Tracer(machine):
            pass
        assert machine.trace_hook is None

    def test_sink_receives_events(self, machine):
        machine.consult("g(1).")
        received = []
        with Tracer(machine, sink=received.append):
            machine.solve_once("g(_)")
        assert received

    def test_max_events_bounds_memory(self, machine):
        machine.consult("loop(0). loop(N) :- N > 0, M is N - 1, loop(M).")
        with Tracer(machine, max_events=10) as tracer:
            machine.solve_once("loop(100)")
        assert len(tracer.events) == 10

    def test_tracing_does_not_change_answers(self, machine):
        machine.consult("n(1). n(2). n(3).")
        plain = [s["X"] for s in machine.solve("n(X)")]
        with Tracer(machine):
            traced = [s["X"] for s in machine.solve("n(X)")]
        assert plain == traced


class TestInstructionProfile:
    def test_profile_shape(self, machine):
        machine.consult("sum([], 0). sum([H|T], S) :- sum(T, S0), "
                        "S is S0 + H.")
        profile = instruction_profile(machine, "sum([1,2,3], _)")
        assert profile["call"] >= 1 or profile["execute"] >= 1
        assert profile["escape"] >= 3  # the three is/2 evaluations

    def test_deterministic(self, machine):
        machine.consult("p(a). p(b).")
        a = instruction_profile(machine, "p(a)")
        b = instruction_profile(machine, "p(a)")
        assert a == b
