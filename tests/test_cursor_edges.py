"""Edge cases for the cursor interface and grid compaction interplay."""

import pytest

from repro.engine.session import EduceStar


@pytest.fixture
def kb():
    s = EduceStar()
    s.store_relation("n", [(i, i % 3) for i in range(30)])
    return s


class TestCursorRewind:
    def test_set_key_resets_position(self, kb):
        kb.consult("""
        two_scans(A, B) :-
            open_rel(D, n/2),
            set_key(D, n(_, 0)),
            first_tuple(D, row(A, _)),
            set_key(D, n(_, 1)),
            first_tuple(D, row(B, _)),
            close_rel(D).
        """)
        sol = kb.solve_once("two_scans(A, B)")
        assert sol["A"] % 3 == 0
        assert sol["B"] % 3 == 1

    def test_first_tuple_restarts_exhausted_cursor(self, kb):
        kb.consult("""
        drain(D) :- next_tuple(D, _), !, drain(D).
        drain(_).
        restart(X) :-
            open_rel(D, n/2),
            drain(D),
            first_tuple(D, row(X, _)),
            close_rel(D).
        """)
        assert kb.solve_once("restart(X)") is not None

    def test_more_does_not_consume(self, kb):
        kb.consult("""
        peek_then_read(X) :-
            open_rel(D, n/2),
            more(D),
            more(D),
            first_tuple(D, row(X, _)),
            close_rel(D).
        """)
        assert kb.solve_once("peek_then_read(X)") is not None

    def test_two_cursors_independent(self, kb):
        kb.consult("""
        parallel(A, B) :-
            open_rel(D1, n/2),
            open_rel(D2, n/2),
            first_tuple(D1, row(A, _)),
            first_tuple(D2, row(B, _)),
            next_tuple(D1, _),
            first_tuple(D2, row(B2, _)),
            B == B2,
            close_rel(D1), close_rel(D2).
        """)
        assert kb.solve_once("parallel(A, B)") is not None


class TestCursorAfterMutation:
    def test_cursor_over_relation_after_deletes(self, kb):
        rel = kb.relation("n", 2)
        rel.delete_where({1: 0})
        kb.consult("""
        drain(D, N0, N) :-
            ( next_tuple(D, _) -> N1 is N0 + 1, drain(D, N1, N)
            ; N = N0 ).
        count_all(N) :-
            open_rel(D, n/2), drain(D, 0, N), close_rel(D).
        """)
        assert kb.solve_once("count_all(N)")["N"] == 20

    def test_relation_queries_after_compaction(self, kb):
        rel = kb.relation("n", 2)
        rel.delete_where({1: 0})
        rel.delete_where({1: 1})
        rel.grid.compact()
        left = sorted(r[0] for r in rel.scan())
        assert left == [i for i in range(30) if i % 3 == 2]
        # point query still exact after merges/splices
        assert list(rel.query({0: 2})) == [(2, 2)]
        assert list(rel.query({0: 3})) == []
