"""Sampled WAM profiler (repro/obs/profiler.py, docs/OBSERVABILITY.md).

Attribution correctness is checked against workloads whose cost
structure is known by construction (nrev's work lives in append; a
driver rule has inclusive but no exclusive cost), plus the structural
invariants: inclusive ≥ exclusive everywhere, folded-stack lines are
well-formed and root-first, the off path leaves the machine untouched,
and sampling composes with the service's deadline poll hook instead of
displacing it.
"""

import re

import pytest

from repro import EduceStar
from repro.obs.profiler import DEFAULT_INTERVAL, WamProfiler
from repro.wam.machine import Machine

NREV = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
drive(L) :- nrev(L, _).
"""

LIST20 = "[" + ",".join(str(i) for i in range(20)) + "]"


def nrev_session(interval=512):
    kb = EduceStar()
    kb.consult(NREV)
    profiler = kb.enable_profiling(interval=interval)
    for _ in range(10):
        kb.solve_once(f"drive({LIST20}).")
    return kb, profiler


# =====================================================================
# Attribution correctness
# =====================================================================

class TestAttribution:
    def test_known_workload_shape(self):
        kb, profiler = nrev_session()
        assert profiler.samples > 0
        rows = {r["predicate"]: r for r in profiler.attribution()}
        # nrev's quadratic work is in app/3: it must lead exclusively.
        assert rows["app/3"]["excl_instr"] == max(
            r["excl_instr"] for r in rows.values())
        # The driver only calls: inclusive cost, no exclusive samples.
        if "drive/1" in rows:
            drive = rows["drive/1"]
            assert drive["incl_samples"] >= drive["excl_samples"]

    def test_inclusive_dominates_exclusive(self):
        _, profiler = nrev_session()
        for rec in profiler.attribution():
            assert rec["incl_instr"] >= rec["excl_instr"], rec
            assert rec["incl_samples"] >= rec["excl_samples"], rec
            assert rec["incl_ms"] >= rec["excl_ms"], rec

    def test_sampled_totals_balance(self):
        """Exclusive attribution is a partition of the sampled work."""
        _, profiler = nrev_session()
        assert sum(r["excl_instr"] for r in profiler.attribution()) \
            == profiler.sampled_instr
        assert sum(r["excl_samples"] for r in profiler.attribution()) \
            == profiler.samples

    def test_attribution_sorted_heaviest_first(self):
        _, profiler = nrev_session()
        rows = profiler.attribution()
        assert rows == sorted(
            rows, key=lambda r: (-r["excl_instr"], -r["incl_instr"],
                                 r["predicate"]))

    def test_edb_predicate_attributed(self):
        """Loader-fetched blocks are labelled via note_code, so stored
        predicates are attributed like main-memory ones."""
        kb = EduceStar()
        kb.store_relation("edge", [(i, i + 1) for i in range(200)])
        kb.store_program(
            "hop(X, Z) :- edge(X, Y), edge(Y, Z).")
        profiler = kb.enable_profiling(interval=64)
        for _ in kb.solve("hop(X, Z)"):
            pass
        preds = {r["predicate"] for r in profiler.attribution()}
        assert "edge/2" in preds or "hop/2" in preds, preds
        assert profiler.counters()["profiler_unknown_blocks"] == 0


# =====================================================================
# Folded stacks
# =====================================================================

class TestFolded:
    def test_folded_format(self):
        _, profiler = nrev_session()
        lines = profiler.folded()
        assert lines
        for line in lines:
            assert re.fullmatch(r"[^ ;]+(;[^ ;]+)* \d+", line), line
        # Root-first: app/3 runs under nrev/2, never the other way.
        assert any(line.startswith("nrev/2;app/3 ")
                   or ";nrev/2;app/3 " in line for line in lines)
        assert not any("app/3;nrev/2" in line for line in lines)

    def test_folded_counts_sum_to_samples(self):
        _, profiler = nrev_session()
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in profiler.folded())
        assert total == profiler.samples


# =====================================================================
# Lifecycle and the off path
# =====================================================================

class TestLifecycle:
    def test_no_profiler_no_counters(self):
        machine = Machine()
        machine.consult("p(a).")
        machine.solve_once("p(X)")
        assert not any(k.startswith("profiler_")
                       for k in machine.counters())

    def test_installed_but_disabled_never_samples(self):
        kb = EduceStar()
        kb.consult(NREV)
        profiler = kb.enable_profiling(interval=64)
        kb.disable_profiling()
        kb.solve_once(f"drive({LIST20}).")
        assert profiler.samples == 0
        # Counters are merged (all zero) while installed.
        assert kb.machine.counters()["profiler_samples"] == 0

    def test_reset_clears_attribution(self):
        kb, profiler = nrev_session()
        assert profiler.samples
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.attribution() == []
        assert profiler.folded() == []
        kb.solve_once(f"drive({LIST20}).")
        assert profiler.samples > 0   # still enabled after reset

    def test_one_machine_per_profiler(self):
        m1, m2 = Machine(), Machine()
        profiler = WamProfiler().install(m1)
        with pytest.raises(ValueError):
            profiler.install(m2)
        with pytest.raises(ValueError):
            WamProfiler().install(m1)
        profiler.uninstall()
        assert m1.profiler is None
        WamProfiler().install(m1)   # slot freed

    def test_enable_requires_install(self):
        with pytest.raises(ValueError):
            WamProfiler().enable()

    def test_session_enable_is_idempotent(self):
        kb = EduceStar()
        first = kb.enable_profiling(interval=128)
        second = kb.enable_profiling(interval=256)
        assert first is second
        assert second.interval == 256
        assert kb.enable_profiling().interval == 256

    def test_default_interval(self):
        kb = EduceStar()
        assert kb.enable_profiling().interval == DEFAULT_INTERVAL


# =====================================================================
# Sampling mechanics
# =====================================================================

class TestSampling:
    def test_phase_carries_across_short_queries(self):
        """Queries shorter than one interval still get sampled once
        enough of them accumulate — the phase is machine-wide, not
        per-query."""
        kb = EduceStar()
        kb.consult("p(a). p(b). q(X) :- p(X).")
        profiler = kb.enable_profiling(interval=1024)
        for _ in range(400):
            kb.solve_once("q(X).")
        assert profiler.samples > 0

    def test_composes_with_deadline_poll_hook(self):
        """A poll hook (the service's deadline machinery) keeps firing
        and the profiler samples through it."""
        kb = EduceStar()
        kb.consult(NREV)
        polls = []
        kb.machine.poll_hook = polls.append
        kb.machine.poll_interval = 256
        profiler = kb.enable_profiling(interval=512)
        kb.solve_once(f"drive({LIST20}).")
        assert polls, "inner poll hook was displaced"
        assert profiler.samples > 0

    def test_tight_poll_does_not_force_samples(self):
        """A poll boundary tighter than the sampling interval must not
        inflate the sample rate past instr/interval."""
        kb = EduceStar()
        kb.consult(NREV)
        kb.machine.poll_hook = lambda m: None
        kb.machine.poll_interval = 64
        profiler = kb.enable_profiling(interval=2048)
        before = kb.machine.instr_count
        for _ in range(5):
            kb.solve_once(f"drive({LIST20}).")
        executed = kb.machine.instr_count - before
        assert profiler.samples <= executed // 2048 + 1

    def test_truncated_stacks_counted(self):
        kb = EduceStar()
        kb.consult(NREV)
        profiler = kb.enable_profiling(interval=64)
        profiler.max_depth = 2
        kb.solve_once(f"drive({LIST20}).")
        assert profiler.counters()["profiler_truncated_stacks"] > 0

    def test_counters_merge_into_snapshot(self):
        kb, profiler = nrev_session()
        snapshot = kb.metrics.snapshot()
        for key, value in profiler.counters().items():
            assert snapshot[key] == value


# =====================================================================
# Reports
# =====================================================================

class TestReports:
    def test_report_shape(self):
        _, profiler = nrev_session()
        report = profiler.report()
        assert report["kind"] == "wam_profile"
        assert report["interval"] == profiler.interval
        assert report["predicates"] and report["folded"]

    def test_json_lines(self):
        import json
        _, profiler = nrev_session()
        lines = profiler.to_json_lines()
        header = json.loads(lines[0])
        assert header["kind"] == "wam_profile"
        for line in lines[1:]:
            rec = json.loads(line)
            assert rec["kind"] == "wam_profile_pred"
            assert rec["predicate"]

    def test_format_table(self):
        kb, profiler = nrev_session()
        text = profiler.format(cost_model=kb.cost_model)
        assert "app/3" in text
        assert "samples:" in text
        empty = WamProfiler()
        assert "no samples" in empty.format()


# =====================================================================
# Service integration
# =====================================================================

class TestService:
    def test_service_profiling_and_merged_report(self):
        from repro.service import QueryService
        svc = QueryService(workers=2, queue_size=16, profiling=True,
                           profile_interval=64)
        try:
            svc.store_relation("edge", [(i, i + 1) for i in range(60)])
            svc.store_program(
                "hop(X, Z) :- edge(X, Y), edge(Y, Z).")
            tickets = [svc.submit("hop(X, Z)") for _ in range(6)]
            for ticket in tickets:
                ticket.result(timeout=30)
            report = svc.profile_report()
            assert report["kind"] == "wam_profile"
            assert report["counters"]["profiler_samples"] > 0
            preds = {r["predicate"] for r in report["predicates"]}
            assert preds & {"hop/2", "edge/2"}, preds
            # Counters reach the Prometheus exposition.
            text = svc.exposition()
            assert "educe_profiler_samples" in text
            svc.disable_profiling()
        finally:
            svc.shutdown()

    def test_service_toggle_off_by_default(self):
        from repro.service import QueryService
        svc = QueryService(workers=1, queue_size=4)
        try:
            svc.store_relation("edge", [(1, 2)])
            svc.submit("edge(X, Y)").result(timeout=30)
            assert "educe_profiler_samples" not in svc.exposition()
            svc.enable_profiling(interval=64)
            svc.submit("edge(X, Y)").result(timeout=30)
            assert "educe_profiler_samples" in svc.exposition()
        finally:
            svc.shutdown()
