"""Differential suite: bottom-up answers == WAM top-down answers.

For every workload graph family (chain, tree, DAG, same-generation,
stratified negation) and many random seeds, the forced-bottom-up
engine's answers — as *multisets* of binding dicts — must equal the
WAM top-down oracle's answer **set**:

* bottom-up evaluation has set semantics, so its multiset must be
  duplicate-free;
* the WAM derives one answer per proof, so its answers are collapsed to
  a set before comparison (docs/DATALOG.md, "answer semantics").

The suite runs three ways per case: magic rewriting on (the default),
magic off (pure semi-naive), and the planner left free to choose either
strategy (``datalog="auto"``).  Seeds default to 25 and can be raised
with ``DATALOG_SEEDS=n``.
"""

import os
from collections import Counter

import pytest

from repro import EduceStar
from repro.workloads import graphs

SEEDS = int(os.environ.get("DATALOG_SEEDS", "25"))


def build_session(case, **kwargs) -> EduceStar:
    kb = EduceStar(**kwargs)
    for name, rows in case["relations"].items():
        kb.store_relation(name, rows)
    kb.store_program(case["program"])
    return kb


def answer_multiset(kb: EduceStar, goal: str) -> Counter:
    return Counter(
        tuple(sorted((name, repr(term))
                     for name, term in solution.bindings.items()))
        for solution in kb.solve(goal))


def case_ids(seed):
    return [pytest.param(case, seed, id=f"{case['name']}-s{seed}")
            for case in graphs.differential_cases(seed)]


ALL_CASES = [p for seed in range(SEEDS) for p in case_ids(seed)]


@pytest.mark.parametrize("case,seed", ALL_CASES)
def test_bottom_up_matches_oracle(case, seed):
    oracle = build_session(case, datalog="off")
    bottomup = build_session(case, datalog="force")
    for goal in case["goals"]:
        expected = answer_multiset(oracle, goal)
        got = answer_multiset(bottomup, goal)
        assert bottomup.datalog.bottomup > 0, (
            f"{case['name']}/{goal}: not routed bottom-up")
        assert max(got.values(), default=1) == 1, (
            f"{case['name']}/{goal}: bottom-up produced duplicates")
        assert got == Counter(set(expected)), (
            f"{case['name']} seed {seed} goal {goal}: "
            f"bottom-up != oracle")


@pytest.mark.parametrize("seed", range(0, SEEDS, 5))
def test_magic_off_matches_oracle(seed):
    """Pure semi-naive (no demand rewrite) agrees with the oracle."""
    for case in graphs.differential_cases(seed):
        oracle = build_session(case, datalog="off")
        bottomup = build_session(case, datalog="force")
        bottomup.datalog.magic = False
        for goal in case["goals"]:
            expected = set(answer_multiset(oracle, goal))
            got = answer_multiset(bottomup, goal)
            assert got == Counter(expected), (
                f"{case['name']} seed {seed} goal {goal} (magic off)")
        assert bottomup.datalog.magic_rewrites == 0


@pytest.mark.parametrize("seed", range(0, SEEDS, 5))
def test_planner_free_choice_matches_oracle(seed):
    """With the planner free (auto mode) answers are unchanged, no
    matter which strategy it picked per goal."""
    for case in graphs.differential_cases(seed):
        oracle = build_session(case, datalog="off")
        auto = build_session(case, datalog="auto")
        for goal in case["goals"]:
            expected = set(answer_multiset(oracle, goal))
            got = answer_multiset(auto, goal)
            assert set(got) == expected, (
                f"{case['name']} seed {seed} goal {goal} (auto)")


def test_forced_routing_visible_in_exposition():
    """The strategy decision shows up in the Prometheus exposition."""
    from repro.obs import render_prometheus
    case = graphs.differential_cases(0)[0]
    kb = build_session(case, datalog="force")
    for goal in case["goals"]:
        list(kb.solve(goal))
    text = render_prometheus(kb.metrics.snapshot())
    assert "datalog_bottomup" in text
    assert "datalog_fixpoint_iterations" in text
