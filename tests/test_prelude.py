"""Tests for the compiled Prolog library (prelude)."""


from repro.lang.writer import term_to_text


def one(machine, goal, var):
    sol = machine.solve_once(goal)
    assert sol is not None, goal
    return term_to_text(sol[var])


def all_(machine, goal, var):
    return [term_to_text(s[var]) for s in machine.solve(goal)]


class TestAppendMember:
    def test_append_ground(self, machine):
        assert one(machine, "append([1,2], [3], L)", "L") == "[1,2,3]"

    def test_append_split_enumeration(self, machine):
        assert len(list(machine.solve("append(_, _, [a,b,c])"))) == 4

    def test_append_finds_prefix(self, machine):
        assert one(machine, "append(P, [c], [a,b,c])", "P") == "[a,b]"

    def test_member_enumerates(self, machine):
        assert all_(machine, "member(X, [a,b,c])", "X") == ["a", "b", "c"]

    def test_member_checks(self, machine):
        assert machine.solve_once("member(b, [a,b])") is not None
        assert machine.solve_once("member(z, [a,b])") is None

    def test_memberchk_deterministic(self, machine):
        assert len(list(machine.solve("memberchk(a, [a,a,a])"))) == 1


class TestListUtilities:
    def test_reverse(self, machine):
        assert one(machine, "reverse([1,2,3], R)", "R") == "[3,2,1]"

    def test_nth0_nth1(self, machine):
        assert one(machine, "nth0(0, [a,b], E)", "E") == "a"
        assert one(machine, "nth1(1, [a,b], E)", "E") == "a"

    def test_nth_enumerates_positions(self, machine):
        sols = [(s["I"], str(s["E"]))
                for s in machine.solve("nth0(I, [x,y], E)")]
        assert sols == [(0, "x"), (1, "y")]

    def test_last(self, machine):
        assert one(machine, "last([1,2,3], X)", "X") == "3"

    def test_select(self, machine):
        assert all_(machine, "select(X, [a,b], _)", "X") == ["a", "b"]
        assert one(machine, "select(b, [a,b,c], R)", "R") == "[a,c]"

    def test_delete(self, machine):
        assert one(machine, "delete([a,b,a,c], a, R)", "R") == "[b,c]"

    def test_subtract(self, machine):
        assert one(machine, "subtract([1,2,3,4], [2,4], R)", "R") == "[1,3]"

    def test_intersection_union(self, machine):
        assert one(machine, "intersection([1,2,3], [2,3,4], R)", "R") \
            == "[2,3]"
        assert one(machine, "union([1,2], [2,3], R)", "R") == "[1,2,3]"


class TestNumericLists:
    def test_sum_list(self, machine):
        assert one(machine, "sum_list([1,2,3], S)", "S") == "6"
        assert one(machine, "sum_list([], S)", "S") == "0"

    def test_max_min_list(self, machine):
        assert one(machine, "max_list([3,1,4,1,5], M)", "M") == "5"
        assert one(machine, "min_list([3,1,4], M)", "M") == "1"

    def test_numlist(self, machine):
        assert one(machine, "numlist(2, 5, L)", "L") == "[2,3,4,5]"

    def test_numlist_single(self, machine):
        assert one(machine, "numlist(3, 3, L)", "L") == "[3]"

    def test_numlist_empty_range_fails(self, machine):
        assert machine.solve_once("numlist(5, 2, _)") is None


class TestMaplist:
    def test_maplist2(self, machine):
        machine.consult("pos(X) :- X > 0.")
        assert machine.solve_once("maplist(pos, [1,2,3])") is not None
        assert machine.solve_once("maplist(pos, [1,-2])") is None

    def test_maplist3(self, machine):
        machine.consult("double(X, Y) :- Y is 2 * X.")
        assert one(machine, "maplist(double, [1,2,3], L)", "L") == "[2,4,6]"

    def test_maplist4(self, machine):
        machine.consult("addp(A, B, C) :- C is A + B.")
        assert one(machine, "maplist(addp, [1,2], [10,20], L)", "L") \
            == "[11,22]"

    def test_maplist_empty(self, machine):
        assert machine.solve_once("maplist(nothing, [])") is not None
