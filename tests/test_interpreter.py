"""Tests for the resolution interpreter (the Educe baseline engine)."""

import pytest

from repro.engine.interpreter import Interpreter
from repro.errors import ExistenceError, InstantiationError
from repro.lang.writer import term_to_text


@pytest.fixture
def interp():
    return Interpreter()


def answers(interp, goal, var="X"):
    return [term_to_text(b[var]) for b in interp.solve(goal)]


class TestResolution:
    def test_facts(self, interp):
        interp.consult("p(a). p(b).")
        assert answers(interp, "p(X)") == ["a", "b"]

    def test_rules(self, interp):
        interp.consult("""
        parent(t, b). parent(b, a).
        anc(X, Y) :- parent(X, Y).
        anc(X, Y) :- parent(X, Z), anc(Z, Y).
        """)
        assert answers(interp, "anc(t, X)") == ["b", "a"]

    def test_clause_renaming_isolated(self, interp):
        interp.consult("id(X, X).")
        assert interp.solve_once("id(1, Y), id(2, Z)") is not None

    def test_unknown_predicate_raises(self, interp):
        with pytest.raises(ExistenceError):
            interp.solve_once("nothing(1)")

    def test_unbound_goal_raises(self, interp):
        with pytest.raises(InstantiationError):
            interp.solve_once("G")


class TestControl:
    def test_cut_in_clause(self, interp):
        interp.consult("f(1) :- !. f(2).")
        assert answers(interp, "f(X)") == ["1"]

    def test_cut_after_generator(self, interp):
        interp.consult("g(X) :- member(X, [a,b,c]), !.")
        assert answers(interp, "g(X)") == ["a"]

    def test_cut_local_to_called_predicate(self, interp):
        interp.consult("""
        outer(X) :- inner(X).
        outer(99).
        inner(1) :- !.
        inner(2).
        """)
        assert answers(interp, "outer(X)") == ["1", "99"]

    def test_if_then_else(self, interp):
        assert answers(interp, "(1 < 2 -> X = y ; X = n)") == ["y"]
        assert answers(interp, "(2 < 1 -> X = y ; X = n)") == ["n"]

    def test_disjunction(self, interp):
        assert answers(interp, "(X = 1 ; X = 2)") == ["1", "2"]

    def test_negation(self, interp):
        interp.consult("p(a).")
        assert interp.solve_once("\\+ p(b)") is not None
        assert interp.solve_once("\\+ p(a)") is None

    def test_call_with_extra_args(self, interp):
        interp.consult("add(A, B, C) :- C is A + B.")
        assert interp.solve_once("call(add(1), 2, R)")["R"] == 3


class TestBuiltins:
    def test_arith(self, interp):
        assert interp.solve_once("X is 2 + 3 * 4")["X"] == 14

    def test_comparisons(self, interp):
        assert interp.solve_once("1 < 2, 3 >= 3, 1 =\\= 2") is not None

    def test_unify_not_unify(self, interp):
        assert interp.solve_once("f(X) = f(1)")["X"] == 1
        assert interp.solve_once("a \\= b") is not None

    def test_term_order(self, interp):
        assert interp.solve_once("a @< f(b), 1 @< a") is not None

    def test_type_tests(self, interp):
        assert interp.solve_once(
            "atom(a), integer(1), var(_), compound(f(x))") is not None

    def test_functor_arg_univ(self, interp):
        assert interp.solve_once("functor(f(a, b), f, 2)") is not None
        assert str(interp.solve_once("arg(1, f(x), A)")["A"]) == "x"
        assert term_to_text(
            interp.solve_once("f(1) =.. L")["L"]) == "[f,1]"

    def test_findall(self, interp):
        interp.consult("n(1). n(2).")
        out = interp.solve_once("findall(X, n(X), L)")
        assert term_to_text(out["L"]) == "[1,2]"

    def test_between(self, interp):
        assert [b["X"] for b in interp.solve("between(1, 3, X)")] == \
            [1, 2, 3]

    def test_assert_retract(self, interp):
        interp.solve_once("assertz(d(1))")
        assert interp.solve_once("d(1)") is not None
        assert interp.solve_once("retract(d(1))") is not None
        assert interp.solve_once("d(_)") is None

    def test_sort_msort(self, interp):
        assert term_to_text(
            interp.solve_once("msort([2,1,2], L)")["L"]) == "[1,2,2]"
        assert term_to_text(
            interp.solve_once("sort([2,1,2], L)")["L"]) == "[1,2]"

    def test_length(self, interp):
        assert interp.solve_once("length([a,b], N)")["N"] == 2
        assert term_to_text(
            interp.solve_once("length(L, 2)")["L"]) == "[_G1,_G2]"

    def test_library_predicates_available(self, interp):
        assert term_to_text(interp.solve_once(
            "append([1], [2], L)")["L"]) == "[1,2]"
        assert term_to_text(interp.solve_once(
            "reverse([1,2,3], R)")["R"]) == "[3,2,1]"


class TestCountersAndHook:
    def test_inference_counter(self, interp):
        interp.consult("p(a).")
        before = interp.inferences
        interp.solve_once("p(_)")
        assert interp.inferences > before

    def test_fetch_hook_supplies_transient_clauses(self, interp):
        from repro.lang.reader import read_terms
        calls = []

        def hook(i, name, arity, goal):
            if name == "virtual":
                calls.append(name)
                return read_terms("virtual(supplied).")
            return None

        interp.fetch_hook = hook
        assert str(interp.solve_once("virtual(X)")["X"]) == "supplied"
        # Transient: fetched again on every call (Educe behaviour §2).
        interp.solve_once("virtual(_)")
        assert len(calls) == 2
        assert interp.erases >= 2
