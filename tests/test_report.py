"""Smoke test for the paper-style report harness."""

import importlib.util
import os
import sys


def _load_report():
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "benchmarks", "report.py")
    spec = importlib.util.spec_from_file_location("report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_table3_prints_all_updates(capsys):
    report = _load_report()
    report.table3()
    out = capsys.readouterr().out
    assert "Table 3" in out
    for update in ("1 ", "2 ", "3 ", "4 ", "5 "):
        assert update.strip() in out
    assert "724/380" in out  # paper numbers shown alongside


def test_section54_reports_ratio(capsys):
    report = _load_report()
    report.section54(scale=0.05)
    out = capsys.readouterr().out
    assert "deterioration x1.333" in out


def test_table2_row_structure(capsys):
    report = _load_report()
    report.table2(scale=0.05)
    out = capsys.readouterr().out
    for row in ("Preprocess", "CPU", "Buffer read/write",
                "Total I/O", "Average time"):
        assert row in out
    assert "Table 2b" in out
