"""Smoke test for the paper-style report harness."""

import importlib.util
import os
import sys


def _load_report():
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "benchmarks", "report.py")
    spec = importlib.util.spec_from_file_location("report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_table3_prints_all_updates(capsys):
    report = _load_report()
    report.table3()
    out = capsys.readouterr().out
    assert "Table 3" in out
    for update in ("1 ", "2 ", "3 ", "4 ", "5 "):
        assert update.strip() in out
    assert "724/380" in out  # paper numbers shown alongside


def test_section54_reports_ratio(capsys):
    report = _load_report()
    report.section54(scale=0.05)
    out = capsys.readouterr().out
    assert "deterioration x1.333" in out


def test_table2_row_structure(capsys):
    report = _load_report()
    report.table2(scale=0.05)
    out = capsys.readouterr().out
    for row in ("Preprocess", "CPU", "Buffer read/write",
                "Total I/O", "Average time"):
        assert row in out
    assert "Table 2b" in out


def _write_jsonl(path, records):
    import json
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")


def test_diff_reports_per_predicate_changes(tmp_path, capsys):
    report = _load_report()
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _write_jsonl(a, [
        {"kind": "wam_profile", "interval": 2048,
         "counters": {"profiler_samples": 10}},
        {"kind": "wam_profile_pred", "predicate": "app/3",
         "excl_instr": 1000, "incl_instr": 1000},
        {"kind": "wam_profile_pred", "predicate": "nrev/2",
         "excl_instr": 50, "incl_instr": 1050},
    ])
    _write_jsonl(b, [
        {"kind": "wam_profile", "interval": 2048,
         "counters": {"profiler_samples": 10}},
        {"kind": "wam_profile_pred", "predicate": "app/3",
         "excl_instr": 600, "incl_instr": 600},       # app/3 got faster
        {"kind": "wam_profile_pred", "predicate": "len/2",
         "excl_instr": 5, "incl_instr": 5},           # new predicate
    ])
    changed = report.diff_jsonl(str(a), str(b))
    out = capsys.readouterr().out
    assert changed > 0
    assert "app/3" in out
    assert "-400" in out and "(-40.0%)" in out
    assert "only in" in out                 # nrev/2 and len/2 one-sided
    # identical records (the wam_profile header) produce no rows
    assert "profiler_samples" not in out


def test_diff_identical_files_reports_nothing(tmp_path, capsys):
    report = _load_report()
    a = tmp_path / "a.jsonl"
    _write_jsonl(a, [
        {"kind": "query_profile", "goal": "p(X)",
         "counters": {"instr_count": 42}},
    ])
    changed = report.diff_jsonl(str(a), str(a))
    out = capsys.readouterr().out
    assert changed == 0
    assert "no numeric differences" in out


def test_diff_cli_exit_status_is_zero(tmp_path):
    import subprocess
    a = tmp_path / "a.jsonl"
    _write_jsonl(a, [{"kind": "wam_profile_pred", "predicate": "p/1",
                      "excl_instr": 1}])
    proc = subprocess.run(
        [sys.executable,
         os.path.join(os.path.dirname(__file__), os.pardir,
                      "benchmarks", "report.py"),
         "--diff", str(a), str(a)],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr[-1000:]
    assert "no numeric differences" in proc.stdout
