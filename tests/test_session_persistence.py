"""Tests for the session-level persistence API and the listing/consult
conveniences."""

import pytest

from repro.engine.session import EduceStar


class TestSessionSaveOpen:
    def test_save_open_roundtrip(self, tmp_path):
        path = str(tmp_path / "session.edb")
        a = EduceStar()
        a.store_relation("fact", [(1,), (2,)])
        a.store_program("doubled(Y) :- fact(X), Y is 2 * X.")
        a.save(path)

        b = EduceStar.open(path)
        assert sorted(s["Y"] for s in b.solve("doubled(Y)")) == [2, 4]

    def test_open_kwargs_forwarded(self, tmp_path):
        path = str(tmp_path / "session.edb")
        EduceStar().save(path)
        b = EduceStar.open(path, index=False, preunify_depth="none")
        assert b.machine.index_enabled is False
        assert b.preunifier.depth == "none"

    def test_saved_session_keeps_type_independence(self, tmp_path):
        # type declarations are per-session (machine-level), not stored;
        # the EDB data itself reopens fine
        path = str(tmp_path / "typed.edb")
        a = EduceStar()
        a.consult(":- pred t(int).")
        a.store_relation("t", [(1,)])
        a.save(path)
        b = EduceStar.open(path)
        assert b.solve_once("t(1)") is not None


class TestDurableSession:
    """Session persistence through the file-backed (FileDiskStore)
    storage path: WAL replay on reopen, corruption quarantine."""

    def test_create_save_open_roundtrip(self, tmp_path):
        path = str(tmp_path / "durable.edb")
        a = EduceStar.create(path)
        a.store_relation("fact", [(1,), (2,)])
        a.store_program("doubled(Y) :- fact(X), Y is 2 * X.")
        a.save(path)

        b = EduceStar.open(path)
        assert b.store.recovery is not None
        assert b.store.recovery.clean
        assert sorted(s["Y"] for s in b.solve("doubled(Y)")) == [2, 4]

    def test_unsaved_mutations_replay_from_wal(self, tmp_path):
        path = str(tmp_path / "durable.edb")
        a = EduceStar.create(path)
        a.store_program("color(red).")
        a.save(path)
        a.assert_external("color(green)")   # logged, never checkpointed

        b = EduceStar.open(path)
        assert b.store.recovery.wal_records_replayed == 1
        assert sorted(str(s["X"]) for s in b.solve("color(X)")) \
            == ["green", "red"]

    def test_corrupt_page_quarantined_rest_queryable(self, tmp_path):
        path = str(tmp_path / "durable.edb")
        a = EduceStar.create(path)
        a.store_relation("victim", [(i, i + 1) for i in range(50)])
        a.store_relation("survivor", [(i,) for i in range(20)])
        a.save(path)

        # flip one payload byte of one written page record on disc
        disk = a.store.pager.disk
        victim_pid = next(p for p in sorted(disk._index)
                          if disk._index[p] is not None)
        offset, frame_len = disk._index[victim_pid]
        with open(disk.path, "r+b") as f:
            f.seek(offset + frame_len - 1)   # last payload byte
            byte = f.read(1)
            f.seek(offset + frame_len - 1)
            f.write(bytes([byte[0] ^ 0x01]))

        b = EduceStar.open(path)
        report = b.store.recovery
        assert report.pages_quarantined == [victim_pid]
        assert not report.clean
        assert "QUARANTINED" in report.format()
        # the undamaged procedure answers queries as before
        assert sum(1 for _ in b.solve("survivor(X)")) == 20


class TestListing:
    def test_listing_dynamic_clauses(self, machine):
        machine.solve_once("assertz(p(1)), assertz((q(X) :- p(X)))")
        machine.output.clear()
        assert machine.solve_once("listing(p/1)") is not None
        text = "".join(machine.output)
        assert "p(1)." in text

    def test_listing_by_bare_name_covers_all_arities(self, machine):
        machine.solve_once("assertz(r(1)), assertz(r(1, 2))")
        machine.output.clear()
        machine.solve_once("listing(r)")
        text = "".join(machine.output)
        assert "r(1)." in text and "r(1,2)." in text

    def test_listing_static_shows_disassembly(self, machine):
        machine.consult("s(a).")
        machine.output.clear()
        machine.solve_once("listing(s/1)")
        text = "".join(machine.output)
        assert "s(a)." in text  # static procs keep their clauses too

    def test_listing_unknown_fails(self, machine):
        assert machine.solve_once("listing(zzz/9)") is None


class TestConsultFile:
    def test_consult_file(self, machine, tmp_path):
        src = tmp_path / "prog.pl"
        src.write_text("fact_from_file(ok).\n", encoding="utf-8")
        machine.consult_file(str(src))
        assert str(machine.solve_once("fact_from_file(X)")["X"]) == "ok"

    def test_consult_missing_file_raises(self, machine):
        with pytest.raises(OSError):
            machine.consult_file("/nonexistent/path.pl")
