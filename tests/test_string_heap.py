"""Unit tests for the string heap (paper §3.3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.dictionary import StringHeap
from repro.errors import ResourceError


class TestStoreFetch:
    def test_roundtrip(self):
        heap = StringHeap()
        off = heap.store("hello")
        assert heap.fetch(off) == "hello"

    def test_unicode(self):
        heap = StringHeap()
        off = heap.store("münchen_öäü")
        assert heap.fetch(off) == "münchen_öäü"

    def test_empty_string(self):
        heap = StringHeap()
        assert heap.fetch(heap.store("")) == ""

    def test_distinct_offsets(self):
        heap = StringHeap()
        offs = [heap.store(f"s{i}") for i in range(100)]
        assert len(set(offs)) == 100

    def test_fetch_dead_offset_raises(self):
        heap = StringHeap()
        with pytest.raises(ResourceError):
            heap.fetch(12345)


class TestFreeList:
    def test_free_then_reuse_same_size_class(self):
        heap = StringHeap()
        off = heap.store("abcdefgh")
        heap.free(off)
        again = heap.store("12345678")
        assert again == off  # recycled block
        assert heap.bytes_recycled > 0

    def test_double_free_raises(self):
        heap = StringHeap()
        off = heap.store("x")
        heap.free(off)
        with pytest.raises(ResourceError):
            heap.free(off)

    def test_high_water_stops_growing_with_recycling(self):
        heap = StringHeap()
        for _ in range(50):
            off = heap.store("const_size!")
            heap.free(off)
        first_hw = heap.high_water
        for _ in range(50):
            off = heap.store("const_size!")
            heap.free(off)
        assert heap.high_water == first_hw

    def test_live_and_free_counts(self):
        heap = StringHeap()
        offs = [heap.store(f"n{i}") for i in range(10)]
        for off in offs[:4]:
            heap.free(off)
        assert heap.live_blocks == 6
        assert heap.free_blocks == 4


class TestGrowth:
    def test_arena_grows_transparently(self):
        heap = StringHeap(initial_capacity=64)
        offs = [heap.store("block-%04d" % i) for i in range(100)]
        for i, off in enumerate(offs):
            assert heap.fetch(off) == "block-%04d" % i

    def test_stats_keys(self):
        heap = StringHeap()
        heap.store("x")
        stats = heap.stats()
        for key in ("allocations", "frees", "bytes_allocated",
                    "bytes_recycled", "live_blocks", "free_blocks",
                    "high_water"):
            assert key in stats


@given(st.lists(st.text(max_size=40), min_size=1, max_size=60))
def test_property_store_fetch_many(texts):
    heap = StringHeap(initial_capacity=128)
    offsets = [heap.store(t) for t in texts]
    for text, off in zip(texts, offsets):
        assert heap.fetch(off) == text
