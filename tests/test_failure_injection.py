"""Failure-injection and robustness tests for the storage stack."""

import pickle

import pytest

from repro.bang.grid import BangGrid
from repro.bang.pager import DiskStore, Pager
from repro.errors import PageError


class TestDiskCorruption:
    def test_corrupt_page_image_raises_on_read(self):
        disk = DiskStore()
        pid = disk.allocate()
        disk.write(pid, ["good"])
        disk._pages[pid] = b"\x00garbage that is not pickle"
        with pytest.raises(PageError):
            disk.read(pid)
        # detection quarantines the page: later reads fail fast too
        assert pid in disk.quarantined
        with pytest.raises(PageError):
            disk.read(pid)

    def test_truncated_pickle_raises(self):
        disk = DiskStore()
        pid = disk.allocate()
        disk.write(pid, list(range(100)))
        disk._pages[pid] = disk._pages[pid][:10]
        with pytest.raises(PageError):
            disk.read(pid)
        # a full rewrite replaces the image and lifts the quarantine
        disk.write(pid, ["fresh"])
        assert disk.read(pid) == ["fresh"]

    def test_missing_page_after_free(self):
        pager = Pager(buffer_pages=1)
        pid = pager.allocate(["x"])
        # force it out of the buffer, then free the backing page
        other = pager.allocate(["y"])
        pager.get(other)
        pager.disk.free(pid)
        with pytest.raises(PageError):
            # not resident and gone from disc
            pager.buffer._frames.pop(pid, None)
            pager.get(pid)


@pytest.mark.fault_injection
class TestClauseBitflip:
    """In-storage rot of a compiled clause blob, below the page CRC's
    radar: the loader's static verifier must quarantine it before a
    single corrupted instruction executes (docs/ANALYSIS.md)."""

    def _session(self):
        from repro.bang.faults import FaultInjector
        from repro.engine.session import EduceStar
        session = EduceStar()
        session.store.faults = FaultInjector()
        session.store_relation("parent", [("t", "a"), ("a", "i")])
        session.store_program(
            "% lint: external parent/2\n"
            "anc(X, Y) :- parent(X, Y).\n"
            "anc(X, Z) :- parent(X, Y), anc(Y, Z).")
        return session

    def test_bitflipped_clause_rejected_never_executed(self):
        from repro.errors import VerifyError
        session = self._session()
        faults = session.store.faults
        faults.arm_clause_bitflip(1)
        with pytest.raises(VerifyError) as excinfo:
            session.solve_once("anc(t, X)")
        assert excinfo.value.rule == "V101"
        assert faults.fired == ["clause_bitflip#1"]
        assert session.loader.verify_rejects >= 1
        # quarantined: the corrupt code was never cached, so a retry
        # refetches clean bytes and the query now succeeds
        assert session.solve_once("anc(t, X)") is not None

    def test_reject_lands_in_flight_recorder(self):
        from repro.errors import VerifyError
        session = self._session()
        session.store.events.enabled = True
        session.store.faults.arm_clause_bitflip(2)
        with pytest.raises(VerifyError):
            session.solve_once("anc(t, X)")
        rejects = [e for e in session.store.events.tail(50)
                   if e["kind"] == "verify.reject"]
        assert rejects and rejects[-1]["rule"] == "V101"
        assert rejects[-1]["procedure"] == "anc/2"

    def test_verify_off_lets_corruption_through_to_the_machine(self):
        """The control experiment: with verification disabled (loader
        *and* the suite-wide self-verify) the same rot reaches the
        execution machinery and fails untyped — exactly the failure
        mode the verifier choke point exists to prevent."""
        from repro.analysis import enable_self_verify, self_verify_enabled
        from repro.errors import VerifyError
        from repro.bang.faults import FaultInjector
        from repro.engine.session import EduceStar
        session = EduceStar(verify="off")
        session.store.faults = FaultInjector()
        session.store_relation("parent", [("t", "a")])
        session.store_program(
            "% lint: external parent/2\nanc(X, Y) :- parent(X, Y).")
        session.store.faults.arm_clause_bitflip(1)
        was = self_verify_enabled()
        enable_self_verify(False)
        try:
            with pytest.raises(Exception) as excinfo:
                session.solve_once("anc(t, X)")
        finally:
            enable_self_verify(was)
        assert not isinstance(excinfo.value, VerifyError)

    def test_null_injector_refuses_arming(self):
        from repro.engine.session import EduceStar
        session = EduceStar()
        with pytest.raises(ValueError):
            session.store.faults.arm_clause_bitflip(1)


class TestGridStress:
    def test_delete_reinsert_cycles_preserve_contents(self):
        import random
        rng = random.Random(3)
        grid = BangGrid(2, Pager(buffer_pages=8), bucket_capacity=4)
        model = {}
        next_id = 0
        for step in range(400):
            if model and rng.random() < 0.4:
                key = rng.choice(list(model))
                rid = model.pop(key)
                assert grid.delete(key, lambda r: r == rid) == 1
            else:
                key = (round(rng.random(), 3), round(rng.random(), 3))
                if key in model:
                    continue
                model[key] = next_id
                grid.insert(key, next_id)
                next_id += 1
        assert sorted(grid.scan()) == sorted(model.values())
        assert grid.size == len(model)

    def test_every_point_query_after_stress(self):
        import random
        rng = random.Random(9)
        grid = BangGrid(1, Pager(buffer_pages=4), bucket_capacity=3)
        keys = [(round(rng.random(), 4),) for _ in range(120)]
        for i, key in enumerate(keys):
            grid.insert(key, i)
        for i, key in enumerate(keys):
            box = ((key[0], key[0]),)
            assert i in list(grid.query(box))


class TestDictionaryPressure:
    def test_many_segments_under_churn(self):
        from repro.dictionary import SegmentedDictionary
        d = SegmentedDictionary(segment_capacity=64, high_water=0.6)
        live = {}
        for wave in range(8):
            for i in range(200):
                name = f"w{wave}_n{i}"
                live[(name, 0)] = d.intern(name, 0)
            # delete every other entry from this wave
            for i in range(0, 200, 2):
                name = f"w{wave}_n{i}"
                d.delete(live.pop((name, 0)))
        # everything still live resolves correctly
        for (name, arity), ident in live.items():
            assert d.functor(ident) == (name, arity)

    def test_identifier_never_recycled_while_live(self):
        from repro.dictionary import SegmentedDictionary
        d = SegmentedDictionary(segment_capacity=32, high_water=0.5)
        ids = {}
        for i in range(300):
            ids[i] = d.intern(f"stable_{i}", 1)
            if i >= 50 and i % 3 == 0:
                d.delete(ids.pop(i - 50))
        seen = list(ids.values())
        assert len(seen) == len(set(seen))


class TestMachineResourceEdges:
    def test_deep_goal_nesting(self, machine):
        goal = "X = " + "f(" * 80 + "1" + ")" * 80
        assert machine.solve_once(goal) is not None

    def test_huge_disjunction_compiles(self, machine):
        body = " ; ".join(f"X = {i}" for i in range(120))
        machine.consult(f"many(X) :- ({body}).")
        assert machine.count_solutions("many(_)") == 120

    def test_many_procedures(self, machine):
        program = "\n".join(f"pr_{i}({i})." for i in range(400))
        machine.consult(program)
        assert machine.solve_once("pr_399(X)")["X"] == 399

    def test_wide_clause_many_args(self, machine):
        args = ", ".join(f"a{i}" for i in range(40))
        machine.consult(f"wide({args}).")
        vars_ = ", ".join(f"V{i}" for i in range(40))
        sol = machine.solve_once(f"wide({vars_})")
        assert str(sol["V39"]) == "a39"


# ------------------------------------------------- replication fault matrix


@pytest.mark.fault_injection
class TestReplicationFaults:
    """The replica-side fault matrix (docs/REPLICATION.md): torn-tail
    races, mid-stream corruption, crashes during promote and during
    catch-up.  The invariant in every cell: suspect bytes are never
    applied, the primary's log is never touched, and a restarted
    follower converges to the primary's state."""

    def _primary(self, tmp_path):
        from repro.edb.store import ExternalStore
        path = str(tmp_path / "db.edb")
        store = ExternalStore.open(path)
        store.store_facts("edge", 2, [(1, 2), (2, 3)],
                          types=("int", "int"))
        store.save(path)
        return path, store

    def _wait(self, predicate, timeout=10.0):
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.002)
        return predicate()

    def test_short_read_race_is_wait_not_truncate(self, tmp_path):
        """A reader racing the append sees a prefix of the new frame:
        the tailer must wait and retry — and must NEVER truncate the
        primary's log (that is the crashed *owner's* recovery move)."""
        import os
        from repro.bang.faults import FaultInjector
        from repro.replication import Replica
        path, store = self._primary(tmp_path)
        faults = FaultInjector()
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, faults=faults, start=False)
        try:
            faults.arm_short_read(1, keep=0.4)  # next header read torn
            store.store_facts("a", 1, [(1,)], types=("int",))
            size = os.path.getsize(path + ".wal")
            advanced, _backoff = replica._step(replica.poll_interval)
            assert not advanced
            assert replica.torn_tail_waits == 1
            assert any(f.startswith("short_read") for f in faults.fired)
            assert os.path.getsize(path + ".wal") == size  # untouched
            assert replica.records_applied == 0
            # the retry (fault disarmed) ships and applies the record
            advanced, _backoff = replica._step(replica.poll_interval)
            assert advanced and replica.records_applied == 1
        finally:
            replica.shutdown()

    def test_bitflip_stream_quarantines_never_applies(self, tmp_path):
        """A complete frame whose payload was bit-flipped in transit
        fails its CRC: the replica quarantines and re-bootstraps; the
        corrupt record is never replayed into its store."""
        from repro.bang.faults import FaultInjector
        from repro.replication import Replica
        path, store = self._primary(tmp_path)
        faults = FaultInjector()
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, faults=faults, start=False)
        try:
            store.store_facts("a", 1, [(7,)], types=("int",))
            faults.arm_bitflip_read(2)   # 1st read: header, 2nd: payload
            advanced, _ = replica._step(replica.poll_interval)
            assert replica.quarantines == 1
            assert replica.rebootstraps == 1   # snapshot re-bootstrap
            assert replica.records_applied == 0  # suspect bytes dropped
            kinds = [e["kind"] for e in replica.events.tail(10)]
            assert "replica.quarantine" in kinds
            assert "replica.rebootstrap" in kinds
            # after re-bootstrap the clean stream replays fully
            assert self._wait(lambda: (
                replica._step(replica.poll_interval),
                replica.records_applied >= 1)[1])
            rows = sorted(r[:1] for r in
                          replica.store.lookup("a", 1).relation.scan())
            assert rows == [(7,)]
        finally:
            replica.shutdown()

    def test_transient_stream_break_backs_off_and_recovers(self, tmp_path):
        from repro.bang.faults import FaultInjector
        from repro.replication import Replica
        path, store = self._primary(tmp_path)
        faults = FaultInjector()
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, faults=faults, start=False)
        try:
            store.store_facts("a", 1, [(1,)], types=("int",))
            faults.arm_fail_read(1)
            advanced, backoff = replica._step(0.01)
            assert not advanced
            assert replica.stream_retries == 1
            assert backoff == 0.02            # capped exponential
            advanced, _ = replica._step(backoff)
            assert advanced and replica.records_applied == 1
        finally:
            replica.shutdown()

    @pytest.mark.parametrize("crash_point", ["replica.promote.before",
                                             "replica.promote.pre_save"])
    def test_crash_during_promote_leaves_primary_log_intact(
            self, tmp_path, crash_point):
        """Killing the process mid-promote must not lose the durable
        log: a second candidate (fresh process) still promotes with
        every acknowledged record."""
        import os
        from repro.bang.faults import FaultInjector, InjectedCrash
        from repro.replication import Replica
        path, store = self._primary(tmp_path)
        store.store_facts("late", 1, [(42,)], types=("int",))
        faults = FaultInjector().arm_crash_point(crash_point)
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, faults=faults, start=False)
        wal_size = os.path.getsize(path + ".wal")
        with pytest.raises(InjectedCrash):
            replica.promote()
        replica.shutdown()
        assert os.path.getsize(path + ".wal") == wal_size
        # the drill continues with the next candidate
        second = Replica("r1", path, str(tmp_path / "r1"),
                         workers=1, start=False)
        try:
            home = second.promote()
            assert second.promoted
            rows = sorted(r[:1] for r in
                          second.store.lookup("late", 1).relation.scan())
            assert rows == [(42,)]
            assert os.path.exists(home)
        finally:
            second.shutdown()

    def test_follower_crash_during_catchup_then_restart(self, tmp_path):
        """An injected crash inside the apply loop kills the follower
        "process"; a fresh replica over the same directory re-bootstraps
        and converges."""
        from repro.bang.faults import FaultInjector, InjectedCrash
        from repro.replication import Replica
        path, store = self._primary(tmp_path)
        faults = FaultInjector().arm_crash_point("replica.apply.before")
        replica = Replica("r0", path, str(tmp_path / "r0"),
                          workers=1, faults=faults)
        try:
            store.store_facts("a", 1, [(1,)], types=("int",))
            assert self._wait(lambda: replica.crashed is not None)
            assert isinstance(replica.crashed, InjectedCrash)
            assert not replica.alive
            assert replica.records_applied == 0
        finally:
            replica.shutdown()
        restarted = Replica("r0", path, str(tmp_path / "r0"), workers=1)
        try:
            assert self._wait(lambda: restarted.records_applied >= 1)
            rows = sorted(r[:1] for r in
                          restarted.store.lookup("a", 1).relation.scan())
            assert rows == [(1,)]
        finally:
            restarted.shutdown()

    def test_quarantined_replica_excluded_from_reads(self, tmp_path):
        """A quarantined replica that cannot re-bootstrap must not
        serve staleness-bounded reads."""
        from repro.errors import ReplicaLagExceeded
        from repro.replication import ReplicaSet
        cluster = ReplicaSet(str(tmp_path / "c.edb"), replicas=1,
                             primary_workers=1, replica_workers=1)
        try:
            cluster.store_relation("r", [(1,)])
            assert cluster.wait_for_catch_up(timeout=15)
            cluster.replicas[0].quarantined = True
            with pytest.raises(ReplicaLagExceeded):
                cluster.submit_read("r(X)", max_lag=0)
        finally:
            cluster.shutdown()
