"""Doc-sync tests: the observability glossary and doc links cannot rot.

Every counter key a live session can emit must be documented (backtick
quoted) in docs/OBSERVABILITY.md, and every path mentioned as inline
code in README.md / DESIGN.md must exist in the repository.
"""

import os
import re

import pytest

REPO = os.path.join(os.path.dirname(__file__), os.pardir)


def read_doc(name: str) -> str:
    with open(os.path.join(REPO, name), "r", encoding="utf-8") as f:
        return f.read()


@pytest.fixture(scope="module")
def glossary() -> str:
    return read_doc(os.path.join("docs", "OBSERVABILITY.md"))


@pytest.fixture(scope="module")
def analysis_glossary() -> str:
    return read_doc(os.path.join("docs", "ANALYSIS.md"))


@pytest.fixture(scope="module")
def datalog_doc() -> str:
    return read_doc(os.path.join("docs", "DATALOG.md"))


@pytest.fixture(scope="module")
def replication_doc() -> str:
    return read_doc(os.path.join("docs", "REPLICATION.md"))


@pytest.fixture(scope="module")
def optimizer_doc() -> str:
    return read_doc(os.path.join("docs", "OPTIMIZER.md"))


def documented(glossary: str) -> set:
    """Every backtick-quoted token in the glossary."""
    return set(re.findall(r"`([^`\s]+)`", glossary))


def canonical(key: str) -> str:
    """Snapshot key → the name the glossary documents.

    Histogram families appear in snapshots as dotted keys
    (``latch_wait_ms.p99``, ``latch_wait_ms.bucket.le_0.5``); the
    glossary documents the family base name once plus the shared
    suffix vocabulary, not every combination."""
    return key.split(".", 1)[0]


# =====================================================================
# Counter glossary coverage
# =====================================================================

class TestCounterGlossary:
    def test_educestar_counters_documented(self, glossary):
        from repro import EduceStar
        kb = EduceStar()
        kb.store_program("p(1). p(2). q(X) :- p(X).")
        for _ in kb.solve("q(X)"):
            pass
        names = documented(glossary)
        snapshot = kb.metrics.snapshot()
        missing = sorted(k for k in snapshot if canonical(k) not in names)
        assert not missing, (
            f"counters emitted but not in docs/OBSERVABILITY.md: {missing}")

    def test_component_counters_documented(self, glossary):
        from repro import EduceStar
        kb = EduceStar()
        names = documented(glossary)
        for source in (kb.machine.counters(), kb.loader.counters(),
                       kb.store.pager.io_counters(), kb.counters()):
            for key in source:
                assert canonical(key) in names, key

    def test_service_telemetry_documented(self, glossary):
        """Service counters, histogram families and ring event kinds
        are all in the glossary — including keys only a live service
        emits (queue waits, ticket latency, lifecycle events)."""
        from repro.service import QueryService
        names = documented(glossary)
        svc = QueryService(workers=1, queue_size=4, tracing=True)
        try:
            svc.store_relation("edge", [(1, 2), (2, 3)])
            svc.submit("edge(X, Y)").result(timeout=30)
        finally:
            svc.shutdown()
        telemetry = svc.final_telemetry
        missing = sorted(k for k in telemetry["counters"]
                         if canonical(k) not in names)
        assert not missing, (
            f"service snapshot keys not in docs/OBSERVABILITY.md: "
            f"{missing}")
        for event in telemetry["events"]:
            assert event["kind"] in names, event["kind"]

    def test_histogram_suffix_vocabulary_documented(self, glossary):
        """The shared dotted-suffix vocabulary itself is spelled out."""
        names = documented(glossary)
        for token in (".count", ".sum", ".min", ".max",
                      ".p50", ".p90", ".p99"):
            assert token.lstrip(".") in names or token in names or \
                f"name{token}" in names or f"X{token}" in names, token

    def test_event_kinds_documented(self, glossary):
        """The full flight-recorder taxonomy, including kinds the tiny
        service run above never triggers."""
        names = documented(glossary)
        for kind in ("ticket.admit", "ticket.done", "ticket.deadline",
                     "ticket.cancelled", "ticket.failed", "query.slow",
                     "page.evict", "wal.poison", "store.recovery",
                     "verify.reject", "wam_opt.reject"):
            assert kind in names, kind

    def test_loader_verify_telemetry_documented(self, glossary):
        """The loader's verification counters and histogram family."""
        names = documented(glossary)
        for key in ("verify_checks", "verify_rejects", "verify_ms"):
            assert key in names, key

    def test_histogram_families_documented(self, glossary):
        names = documented(glossary)
        for base in ("latch_wait_ms", "lock_read_wait_ms",
                     "lock_write_wait_ms", "buffer_miss_stall_ms",
                     "buffer_writeback_ms", "wal_append_ms",
                     "wal_fsync_ms", "service_queue_wait_ms",
                     "service_ticket_ms"):
            assert base in names, base

    def test_baseline_counters_documented(self, glossary):
        from repro.engine.educe_baseline import EduceBaseline
        names = documented(glossary)
        for key in EduceBaseline().counters():
            assert key in names, key

    def test_relational_work_unit_documented(self, glossary):
        assert "tuple_ops" in documented(glossary)

    def test_cost_model_terms_documented(self, glossary):
        from repro.engine.stats import CostModel
        sim = CostModel().breakdown({})
        names = documented(glossary)
        for term in list(sim["cpu"]) + list(sim["io"]):
            assert term in names, term

    def test_cost_model_constants_documented(self, glossary):
        import dataclasses
        from repro.engine.stats import CostModel
        names = documented(glossary)
        priced = [f.name for f in dataclasses.fields(CostModel)
                  if f.name.startswith(("native_per_", "disc_"))]
        missing = sorted(c for c in priced if c not in names)
        assert not missing, (
            f"CostModel constants not in the glossary: {missing}")

    def test_gauges_flagged(self, glossary):
        from repro.obs import DEFAULT_GAUGE_KEYS
        names = documented(glossary)
        for key in DEFAULT_GAUGE_KEYS:
            assert key in names, key

    def test_span_taxonomy_documented(self, glossary):
        from repro import EduceStar
        kb = EduceStar()
        kb.store_program("p(1). p(2). q(X) :- p(X).")
        prof = kb.profile("q(X)")
        names = documented(glossary)
        for span in prof.root.walk():
            assert span.name in names, span.name
            for event in span.events:
                assert event["event"] in names, event["event"]
        # the full taxonomy, including spans this tiny query never opened
        for span_name in ("query", "loader.fetch", "codec.resolve",
                          "preunify.filter", "relational.execute"):
            assert span_name in names, span_name
        for event_name in ("page.read", "page.write", "page.evict",
                           "loader.cache_hit"):
            assert event_name in names, event_name


# =====================================================================
# Datalog doc coverage
# =====================================================================

class TestDatalogDoc:
    def test_engine_counters_documented(self, glossary, datalog_doc):
        """Every datalog_* counter is in both the observability
        glossary and the subsystem's own doc."""
        from repro import EduceStar
        counters = EduceStar().datalog.counters()
        assert counters, "DatalogEngine.counters() is empty"
        obs_names = documented(glossary)
        doc_names = documented(datalog_doc)
        for key in counters:
            assert key in obs_names, f"{key} not in docs/OBSERVABILITY.md"
            assert key in doc_names, f"{key} not in docs/DATALOG.md"

    def test_fixpoint_histogram_documented(self, glossary, datalog_doc):
        from repro import EduceStar
        families = EduceStar().datalog.histograms()
        assert "datalog_fixpoint_iterations" in families
        for name in families:
            assert name in documented(glossary), name
            assert name in documented(datalog_doc), name

    def test_evaluate_span_documented(self, glossary, datalog_doc):
        """The datalog.evaluate span, as actually recorded under
        tracing, is in both docs with all its attribute names."""
        from repro import EduceStar
        kb = EduceStar(datalog="force")
        kb.store_relation("edge", [("a", "b"), ("b", "c")])
        kb.store_program(
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Z) :- edge(X, Y), reach(Y, Z).\n")
        prof = kb.profile("reach(a, X)")
        spans = [s for s in prof.root.walk()
                 if s.name == "datalog.evaluate"]
        assert spans, "bottom-up query recorded no datalog.evaluate span"
        for names in (documented(glossary), documented(datalog_doc)):
            assert "datalog.evaluate" in names
            for attr in spans[0].attrs:
                assert attr in names, f"span attribute {attr}"

    def test_planner_modes_documented(self, datalog_doc):
        names = documented(datalog_doc)
        for mode in ('"auto"', '"force"', '"off"'):
            assert mode in names, mode
        assert "datalog_min_rows" in names


# =====================================================================
# Replication doc coverage
# =====================================================================

class TestReplicationDoc:
    def test_replica_counters_documented(self, glossary, tmp_path):
        """Every counter and gauge a Replica registers (per-replica
        dotted keys included) is in the observability glossary."""
        from repro.edb.store import ExternalStore
        from repro.replication.replica import Replica
        path = str(tmp_path / "p.edb")
        ExternalStore.open(path).save(path)
        replica = Replica("r0", path, str(tmp_path / "r0"), start=False)
        try:
            counters = replica.counters()
        finally:
            replica.shutdown()
        assert counters, "Replica.counters() is empty"
        names = documented(glossary)
        missing = sorted(k for k in counters
                         if canonical(k) not in names)
        assert not missing, (
            f"replica counters not in docs/OBSERVABILITY.md: {missing}")

    def test_lag_gauges_flagged(self, glossary):
        """The lag gauges are marked *gauge* in their glossary rows,
        like every other point-in-time key."""
        for key in ("replica_lag_epochs", "replica_lag_records"):
            row = next(line for line in glossary.splitlines()
                       if line.startswith(f"| `{key}`"))
            assert "*gauge*" in row, key

    def test_replication_event_kinds_documented(self, glossary):
        """The replica lifecycle events and the reopened-store Datalog
        fallback event are in the event-kind glossary."""
        names = documented(glossary)
        for kind in ("replica.attach", "replica.bootstrap",
                     "replica.rebootstrap", "replica.quarantine",
                     "replica.stream_retry", "replica.promote",
                     "replica.reattach", "replica.primary_lost",
                     "datalog.rulebase_missing"):
            assert kind in names, kind

    def test_tailer_statuses_documented(self, replication_doc):
        """docs/REPLICATION.md spells out the poll statuses and the
        read-routing vocabulary."""
        names = documented(replication_doc)
        for token in ("WalTailer", '"ok"', '"wait"', '"reset"',
                      '"corrupt"', "max_lag", "ReplicaLagExceeded"):
            assert token in names, token

    def test_replica_crash_points_documented(self):
        """The replica.* crash points are in the durability doc's
        registered-crash-point table."""
        durability = read_doc(os.path.join("docs", "DURABILITY.md"))
        names = documented(durability)
        for point in ("replica.bootstrap.before", "replica.apply.before",
                      "replica.promote.before",
                      "replica.promote.pre_save"):
            assert point in names, point
        for knob in ("arm_short_read", "arm_fail_read"):
            assert f"`{knob}" in durability, knob


# =====================================================================
# Analysis rule glossary coverage
# =====================================================================

class TestAnalysisGlossary:
    def test_verifier_rules_documented(self, analysis_glossary):
        from repro.analysis import verifier
        names = documented(analysis_glossary)
        for rule in verifier.RULES:
            assert rule in names, rule

    def test_determinism_rules_documented(self, analysis_glossary):
        from repro.analysis import determinism
        names = documented(analysis_glossary)
        for rule in determinism.RULES:
            assert rule in names, rule

    def test_lint_rules_documented(self, analysis_glossary):
        from repro.analysis import lint
        names = documented(analysis_glossary)
        for rule in lint.RULES:
            assert rule in names, rule

    def test_no_phantom_rules(self, analysis_glossary):
        """Every V/A/D/L/M id the glossary mentions exists in the code —
        the doc cannot document rules that were renamed or removed."""
        import re as _re
        from repro.analysis import determinism, lint, verifier
        known = (set(verifier.RULES) | set(determinism.RULES)
                 | set(lint.RULES))
        mentioned = set(_re.findall(r"`([VADLM]\d{3})`",
                                    analysis_glossary))
        assert mentioned <= known, sorted(mentioned - known)

    def test_mode_lattice_documented(self, analysis_glossary):
        """The whole-program section spells out the mode lattice and
        the determinism classes the analysis can emit."""
        names = documented(analysis_glossary)
        for token in ("ground", "nonvar", "any", "fails", "det",
                      "semidet", "multi", "nondet"):
            assert token in names, token
        assert "python -m repro.analysis modes" in analysis_glossary

    def test_analysis_counters_cross_referenced(self, analysis_glossary,
                                                glossary):
        """The analysis counters exist in the observability glossary."""
        names = documented(glossary)
        for key in ("analysis_global_runs", "analysis_global_predicates",
                    "analysis_global_sccs", "analysis_global_iterations",
                    "analysis_global_widenings", "wam_opt_mode_guards",
                    "datalog_mode_shortcuts"):
            assert key in names, key

    def test_verify_levels_documented(self, analysis_glossary):
        from repro.edb.loader import VERIFY_LEVELS
        names = documented(analysis_glossary)
        for level in VERIFY_LEVELS:
            assert f'"{level}"' in names, level


# =====================================================================
# Optimizer doc (docs/OPTIMIZER.md)
# =====================================================================

class TestOptimizerDoc:
    def test_levels_documented(self, optimizer_doc):
        from repro.wam.optimizer import OPT_LEVELS
        for level in OPT_LEVELS:
            assert f'"{level}"' in optimizer_doc, level

    def test_fused_opcodes_documented(self, optimizer_doc):
        from repro.wam import instructions as I
        names = documented(optimizer_doc)
        for op in (I.GET_CONSTANTS, I.UNIFY_CONSTANTS, I.GET_LIST_VV,
                   I.PUT_ARGS, I.SWITCH_ON_ARG):
            assert op in names, op

    def test_counters_documented(self, optimizer_doc):
        from repro.wam.optimizer import Optimizer
        names = documented(optimizer_doc)
        for counter in Optimizer("off").counters():
            assert counter in names, counter

    def test_knob_surfaces_documented(self, optimizer_doc):
        for surface in ("Machine(optimize=", "EduceStar(optimize=",
                        ":optimize", "set_default_level"):
            assert surface in optimizer_doc, surface


# =====================================================================
# Doc links
# =====================================================================

# Directories a bare inline-code path may live under.
_SEARCH_ROOTS = ("", "src", "src/repro", "benchmarks", "examples",
                 "tests", "docs")

_PATH_RE = re.compile(r"`([A-Za-z0-9_./-]+\.(?:py|md|pl|txt|json))`")


def _exists(path: str) -> bool:
    return any(os.path.exists(os.path.join(REPO, root, path))
               for root in _SEARCH_ROOTS)


class TestDocLinks:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md",
                                     "docs/OBSERVABILITY.md",
                                     "docs/CONCURRENCY.md",
                                     "docs/ANALYSIS.md",
                                     "docs/DURABILITY.md",
                                     "docs/DATALOG.md",
                                     "docs/REPLICATION.md",
                                     "docs/OPTIMIZER.md",
                                     "EXPERIMENTS.md"])
    def test_inline_code_paths_exist(self, doc):
        text = read_doc(doc)
        missing = sorted({p for p in _PATH_RE.findall(text)
                          if not _exists(p)})
        assert not missing, f"{doc} references missing paths: {missing}"

    def test_readme_test_count_is_current(self):
        """README's advertised test count must match reality (±5%)."""
        text = read_doc("README.md")
        m = re.search(r"~?(\d{3,})\s+(?:unit[\w/-]*\s+)?tests", text)
        assert m, "README.md no longer states a test count"
        claimed = int(m.group(1))
        import subprocess
        import sys
        out = subprocess.run(
            [sys.executable, "-m", "pytest", "--collect-only", "-q"],
            capture_output=True, text=True, cwd=REPO,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO, "src")}).stdout
        m2 = re.search(r"(\d+) tests collected", out)
        assert m2, f"could not collect tests: {out[-400:]}"
        actual = int(m2.group(1))
        assert abs(actual - claimed) <= actual * 0.05, (
            f"README claims ~{claimed} tests, but {actual} collect; "
            "update the README")
