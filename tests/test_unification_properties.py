"""Property tests on the WAM unifier and heap conversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.writer import term_to_text
from repro.terms import Struct, Var, terms_equal
from repro.wam.machine import Machine

from .conftest import ground_terms


def _unifies(machine, a, b) -> bool:
    ca, _ = machine._build(a, {})
    cb, _ = machine._build(b, {})
    mark = len(machine.trail)
    heap_mark = len(machine.heap)
    ok = machine.unify(ca, cb)
    machine._unwind_trail(mark)
    del machine.heap[heap_mark:]
    return ok


@pytest.fixture(scope="module")
def m():
    return Machine()


@settings(max_examples=60, deadline=None)
@given(ground_terms())
def test_ground_self_unification(t):
    machine = Machine()
    assert _unifies(machine, t, t)


@settings(max_examples=60, deadline=None)
@given(ground_terms(), ground_terms())
def test_ground_unification_is_equality(a, b):
    machine = Machine()
    assert _unifies(machine, a, b) == terms_equal(a, b)


@settings(max_examples=60, deadline=None)
@given(ground_terms(), ground_terms())
def test_unification_symmetric(a, b):
    machine = Machine()
    assert _unifies(machine, a, b) == _unifies(machine, b, a)


@settings(max_examples=60, deadline=None)
@given(ground_terms())
def test_variable_unifies_with_anything(t):
    machine = Machine()
    assert _unifies(machine, Var(), t)


@settings(max_examples=60, deadline=None)
@given(ground_terms())
def test_build_extract_roundtrip(t):
    machine = Machine()
    cell, _ = machine._build(t, {})
    assert terms_equal(machine.extract(cell), t)
    del machine.heap[:]


@settings(max_examples=40, deadline=None)
@given(ground_terms())
def test_heap_conversion_matches_writer(t):
    """term -> heap -> term -> text equals term -> text."""
    machine = Machine()
    cell, _ = machine._build(t, {})
    assert term_to_text(machine.extract(cell)) == term_to_text(t)
    del machine.heap[:]


@settings(max_examples=40, deadline=None)
@given(
    shape=ground_terms(),
    bind_left=st.booleans(),
)
def test_var_binding_direction_irrelevant(shape, bind_left):
    """X = t then reading X gives t, regardless of operand order."""
    machine = Machine()
    var_term = Var("X")
    pair = (var_term, shape) if bind_left else (shape, var_term)
    ca, addr_of = machine._build(pair[0], {})
    cb, _ = machine._build(pair[1], addr_of)
    assert machine.unify(ca, cb)
    bound = machine.extract(ca if bind_left else cb)
    assert terms_equal(bound, shape)
    machine._unwind_trail(0)
    del machine.heap[:]


@settings(max_examples=30, deadline=None)
@given(st.lists(ground_terms(), min_size=1, max_size=5))
def test_findall_returns_exactly_database(terms):
    """findall over asserted facts returns them in assertion order."""
    machine = Machine()
    machine.solve_once("dynamic(stored/1)")
    for t in terms:
        cell, _ = machine._build(Struct("stored", (t,)), {})
        proc = machine.procedure("stored", 1)
        proc.clauses.append(machine.extract(cell))
        proc.dirty = True
    sol = machine.solve_once("findall(X, stored(X), L)")
    got = term_to_text(sol["L"])
    from repro.terms import make_list
    assert got == term_to_text(make_list(terms))
