"""Tests for the Educe* extension features: directives, the cursor
interface (§2.3), EDB persistence (§3.1), the typed sub-language
(§3.2.3) and cyclic-data facilities (§1)."""


import pytest

from repro.edb.store import ExternalStore
from repro.engine.session import EduceStar
from repro.errors import ExistenceError, PrologError, TypeError_
from repro.lang.writer import term_to_text


class TestDirectives:
    def test_op_directive_extends_reader(self, machine):
        machine.consult("""
        :- op(700, xfx, ===).
        same(A === B) :- A == B.
        """)
        assert machine.solve_once("same(x === x)") is not None

    def test_dynamic_directive_prefix_syntax(self, machine):
        machine.consult(":- dynamic foo/1.")
        assert machine.solve_once("foo(_)") is None  # exists, empty

    def test_goal_directive_executes(self, machine):
        machine.consult(":- assertz(seeded(1)).")
        assert machine.solve_once("seeded(X)")["X"] == 1

    def test_failing_directive_raises(self, machine):
        with pytest.raises(PrologError):
            machine.consult(":- fail.")

    def test_directive_sees_preceding_clauses(self, machine):
        machine.consult("""
        val(10).
        :- val(X), assertz(derived(X)).
        """)
        assert machine.solve_once("derived(10)") is not None


class TestCursorInterface:
    @pytest.fixture
    def kb(self):
        s = EduceStar()
        s.store_relation("emp", [(1, "ann", "eng"), (2, "bob", "hr"),
                                 (3, "cleo", "eng"), (4, "dan", "ops")])
        return s

    def test_open_set_key_scan_close(self, kb):
        kb.consult("""
        collect(D, [T|Ts]) :- next_tuple(D, T), !, collect(D, Ts).
        collect(_, []).
        dept_names(Dept, Names) :-
            open_rel(D, emp/3),
            set_key(D, emp(_, _, Dept)),
            collect(D, Rows),
            close_rel(D),
            findall(N, member(row(_, N, _), Rows), Names).
        """)
        sol = kb.solve_once("dept_names(eng, L)")
        assert term_to_text(sol["L"]) == "[ann,cleo]"

    def test_first_and_more(self, kb):
        kb.consult("""
        probe(Dept, First, More) :-
            open_rel(D, emp/3),
            set_key(D, emp(_, _, Dept)),
            first_tuple(D, row(_, First, _)),
            ( more(D) -> More = yes ; More = no ),
            close_rel(D).
        """)
        sol = kb.solve_once("probe(eng, F, M)")
        assert str(sol["F"]) == "ann" and str(sol["M"]) == "yes"
        sol = kb.solve_once("probe(hr, F, M)")
        assert str(sol["F"]) == "bob" and str(sol["M"]) == "no"

    def test_cursor_scan_is_deterministic(self, kb):
        """§3.2.1: the descriptor predicates create no choice points
        beyond the query barrier."""
        kb.consult("""
        drain(D) :- next_tuple(D, _), !, drain(D).
        drain(_).
        full_scan :- open_rel(D, emp/3), drain(D), close_rel(D).
        """)
        kb.machine.reset_counters()
        assert kb.solve_once("full_scan") is not None
        # barrier + nothing per-tuple (drain's clauses are cut-guarded)
        assert kb.machine.cp_created <= 2 + 5  # small constant, not 4/tuple

    def test_rel_tuple_nondeterministic_wrapper(self, kb):
        names = [str(s["N"]) for s in
                 kb.solve("rel_tuple(emp/3, row(_, N, eng))")]
        assert names == ["ann", "cleo"]

    def test_unknown_relation_raises(self, kb):
        with pytest.raises(ExistenceError):
            kb.solve_once("open_rel(_, ghost/2)")

    def test_closed_cursor_raises(self, kb):
        kb.consult("""
        use_after_close :-
            open_rel(D, emp/3), close_rel(D), next_tuple(D, _).
        """)
        with pytest.raises(ExistenceError):
            kb.solve_once("use_after_close")

    def test_fetch_counters(self, kb):
        kb.solve_once("open_rel(D, emp/3), first_tuple(D, _), "
                      "next_tuple(D, _), close_rel(D)")
        assert kb.cursors.opens == 1
        assert kb.cursors.fetches == 2


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "kb.edb")
        a = EduceStar()
        a.store_relation("edge", [("x", "y"), ("y", "z")])
        a.store_program("""
        reach(A, B) :- edge(A, B).
        reach(A, B) :- edge(A, C), reach(C, B).
        """)
        a.store.save(path)

        b = EduceStar(store=ExternalStore.load(path))
        got = sorted(str(s["B"]) for s in b.solve("reach(x, B)"))
        assert got == ["y", "z"]

    def test_fresh_session_has_fresh_internal_ids(self, tmp_path):
        """The point of relative addresses: session B's internal
        dictionary allocates its own identifiers, yet stored code runs."""
        path = str(tmp_path / "kb.edb")
        a = EduceStar()
        a.store_program("greet(hello_world_atom).")
        a.store.save(path)

        b = EduceStar(store=ExternalStore.load(path))
        # intern unrelated junk first so slot allocation diverges
        for i in range(500):
            b.machine.dictionary.intern(f"noise_{i}", i % 4)
        assert str(b.solve_once("greet(X)")["X"]) == "hello_world_atom"

    def test_updates_after_reload(self, tmp_path):
        path = str(tmp_path / "kb.edb")
        a = EduceStar()
        a.store_program("item(1).")
        a.store.save(path)
        b = EduceStar(store=ExternalStore.load(path))
        b.assert_external("item(2)")
        assert [s["X"] for s in b.solve("item(X)")] == [1, 2]

    def test_load_rejects_garbage(self, tmp_path):
        path = str(tmp_path / "junk.edb")
        with open(path, "wb") as f:
            import pickle
            pickle.dump({"not": "a store"}, f)
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            ExternalStore.load(path)


class TestTypedSubLanguage:
    def test_declaration_and_introspection(self, session):
        session.consult(":- pred employee(int, atom, int).")
        sol = session.solve_once("current_pred_type(employee/3, T)")
        assert term_to_text(sol["T"]) == "[int,atom,int]"

    def test_undeclared_introspection_fails(self, session):
        assert session.solve_once(
            "current_pred_type(nothing/9, _)") is None

    def test_declared_types_used_for_storage(self, session):
        session.consult(":- pred t(int, atom).")
        session.store_relation("t", [(1, "a")])
        types = [a.type for a in
                 session.relation("t", 2).schema.attributes]
        assert types == ["int", "atom"]

    def test_ill_typed_row_rejected(self, session):
        session.consult(":- pred t(int).")
        with pytest.raises(TypeError_):
            session.store_relation("t", [("not_int",)])

    def test_ill_typed_rule_head_rejected(self, session):
        session.consult(":- pred score(int, int).")
        with pytest.raises(TypeError_):
            session.store_program("score(abc, 1).")

    def test_var_head_args_always_allowed(self, session):
        session.consult(":- pred score(int, int).")
        session.store_program("score(X, Y) :- Y is X * 2.")
        assert session.solve_once("score(3, Y)")["Y"] == 6

    def test_ill_typed_call_fails_cleanly(self, session):
        session.consult(":- pred num(int).")
        session.store_relation("num", [(1,), (2,)])
        loads = session.loader.loads
        assert session.solve_once("num(atom_not_int)") is None
        assert session.loader.loads == loads  # no storage work
        assert session.types.rejections >= 1

    def test_well_typed_call_unaffected(self, session):
        session.consult(":- pred num(int).")
        session.store_relation("num", [(1,), (2,)])
        assert session.count_solutions("num(_)") == 2

    def test_bad_type_name_rejected(self, session):
        with pytest.raises(TypeError_):
            session.consult(":- pred t(varchar).")


class TestCyclicData:
    def test_acyclic_on_plain_terms(self, machine):
        assert machine.solve_once(
            "acyclic_term(f(1, [a,b], g(h(c))))") is not None

    def test_cycle_detected(self, machine):
        assert machine.solve_once("X = f(X), cyclic_term(X)") is not None
        assert machine.solve_once("X = f(X), acyclic_term(X)") is None

    def test_shared_subterms_are_not_cycles(self, machine):
        assert machine.solve_once(
            "Y = g(1), X = f(Y, Y), acyclic_term(X)") is not None

    def test_cyclic_list_detected(self, machine):
        assert machine.solve_once(
            "X = [1|X], cyclic_term(X)") is not None

    def test_occurs_check_unification(self, machine):
        assert machine.solve_once(
            "unify_with_occurs_check(X, f(X))") is None
        sol = machine.solve_once("unify_with_occurs_check(X, f(1))")
        assert term_to_text(sol["X"]) == "f(1)"

    def test_extraction_of_cyclic_term_terminates(self, machine):
        sol = machine.solve_once("X = f(a, X)")
        text = term_to_text(sol["X"])
        assert text.startswith("f(a,")  # knot cut with a fresh var

    def test_closure_terminates_on_cyclic_graph(self, machine):
        machine.consult("e(a,b). e(b,c). e(c,a). e(c,d).")
        got = sorted(set(
            str(s["Y"]) for s in machine.solve("closure(e, a, Y)")))
        assert got == ["a", "b", "c", "d"]

    def test_closure_on_acyclic_graph(self, machine):
        machine.consult("p(1,2). p(2,3).")
        got = sorted(set(
            s["Y"] for s in machine.solve("closure(p, 1, Y)")))
        assert got == [2, 3]
