"""EXPLAIN/ANALYZE differential suite (docs/OBSERVABILITY.md).

The plan is only trustworthy if it never lies about execution, so the
core checks are differential:

* for every corpus program and every graph-workload case, the strategy
  the plan *names* must be the strategy that *executes* (cross-checked
  against the counter deltas the run leaves behind);
* in ANALYZE mode the per-pass ``delta_rows`` on the stratum nodes
  must sum to the fixpoint's total derived rows — the plan neither
  invents nor loses a tuple;
* EXPLAIN alone evaluates nothing, so it is safe to run on every
  predicate of every corpus program, terminating or not.
"""

import glob
import json
import os

import pytest

from repro import EduceStar
from repro.workloads import graphs

CORPUS = sorted(glob.glob(os.path.join(os.path.dirname(__file__),
                                       "corpus", "*.pl")))

# Topdown programs with safe, terminating goals for ANALYZE.
TOPDOWN_CASES = [
    ("p(a). p(b). p(c).", "p(X)"),
    ("e(1,2). e(2,3). e(3,4). t(X,Y) :- e(X,Y). "
     "t(X,Y) :- e(X,Z), t(Z,Y).", "t(1, X)"),
    ("f(0, 1) :- !. f(N, F) :- N > 0, M is N - 1, f(M, G), "
     "F is N * G.", "f(6, X)"),
    ("m(X) :- member(X, [q,w,e]).", "m(X)"),
]


def build_graph_session(case, **kwargs) -> EduceStar:
    kb = EduceStar(**kwargs)
    for name, rows in case["relations"].items():
        kb.store_relation(name, rows)
    kb.store_program(case["program"])
    return kb


# =====================================================================
# Topdown plans
# =====================================================================

class TestTopdown:
    @pytest.mark.parametrize("program,goal", TOPDOWN_CASES)
    def test_explain_names_topdown_and_analyze_confirms(self, program,
                                                        goal):
        kb = EduceStar()
        kb.consult(program)
        plan = kb.explain(goal)
        assert plan.mode == "explain"
        assert plan.strategy == "topdown"
        assert plan.executed is None          # nothing ran
        proc = plan.root.find("procedure")
        assert proc is not None
        assert proc.attrs["source"] == "main-memory"

        before = kb.metrics.snapshot()
        analyzed = kb.analyze(goal)
        delta = kb.metrics.diff(kb.metrics.snapshot(), before)
        assert analyzed.mode == "analyze"
        assert analyzed.executed == "topdown" == analyzed.strategy
        assert analyzed.root.actual["answers"] >= 1
        # Counter-delta cross-check: the WAM ran, the fixpoint did not.
        assert analyzed.root.actual["instr_count"] > 0
        assert not delta.get("datalog_bottomup")

    def test_procedure_code_shape_matches_compiled_block(self):
        kb = EduceStar()
        kb.consult("p(a). p(b). p(c).")
        plan = kb.explain("p(X)")
        proc = plan.root.find("procedure")
        block = kb.machine.procedure("p", 1)
        assert proc.attrs["instructions"] == len(block.code)
        assert proc.attrs["clauses"] == 3
        assert proc.attrs["choice_instrs"] >= 0

    def test_prelude_and_undefined_goals(self):
        kb = EduceStar()
        # Prelude predicates are ordinary main-memory procedures.
        member = kb.explain("member(X, [a])").root.find("procedure")
        assert member.attrs["source"] == "main-memory"
        assert member.attrs["clauses"] == 2
        assert kb.explain("no_such_pred(X)").root.find(
            "procedure").attrs["source"] == "undefined"

    def test_optimizer_node_always_present(self):
        kb = EduceStar()
        kb.consult("p(a).")
        node = kb.explain("p(X)").root.find("optimizer")
        assert node is not None
        assert node.label == kb.machine.optimizer.level
        assert "wam_opt_fusions" in node.attrs

    def test_explain_is_side_effect_free(self):
        """EXPLAIN alone executes nothing — the machine's instruction
        counter does not move."""
        kb = EduceStar()
        kb.consult("p(a). q(X) :- p(X).")
        before = kb.machine.instr_count
        kb.explain("q(X)")
        assert kb.machine.instr_count == before

    def test_counters(self):
        kb = EduceStar()
        kb.consult("p(a).")
        kb.explain("p(X)")
        kb.analyze("p(X)")
        counters = kb.counters()
        assert counters["explain_queries"] == 2   # analyze explains too
        assert counters["analyze_queries"] == 1


# =====================================================================
# Corpus sweep: EXPLAIN is total over everything the suite compiles
# =====================================================================

class TestCorpusSweep:
    @pytest.mark.parametrize(
        "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
    def test_explain_every_corpus_predicate(self, path):
        with open(path, "r", encoding="utf-8") as fh:
            program = fh.read()
        kb = EduceStar()
        kb.consult(program)
        explained = 0
        for proc in list(kb.machine.procedures.values()):
            if proc.kind != "static" or proc.name.startswith("$"):
                continue
            args = ", ".join(f"A{i}" for i in range(proc.arity))
            goal = f"{proc.name}({args})" if proc.arity else proc.name
            plan = kb.explain(goal)
            assert plan.strategy == "topdown"
            pnode = plan.root.find("procedure")
            assert pnode is not None, goal
            assert pnode.attrs["source"] == "main-memory"
            assert pnode.attrs["instructions"] > 0
            # JSON round-trip: parse of the serialisation is the dict.
            assert json.loads(plan.to_json()) == plan.to_dict()
            explained += 1
        assert explained > 0, f"{path} defined no static predicates"


# =====================================================================
# Bottom-up plans over the graph workloads (E13)
# =====================================================================

class TestBottomup:
    @pytest.mark.parametrize("seed", range(0, 10, 3))
    def test_analyze_passes_sum_to_fixpoint_total(self, seed):
        for case in graphs.differential_cases(seed):
            kb = build_graph_session(case, datalog="force")
            for goal in case["goals"]:
                plan = kb.analyze(goal)
                if plan.executed != "bottomup":
                    continue
                assert plan.strategy == "bottomup", (
                    f"{case['name']}/{goal}: executed bottom-up but "
                    f"planned {plan.strategy}")
                derived = plan.root.actual["derived_rows"]
                per_pass = [
                    row for node in plan.root.walk()
                    if node.op == "stratum"
                    for row in node.actual["delta_rows"]]
                assert sum(per_pass) == derived, (
                    f"{case['name']}/{goal}: per-pass deltas "
                    f"{sum(per_pass)} != fixpoint total {derived}")
                # Per-rule rows nest inside their stratum's total.
                for node in plan.root.walk():
                    if node.op == "rule":
                        assert node.actual["rows"] == sum(
                            node.actual["pass_rows"])

    @pytest.mark.parametrize("seed", range(0, 10, 3))
    def test_auto_planner_prediction_matches_execution(self, seed):
        """datalog="auto": whatever the plan predicts is what runs,
        verified against the counter deltas."""
        for case in graphs.differential_cases(seed):
            kb = build_graph_session(case, datalog="auto")
            for goal in case["goals"]:
                predicted = kb.explain(goal).strategy
                before = kb.metrics.snapshot()
                plan = kb.analyze(goal)
                delta = kb.metrics.diff(kb.metrics.snapshot(), before)
                assert plan.executed == predicted, (
                    f"{case['name']}/{goal}: planned {predicted}, "
                    f"executed {plan.executed}")
                ran_bottomup = bool(delta.get("datalog_bottomup"))
                assert ran_bottomup == (predicted == "bottomup")

    def test_magic_adornment_in_plan(self):
        kb = EduceStar(datalog="force")
        kb.store_relation("edge", [(i, i + 1) for i in range(30)])
        kb.store_program(
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- edge(X, Y), path(Y, Z).\n")
        plan = kb.explain("path(0, X)")
        assert plan.strategy == "bottomup"
        magic = plan.root.find("magic")
        assert magic is not None
        assert magic.attrs["adornment"] == "bf"
        assert magic.attrs["bound_args"] == 1
        # And the decision subtree carries the cost inputs.
        decision = plan.root.find("decision")
        assert decision.attrs["min_rows"] == kb.datalog.min_rows
        assert decision.attrs["base_rows"] >= 30
        # Strata and rules were named without running anything.
        assert [n.op for n in plan.root.walk()].count("rule") >= 2

    def test_unbound_goal_reports_no_adornment(self):
        kb = EduceStar(datalog="force")
        kb.store_relation("edge", [(1, 2), (2, 3)])
        kb.store_program(
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- edge(X, Y), path(Y, Z).\n")
        magic = kb.explain("path(X, Y)").root.find("magic")
        assert magic.attrs["bound_args"] == 0
        assert magic.label == "none"


# =====================================================================
# EDB procedures and cached blocks
# =====================================================================

class TestStoredProcedures:
    def test_cached_blocks_in_plan(self):
        kb = EduceStar()
        kb.store_relation("road", [("a", "b"), ("b", "c"), ("c", "d")])
        for _ in kb.solve("road(a, X)"):
            pass
        plan = kb.explain("road(a, X)")
        pnode = plan.root.find("procedure")
        assert pnode.attrs["source"] == "edb"
        assert pnode.attrs["mode"] == "facts"
        assert pnode.attrs["rows"] == 3
        blocks = [c for c in pnode.children if c.op == "cached_block"]
        assert blocks, "loader cache is warm but the plan shows no block"
        for block in blocks:
            assert block.attrs["instructions"] > 0

    def test_text_rendering_shape(self):
        kb = EduceStar(datalog="force")
        kb.store_relation("edge", [(i, i + 1) for i in range(5)])
        kb.store_program(
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- edge(X, Y), path(Y, Z).\n")
        text = kb.analyze("path(0, X)").format()
        lines = text.splitlines()
        assert lines[0].startswith("ANALYZE ")
        assert any(line.lstrip().startswith("actual:") for line in lines)
        assert any("decision" in line for line in lines)


# =====================================================================
# Service: explain-on-submit
# =====================================================================

class TestServiceExplain:
    def test_explain_on_submit(self):
        from repro.service import QueryService
        svc = QueryService(workers=1, queue_size=8, explain=True)
        try:
            svc.store_relation("edge", [(1, 2), (2, 3), (3, 4)])
            svc.store_program(
                "reach(X, Y) :- edge(X, Y).\n"
                "reach(X, Z) :- edge(X, Y), reach(Y, Z).\n")
            ticket = svc.submit("reach(1, X)")
            answers = ticket.result(timeout=30)
            assert len(answers) == 3
            assert ticket.explain is not None
            assert ticket.explain.strategy in ("topdown", "bottomup")
            assert json.loads(ticket.explain.to_json())["kind"] == \
                "explain_plan"
            # Per-ticket override: explain=False suppresses capture.
            quiet = svc.submit("reach(1, X)", explain=False)
            quiet.result(timeout=30)
            assert quiet.explain is None
        finally:
            svc.shutdown()

    def test_submit_explain_opt_in(self):
        """Default service: no plan capture unless the ticket asks."""
        from repro.service import QueryService
        svc = QueryService(workers=1, queue_size=8)
        try:
            svc.store_relation("edge", [(1, 2)])
            plain = svc.submit("edge(X, Y)")
            plain.result(timeout=30)
            assert plain.explain is None
            asked = svc.submit("edge(X, Y)", explain=True)
            asked.result(timeout=30)
            assert asked.explain is not None
            assert asked.explain.root.find("procedure") is not None
        finally:
            svc.shutdown()
