"""Tests for first-argument indexing and its determinism effects
(paper §3.2.1 / §3.2.2)."""

import pytest

from repro.wam.machine import Machine

SRC = """
kind(apple, fruit).
kind(carrot, vegetable).
kind(pear, fruit).
kind(42, number).
kind(3.5, real).
kind([], empty_list).
kind([_|_], list).
kind(f(_), structure).
kind(g(_, _), structure2).
"""


def fresh(index=True):
    m = Machine(index=index)
    m.consult(SRC)
    return m


class TestCorrectness:
    @pytest.mark.parametrize("goal,expect", [
        ("kind(apple, K)", "fruit"),
        ("kind(carrot, K)", "vegetable"),
        ("kind(42, K)", "number"),
        ("kind(3.5, K)", "real"),
        ("kind([], K)", "empty_list"),
        ("kind([1,2], K)", "list"),
        ("kind(f(x), K)", "structure"),
        ("kind(g(1, 2), K)", "structure2"),
    ])
    def test_dispatch_by_type_and_value(self, goal, expect):
        for index in (True, False):
            m = fresh(index)
            assert str(m.solve_once(goal)["K"]) == expect

    def test_unbound_arg_enumerates_all_in_order(self):
        for index in (True, False):
            m = fresh(index)
            kinds = [str(s["K"]) for s in m.solve("kind(_, K)")]
            assert kinds == ["fruit", "vegetable", "fruit", "number",
                             "real", "empty_list", "list", "structure",
                             "structure2"]

    def test_unknown_constant_fails(self):
        m = fresh()
        assert m.solve_once("kind(zebra, _)") is None

    def test_unknown_structure_fails(self):
        m = fresh()
        assert m.solve_once("kind(h(1), _)") is None

    def test_var_headed_clauses_reached_from_every_key(self):
        m = Machine()
        m.consult("""
        v(a, const_a).
        v(X, anything) :- nonvar(X).
        v(b, const_b).
        """)
        # 'a' matches clause 1 AND the var clause, in source order
        assert [str(s["R"]) for s in m.solve("v(a, R)")] == \
            ["const_a", "anything"]
        # 'z' matches only the var clause
        assert [str(s["R"]) for s in m.solve("v(z, R)")] == ["anything"]
        assert [str(s["R"]) for s in m.solve("v(b, R)")] == \
            ["anything", "const_b"]


class TestDeterminismEffect:
    """Indexing "often transforms a non-deterministic procedure into a
    number of purely deterministic procedures ... eliminates the need to
    create choice points" (§3.2.2)."""

    def test_indexed_point_call_creates_no_choice_point(self):
        m = fresh(index=True)
        m.reset_counters()
        m.solve_once("kind(carrot, _)")
        # Only the query barrier; no clause choice point.
        assert m.cp_created == 1

    def test_unindexed_point_call_creates_choice_point(self):
        m = fresh(index=False)
        m.reset_counters()
        m.solve_once("kind(carrot, _)")
        assert m.cp_created > 1

    def test_cp_references_drop_with_indexing(self):
        goals = ["kind(apple, _)", "kind(42, _)", "kind(f(x), _)"]
        indexed = fresh(index=True)
        plain = fresh(index=False)
        for m in (indexed, plain):
            m.reset_counters()
            for g in goals * 20:
                m.solve_once(g)
        assert indexed.cp_refs < plain.cp_refs

    def test_indexing_also_prunes_failing_unifications(self):
        indexed = fresh(index=True)
        plain = fresh(index=False)
        for m in (indexed, plain):
            m.reset_counters()
            m.solve_once("kind(pear, _)")
        assert indexed.unify_ops <= plain.unify_ops
