"""Error-path and edge-case coverage for the machine built-ins."""

import pytest

from repro.errors import (
    EvaluationError,
    InstantiationError,
    PrologError,
    TypeError_,
)
from repro.lang.writer import term_to_text


def fails(machine, goal):
    return machine.solve_once(goal) is None


class TestArithmeticErrors:
    def test_div_by_zero_variants(self, machine):
        for expr in ("1 / 0", "1 // 0", "1 mod 0", "1 rem 0"):
            with pytest.raises(EvaluationError):
                machine.solve_once(f"_ is {expr}")

    def test_unbound_subexpression(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("_ is 1 + _")

    def test_non_evaluable_atom(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("_ is banana")

    def test_non_evaluable_compound(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("_ is foo(1, 2)")

    def test_comparison_propagates_errors(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("X < 3")

    def test_intdiv_requires_integers(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("_ is 1.5 // 2")


class TestInspectionErrors:
    def test_functor_all_unbound(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("functor(_, _, _)")

    def test_functor_bad_arity_type(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("functor(_, foo, bar)")

    def test_functor_compound_name_for_arity0(self, machine):
        # functor(T, 3, 0) → T = 3 per ISO
        assert machine.solve_once("functor(T, 3, 0), T == 3") is not None

    def test_arg_unbound_index(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("arg(_, f(a), _)")

    def test_arg_on_atomic(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("arg(1, atom, _)")

    def test_arg_zero_and_negative(self, machine):
        assert fails(machine, "arg(0, f(a), _)")
        assert fails(machine, "arg(-1, f(a), _)")

    def test_univ_empty_list(self, machine):
        with pytest.raises(PrologError):
            machine.solve_once("_ =.. []")

    def test_univ_nonatom_head_with_args(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("_ =.. [1, 2]")

    def test_univ_atomic_singleton(self, machine):
        assert machine.solve_once("T =.. [42], T == 42") is not None


class TestAtomBuiltinErrors:
    def test_atom_length_on_number_is_text(self, machine):
        # numbers have a text representation (SWI-style leniency)
        assert machine.solve_once("atom_length(123, 3)") is not None

    def test_atom_length_on_compound(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("atom_length(f(x), _)")

    def test_atom_codes_bad_code_list(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("atom_codes(_, [a, b])")

    def test_number_codes_garbage(self, machine):
        with pytest.raises(PrologError):
            machine.solve_once('number_codes(_, "xyz")')

    def test_char_code_multichar(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("char_code(ab, _)")

    def test_char_code_both_unbound(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("char_code(_, _)")


class TestListBuiltinEdges:
    def test_length_negative_fails(self, machine):
        assert fails(machine, "length(_, -1)")

    def test_length_non_list(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("length(foo, _)")

    def test_between_unbound_bounds(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("between(_, 10, 3)")

    def test_between_empty_range(self, machine):
        assert fails(machine, "between(5, 1, _)")

    def test_keysort_requires_pairs(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("keysort([a], _)")

    def test_msort_improper_list(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("msort([1|foo], _)")

    def test_succ_negative(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("succ(-1, _)")

    def test_plus_underspecified(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("plus(_, _, 3)")

    def test_plus_solves_each_position(self, machine):
        assert machine.solve_once("plus(1, 2, X)")["X"] == 3
        assert machine.solve_once("plus(1, X, 3)")["X"] == 2
        assert machine.solve_once("plus(X, 2, 3)")["X"] == 1


class TestAggregateEdges:
    def test_aggregate_all_sum_empty_is_zero(self, machine):
        machine.consult(":- dynamic v/1.")
        assert machine.solve_once(
            "aggregate_all(sum(X), v(X), 0)") is not None

    def test_aggregate_all_max_empty_fails(self, machine):
        machine.consult(":- dynamic w/1.")
        assert fails(machine, "aggregate_all(max(X), w(X), _)")

    def test_aggregate_all_bag(self, machine):
        machine.consult("u(3). u(1).")
        sol = machine.solve_once("aggregate_all(bag(X), u(X), L)")
        assert term_to_text(sol["L"]) == "[3,1]"

    def test_aggregate_non_numeric_sum_raises(self, machine):
        machine.consult("s(a).")
        with pytest.raises(TypeError_):
            machine.solve_once("aggregate_all(sum(X), s(X), _)")

    def test_unknown_spec_raises(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("aggregate_all(median(X), s2(X), _)")


class TestControlEdges:
    def test_findall_with_error_in_goal_propagates(self, machine):
        with pytest.raises(EvaluationError):
            machine.solve_once("findall(X, X is 1/0, _)")

    def test_negation_of_error_propagates(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("\\+ (_ is _ + 1)")

    def test_call_of_integer_raises(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("G = 42, call(G)")

    def test_deeply_nested_once(self, machine):
        machine.consult("m(1). m(2).")
        sol = machine.solve_once("once(once(once(m(X))))")
        assert sol["X"] == 1

    def test_forall_with_empty_condition(self, machine):
        machine.consult(":- dynamic none/1.")
        assert machine.solve_once("forall(none(_), fail)") is not None

    def test_halt_raises(self, machine):
        with pytest.raises(PrologError):
            machine.solve_once("halt")

    def test_abolish_bad_spec(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("abolish(foo)")

    def test_dynamic_bad_spec(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("dynamic(17)")


class TestWriterEdges:
    def test_solution_with_renamed_vars(self, machine):
        sol = machine.solve_once("X = f(A, B, A)")
        assert term_to_text(sol["X"]) == "f(_G1,_G2,_G1)"

    def test_deep_nesting_roundtrip(self, machine):
        deep = "f(" * 30 + "x" + ")" * 30
        sol = machine.solve_once(f"X = {deep}")
        assert term_to_text(sol["X"]) == deep
