"""Integration tests for the WAM emulator and its built-ins."""

import pytest

from repro.errors import (
    EvaluationError,
    ExistenceError,
    InstantiationError,
    PermissionError_,
    PrologError,
    TypeError_,
)
from repro.lang.writer import term_to_text
from repro.terms import Atom


def answers(machine, goal, var="X"):
    return [term_to_text(s[var]) for s in machine.solve(goal)]


def succeeds(machine, goal):
    return machine.solve_once(goal) is not None


class TestFactsAndUnification:
    def test_fact_lookup(self, machine):
        machine.consult("p(a). p(b).")
        assert answers(machine, "p(X)") == ["a", "b"]

    def test_fact_check(self, machine):
        machine.consult("p(a).")
        assert succeeds(machine, "p(a)")
        assert not succeeds(machine, "p(b)")

    def test_structure_unification(self, machine):
        machine.consult("p(f(1, g(2))).")
        sol = machine.solve_once("p(f(X, g(Y)))")
        assert sol["X"] == 1 and sol["Y"] == 2

    def test_structure_mismatch_fails(self, machine):
        machine.consult("p(f(1)).")
        assert not succeeds(machine, "p(g(1))")
        assert not succeeds(machine, "p(f(1, 2))")

    def test_shared_variables(self, machine):
        machine.consult("eq(X, X).")
        assert succeeds(machine, "eq(a, a)")
        assert not succeeds(machine, "eq(a, b)")
        sol = machine.solve_once("eq(f(Y), f(3))")
        assert sol["Y"] == 3

    def test_int_vs_float_do_not_unify(self, machine):
        assert not succeeds(machine, "1 = 1.0")
        assert succeeds(machine, "1.0 = 1.0")

    def test_list_unification(self, machine):
        sol = machine.solve_once("[H|T] = [1,2,3]")
        assert sol["H"] == 1
        assert term_to_text(sol["T"]) == "[2,3]"

    def test_cyclic_safe_same_var(self, machine):
        assert succeeds(machine, "X = X")


class TestBacktrackingAndCut:
    def test_multiple_solutions(self, machine):
        machine.consult("col(r). col(g). col(b).")
        assert answers(machine, "col(X)") == ["r", "g", "b"]

    def test_conjunction_backtracks_left(self, machine):
        machine.consult("n(1). n(2). n(3).")
        sols = [(s["X"], s["Y"]) for s in machine.solve("n(X), n(Y)")]
        assert len(sols) == 9

    def test_cut_prunes_clause_alternatives(self, machine):
        machine.consult("first(X) :- member(X, [a,b,c]), !.")
        assert answers(machine, "first(X)") == ["a"]

    def test_cut_prunes_other_clauses(self, machine):
        machine.consult("p(1) :- !. p(2).")
        assert [s["X"] for s in machine.solve("p(X)")] == [1]

    def test_cut_is_local_to_clause(self, machine):
        machine.consult("""
        q(X) :- p(X).
        q(99).
        p(1) :- !.
        p(2).
        """)
        assert [s["X"] for s in machine.solve("q(X)")] == [1, 99]

    def test_cut_transparent_to_conjunction_after(self, machine):
        machine.consult("t(X, Y) :- member(X, [1,2]), !, member(Y, [a,b]).")
        sols = [(s["X"], str(s["Y"])) for s in machine.solve("t(X, Y)")]
        assert sols == [(1, "a"), (1, "b")]

    def test_fail_forces_backtracking(self, machine):
        machine.consult("p(1). p(2).")
        machine.consult("all :- p(_), fail. all.")
        assert succeeds(machine, "all")


class TestControlConstructs:
    def test_disjunction(self, machine):
        assert answers(machine, "(X = a ; X = b)") == ["a", "b"]

    def test_if_then_else_true(self, machine):
        assert answers(machine, "(1 < 2 -> X = yes ; X = no)") == ["yes"]

    def test_if_then_else_false(self, machine):
        assert answers(machine, "(2 < 1 -> X = yes ; X = no)") == ["no"]

    def test_if_then_commits_to_first_condition_solution(self, machine):
        machine.consult("c(1). c(2).")
        sols = [s["X"] for s in machine.solve("(c(X) -> true ; fail)")]
        assert sols == [1]

    def test_bare_if_then_fails_when_condition_fails(self, machine):
        assert not succeeds(machine, "(fail -> true)")

    def test_negation_as_failure(self, machine):
        machine.consult("p(a).")
        assert succeeds(machine, "\\+ p(b)")
        assert not succeeds(machine, "\\+ p(a)")

    def test_negation_does_not_bind(self, machine):
        machine.consult("p(a).")
        sol = machine.solve_once("\\+ p(zzz), X = done")
        assert str(sol["X"]) == "done"

    def test_nested_control(self, machine):
        goal = "(( 1 > 2 ; 3 > 2 ) -> (X = in ; X = deep) ; X = out)"
        assert answers(machine, goal) == ["in", "deep"]

    def test_call_of_constructed_goal(self, machine):
        machine.consult("p(a).")
        assert succeeds(machine, "G = p(a), call(G)")

    def test_call_n_appends_args(self, machine):
        machine.consult("add(A, B, C) :- C is A + B.")
        sol = machine.solve_once("call(add(1), 2, R)")
        assert sol["R"] == 3

    def test_call_unbound_raises(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("call(G)")

    def test_once_keeps_first_binding(self, machine):
        machine.consult("m(1). m(2).")
        sol = machine.solve_once("once(m(X))")
        assert sol["X"] == 1

    def test_ignore_always_succeeds(self, machine):
        assert succeeds(machine, "ignore(fail)")


class TestArithmetic:
    @pytest.mark.parametrize("expr,value", [
        ("1 + 2", 3),
        ("7 - 10", -3),
        ("3 * 4", 12),
        ("7 // 2", 3),
        ("-7 // 2", -3),       # truncation toward zero
        ("7 mod 3", 1),
        ("-7 mod 3", 2),       # mod follows divisor sign
        ("2 ** 10", 1024.0),
        ("2 ^ 10", 1024),
        ("abs(-5)", 5),
        ("min(3, 7)", 3),
        ("max(3, 7)", 7),
        ("truncate(3.7)", 3),
        ("round(2.5)", 3),
        ("floor(-0.5)", -1),
        ("ceiling(0.1)", 1),
        ("5 /\\ 3", 1),
        ("5 \\/ 3", 7),
        ("5 xor 3", 6),
        ("1 << 4", 16),
        ("gcd(12, 18)", 6),
    ])
    def test_evaluation(self, machine, expr, value):
        sol = machine.solve_once(f"X is {expr}")
        assert sol["X"] == value

    def test_division_exact_stays_int(self, machine):
        assert machine.solve_once("X is 6 / 3")["X"] == 2

    def test_division_inexact_goes_float(self, machine):
        assert machine.solve_once("X is 7 / 2")["X"] == 3.5

    def test_zero_divisor_raises(self, machine):
        with pytest.raises(EvaluationError):
            machine.solve_once("X is 1 / 0")

    def test_unbound_raises(self, machine):
        with pytest.raises(InstantiationError):
            machine.solve_once("X is Y + 1")

    def test_unknown_function_raises(self, machine):
        with pytest.raises(TypeError_):
            machine.solve_once("X is frobnicate(3)")

    def test_comparisons(self, machine):
        assert succeeds(machine, "1 < 2, 2 > 1, 1 =< 1, 2 >= 2")
        assert succeeds(machine, "1 + 1 =:= 2, 1 =\\= 2")
        assert not succeeds(machine, "2 =:= 3")

    def test_pi(self, machine):
        sol = machine.solve_once("X is cos(pi)")
        assert abs(sol["X"] + 1.0) < 1e-12


class TestTermInspection:
    def test_functor_decompose(self, machine):
        sol = machine.solve_once("functor(f(a, b), N, A)")
        assert str(sol["N"]) == "f" and sol["A"] == 2

    def test_functor_construct(self, machine):
        sol = machine.solve_once("functor(T, foo, 3)")
        assert term_to_text(sol["T"]) == "foo(_G1,_G2,_G3)"

    def test_functor_atomic(self, machine):
        sol = machine.solve_once("functor(42, N, A)")
        assert sol["N"] == 42 and sol["A"] == 0

    def test_arg(self, machine):
        assert machine.solve_once("arg(2, f(a, b, c), X)")["X"] is Atom("b")
        assert not succeeds(machine, "arg(9, f(a), _)")

    def test_univ_decompose(self, machine):
        sol = machine.solve_once("f(1, 2) =.. L")
        assert term_to_text(sol["L"]) == "[f,1,2]"

    def test_univ_construct(self, machine):
        sol = machine.solve_once("T =.. [point, 3, 4]")
        assert term_to_text(sol["T"]) == "point(3,4)"

    def test_copy_term_fresh_vars(self, machine):
        sol = machine.solve_once("copy_term(f(X, X, Y), T), T = f(1, A, B)")
        assert sol["A"] == 1  # sharing preserved in the copy

    def test_type_checks(self, machine):
        assert succeeds(machine, "atom(foo), number(1), integer(2), "
                                 "float(1.5), atomic(a), compound(f(x)), "
                                 "callable(g), var(_), nonvar(a)")
        assert not succeeds(machine, "atom(1)")
        assert not succeeds(machine, "var(a)")

    def test_ground(self, machine):
        assert succeeds(machine, "ground(f(1, [a,b]))")
        assert not succeeds(machine, "ground(f(1, [a|_]))")

    def test_is_list(self, machine):
        assert succeeds(machine, "is_list([1,2])")
        assert not succeeds(machine, "is_list([1|_])")


class TestStandardOrder:
    def test_equality_and_inequality(self, machine):
        assert succeeds(machine, "f(X) == f(X)")
        assert succeeds(machine, "f(a) \\== f(b)")

    def test_ordering_chain(self, machine):
        assert succeeds(machine, "1 @< a, a @< f(a), f(a) @< f(a, b)")

    def test_compare(self, machine):
        assert str(machine.solve_once("compare(O, 1, 2)")["O"]) == "<"
        assert str(machine.solve_once("compare(O, b, a)")["O"]) == ">"
        assert str(machine.solve_once("compare(O, x, x)")["O"]) == "="

    def test_not_unify(self, machine):
        assert succeeds(machine, "a \\= b")
        assert not succeeds(machine, "X \\= a")


class TestAllSolutions:
    def test_findall_collects(self, machine):
        machine.consult("p(1). p(2). p(3).")
        sol = machine.solve_once("findall(X, p(X), L)")
        assert term_to_text(sol["L"]) == "[1,2,3]"

    def test_findall_empty_on_failure(self, machine):
        machine.consult("p(1).")
        sol = machine.solve_once("findall(X, (p(X), X > 5), L)")
        assert term_to_text(sol["L"]) == "[]"

    def test_findall_does_not_bind_goal_vars(self, machine):
        machine.consult("p(1). p(2).")
        sol = machine.solve_once("findall(X, p(X), _), var_check(X)"
                                 .replace("var_check(X)", "var(X)"))
        assert sol is not None

    def test_findall_nested(self, machine):
        machine.consult("p(1). p(2). q(a). q(b).")
        sol = machine.solve_once(
            "findall(X-L, (p(X), findall(Y, q(Y), L)), Out)")
        assert term_to_text(sol["Out"]) == "[1-[a,b],2-[a,b]]"

    def test_findall_template_copies(self, machine):
        machine.consult("p(f(1)). p(f(2)).")
        sol = machine.solve_once("findall(g(X), p(f(X)), L)")
        assert term_to_text(sol["L"]) == "[g(1),g(2)]"

    def test_bagof_fails_on_empty(self, machine):
        machine.consult("p(1).")
        assert not succeeds(machine, "bagof(X, (p(X), X > 9), _)")

    def test_setof_sorts_and_dedups(self, machine):
        machine.consult("q(3). q(1). q(3). q(2).")
        sol = machine.solve_once("setof(X, q(X), L)")
        assert term_to_text(sol["L"]) == "[1,2,3]"

    def test_caret_stripped(self, machine):
        machine.consult("r(1, a). r(2, b).")
        sol = machine.solve_once("setof(Y, X^r(X, Y), L)")
        assert term_to_text(sol["L"]) == "[a,b]"

    def test_forall(self, machine):
        machine.consult("n(2). n(4). m(3).")
        assert succeeds(machine, "forall(n(X), 0 =:= X mod 2)")
        assert not succeeds(machine, "forall(m(X), 0 =:= X mod 2)")

    def test_aggregate_all_count(self, machine):
        machine.consult("p(1). p(2). p(3).")
        assert machine.solve_once("aggregate_all(count, p(_), N)")["N"] == 3

    def test_aggregate_all_sum_max(self, machine):
        machine.consult("v(10). v(5). v(20).")
        assert machine.solve_once(
            "aggregate_all(sum(X), v(X), S)")["S"] == 35
        assert machine.solve_once(
            "aggregate_all(max(X), v(X), S)")["S"] == 20


class TestDynamicClauses:
    def test_assert_and_call(self, machine):
        assert succeeds(machine, "assertz(fact(1)), fact(1)")

    def test_asserta_orders_first(self, machine):
        machine.solve_once("assertz(d(1)), asserta(d(0))")
        assert [s["X"] for s in machine.solve("d(X)")] == [0, 1]

    def test_assert_rule(self, machine):
        machine.solve_once("assertz((even(X) :- 0 =:= X mod 2))")
        assert succeeds(machine, "even(4)")
        assert not succeeds(machine, "even(3)")

    def test_retract_removes_first_match(self, machine):
        machine.solve_once("assertz(r(1)), assertz(r(2))")
        assert succeeds(machine, "retract(r(1))")
        assert [s["X"] for s in machine.solve("r(X)")] == [2]

    def test_retract_binds(self, machine):
        machine.solve_once("assertz(r(7))")
        assert machine.solve_once("retract(r(X))")["X"] == 7

    def test_retract_fails_when_no_match(self, machine):
        machine.solve_once("assertz(r(1))")
        assert not succeeds(machine, "retract(r(9))")

    def test_retractall(self, machine):
        machine.solve_once("assertz(s(1)), assertz(s(2)), assertz(t(3))")
        machine.solve_once("retractall(s(_))")
        assert not succeeds(machine, "s(_)")
        assert succeeds(machine, "t(3)")

    def test_clause_inspection(self, machine):
        machine.solve_once("assertz((p(X) :- q(X)))")
        sol = machine.solve_once("clause(p(Z), B)")
        assert term_to_text(sol["B"]) == "q(_G1)"

    def test_cannot_modify_static(self, machine):
        machine.consult("st(1).")
        with pytest.raises(PermissionError_):
            machine.solve_once("assertz(st(2))")

    def test_abolish(self, machine):
        machine.solve_once("assertz(gone(1))")
        machine.solve_once("abolish(gone/1)")
        with pytest.raises(ExistenceError):
            machine.solve_once("gone(_)")

    def test_dynamic_declaration_makes_empty_proc(self, machine):
        machine.solve_once("dynamic(maybe/1)")
        assert not succeeds(machine, "maybe(_)")


class TestAtomsAndStrings:
    def test_atom_codes_both_ways(self, machine):
        sol = machine.solve_once("atom_codes(abc, L)")
        assert term_to_text(sol["L"]) == "[97,98,99]"
        sol = machine.solve_once('atom_codes(A, "xy")')
        assert str(sol["A"]) == "xy"

    def test_atom_chars(self, machine):
        sol = machine.solve_once("atom_chars(ab, L)")
        assert term_to_text(sol["L"]) == "[a,b]"

    def test_atom_length(self, machine):
        assert machine.solve_once("atom_length(hello, N)")["N"] == 5

    def test_atom_concat_forward(self, machine):
        assert str(machine.solve_once(
            "atom_concat(foo, bar, X)")["X"]) == "foobar"

    def test_atom_concat_split_nondeterministic(self, machine):
        sols = [(str(s["A"]), str(s["B"]))
                for s in machine.solve("atom_concat(A, B, ab)")]
        assert sols == [("", "ab"), ("a", "b"), ("ab", "")]

    def test_number_codes(self, machine):
        assert machine.solve_once('number_codes(N, "42")')["N"] == 42

    def test_atom_number(self, machine):
        assert machine.solve_once("atom_number('3.5', N)")["N"] == 3.5
        assert not succeeds(machine, "atom_number(hello, _)")

    def test_char_code(self, machine):
        assert machine.solve_once("char_code(a, X)")["X"] == 97

    def test_term_to_atom(self, machine):
        sol = machine.solve_once("term_to_atom(f(1, X), A)")
        assert str(sol["A"]) == "f(1,_G1)"
        sol = machine.solve_once("term_to_atom(T, 'g(7)')")
        assert term_to_text(sol["T"]) == "g(7)"


class TestListsBuiltins:
    def test_length_of_list(self, machine):
        assert machine.solve_once("length([a,b,c], N)")["N"] == 3

    def test_length_builds_list(self, machine):
        sol = machine.solve_once("length(L, 3)")
        assert term_to_text(sol["L"]) == "[_G1,_G2,_G3]"

    def test_length_partial_list(self, machine):
        sol = machine.solve_once("L = [a|T], length(L, 2)")
        assert term_to_text(sol["L"]) == "[a,_G1]"

    def test_between_enumerates(self, machine):
        assert [s["X"] for s in machine.solve("between(2, 5, X)")] == \
            [2, 3, 4, 5]

    def test_between_checks(self, machine):
        assert succeeds(machine, "between(1, 10, 7)")
        assert not succeeds(machine, "between(1, 10, 70)")

    def test_succ_both_modes(self, machine):
        assert machine.solve_once("succ(3, X)")["X"] == 4
        assert machine.solve_once("succ(X, 4)")["X"] == 3
        assert not succeeds(machine, "succ(_, 0)")

    def test_msort_keeps_duplicates(self, machine):
        sol = machine.solve_once("msort([2,1,2], L)")
        assert term_to_text(sol["L"]) == "[1,2,2]"

    def test_sort_dedups(self, machine):
        sol = machine.solve_once("sort([2,1,2,a,a], L)")
        assert term_to_text(sol["L"]) == "[1,2,a]"

    def test_keysort_stable(self, machine):
        sol = machine.solve_once("keysort([b-1, a-2, b-0], L)")
        assert term_to_text(sol["L"]) == "[a-2,b-1,b-0]"


class TestErrors:
    def test_unknown_procedure(self, machine):
        with pytest.raises(ExistenceError):
            machine.solve_once("no_such_thing(1)")

    def test_unknown_handler_can_supply(self, machine):
        def handler(m, name, arity):
            if name == "supplied":
                return m.define_procedure("supplied", 1,
                                          [m.reader.read_term("supplied(ok)")])
            return None
        machine.unknown_handler = handler
        assert str(machine.solve_once("supplied(X)")["X"]) == "ok"

    def test_redefine_builtin_rejected(self, machine):
        with pytest.raises(PrologError):
            machine.define_procedure("is", 2, [])


class TestRecursion:
    def test_deep_recursion_with_lco(self, machine):
        machine.consult("count(N, N). "
                        "count(I, N) :- I < N, I1 is I + 1, count(I1, N).")
        assert succeeds(machine, "count(0, 50000)")

    def test_naive_reverse(self, machine):
        machine.consult("""
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
        """)
        sol = machine.solve_once("nrev([1,2,3,4,5], R)")
        assert term_to_text(sol["R"]) == "[5,4,3,2,1]"

    def test_mutual_recursion(self, machine):
        machine.consult("""
        even(0).
        even(N) :- N > 0, M is N - 1, odd(M).
        odd(N) :- N > 0, M is N - 1, even(M).
        """)
        assert succeeds(machine, "even(40)")
        assert not succeeds(machine, "odd(40)")

    def test_queens_6(self, machine):
        machine.consult("""
        queens(N, Qs) :- numlist(1, N, Ns), qperm(Ns, Qs, []).
        qperm([], [], _).
        qperm(Ns, [Q|Qs], Placed) :-
            select(Q, Ns, Rest),
            safe(Q, 1, Placed),
            qperm(Rest, Qs, [Q|Placed]).
        safe(_, _, []).
        safe(Q, D, [P|Ps]) :-
            Q =\\= P + D, Q =\\= P - D,
            D1 is D + 1, safe(Q, D1, Ps).
        """)
        assert machine.count_solutions("queens(6, _)") == 4


class TestOutput:
    def test_write_and_nl(self, machine):
        machine.solve_once("write(hello), nl, write(1 + 2)")
        assert "".join(machine.output) == "hello\n1+2"

    def test_writeq_quotes(self, machine):
        machine.solve_once("writeq('a b')")
        assert "".join(machine.output) == "'a b'"

    def test_tab(self, machine):
        machine.solve_once("tab(3)")
        assert "".join(machine.output) == "   "


class TestCounters:
    def test_instruction_count_grows(self, machine):
        machine.consult("p(a).")
        before = machine.instr_count
        machine.solve_once("p(X)")
        assert machine.instr_count > before

    def test_reset(self, machine):
        machine.consult("p(a).")
        machine.solve_once("p(_)")
        machine.reset_counters()
        assert machine.instr_count == 0

    def test_statistics_builtin(self, machine):
        sol = machine.solve_once("statistics(inferences, N)")
        assert isinstance(sol["N"], int)
