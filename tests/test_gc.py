"""Tests for the sliding heap garbage collector (paper §3.3.2)."""


from repro.lang.writer import term_to_text
from repro.wam.gc import collect_heap, gc_allowed
from repro.wam.machine import Machine

LOOP_SRC = """
churn(0) :- !.
churn(N) :- _ = junk(N, [a,b,c], f(g(N))), N1 is N - 1, churn(N1).
"""


def gc_machine(threshold=2000):
    m = Machine(gc_threshold=threshold)
    return m


class TestTriggering:
    def test_gc_runs_under_pressure(self):
        m = gc_machine()
        m.consult(LOOP_SRC)
        m.solve_once("churn(5000)")
        assert m.gc_runs > 0
        assert m.gc_cells_recovered > 0

    def test_gc_disabled_flag(self):
        m = Machine(gc_enabled=False, gc_threshold=1000)
        m.consult(LOOP_SRC)
        m.solve_once("churn(3000)")
        assert m.gc_runs == 0

    def test_gc_can_be_toggled_mid_session(self):
        # the paper: "facilities to temporarily disable it ... critical
        # regions of real time applications"
        m = gc_machine()
        m.consult(LOOP_SRC)
        m.gc_enabled = False
        m.solve_once("churn(3000)")
        assert m.gc_runs == 0
        m.gc_enabled = True
        m.solve_once("churn(5000)")
        assert m.gc_runs > 0

    def test_heap_stays_bounded(self):
        m = gc_machine(threshold=3000)
        m.consult(LOOP_SRC)
        m.solve_once("churn(20000)")
        # without GC the loop would allocate ~10 cells per iteration
        assert m.heap_high_water < 60_000


class TestCorrectness:
    def test_live_list_survives(self):
        m = gc_machine()
        m.consult("""
        build(0, []) :- !.
        build(N, [N|T]) :- N1 is N - 1, junk(N), build(N1, T).
        junk(N) :- _ = g(N, N, N, N, N, N).
        """)
        sol = m.solve_once("build(2000, L), sum_list(L, S)")
        assert m.gc_runs > 0
        assert sol["S"] == sum(range(1, 2001))

    def test_backtracking_after_gc(self):
        m = gc_machine(threshold=800)
        m.consult("""
        pick(X) :- member(X, [1,2,3,4,5]).
        waste(0) :- !.
        waste(N) :- _ = h(N, N, N), N1 is N - 1, waste(N1).
        pair(X, Y) :- pick(X), waste(400), pick(Y), X + Y =:= 9.
        """)
        sols = [(s["X"], s["Y"]) for s in m.solve("pair(X, Y)")]
        assert sols == [(4, 5), (5, 4)]
        assert m.gc_runs > 0

    def test_nested_structures_survive(self):
        m = gc_machine(threshold=500)
        m.consult("""
        deepen(0, leaf) :- !.
        deepen(N, n(T, T)) :- junk, N1 is N - 1, deepen(N1, T).
        junk :- _ = pad(1, 2, 3, 4, 5, 6, 7, 8).
        """)
        sol = m.solve_once("deepen(12, T), T = n(A, A)")
        assert sol is not None

    def test_query_bindings_survive(self):
        m = gc_machine(threshold=500)
        m.consult(LOOP_SRC)
        sol = m.solve_once("X = kept(1, [a]), churn(2000), X = kept(A, B)")
        assert sol["A"] == 1
        assert term_to_text(sol["B"]) == "[a]"


class TestSafety:
    def test_not_allowed_with_gen_choicepoint(self):
        m = Machine()
        # simulate: a generator CP on the chain
        m.consult("p(1).")
        gen = iter([True])

        class FakeCP:
            kind = "gen"
            prev = None
        m.b = FakeCP()
        assert not gc_allowed(m)
        m.b = None

    def test_not_allowed_with_nested_barriers(self):
        m = Machine()

        class Barrier:
            kind = "barrier"

            def __init__(self, prev):
                self.prev = prev
        m.b = Barrier(Barrier(None))
        assert not gc_allowed(m)
        m.b = None

    def test_gc_inside_findall_is_skipped_but_harmless(self):
        m = gc_machine(threshold=300)
        m.consult("""
        gen(X) :- between(1, 200, X), _ = w(X, X, X, X).
        """)
        sol = m.solve_once("findall(X, gen(X), L), length(L, N)")
        assert sol["N"] == 200

    def test_explicit_collect_on_empty_heap(self):
        m = Machine()
        assert collect_heap(m) == 0
