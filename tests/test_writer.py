"""Unit tests for the term writer."""


from repro.lang.reader import read_term
from repro.lang.writer import format_clause, term_to_text
from repro.terms import Atom, Struct, Var, make_list


class TestAtoms:
    def test_plain_atom_unquoted(self):
        assert term_to_text(Atom("foo")) == "foo"

    def test_atom_with_space_quoted(self):
        assert term_to_text(Atom("hello world")) == "'hello world'"

    def test_atom_with_quote_escaped(self):
        assert term_to_text(Atom("it's")) == r"'it\'s'"

    def test_symbolic_atom_unquoted(self):
        assert term_to_text(Atom("+-+")) == "+-+"

    def test_empty_atom_quoted(self):
        assert term_to_text(Atom("")) == "''"

    def test_capitalised_atom_quoted(self):
        assert term_to_text(Atom("Foo")) == "'Foo'"

    def test_quoted_false_disables_quoting(self):
        assert term_to_text(Atom("hello world"), quoted=False) == \
            "hello world"

    def test_solo_atoms_never_quoted(self):
        for name in ("[]", "{}", "!", ";"):
            assert term_to_text(Atom(name)) == name


class TestNumbers:
    def test_int(self):
        assert term_to_text(42) == "42"

    def test_negative(self):
        assert term_to_text(-3) == "-3"

    def test_float_keeps_point(self):
        assert term_to_text(2.0) == "2.0"


class TestOperators:
    def test_infix(self):
        assert term_to_text(read_term("1+2")) == "1+2"

    def test_parens_on_lower_priority_context(self):
        assert term_to_text(read_term("(1+2)*3")) == "(1+2)*3"

    def test_no_needless_parens(self):
        assert term_to_text(read_term("1+2*3")) == "1+2*3"

    def test_word_operator_spaced(self):
        assert term_to_text(read_term("X is 1")) == "_G1 is 1"

    def test_symbol_glue_kept_safe(self):
        # 3 - (-4) must not render as "3--4"
        text = term_to_text(Struct("-", (3, -4)))
        assert term_to_text(read_term(text)) == text

    def test_prefix(self):
        assert term_to_text(read_term("\\+ a")) == "\\+a"


class TestListsAndClauses:
    def test_list(self):
        assert term_to_text(make_list([1, 2])) == "[1,2]"

    def test_partial_list(self):
        assert term_to_text(Struct(".", (1, Var()))) == "[1|_G1]"

    def test_vars_numbered_consistently(self):
        x = Var()
        text = term_to_text(Struct("f", (x, x, Var())))
        assert text == "f(_G1,_G1,_G2)"

    def test_format_clause_appends_dot(self):
        assert format_clause(read_term("a :- b")).endswith(".")

    def test_clause_reparses(self):
        text = format_clause(read_term("p(X) :- q(X), r(X)."))
        again = read_term(text)
        assert again.indicator == (":-", 2)
