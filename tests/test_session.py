"""End-to-end tests for EduceStar sessions and the Educe baseline."""


from repro.engine.educe_baseline import EduceBaseline
from repro.engine.session import EduceStar
from repro.engine.stats import measure


class TestEduceStar:
    def test_consult_and_query(self, session):
        session.consult("p(1). p(2).")
        assert [s["X"] for s in session.solve("p(X)")] == [1, 2]

    def test_store_program_roundtrip(self, session):
        session.store_program("""
        fib(0, 0). fib(1, 1).
        fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                     fib(A, FA), fib(B, FB), F is FA + FB.
        """)
        assert session.solve_once("fib(12, F)")["F"] == 144

    def test_store_relation_and_query(self, session):
        session.store_relation("num", [(i, i * i) for i in range(20)])
        assert session.solve_once("num(7, S)")["S"] == 49

    def test_relational_interface(self, session):
        session.store_relation("t", [(1, "a"), (2, "b")])
        rel = session.relation("t", 2)
        assert sorted(rel.scan()) == [(1, "a"), (2, "b")]

    def test_counters_merge_all_layers(self, session):
        session.store_relation("r", [(1,), (2,)])
        session.solve_once("r(1)")
        counters = session.counters()
        for key in ("instr_count", "loads", "parsed_chars"):
            assert key in counters

    def test_measure_context(self, session):
        session.consult("p(0).")
        with measure(session) as m:
            session.solve_once("p(X)")
        assert m.wall_s > 0
        assert m.counters.get("instr_count", 0) > 0

    def test_count_solutions(self, session):
        session.store_program("q(1). q(2). q(3).")
        assert session.count_solutions("q(_)") == 3

    def test_index_and_gc_flags_forwarded(self):
        s = EduceStar(index=False, gc_enabled=False)
        assert s.machine.index_enabled is False
        assert s.machine.gc_enabled is False

    def test_edb_and_internal_coexist_same_name_space(self, session):
        session.store_relation("ext", [(1,)])
        session.consult("int_rule(X) :- ext(X).")
        assert session.solve_once("int_rule(X)")["X"] == 1


class TestEduceBaselineSystem:
    def test_store_and_query_rules(self):
        b = EduceBaseline()
        b.store_program("""
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        b.store_relation("par", [("t", "b"), ("b", "a")])
        got = [str(s["Y"]) for s in b.solve("anc(t, Y)")]
        assert got == ["b", "a"]

    def test_parse_assert_erase_cycle_counted(self):
        """§2 factor 3: every call to an EDB rule re-parses and
        re-asserts; recursion multiplies the cost."""
        b = EduceBaseline()
        b.store_program("""
        len0([], 0).
        len0([_|T], N) :- len0(T, M), N is M + 1.
        """)
        sol = b.solve_once("len0([a,b,c,d], N)")
        assert sol["N"] == 4
        # one fetch per call: 5 calls for a 4-element list
        assert b.fetches >= 5
        assert b.parsed_chars > 0
        assert b.interpreter.erases >= b.fetches

    def test_facts_fetch_prefiltered(self):
        b = EduceBaseline()
        b.store_relation("big", [(i, i % 5) for i in range(100)])
        before = b.interpreter.asserts  # library consult counts too
        sol = b.solve_once("big(42, M)")
        assert sol["M"] == 2
        # selective retrieval: far fewer than 100 clauses asserted
        assert b.interpreter.asserts - before < 20

    def test_differential_vs_educestar(self):
        """Same program + data, both systems, same answers."""
        program = """
        route(X, Y) :- link(X, Y).
        route(X, Y) :- link(X, Z), route(Z, Y).
        """
        links = [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]

        star = EduceStar()
        star.store_relation("link", links)
        star.store_program(program)
        star_res = sorted(str(s["Y"]) for s in star.solve("route(a, Y)"))

        base = EduceBaseline()
        base.store_relation("link", links)
        base.store_program(program)
        base_res = sorted(str(s["Y"]) for s in base.solve("route(a, Y)"))

        assert star_res == base_res

    def test_baseline_slower_in_simulated_time(self):
        """The headline direction of Table 1: compiled EDB code beats
        the parse/assert/erase cycle."""
        program = """
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append_(RT, [H], R).
        append_([], L, L).
        append_([H|T], L, [H|R]) :- append_(T, L, R).
        """
        goal = "nrev([a,b,c,d,e,f,g,h], R)"

        star = EduceStar()
        star.store_program(program)
        with measure(star) as m_star:
            for _ in range(3):
                star.solve_once(goal)

        base = EduceBaseline()
        base.store_program(program)
        with measure(base) as m_base:
            for _ in range(3):
                base.solve_once(goal)

        assert m_base.simulated_ms() > m_star.simulated_ms()
