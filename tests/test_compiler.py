"""Unit tests for the WAM clause compiler, indexing and assembler."""

import pytest

from repro.dictionary import SegmentedDictionary
from repro.errors import MachineError
from repro.lang.reader import read_term
from repro.wam import instructions as I
from repro.wam.assembler import assemble
from repro.wam.compiler import (
    CompileContext,
    compile_clause,
    compile_procedure,
    split_clause,
)


@pytest.fixture
def ctx():
    return CompileContext(SegmentedDictionary(segment_capacity=256))


def ops(compiled):
    return [i[0] for i in compiled.code]


class TestSplitClause:
    def test_fact(self):
        head, body = split_clause(read_term("p(a)"))
        assert head.indicator == ("p", 1) and body == []

    def test_rule(self):
        head, body = split_clause(read_term("p :- q, r, s"))
        assert len(body) == 3

    def test_true_body_is_fact(self):
        _, body = split_clause(read_term("p :- true"))
        assert body == []

    def test_bad_head_raises(self):
        from repro.errors import TypeError_
        with pytest.raises(TypeError_):
            split_clause(read_term("1 :- q"))


class TestFactCompilation:
    def test_constant_fact(self, ctx):
        cc = compile_clause(read_term("p(a, 1)"), ctx)
        assert ops(cc) == [I.GET_CONSTANT, I.GET_CONSTANT, I.PROCEED]

    def test_nil_fact(self, ctx):
        cc = compile_clause(read_term("p([])"), ctx)
        assert ops(cc)[0] == I.GET_NIL

    def test_one_instruction_per_term(self, ctx):
        # §2.1: p(a, b) compiles to two get_constants (plus control).
        cc = compile_clause(read_term("p(a, b)"), ctx)
        consts = [i for i in cc.code if i[0] == I.GET_CONSTANT]
        assert len(consts) == 2

    def test_structure_fact(self, ctx):
        cc = compile_clause(read_term("p(f(X, g(Y)))"), ctx)
        assert ops(cc)[0] == I.GET_STRUCTURE
        assert I.UNIFY_VARIABLE in ops(cc)
        # nested g(Y) processed via a queued fresh register
        assert ops(cc).count(I.GET_STRUCTURE) == 2

    def test_list_fact(self, ctx):
        cc = compile_clause(read_term("p([a|T])"), ctx)
        assert ops(cc)[0] == I.GET_LIST

    def test_repeated_var_uses_get_value(self, ctx):
        cc = compile_clause(read_term("p(X, X)"), ctx)
        assert ops(cc)[:2] == [I.GET_VARIABLE, I.GET_VALUE]


class TestRuleCompilation:
    def test_chain_rule_uses_execute(self, ctx):
        cc = compile_clause(read_term("p(X) :- q(X)"), ctx)
        assert ops(cc)[-1] == I.EXECUTE
        assert I.ALLOCATE not in ops(cc)  # single goal, no permanents

    def test_multi_goal_gets_environment(self, ctx):
        cc = compile_clause(read_term("p(X) :- q(X), r(X)"), ctx)
        assert ops(cc)[0] == I.ALLOCATE
        assert I.DEALLOCATE in ops(cc)
        assert ops(cc)[-1] == I.EXECUTE  # last-call optimisation

    def test_permanent_variable_in_y_register(self, ctx):
        cc = compile_clause(read_term("p(X, Y) :- q(X), r(Y)"), ctx)
        y_regs = [i for i in cc.code
                  if len(i) > 1 and isinstance(i[1], tuple)
                  and i[1][0] == "y"]
        assert y_regs  # Y occurs in head and second goal

    def test_nonpermanent_stays_temporary(self, ctx):
        # X appears in head + first goal only: one chunk, temporary.
        cc = compile_clause(read_term("p(X) :- q(X), r(1)"), ctx)
        allocate = next(i for i in cc.code if i[0] == I.ALLOCATE)
        assert allocate[1] == 0

    def test_builtin_goal_compiles_to_escape(self, ctx):
        cc = compile_clause(read_term("p(X, Y) :- Y is X + 1"), ctx)
        assert (I.ESCAPE, "is", 2) in cc.code

    def test_fail_compiles_to_fail_op(self, ctx):
        cc = compile_clause(read_term("p :- fail"), ctx)
        assert (I.FAIL_OP,) in cc.code

    def test_goal_structure_built_bottom_up(self, ctx):
        cc = compile_clause(read_term("p :- q(f(g(1)))"), ctx)
        puts = [i[0] for i in cc.code if i[0] == I.PUT_STRUCTURE]
        # g(1) built first, then f(...)
        assert len(puts) == 2


class TestCut:
    def test_cut_reserves_level_slot(self, ctx):
        cc = compile_clause(read_term("p(X) :- q(X), !, r(X)"), ctx)
        assert ops(cc)[0] == I.ALLOCATE
        assert ops(cc)[1] == I.GET_LEVEL
        assert I.CUT in ops(cc)

    def test_cut_only_body(self, ctx):
        cc = compile_clause(read_term("p :- !"), ctx)
        assert I.CUT in ops(cc)
        assert ops(cc)[-1] == I.PROCEED


class TestControlExtraction:
    def test_disjunction_creates_aux(self, ctx):
        captured = []
        ctx.define_procedure = lambda n, a, c: captured.append((n, a, c))
        compile_clause(read_term("p(X) :- (q(X) ; r(X))"), ctx)
        assert len(captured) == 1
        name, arity, clauses = captured[0]
        assert arity == 1 and len(clauses) == 2

    def test_if_then_else_aux_has_cut(self, ctx):
        captured = []
        ctx.define_procedure = lambda n, a, c: captured.append((n, a, c))
        compile_clause(read_term("p(X) :- (q(X) -> r(X) ; s(X))"), ctx)
        _, _, clauses = captured[0]
        from repro.lang.writer import term_to_text
        assert "!" in term_to_text(clauses[0])

    def test_negation_aux_two_clauses(self, ctx):
        captured = []
        ctx.define_procedure = lambda n, a, c: captured.append((n, a, c))
        compile_clause(read_term("p(X) :- \\+ q(X)"), ctx)
        _, _, clauses = captured[0]
        assert len(clauses) == 2

    def test_variable_goal_becomes_metacall(self, ctx):
        cc = compile_clause(read_term("p(G) :- G"), ctx)
        assert any(i[0] == I.ESCAPE and i[1] == "call" for i in cc.code)


class TestFirstArgMetadata:
    @pytest.mark.parametrize("text,kind", [
        ("p(a)", "constant"),
        ("p(42)", "constant"),
        ("p(1.5)", "constant"),
        ("p(X)", "var"),
        ("p([])", "nil"),
        ("p([H|T])", "list"),
        ("p(f(X))", "structure"),
        ("p", "var"),
    ])
    def test_kinds(self, ctx, text, kind):
        assert compile_clause(read_term(text), ctx).first_arg_kind == kind


class TestProcedureIndexing:
    def _code(self, ctx, texts, index=True):
        return compile_procedure([read_term(t) for t in texts], ctx,
                                 index=index)

    def test_single_clause_no_choice(self, ctx):
        code = self._code(ctx, ["p(a)"])
        assert all(i[0] not in (I.TRY_ME_ELSE, I.TRY) for i in code)

    def test_multi_clause_has_switch(self, ctx):
        code = self._code(ctx, ["p(a)", "p(b)", "p(c)"])
        assert code[0][0] == I.SWITCH_ON_TERM
        assert any(i[0] == I.SWITCH_ON_CONSTANT for i in code)

    def test_index_disabled(self, ctx):
        code = self._code(ctx, ["p(a)", "p(b)"], index=False)
        assert all(i[0] != I.SWITCH_ON_TERM for i in code)
        assert any(i[0] == I.TRY_ME_ELSE for i in code)

    def test_all_var_heads_skip_switch(self, ctx):
        code = self._code(ctx, ["p(X) :- q(X)", "p(Y) :- r(Y)"])
        assert all(i[0] != I.SWITCH_ON_TERM for i in code)

    def test_structure_switch(self, ctx):
        code = self._code(ctx, ["p(f(1))", "p(g(2))"])
        assert any(i[0] == I.SWITCH_ON_STRUCTURE for i in code)

    def test_empty_procedure_fails(self, ctx):
        code = compile_procedure([], ctx)
        assert code == [(I.FAIL_OP,)]


class TestAssembler:
    def test_labels_resolved(self):
        code = assemble([
            (I.TRY_ME_ELSE, "L1"),
            (I.PROCEED,),
            (I.LABEL, "L1"),
            (I.TRUST_ME,),
            (I.PROCEED,),
        ])
        assert code[0] == (I.TRY_ME_ELSE, 2)

    def test_duplicate_label_raises(self):
        with pytest.raises(MachineError):
            assemble([(I.LABEL, "X"), (I.LABEL, "X")])

    def test_undefined_label_raises(self):
        with pytest.raises(MachineError):
            assemble([(I.TRY, "nowhere")])

    def test_switch_tables_resolved(self):
        code = assemble([
            (I.SWITCH_ON_CONSTANT, {("int", 1): "A"}, "B"),
            (I.LABEL, "A"),
            (I.PROCEED,),
            (I.LABEL, "B"),
            (I.FAIL_OP,),
        ])
        assert code[0][1] == {("int", 1): 1}
        assert code[0][2] == 2
