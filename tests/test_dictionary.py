"""Unit and property tests for the segmented closed-hash dictionary
(paper §3.3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dictionary import SegmentedDictionary, fnv1a
from repro.errors import ResourceError


def small_dict(capacity=64, high_water=0.70):
    return SegmentedDictionary(segment_capacity=capacity,
                               high_water=high_water)


class TestHash:
    def test_deterministic(self):
        assert fnv1a("foo", 2) == fnv1a("foo", 2)

    def test_arity_matters(self):
        assert fnv1a("foo", 1) != fnv1a("foo", 2)

    def test_name_matters(self):
        assert fnv1a("foo") != fnv1a("bar")

    def test_64_bits(self):
        assert 0 <= fnv1a("x" * 100, 255) < (1 << 64)

    def test_known_stability(self):
        # Guards against accidental algorithm changes: stored EDB code
        # depends on these values across sessions.
        assert fnv1a("", 0) == fnv1a("", 0)
        assert fnv1a("a", 0) != fnv1a("", 0)


class TestInterning:
    def test_intern_idempotent(self):
        d = small_dict()
        assert d.intern("foo", 2) == d.intern("foo", 2)

    def test_distinct_functors_get_distinct_ids(self):
        d = small_dict()
        ids = {d.intern(f"a{i}", i % 3) for i in range(40)}
        assert len(ids) == 40

    def test_lookup_absent_returns_none(self):
        assert small_dict().lookup("nope", 9) is None

    def test_accessors(self):
        d = small_dict()
        ident = d.intern("foo", 3)
        assert d.name(ident) == "foo"
        assert d.arity(ident) == 3
        assert d.functor(ident) == ("foo", 3)
        assert d.hash_of(ident) == fnv1a("foo", 3)

    def test_contains(self):
        d = small_dict()
        d.intern("x", 1)
        assert ("x", 1) in d
        assert ("x", 2) not in d

    def test_len_counts_live(self):
        d = small_dict()
        for i in range(10):
            d.intern(f"f{i}", 0)
        assert len(d) == 10

    def test_entries_enumerates_all(self):
        d = small_dict()
        want = {(f"e{i}", i) for i in range(20)}
        for name, arity in want:
            d.intern(name, arity)
        got = {(n, a) for _, n, a in d.entries()}
        assert got == want


class TestIdentifierStability:
    """Principle 4: an identifier never moves (compiled code embeds it)."""

    def test_ids_stable_across_growth(self):
        d = small_dict(capacity=32)
        first = {}
        for i in range(200):  # forces several segments
            first[i] = d.intern(f"g{i}", 0)
        for i in range(200):
            assert d.intern(f"g{i}", 0) == first[i]
            assert d.name(first[i]) == f"g{i}"

    def test_ids_stable_across_deletions(self):
        d = small_dict(capacity=32)
        ids = [d.intern(f"h{i}", 1) for i in range(30)]
        for ident in ids[:15]:
            d.delete(ident)
        for i in range(15, 30):
            assert d.name(ids[i]) == f"h{i}"


class TestSegments:
    def test_growth_at_high_water(self):
        d = small_dict(capacity=32, high_water=0.5)
        for i in range(40):
            d.intern(f"s{i}", 0)
        assert d.segment_count >= 2

    def test_single_segment_when_small(self):
        d = small_dict(capacity=1000)
        for i in range(10):
            d.intern(f"t{i}", 0)
        assert d.segment_count == 1

    def test_hot_segment_balances_occupancy(self):
        d = small_dict(capacity=32, high_water=0.5)
        for i in range(60):
            d.intern(f"u{i}", 0)
        occupancies = [o for o in d.segment_occupancies() if o > 0]
        assert len(occupancies) >= 2
        # no live segment should be wildly above the high-water mark
        assert max(occupancies) <= 0.80

    def test_empty_segment_reclaimed(self):
        d = small_dict(capacity=16, high_water=0.5)
        ids = [d.intern(f"v{i}", 0) for i in range(30)]
        allocated = d.stats.segments_allocated
        for ident in ids:
            d.delete(ident)
        assert d.stats.segments_reclaimed >= 1
        assert d.segment_count >= 1  # never reclaims the last one

    def test_minimum_capacity_enforced(self):
        with pytest.raises(ResourceError):
            SegmentedDictionary(segment_capacity=2)


class TestDeletion:
    def test_deleted_entry_is_dead(self):
        d = small_dict()
        ident = d.intern("dead", 0)
        d.delete(ident)
        assert not d.is_live(ident)
        with pytest.raises(ResourceError):
            d.name(ident)

    def test_slot_reuse_after_delete(self):
        d = small_dict(capacity=16)
        ident = d.intern("first", 0)
        d.delete(ident)
        # Re-interning may land on the tombstoned slot; either way the
        # new entry must be live and findable.
        new = d.intern("second", 0)
        assert d.name(new) == "second"

    def test_reintern_after_delete_gets_fresh_identity(self):
        d = small_dict()
        a = d.intern("x", 0)
        d.delete(a)
        b = d.intern("x", 0)
        assert d.name(b) == "x"

    def test_delete_out_of_range(self):
        with pytest.raises(ResourceError):
            small_dict().delete(10 ** 9)


class TestStats:
    def test_counters_move(self):
        d = small_dict()
        d.intern("a", 0)
        d.intern("a", 0)
        snap = d.stats.snapshot()
        assert snap["insertions"] == 1
        assert snap["lookups"] >= 2
        assert snap["probes"] >= 2


@settings(max_examples=50)
@given(st.lists(st.tuples(st.text(min_size=1, max_size=8),
                          st.integers(0, 5)),
                min_size=1, max_size=100))
def test_property_model_equivalence(pairs):
    """The dictionary behaves like a plain Python dict keyed by
    (name, arity)."""
    d = SegmentedDictionary(segment_capacity=32, high_water=0.6)
    model = {}
    for name, arity in pairs:
        ident = d.intern(name, arity)
        if (name, arity) in model:
            assert model[(name, arity)] == ident
        model[(name, arity)] = ident
    for (name, arity), ident in model.items():
        assert d.lookup(name, arity) == ident
        assert d.functor(ident) == (name, arity)
    assert len(d) == len(model)
