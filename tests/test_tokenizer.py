"""Unit tests for the Prolog tokenizer."""

import pytest

from repro.errors import SyntaxError_
from repro.lang.tokenizer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "end"]


class TestBasics:
    def test_empty_input(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "end"

    def test_atom_and_var(self):
        assert kinds("foo Bar _baz") == [
            ("atom", "foo"), ("var", "Bar"), ("var", "_baz")]

    def test_integers(self):
        assert kinds("0 42 123456") == [
            ("int", 0), ("int", 42), ("int", 123456)]

    def test_floats(self):
        assert kinds("3.14 2.0e3 1.5e-2") == [
            ("float", 3.14), ("float", 2000.0), ("float", 0.015)]

    def test_integer_then_end_of_clause(self):
        out = kinds("42.")
        assert out == [("int", 42), ("punct", "end_of_clause")]

    def test_float_requires_digit_after_dot(self):
        # "1.foo" is int 1, end-of-clause is not triggered ('.' + letter)
        out = kinds("1. ")
        assert out[0] == ("int", 1)

    def test_exponent_without_digits_backtracks(self):
        # "2e" is int 2 followed by atom e
        assert kinds("2e x") == [("int", 2), ("atom", "e"), ("atom", "x")]


class TestRadixAndCharCodes:
    def test_hex(self):
        assert kinds("0x1F") == [("int", 31)]

    def test_octal(self):
        assert kinds("0o17") == [("int", 15)]

    def test_binary(self):
        assert kinds("0b101") == [("int", 5)]

    def test_char_code(self):
        assert kinds("0'a") == [("int", ord("a"))]

    def test_char_code_escape(self):
        assert kinds(r"0'\n") == [("int", ord("\n"))]

    def test_empty_radix_raises(self):
        with pytest.raises(SyntaxError_):
            tokenize("0xZ")


class TestQuotedTokens:
    def test_quoted_atom(self):
        assert kinds("'hello world'") == [("atom", "hello world")]

    def test_doubled_quote(self):
        assert kinds("'it''s'") == [("atom", "it's")]

    def test_escapes(self):
        assert kinds(r"'a\nb\tc'") == [("atom", "a\nb\tc")]

    def test_hex_escape(self):
        assert kinds(r"'\x41\'") == [("atom", "A")]

    def test_string_token(self):
        assert kinds('"abc"') == [("string", "abc")]

    def test_unterminated_raises(self):
        with pytest.raises(SyntaxError_):
            tokenize("'oops")

    def test_unknown_escape_raises(self):
        with pytest.raises(SyntaxError_):
            tokenize(r"'\q'")


class TestSymbolicAndPunct:
    def test_symbol_runs_greedy(self):
        assert kinds("a :- b") == [
            ("atom", "a"), ("atom", ":-"), ("atom", "b")]

    def test_double_minus_is_one_atom(self):
        assert kinds("3--4")[1] == ("atom", "--")

    def test_punct(self):
        out = kinds("( ) [ ] { }")
        assert [k for k, _ in out] == ["punct"] * 6

    def test_comma_and_bar_are_atoms(self):
        assert kinds("a,b") == [("atom", "a"), ("atom", ","), ("atom", "b")]
        assert ("atom", "|") in kinds("[a|T]")

    def test_cut_and_semicolon(self):
        assert kinds("! ;") == [("atom", "!"), ("atom", ";")]


class TestLayoutAndComments:
    def test_line_comment(self):
        assert kinds("a % comment\n b") == [("atom", "a"), ("atom", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("atom", "a"), ("atom", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(SyntaxError_):
            tokenize("a /* never ends")

    def test_positions_tracked(self):
        toks = tokenize("foo\n  bar")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_layout_before_flag(self):
        toks = tokenize("a -1 x-1")
        # '-1' after layout is still a negative literal candidate; the
        # tokenizer records whether layout preceded each token.
        assert toks[1].layout_before  # '-' after space

    def test_functor_flag(self):
        toks = tokenize("foo(x) bar (y)")
        assert toks[0].functor          # foo immediately before (
        assert not toks[3].functor      # bar followed by space


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SyntaxError_):
            tokenize("\x00")

    def test_error_carries_position(self):
        try:
            tokenize("abc\n  '")
        except SyntaxError_ as e:
            assert e.line == 2
        else:
            pytest.fail("expected SyntaxError_")
