"""Differential testing: the WAM and the resolution interpreter must
agree on every program (they implement the same language).

This is the strongest correctness check in the suite — the two engines
share no execution code (tagged-cell heap + compiled code vs. surface
terms + clause scanning), so agreement pins down the semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.interpreter import Interpreter
from repro.lang.writer import term_to_text
from repro.wam.machine import Machine

PROGRAMS = [
    # (program, goal, query var)
    ("p(a). p(b). p(c).", "p(X)", "X"),
    ("e(1,2). e(2,3). e(3,4). t(X,Y) :- e(X,Y). "
     "t(X,Y) :- e(X,Z), t(Z,Y).", "t(1, X)", "X"),
    ("f(0, 1) :- !. f(N, F) :- N > 0, M is N - 1, f(M, G), "
     "F is N * G.", "f(6, X)", "X"),
    ("m(X) :- member(X, [q,w,e]).", "m(X)", "X"),
    ("d(X) :- (X = 1 ; X = 2 ; X = 3).", "d(X)", "X"),
    ("g(X) :- between(1, 4, X), 0 =:= X mod 2.", "g(X)", "X"),
    ("h(X) :- \\+ member(X, [a]), X = b.", "h(X)", "X"),
    ("i(L) :- findall(N, between(1, 3, N), L).", "i(X)", "X"),
    ("j(X, Y) :- member(X, [1,2]), member(Y, [a,b]).", "j(X, Y)", "X"),
    ("k(R) :- append(A, B, [1,2]), R = A-B.", "k(X)", "X"),
    ("c1(X) :- member(X, [1,2,3]), X > 1, !.", "c1(X)", "X"),
    ("n(X) :- (member(X, [5,6]) -> true ; X = none).", "n(X)", "X"),
    ("s(R) :- msort([c,a,b,a], R).", "s(X)", "X"),
    ("u(R) :- f(1, 2) =.. R.", "u(X)", "X"),
    ("w(R) :- functor(R, point, 2).", "w(X)", "X"),
    ("o(X) :- once(member(X, [p,q])).", "o(X)", "X"),
    ("fa(yes) :- forall(member(X, [2,4]), 0 =:= X mod 2).",
     "fa(X)", "X"),
    ("sc(X) :- succ(4, X).", "sc(X)", "X"),
    ("gr(X) :- (ground(f(1)) -> X = g ; X = ng).", "gr(X)", "X"),
    ("ac(L) :- atom_codes(hi, L).", "ac(X)", "X"),
    ("al(N) :- atom_length(hello, N).", "al(X)", "X"),
]


@pytest.mark.parametrize("program,goal,var", PROGRAMS)
def test_engines_agree(program, goal, var):
    machine = Machine()
    machine.consult(program)
    wam = [term_to_text(s[var]) for s in machine.solve(goal)]

    interp = Interpreter()
    interp.consult(program)
    ref = [term_to_text(b[var]) for b in interp.solve(goal)]

    assert wam == ref, f"WAM {wam} != interpreter {ref} for {goal}"


# --------------------------------------------------------------- random DBs

_consts = st.sampled_from(["a", "b", "c", "d"])


@settings(max_examples=40, deadline=None)
@given(
    facts=st.lists(st.tuples(_consts, _consts), min_size=1, max_size=12),
    probe=_consts,
)
def test_random_graph_queries_agree(facts, probe):
    program = "".join(f"edge({x}, {y}).\n" for x, y in
                      dict.fromkeys(facts))
    program += """
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- edge(X, Z), Z \\== Y, reach(Z, Y).
    """
    goal = f"findall(Y, edge({probe}, Y), L)"

    machine = Machine()
    machine.consult(program)
    wam = term_to_text(machine.solve_once(goal)["L"])

    interp = Interpreter()
    interp.consult(program)
    ref = term_to_text(interp.solve_once(goal)["L"])
    assert wam == ref


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.integers(-20, 20), min_size=0, max_size=8))
def test_list_programs_agree(items):
    lst = "[" + ",".join(map(str, items)) + "]"
    goals = [
        f"msort({lst}, R)",
        f"reverse({lst}, R)",
        f"length({lst}, R)",
        f"findall(X, member(X, {lst}), R)",
    ]
    machine = Machine()
    interp = Interpreter()
    for goal in goals:
        wam_sol = machine.solve_once(goal)
        ref_sol = interp.solve_once(goal)
        assert term_to_text(wam_sol["R"]) == term_to_text(ref_sol["R"])


@settings(max_examples=30, deadline=None)
@given(a=st.integers(-50, 50), b=st.integers(1, 50))
def test_arithmetic_agrees(a, b):
    goals = [
        f"R is {a} + {b} * 2",
        f"R is {a} mod {b}",
        f"R is {a} // {b}",
        f"R is abs({a}) - max({a}, {b})",
    ]
    machine = Machine()
    interp = Interpreter()
    for goal in goals:
        assert machine.solve_once(goal)["R"] == \
            interp.solve_once(goal)["R"]
