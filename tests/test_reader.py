"""Unit tests for the operator-precedence reader."""

import pytest
from hypothesis import given

from repro.errors import SyntaxError_
from repro.lang.operators import default_operators
from repro.lang.reader import Reader, read_term, read_terms
from repro.lang.writer import term_to_text
from repro.terms import NIL, Atom, Struct, Var, list_to_python

from .conftest import ground_terms


def s(term):
    return term_to_text(term)


class TestPrimary:
    def test_atom(self):
        assert read_term("foo") is Atom("foo")

    def test_numbers(self):
        assert read_term("42") == 42
        assert read_term("3.5") == 3.5

    def test_negative_literal(self):
        assert read_term("-7") == -7
        assert read_term("-2.5") == -2.5

    def test_minus_with_space_is_operator(self):
        t = read_term("- 7")
        assert isinstance(t, Struct) and t.indicator == ("-", 1)

    def test_variable_scoping_within_clause(self):
        t = read_term("f(X, X, Y)")
        assert t.args[0] is t.args[1]
        assert t.args[0] is not t.args[2]

    def test_underscore_always_fresh(self):
        t = read_term("f(_, _)")
        assert t.args[0] is not t.args[1]

    def test_parenthesised(self):
        assert s(read_term("(1 + 2) * 3")) == "(1+2)*3"

    def test_curly(self):
        t = read_term("{a, b}")
        assert t.indicator == ("{}", 1)
        assert read_term("{}") is Atom("{}")

    def test_string_becomes_code_list(self):
        assert list_to_python(read_term('"ab"')) == [97, 98]


class TestCompound:
    def test_canonical(self):
        t = read_term("point(1, 2)")
        assert t == Struct("point", (1, 2))

    def test_nested(self):
        t = read_term("f(g(h(x)))")
        assert t.args[0].args[0].indicator == ("h", 1)

    def test_quoted_functor(self):
        t = read_term("'my func'(1)")
        assert t.name == "my func"

    def test_operator_as_functor(self):
        t = read_term("+(1, 2)")
        assert t == Struct("+", (1, 2))


class TestLists:
    def test_simple(self):
        assert list_to_python(read_term("[1,2,3]")) == [1, 2, 3]

    def test_empty(self):
        assert read_term("[]") is NIL

    def test_tail(self):
        t = read_term("[a|T]")
        assert isinstance(t.args[1], Var)

    def test_nested_sugar(self):
        assert s(read_term("[a|[b|[]]]")) == "[a,b]"

    def test_args_stop_at_comma_priority(self):
        t = read_term("[a , b]")
        assert len(list_to_python(t)) == 2


class TestOperators:
    def test_precedence_arith(self):
        assert s(read_term("1 + 2 * 3")) == "1+2*3"
        t = read_term("1 + 2 * 3")
        assert t.name == "+"

    def test_left_assoc(self):
        t = read_term("1 - 2 - 3")
        assert t.args[0].indicator == ("-", 2)  # (1-2)-3

    def test_right_assoc(self):
        t = read_term("a , b , c")
        assert t.args[1].indicator == (",", 2)  # a,(b,c)

    def test_xfx_not_chainable(self):
        with pytest.raises(SyntaxError_):
            read_term("a = b = c")

    def test_clause_structure(self):
        t = read_term("h :- b1, b2.")
        assert t.indicator == (":-", 2)
        assert t.args[1].indicator == (",", 2)

    def test_if_then_else_grouping(self):
        t = read_term("(c -> t ; e)")
        assert t.indicator == (";", 2)
        assert t.args[0].indicator == ("->", 2)

    def test_prefix_negation(self):
        t = read_term("\\+ foo")
        assert t.indicator == ("\\+", 1)

    def test_custom_operator(self):
        reader = Reader()
        reader.operators.add(700, "xfx", "===")
        t = reader.read_term("a === b")
        assert t.indicator == ("===", 2)

    def test_operator_removal(self):
        table = default_operators()
        table.add(0, "xfx", "is")
        assert table.infix("is") is None

    def test_invalid_operator_spec(self):
        from repro.errors import TypeError_
        with pytest.raises(TypeError_):
            default_operators().add(700, "xfz", "bad")


class TestPrograms:
    def test_multiple_clauses(self):
        clauses = read_terms("a. b(1). c :- a, b(X).")
        assert len(clauses) == 3

    def test_var_scoping_per_clause(self):
        c1, c2 = read_terms("f(X). g(X).")
        assert c1.args[0] is not c2.args[0]

    def test_missing_dot_raises(self):
        with pytest.raises(SyntaxError_):
            read_terms("a b")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SyntaxError_):
            read_term("foo bar")


class TestRoundTrip:
    CASES = [
        "p(X,Y):-q(X),r(Y,f(g(X)))",
        "_G1 is 1+2*3- -4",
        "a=b ; c->d,e",
        "\\+member(X,[a,b])",
        "[a,b|T]",
        "f(-1,a-b)",
        "{x,y}",
        "a:- (b->c ; d)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_fixed_cases(self, text):
        t1 = read_term(text)
        out = term_to_text(t1)
        t2 = read_term(out)
        assert term_to_text(t2) == out

    @given(ground_terms())
    def test_generated_ground_terms(self, term):
        text = term_to_text(term)
        again = read_term(text)
        assert term_to_text(again) == text
