"""repro — a reproduction of Educe* (Bocca, ICDE 1990).

"Compilation of Logic Programs to Implement Very Large Knowledge Base
Systems — A Case Study: Educe*" couples a WAM-based Prolog compiler with
a relational storage engine, storing rules as *compiled code* in the
External Data Base instead of source text.

Quickstart
----------
>>> from repro import EduceStar
>>> kb = EduceStar()
>>> kb.store_relation("parent", [("tom", "bob"), ("bob", "ann")])
>>> kb.store_program("anc(X,Y) :- parent(X,Y). "
...                  "anc(X,Y) :- parent(X,Z), anc(Z,Y).")
>>> [str(s["Y"]) for s in kb.solve("anc(tom, Y)")]
['bob', 'ann']

Layers (bottom-up)
------------------
``repro.lang``        Prolog reader/writer
``repro.dictionary``  segmented closed-hash functor dictionary (§3.3.1)
``repro.wam``         compiler + emulator + GC (§2.1, §3.2, §3.3.2)
``repro.bang``        BANG-style paged multidimensional storage (§2.2, §4)
``repro.edb``         compiled code in secondary storage, pre-unification,
                      the dynamic loader (§3.1, §4)
``repro.relational``  goal-oriented set-at-a-time engine (§2.2)
``repro.engine``      EduceStar (the system) and EduceBaseline (Educe)
``repro.service``     the multi-user kernel: concurrent query service (§3.3)
``repro.workloads``   MVV, Wisconsin, integrity checking (§5)
"""

from .engine.educe_baseline import EduceBaseline
from .engine.interpreter import Interpreter
from .engine.session import EduceStar
from .engine.stats import CostModel, Measurement, measure
from .errors import PrologError, ReproError, ServiceError, StorageError
from .service import QueryService, QueryTicket
from .lang.reader import read_program, read_term
from .lang.writer import term_to_text
from .terms import Atom, Struct, Term, Var
from .wam.machine import Machine, Solution

__version__ = "1.0.0"

__all__ = [
    "EduceStar",
    "EduceBaseline",
    "Machine",
    "Interpreter",
    "Solution",
    "CostModel",
    "Measurement",
    "measure",
    "Atom",
    "Var",
    "Struct",
    "Term",
    "read_term",
    "read_program",
    "term_to_text",
    "QueryService",
    "QueryTicket",
    "ReproError",
    "PrologError",
    "ServiceError",
    "StorageError",
    "__version__",
]
