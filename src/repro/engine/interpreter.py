"""A clause-resolution interpreter over surface terms.

This is the inference engine of the **Educe baseline** (§2 of the
paper): no compilation, structure-walking unification, clause selection
by linear scan.  The paper's claim — "It is not unusual to have
performance increased by several orders of magnitude when moving from an
interpreter to a compiler" — is only measurable if the interpreter is
real, so this one supports the full control repertoire the workloads
need: conjunction, disjunction, if-then-else, negation, cut, arithmetic,
findall and dynamic clauses.

Counters: logical inferences, unification attempts, clause scans — the
work units the cost model prices for the baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import (
    ExistenceError,
    InstantiationError,
    TypeError_,
)
from ..lang.reader import Reader
from ..terms import (
    Atom,
    Struct,
    Term,
    Var,
    compare_terms,
    deref,
    make_list,
    rename_term,
    resolve_term,
)
from ..wam.compiler import split_clause

_CUT = Atom("!")
_TRUE = Atom("true")
_FAIL = Atom("fail")


class Interpreter:
    """Resolution interpreter with a main-memory clause database."""

    def __init__(self, load_library: bool = True):
        self.reader = Reader()
        self.database: Dict[Tuple[str, int], List[Term]] = {}
        # Hook called on unknown predicates; returns a clause list to use
        # for this call only (the Educe EDB trap), or None.
        self.fetch_hook: Optional[Callable] = None
        self.inferences = 0
        self.unifications = 0
        self.clause_scans = 0
        self.asserts = 0
        self.erases = 0
        if load_library:
            from ..wam.prelude import PRELUDE_SOURCE
            self.consult(PRELUDE_SOURCE)

    # ------------------------------------------------------------- database

    def consult(self, text: str) -> None:
        for clause in self.reader.read_terms(text):
            self.assertz(clause)

    def assertz(self, clause: Term) -> None:
        head, _ = split_clause(clause)
        key = _indicator(head)
        self.database.setdefault(key, []).append(clause)
        self.asserts += 1

    def asserta(self, clause: Term) -> None:
        head, _ = split_clause(clause)
        key = _indicator(head)
        self.database.setdefault(key, []).insert(0, clause)
        self.asserts += 1

    def retract_all(self, name: str, arity: int) -> int:
        clauses = self.database.pop((name, arity), [])
        self.erases += len(clauses)
        return len(clauses)

    # ---------------------------------------------------------------- query

    def solve(self, goal, limit: Optional[int] = None) -> Iterator[dict]:
        """Solve a goal (text or term); yields binding dicts."""
        if isinstance(goal, str):
            term, varmap = self.reader.read_term_with_vars(goal)
        else:
            term = goal
            from ..terms import term_variables
            varmap = {v.name: v for v in term_variables(term)}
        count = 0
        trail: List[Var] = []
        mark = len(trail)
        for _ in self._solve(term, trail, [False]):
            yield {
                name: resolve_term(var)
                for name, var in varmap.items()
            }
            count += 1
            if limit is not None and count >= limit:
                break
        _undo(trail, mark)

    def solve_once(self, goal) -> Optional[dict]:
        for bindings in self.solve(goal, limit=1):
            return bindings
        return None

    def count_solutions(self, goal) -> int:
        return sum(1 for _ in self.solve(goal))

    # ------------------------------------------------------------ resolution

    def _solve(self, goal: Term, trail: List[Var],
               cut_parent: List[bool]) -> Iterator[bool]:
        goal = deref(goal)
        self.inferences += 1

        if isinstance(goal, Var):
            raise InstantiationError("call of unbound goal")
        if goal is _TRUE:
            yield True
            return
        if goal is _FAIL or goal is Atom("false"):
            return
        if goal is _CUT:
            yield True
            cut_parent[0] = True
            return

        if isinstance(goal, Struct):
            ind = goal.indicator
            if ind == (",", 2):
                yield from self._solve_conj(
                    goal.args[0], goal.args[1], trail, cut_parent)
                return
            if ind == (";", 2):
                yield from self._solve_disj(goal, trail, cut_parent)
                return
            if ind == ("->", 2):
                yield from self._solve_disj(
                    Struct(";", (goal, _FAIL)), trail, cut_parent)
                return
            if ind in (("\\+", 1), ("not", 1)):
                mark = len(trail)
                for _ in self._solve(goal.args[0], trail, [False]):
                    _undo(trail, mark)
                    return
                _undo(trail, mark)
                yield True
                return
            if ind[0] == "call":
                target = deref(goal.args[0])
                extra = goal.args[1:]
                if extra:
                    target = _extend(target, extra)
                yield from self._solve(target, trail, [False])
                return

        builtin = _BUILTINS.get(_indicator(goal))
        if builtin is not None:
            yield from builtin(self, goal, trail)
            return

        yield from self._call_user(goal, trail)

    def _solve_conj(self, a: Term, b: Term, trail: List[Var],
                    cut_parent: List[bool]) -> Iterator[bool]:
        for _ in self._solve(a, trail, cut_parent):
            yield from self._solve(b, trail, cut_parent)
            if cut_parent[0]:
                return
        # also stop retrying `a` once a cut fired inside it
        return

    def _solve_disj(self, goal: Struct, trail: List[Var],
                    cut_parent: List[bool]) -> Iterator[bool]:
        left = deref(goal.args[0])
        right = goal.args[1]
        if isinstance(left, Struct) and left.indicator == ("->", 2):
            cond, then = left.args
            mark = len(trail)
            for _ in self._solve(cond, trail, [False]):
                yield from self._solve(then, trail, cut_parent)
                _undo(trail, mark)
                return
            _undo(trail, mark)
            yield from self._solve(right, trail, cut_parent)
            return
        mark = len(trail)
        yield from self._solve(left, trail, cut_parent)
        if cut_parent[0]:
            return
        _undo(trail, mark)
        yield from self._solve(right, trail, cut_parent)

    def _call_user(self, goal: Term, trail: List[Var]) -> Iterator[bool]:
        key = _indicator(goal)
        clauses = self.database.get(key)
        transient = False
        if clauses is None and self.fetch_hook is not None:
            clauses = self.fetch_hook(self, key[0], key[1], goal)
            transient = clauses is not None
        if clauses is None:
            raise ExistenceError("procedure", f"{key[0]}/{key[1]}")
        try:
            my_cut = [False]
            for clause in list(clauses):
                self.clause_scans += 1
                if my_cut[0]:
                    break
                mark = len(trail)
                fresh = rename_term(clause)
                head, body = split_clause(fresh)
                if not self._unify(goal, head, trail):
                    _undo(trail, mark)
                    continue
                if not body:
                    yield True
                else:
                    goal_body = body[0]
                    for extra_goal in body[1:]:
                        goal_body = Struct(",", (goal_body, extra_goal))
                    yield from self._solve(goal_body, trail, my_cut)
                _undo(trail, mark)
        finally:
            if transient:
                # The Educe erase step: transient clauses leave memory as
                # soon as the call completes (§2, factor 3).
                self.erases += len(clauses)

    # ----------------------------------------------------------- unification

    def _unify(self, a: Term, b: Term, trail: List[Var]) -> bool:
        self.unifications += 1
        stack = [(a, b)]
        while stack:
            x, y = stack.pop()
            x = deref(x)
            y = deref(y)
            if x is y:
                continue
            if isinstance(x, Var):
                x.ref = y
                trail.append(x)
                continue
            if isinstance(y, Var):
                y.ref = x
                trail.append(y)
                continue
            if isinstance(x, Atom) or isinstance(y, Atom):
                if x is not y:
                    return False
                continue
            if isinstance(x, (int, float)):
                if not isinstance(y, (int, float)) or x != y \
                        or isinstance(x, float) != isinstance(y, float):
                    return False
                continue
            if isinstance(x, Struct) and isinstance(y, Struct):
                if x.name != y.name or x.arity != y.arity:
                    return False
                stack.extend(zip(x.args, y.args))
                continue
            return False
        return True

    def counters(self) -> dict:
        return {
            "inferences": self.inferences,
            "unifications": self.unifications,
            "clause_scans": self.clause_scans,
            "asserts": self.asserts,
            "erases": self.erases,
        }


# ====================================================================
# interpreter built-ins
# ====================================================================

def _indicator(goal: Term) -> Tuple[str, int]:
    goal = deref(goal)
    if isinstance(goal, Atom):
        return (goal.name, 0)
    if isinstance(goal, Struct):
        return (goal.name, goal.arity)
    raise TypeError_("callable", goal)


def _undo(trail: List[Var], mark: int) -> None:
    while len(trail) > mark:
        trail.pop().ref = None


def _extend(goal: Term, extra) -> Term:
    goal = deref(goal)
    if isinstance(goal, Atom):
        return Struct(goal.name, tuple(extra))
    if isinstance(goal, Struct):
        return Struct(goal.name, goal.args + tuple(extra))
    raise TypeError_("callable", goal)


def _eval(term: Term):
    term = deref(term)
    if isinstance(term, bool):
        raise TypeError_("evaluable", term)
    if isinstance(term, (int, float)):
        return term
    if isinstance(term, Var):
        raise InstantiationError("arithmetic")
    if isinstance(term, Struct):
        from ..wam.builtins import _ARITH_FUNCTIONS
        fn = _ARITH_FUNCTIONS.get((term.name, term.arity))
        if fn is None:
            raise TypeError_("evaluable", f"{term.name}/{term.arity}")
        return fn(*[_eval(a) for a in term.args])
    if isinstance(term, Atom):
        from ..wam.builtins import _ARITH_CONSTANTS
        value = _ARITH_CONSTANTS.get(term.name)
        if value is None:
            raise TypeError_("evaluable", f"{term.name}/0")
        return value
    raise TypeError_("evaluable", term)


_BUILTINS: Dict[Tuple[str, int], Callable] = {}


def _ibuiltin(name: str, arity: int):
    def wrap(fn):
        _BUILTINS[(name, arity)] = fn
        return fn
    return wrap


@_ibuiltin("is", 2)
def _bi_is(interp, goal, trail):
    value = _eval(goal.args[1])
    if interp._unify(goal.args[0], value, trail):
        yield True


def _arith_cmp(op):
    def fn(interp, goal, trail):
        if op(_eval(goal.args[0]), _eval(goal.args[1])):
            yield True
    return fn


_ibuiltin("=:=", 2)(_arith_cmp(lambda a, b: a == b))
_ibuiltin("=\\=", 2)(_arith_cmp(lambda a, b: a != b))
_ibuiltin("<", 2)(_arith_cmp(lambda a, b: a < b))
_ibuiltin(">", 2)(_arith_cmp(lambda a, b: a > b))
_ibuiltin("=<", 2)(_arith_cmp(lambda a, b: a <= b))
_ibuiltin(">=", 2)(_arith_cmp(lambda a, b: a >= b))


@_ibuiltin("=", 2)
def _bi_unify(interp, goal, trail):
    mark = len(trail)
    if interp._unify(goal.args[0], goal.args[1], trail):
        yield True
    else:
        _undo(trail, mark)


@_ibuiltin("\\=", 2)
def _bi_nunify(interp, goal, trail):
    mark = len(trail)
    ok = interp._unify(goal.args[0], goal.args[1], trail)
    _undo(trail, mark)
    if not ok:
        yield True


def _cmp_builtin(name, test):
    def fn(interp, goal, trail):
        if test(compare_terms(goal.args[0], goal.args[1])):
            yield True
    _ibuiltin(name, 2)(fn)


_cmp_builtin("==", lambda c: c == 0)
_cmp_builtin("\\==", lambda c: c != 0)
_cmp_builtin("@<", lambda c: c < 0)
_cmp_builtin("@>", lambda c: c > 0)
_cmp_builtin("@=<", lambda c: c <= 0)
_cmp_builtin("@>=", lambda c: c >= 0)


def _type_builtin(name, test):
    def fn(interp, goal, trail):
        if test(deref(goal.args[0])):
            yield True
    _ibuiltin(name, 1)(fn)


_type_builtin("var", lambda t: isinstance(t, Var))
_type_builtin("nonvar", lambda t: not isinstance(t, Var))
_type_builtin("atom", lambda t: isinstance(t, Atom))
_type_builtin("number", lambda t: isinstance(t, (int, float))
              and not isinstance(t, bool))
_type_builtin("integer", lambda t: isinstance(t, int)
              and not isinstance(t, bool))
_type_builtin("float", lambda t: isinstance(t, float))
_type_builtin("atomic", lambda t: isinstance(t, (Atom, int, float)))
_type_builtin("compound", lambda t: isinstance(t, Struct))
_type_builtin("callable", lambda t: isinstance(t, (Atom, Struct)))


@_ibuiltin("functor", 3)
def _bi_functor(interp, goal, trail):
    t = deref(goal.args[0])
    if not isinstance(t, Var):
        if isinstance(t, Struct):
            name, arity = Atom(t.name), t.arity
        elif isinstance(t, Atom):
            name, arity = t, 0
        else:
            name, arity = t, 0
        if interp._unify(goal.args[1], name, trail) and \
                interp._unify(goal.args[2], arity, trail):
            yield True
        return
    name = deref(goal.args[1])
    arity = deref(goal.args[2])
    if isinstance(name, Var) or not isinstance(arity, int):
        raise InstantiationError("functor/3")
    if arity == 0:
        if interp._unify(goal.args[0], name, trail):
            yield True
        return
    if not isinstance(name, Atom):
        raise TypeError_("atom", name)
    built = Struct(name.name, tuple(Var() for _ in range(arity)))
    if interp._unify(goal.args[0], built, trail):
        yield True


@_ibuiltin("arg", 3)
def _bi_arg(interp, goal, trail):
    n = deref(goal.args[0])
    t = deref(goal.args[1])
    if not isinstance(n, int) or not isinstance(t, Struct):
        raise TypeError_("arg/3 arguments", goal)
    if 1 <= n <= t.arity:
        if interp._unify(goal.args[2], t.args[n - 1], trail):
            yield True


@_ibuiltin("=..", 2)
def _bi_univ(interp, goal, trail):
    t = deref(goal.args[0])
    if not isinstance(t, Var):
        if isinstance(t, Struct):
            items = [Atom(t.name)] + list(t.args)
        else:
            items = [t]
        if interp._unify(goal.args[1], make_list(items), trail):
            yield True
        return
    from ..terms import list_to_python
    items = list_to_python(goal.args[1])
    head = deref(items[0])
    if len(items) == 1:
        if interp._unify(goal.args[0], head, trail):
            yield True
        return
    if not isinstance(head, Atom):
        raise TypeError_("atom", head)
    built = Struct(head.name, tuple(items[1:]))
    if interp._unify(goal.args[0], built, trail):
        yield True


@_ibuiltin("copy_term", 2)
def _bi_copy(interp, goal, trail):
    if interp._unify(goal.args[1], rename_term(goal.args[0]), trail):
        yield True


@_ibuiltin("findall", 3)
def _bi_findall(interp, goal, trail):
    template, inner, out = goal.args
    solutions = []
    mark = len(trail)
    for _ in interp._solve(inner, trail, [False]):
        solutions.append(rename_term(resolve_term(template)))
    _undo(trail, mark)
    if interp._unify(out, make_list(solutions), trail):
        yield True


@_ibuiltin("between", 3)
def _bi_between(interp, goal, trail):
    low = deref(goal.args[0])
    high = deref(goal.args[1])
    x = deref(goal.args[2])
    if not isinstance(low, int) or not isinstance(high, int):
        raise InstantiationError("between/3")
    if isinstance(x, int):
        if low <= x <= high:
            yield True
        return
    for v in range(low, high + 1):
        mark = len(trail)
        if interp._unify(goal.args[2], v, trail):
            yield True
        _undo(trail, mark)


@_ibuiltin("assert", 1)
def _bi_assert(interp, goal, trail):
    interp.assertz(rename_term(resolve_term(goal.args[0])))
    yield True


@_ibuiltin("assertz", 1)
def _bi_assertz(interp, goal, trail):
    interp.assertz(rename_term(resolve_term(goal.args[0])))
    yield True


@_ibuiltin("asserta", 1)
def _bi_asserta(interp, goal, trail):
    interp.asserta(rename_term(resolve_term(goal.args[0])))
    yield True


@_ibuiltin("retract", 1)
def _bi_retract(interp, goal, trail):
    pattern = deref(goal.args[0])
    if isinstance(pattern, Struct) and pattern.indicator == (":-", 2):
        head = deref(pattern.args[0])
    else:
        head = pattern
    key = _indicator(head)
    clauses = interp.database.get(key, [])
    for i, clause in enumerate(list(clauses)):
        mark = len(trail)
        fresh = rename_term(clause)
        fresh_head, fresh_body = split_clause(fresh)
        target = fresh_head if not isinstance(pattern, Struct) \
            or pattern.indicator != (":-", 2) else Struct(
                ":-", (fresh_head, _conj_of(fresh_body)))
        if interp._unify(pattern, target, trail):
            clauses.pop(i)
            interp.erases += 1
            yield True
            return
        _undo(trail, mark)


def _conj_of(goals: List[Term]) -> Term:
    if not goals:
        return _TRUE
    out = goals[0]
    for g in goals[1:]:
        out = Struct(",", (out, g))
    return out


@_ibuiltin("length", 2)
def _bi_length(interp, goal, trail):
    from ..terms import is_proper_list, list_to_python
    t = deref(goal.args[0])
    if is_proper_list(t):
        if interp._unify(goal.args[1], len(list_to_python(t)), trail):
            yield True
        return
    n = deref(goal.args[1])
    if isinstance(n, int):
        fresh = make_list([Var() for _ in range(n)])
        if interp._unify(goal.args[0], fresh, trail):
            yield True
        return
    raise InstantiationError("length/2")


@_ibuiltin("msort", 2)
def _bi_msort(interp, goal, trail):
    from ..terms import list_to_python
    items = [resolve_term(t) for t in list_to_python(goal.args[0])]
    import functools
    items.sort(key=functools.cmp_to_key(compare_terms))
    if interp._unify(goal.args[1], make_list(items), trail):
        yield True


@_ibuiltin("sort", 2)
def _bi_sort(interp, goal, trail):
    from ..terms import list_to_python
    items = [resolve_term(t) for t in list_to_python(goal.args[0])]
    import functools
    items.sort(key=functools.cmp_to_key(compare_terms))
    unique: List[Term] = []
    for t in items:
        if not unique or compare_terms(unique[-1], t) != 0:
            unique.append(t)
    if interp._unify(goal.args[1], make_list(unique), trail):
        yield True


@_ibuiltin("once", 1)
def _bi_once(interp, goal, trail):
    for _ in interp._solve(goal.args[0], trail, [False]):
        yield True
        return


@_ibuiltin("forall", 2)
def _bi_forall(interp, goal, trail):
    cond, action = goal.args
    mark = len(trail)
    for _ in interp._solve(cond, trail, [False]):
        ok = False
        for _ in interp._solve(action, trail, [False]):
            ok = True
            break
        if not ok:
            _undo(trail, mark)
            return
    _undo(trail, mark)
    yield True


@_ibuiltin("succ", 2)
def _bi_succ(interp, goal, trail):
    a = deref(goal.args[0])
    b = deref(goal.args[1])
    if isinstance(a, int):
        if a < 0:
            raise TypeError_("not_less_than_zero", a)
        if interp._unify(goal.args[1], a + 1, trail):
            yield True
        return
    if isinstance(b, int):
        if b > 0 and interp._unify(goal.args[0], b - 1, trail):
            yield True
        return
    raise InstantiationError("succ/2")


@_ibuiltin("ground", 1)
def _bi_ground(interp, goal, trail):
    from ..terms import ground as is_ground
    if is_ground(goal.args[0]):
        yield True


@_ibuiltin("atom_codes", 2)
def _bi_atom_codes(interp, goal, trail):
    from ..terms import list_to_python
    t = deref(goal.args[0])
    if isinstance(t, Atom):
        codes = make_list([ord(c) for c in t.name])
        if interp._unify(goal.args[1], codes, trail):
            yield True
        return
    if isinstance(t, (int, float)):
        from ..lang.writer import term_to_text
        codes = make_list([ord(c) for c in term_to_text(t)])
        if interp._unify(goal.args[1], codes, trail):
            yield True
        return
    items = list_to_python(goal.args[1])
    name = "".join(chr(deref(i)) for i in items)
    if interp._unify(goal.args[0], Atom(name), trail):
        yield True


@_ibuiltin("atom_length", 2)
def _bi_atom_length(interp, goal, trail):
    t = deref(goal.args[0])
    if not isinstance(t, Atom):
        raise TypeError_("atom", t)
    if interp._unify(goal.args[1], len(t.name), trail):
        yield True


@_ibuiltin("write", 1)
def _bi_write(interp, goal, trail):
    yield True


@_ibuiltin("nl", 0)
def _bi_nl(interp, goal, trail):
    yield True
