"""The deterministic record-manager interface (paper §2.3, §3.2.1).

§2.3 shows the low-level loop a relational engine runs for
``?- p(a, X)``::

    open rel(Descr, "p");
    set key(Descr, Query params);
    for (first tuple(Descr); more(Descr); next(Descr))
        get tuple(Descr, Tuple);
        unify(Descr, Tuple);
    close rel(Descr);

and §3.2.1 argues the integration should "extend the logic deductive
language with deterministic procedures to interface with the low level
record manager of the relational DBMS" — *deterministic*, so that no
choice point is created per tuple (the `repeat`-based alternative the
paper criticises).

This module provides exactly those predicates on an Educe* session:

=====================  ==============================================
``open_rel(N/A, D)``   open a cursor descriptor on a facts relation
``set_key(D, Tpl)``    constrain the scan (unbound args = wildcards)
``first_tuple(D, T)``  position at the first qualifying tuple (semidet)
``next_tuple(D, T)``   advance (semidet; fails at end)
``more(D)``            does a qualifying tuple remain?
``close_rel(D)``       release the descriptor
``rel_tuple(N/A, T)``  the *non-deterministic* convenience wrapper
                       (a choice point per tuple — what §3.2.1 avoids;
                       provided for comparison and for benchmarks)
=====================  ==============================================

All of these are per-session built-ins: they are installed into the
session's machine by :func:`install_cursor_builtins`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ExistenceError, InstantiationError, TypeError_
from ..wam.compiler import register_builtin_indicator


class _Cursor:
    """One open descriptor: relation + key + a lookahead iterator."""

    __slots__ = ("name", "arity", "relation", "assignment",
                 "iterator", "lookahead", "exhausted")

    def __init__(self, name: str, arity: int, relation):
        self.name = name
        self.arity = arity
        self.relation = relation
        self.assignment: Dict[int, object] = {}
        self.iterator: Optional[Iterator[tuple]] = None
        self.lookahead: Optional[tuple] = None
        self.exhausted = False

    def rewind(self) -> None:
        self.iterator = iter(self.relation.query(self.assignment)
                             if self.assignment
                             else self.relation.scan())
        self.exhausted = False
        self._advance()

    def _advance(self) -> None:
        assert self.iterator is not None
        try:
            self.lookahead = next(self.iterator)
        except StopIteration:
            self.lookahead = None
            self.exhausted = True

    def take(self) -> Optional[tuple]:
        if self.iterator is None:
            self.rewind()
        row = self.lookahead
        if row is not None:
            self._advance()
        return row


class CursorTable:
    """Per-session descriptor registry."""

    def __init__(self, store):
        self.store = store
        self._cursors: Dict[int, _Cursor] = {}
        self._next_id = 1
        self.opens = 0
        self.fetches = 0

    def open(self, name: str, arity: int) -> int:
        stored = self.store.lookup(name, arity)
        if stored is None or stored.mode != "facts":
            raise ExistenceError("relation", f"{name}/{arity}")
        handle = self._next_id
        self._next_id += 1
        self._cursors[handle] = _Cursor(name, arity, stored.relation)
        self.opens += 1
        return handle

    def get(self, handle: int) -> _Cursor:
        cursor = self._cursors.get(handle)
        if cursor is None:
            raise ExistenceError("cursor", str(handle))
        return cursor

    def close(self, handle: int) -> None:
        self._cursors.pop(handle, None)


# --------------------------------------------------------------- helpers

def _descr_handle(m, cell) -> int:
    cell = m.deref_cell(cell)
    if cell[0] == "STR":
        a = cell[1]
        name, arity = m.dictionary.functor(m.heap[a][1])
        if (name, arity) == ("$cursor", 1):
            inner = m.deref_cell(m.heap[a + 1])
            if inner[0] == "INT":
                return inner[1]
    raise TypeError_("cursor descriptor", m.extract(cell))


def _descr_cell(m, handle: int) -> tuple:
    fid = m.dictionary.intern("$cursor", 1)
    a = len(m.heap)
    m.heap.append(("FUN", fid))
    m.heap.append(("INT", handle))
    return ("STR", a)


def _indicator(m, cell) -> Tuple[str, int]:
    cell = m.deref_cell(cell)
    if cell[0] != "STR":
        raise TypeError_("predicate indicator", m.extract(cell))
    a = cell[1]
    if m.dictionary.functor(m.heap[a][1]) != ("/", 2):
        raise TypeError_("predicate indicator", m.extract(cell))
    name_cell = m.deref_cell(m.heap[a + 1])
    arity_cell = m.deref_cell(m.heap[a + 2])
    if name_cell[0] != "CON" or arity_cell[0] != "INT":
        raise InstantiationError("relation indicator")
    return m.dictionary.name(name_cell[1]), arity_cell[1]


def _value_of(m, cell):
    cell = m.deref_cell(cell)
    if cell[0] == "CON":
        return m.dictionary.name(cell[1])
    if cell[0] in ("INT", "FLT"):
        return cell[1]
    return None  # unbound or structured: wildcard


def _row_cells(m, row: tuple) -> List[tuple]:
    out = []
    for value in row:
        if isinstance(value, str):
            out.append(("CON", m.dictionary.intern(value, 0)))
        elif isinstance(value, float):
            out.append(("FLT", value))
        else:
            out.append(("INT", value))
    return out


def _unify_row(m, cell, row: tuple) -> bool:
    cells = _row_cells(m, row)
    target = m.deref_cell(cell)
    if target[0] == "REF":
        fid = m.dictionary.intern("row", len(row))
        a = len(m.heap)
        m.heap.append(("FUN", fid))
        m.heap.extend(cells)
        return m.unify(cell, ("STR", a))
    if target[0] != "STR":
        return False
    a = target[1]
    arity = m.dictionary.arity(m.heap[a][1])
    if arity != len(row):
        return False
    for k, value_cell in enumerate(cells, start=1):
        if not m.unify(m.heap[a + k], value_cell):
            return False
    return True


# ------------------------------------------------------------ the builtins

_CURSOR_INDICATORS = [
    ("open_rel", 2), ("set_key", 2), ("first_tuple", 2),
    ("next_tuple", 2), ("more", 1), ("close_rel", 1), ("rel_tuple", 2),
]

for _name, _arity in _CURSOR_INDICATORS:
    register_builtin_indicator(_name, _arity)


def install_cursor_builtins(machine, table: CursorTable) -> None:
    """Install the descriptor predicates into *machine*."""

    def bi_open_rel(m, args):
        name, arity = _indicator(m, args[1])
        handle = table.open(name, arity)
        return m.unify(args[0], _descr_cell(m, handle))

    def bi_set_key(m, args):
        cursor = table.get(_descr_handle(m, args[0]))
        pattern = m.deref_cell(args[1])
        if pattern[0] != "STR":
            raise TypeError_("key pattern", m.extract(pattern))
        a = pattern[1]
        arity = m.dictionary.arity(m.heap[a][1])
        if arity != cursor.arity:
            raise TypeError_("key pattern arity", m.extract(pattern))
        assignment = {}
        for i in range(arity):
            value = _value_of(m, m.heap[a + 1 + i])
            if value is not None:
                assignment[i] = value
        cursor.assignment = assignment
        cursor.iterator = None
        return True

    def bi_first_tuple(m, args):
        cursor = table.get(_descr_handle(m, args[0]))
        cursor.rewind()
        table.fetches += 1
        row = cursor.take()
        if row is None:
            return False
        return _unify_row(m, args[1], row)

    def bi_next_tuple(m, args):
        cursor = table.get(_descr_handle(m, args[0]))
        table.fetches += 1
        row = cursor.take()
        if row is None:
            return False
        return _unify_row(m, args[1], row)

    def bi_more(m, args):
        cursor = table.get(_descr_handle(m, args[0]))
        if cursor.iterator is None:
            cursor.rewind()
        return cursor.lookahead is not None

    def bi_close_rel(m, args):
        table.close(_descr_handle(m, args[0]))
        return True

    def bi_rel_tuple(m, args):
        """The non-deterministic wrapper: one choice point per tuple —
        the `repeat`-style access §3.2.1 argues against, kept for
        comparison benchmarks."""
        name, arity = _indicator(m, args[0])
        stored = table.store.lookup(name, arity)
        if stored is None or stored.mode != "facts":
            raise ExistenceError("relation", f"{name}/{arity}")
        rows = list(stored.relation.scan())

        def solutions():
            for row in rows:
                mark = len(m.trail)
                if _unify_row(m, args[1], row):
                    yield True
                m._unwind_trail(mark)
        return solutions()

    machine.builtins[("open_rel", 2)] = bi_open_rel
    machine.builtins[("set_key", 2)] = bi_set_key
    machine.builtins[("first_tuple", 2)] = bi_first_tuple
    machine.builtins[("next_tuple", 2)] = bi_next_tuple
    machine.builtins[("more", 1)] = bi_more
    machine.builtins[("close_rel", 1)] = bi_close_rel
    machine.builtins[("rel_tuple", 2)] = bi_rel_tuple
