"""The strongly typed sub-language (paper §3.2.3, abstract).

"A stronger typed language in a fluid combination of strategies of
evaluation are put together in Educe*" — and §3.2.3 notes pre-unification
"is further improved with specific machinery to support a strongly typed
sub-language".

Predicates can be declared with attribute types::

    :- pred employee(int, atom, atom, int).

The declaration is enforced at three points:

* **storage** — facts inserted into a declared relation are checked; the
  relation's BANG schema uses the declared formats (no inference);
* **rule heads** — storing a rule whose head argument can never satisfy
  the declared type is rejected at compile/store time;
* **calls** — a query whose bound argument conflicts with the declared
  type *fails immediately* without touching storage (the typed analogue
  of the WAM's identify-failures-early principle, §2.1).

Types: ``int``, ``real``, ``atom``, ``term`` (any list/structure),
``any``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TypeError_
from ..wam.compiler import register_builtin_indicator

DECLARABLE_TYPES = ("int", "real", "atom", "term", "any")

# summary kind -> compatible declared types
_COMPATIBLE = {
    "int": {"int", "any"},
    "real": {"real", "any"},
    "atom": {"atom", "any"},
    "list": {"term", "any"},
    "struct": {"term", "any"},
    "var": set(DECLARABLE_TYPES),  # an unbound argument fits any type
}


class TypeDeclarations:
    """Per-session registry of ``:- pred`` declarations."""

    def __init__(self) -> None:
        self._decls: Dict[Tuple[str, int], List[str]] = {}
        self.checks = 0
        self.rejections = 0

    def declare(self, name: str, types: Sequence[str]) -> None:
        for t in types:
            if t not in DECLARABLE_TYPES:
                raise TypeError_("declarable type", t)
        self._decls[(name, len(types))] = list(types)

    def lookup(self, name: str, arity: int) -> Optional[List[str]]:
        return self._decls.get((name, arity))

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._decls

    # ------------------------------------------------------------ checking

    def storage_types(self, name: str, arity: int
                      ) -> Optional[List[str]]:
        """Attribute formats for a declared facts relation (``term``/
        ``any`` columns fall back to ``atom`` storage is wrong — they
        are not allowed in facts relations)."""
        decl = self.lookup(name, arity)
        if decl is None:
            return None
        out = []
        for t in decl:
            if t in ("term", "any"):
                raise TypeError_(
                    "atomic type in facts relation", f"{name}/{arity}")
            out.append(t)
        return out

    def check_fact_row(self, name: str, row: tuple) -> None:
        decl = self.lookup(name, len(row))
        if decl is None:
            return
        self.checks += 1
        for value, want in zip(row, decl):
            ok = (
                (want == "int" and isinstance(value, int)
                 and not isinstance(value, bool))
                or (want == "real" and isinstance(value, float))
                or (want == "atom" and isinstance(value, str))
                or want == "any"
            )
            if not ok:
                self.rejections += 1
                raise TypeError_(
                    f"{want} (declared for {name}/{len(row)})", value)

    def check_summaries(self, name: str, arity: int,
                        summaries: Sequence[tuple],
                        reject: bool = True) -> bool:
        """True iff the head-argument summaries can satisfy the
        declaration.  With ``reject=True`` a conflict raises (store
        time); otherwise it returns False (call time → clean failure).
        """
        decl = self.lookup(name, arity)
        if decl is None:
            return True
        self.checks += 1
        for summary, want in zip(summaries, decl):
            if want not in _COMPATIBLE[summary[0]]:
                self.rejections += 1
                if reject:
                    raise TypeError_(
                        f"{want} (declared for {name}/{arity})", summary)
                return False
        return True

    def check_call(self, name: str, arity: int,
                   assignment: Dict[int, tuple]) -> bool:
        """Can a call with these bound-argument summaries succeed?"""
        decl = self.lookup(name, arity)
        if decl is None:
            return True
        self.checks += 1
        for pos, summary in assignment.items():
            if decl[pos] not in _COMPATIBLE[summary[0]]:
                self.rejections += 1
                return False
        return True


# ------------------------------------------------------------- the builtins

register_builtin_indicator("pred", 1)
register_builtin_indicator("current_pred_type", 2)


def install_type_builtins(machine, decls: TypeDeclarations) -> None:
    def bi_pred(m, args):
        cell = m.deref_cell(args[0])
        if cell[0] != "STR":
            raise TypeError_("pred declaration", m.extract(cell))
        a = cell[1]
        name, arity = m.dictionary.functor(m.heap[a][1])
        types = []
        for k in range(1, arity + 1):
            t = m.deref_cell(m.heap[a + k])
            if t[0] != "CON":
                raise TypeError_("type name", m.extract(t))
            types.append(m.dictionary.name(t[1]))
        decls.declare(name, types)
        return True

    def bi_current_pred_type(m, args):
        spec = m.deref_cell(args[0])
        if spec[0] != "STR":
            raise TypeError_("predicate indicator", m.extract(spec))
        a = spec[1]
        if m.dictionary.functor(m.heap[a][1]) != ("/", 2):
            raise TypeError_("predicate indicator", m.extract(spec))
        name_cell = m.deref_cell(m.heap[a + 1])
        arity_cell = m.deref_cell(m.heap[a + 2])
        name = m.dictionary.name(name_cell[1])
        arity = arity_cell[1]
        decl = decls.lookup(name, arity)
        if decl is None:
            return False
        cells = [("CON", m.dictionary.intern(t, 0)) for t in decl]
        tail = ("CON", m._nil_id)
        for c in reversed(cells):
            addr = len(m.heap)
            m.heap.append(c)
            m.heap.append(tail)
            tail = ("LIS", addr)
        return m.unify(args[1], tail)

    machine.builtins[("pred", 1)] = bi_pred
    machine.builtins[("current_pred_type", 2)] = bi_current_pred_type
