"""Counters and the hardware cost model.

The paper's numbers come from a Sun 3/280S — a 25 MHz MC68020 the paper
rates at 4 MIPS — with a Hitachi disc.  Our substrate is a Python
simulator whose wall-clock time is not representative (repro band note),
so every experiment reports **two** figures:

* wall-clock seconds on the machine running the reproduction, and
* *simulated 1990 milliseconds* derived from deterministic work
  counters: WAM instructions, data references, compiled characters,
  page reads/writes.

The conversion constants are explicit and configurable; the diskless
workstation experiment (§5.4) is reproduced exactly by re-pricing the
same counters at 3 MIPS instead of 4.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

SUN_3_280S_MIPS = 4.0   # 25 MHz MC68020 (paper §5.4)
SUN_3_60_MIPS = 3.0     # 20 MHz diskless client (paper §5.4)


@dataclass
class CostModel:
    """Converts work counters into simulated 1990 milliseconds."""

    mips: float = SUN_3_280S_MIPS
    native_per_wam_instr: float = 12.0   # native instrs per WAM instr
    native_per_data_ref: float = 2.0     # memory-system overhead
    native_per_parsed_char: float = 60.0  # lexing/parsing cost (§3.1)
    native_per_compiled_clause: float = 4000.0
    native_per_resolution: float = 40.0  # loader address resolution
    native_per_tuple_op: float = 150.0   # relational-engine row handling
    native_per_inference: float = 600.0  # interpreter LI (baseline engine)
    disc_access_ms: float = 28.0         # avg seek+rotate, 1990 Hitachi
    disc_transfer_ms_per_kb: float = 0.8

    def cpu_breakdown(self, counters: Dict[str, int]) -> Dict[str, float]:
        """CPU milliseconds per cost-model term.

        The term names are part of the observability contract: each one
        is documented in docs/OBSERVABILITY.md next to the counter keys
        it prices (enforced by tests/test_docs.py).
        """
        ms = 1.0 / (self.mips * 1000.0)
        return {
            "wam_instructions": counters.get("instr_count", 0)
            * self.native_per_wam_instr * ms,
            "data_references": counters.get("data_refs", 0)
            * self.native_per_data_ref * ms,
            "parsing": counters.get("parsed_chars", 0)
            * self.native_per_parsed_char * ms,
            "compilation": counters.get("compile_count", 0)
            * self.native_per_compiled_clause * ms,
            "resolution": counters.get("resolutions", 0)
            * self.native_per_resolution * ms,
            "tuple_ops": counters.get("tuple_ops", 0)
            * self.native_per_tuple_op * ms,
            "inference": counters.get("inferences", 0)
            * self.native_per_inference * ms,
            "unification": counters.get("unifications", 0)
            * self.native_per_data_ref * 8 * ms,
        }

    def io_breakdown(self, counters: Dict[str, int]) -> Dict[str, float]:
        """I/O milliseconds per cost-model term (access vs transfer)."""
        accesses = counters.get("reads", 0) + counters.get("writes", 0)
        kb = (counters.get("bytes_read", 0)
              + counters.get("bytes_written", 0)) / 1024.0
        return {
            "disc_access": accesses * self.disc_access_ms,
            "disc_transfer": kb * self.disc_transfer_ms_per_kb,
        }

    def cpu_ms(self, counters: Dict[str, int]) -> float:
        return sum(self.cpu_breakdown(counters).values())

    def io_ms(self, counters: Dict[str, int]) -> float:
        return sum(self.io_breakdown(counters).values())

    def total_ms(self, counters: Dict[str, int]) -> float:
        return self.cpu_ms(counters) + self.io_ms(counters)

    def breakdown(self, counters: Dict[str, int]) -> Dict[str, object]:
        """Full simulated-ms breakdown for a counter delta."""
        cpu = self.cpu_breakdown(counters)
        io = self.io_breakdown(counters)
        cpu_ms = sum(cpu.values())
        io_ms = sum(io.values())
        return {
            "cpu_ms": cpu_ms,
            "io_ms": io_ms,
            "total_ms": cpu_ms + io_ms,
            "cpu": cpu,
            "io": io,
            "mips": self.mips,
        }

    def at_mips(self, mips: float) -> "CostModel":
        """Same model on a different CPU (the diskless-client experiment)."""
        return dataclasses.replace(self, mips=mips)


@dataclass
class Measurement:
    """One experiment run: wall time + merged counters."""

    wall_s: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)

    def simulated_ms(self, model: Optional[CostModel] = None) -> float:
        model = model or CostModel()
        return model.total_ms(self.counters)

    def cpu_ms(self, model: Optional[CostModel] = None) -> float:
        return (model or CostModel()).cpu_ms(self.counters)

    def io_ms(self, model: Optional[CostModel] = None) -> float:
        return (model or CostModel()).io_ms(self.counters)

    def __getitem__(self, key: str) -> int:
        return self.counters.get(key, 0)


def merge_counters(*sources: Dict[str, int]) -> Dict[str, int]:
    """Sum counter dicts key-wise; non-numeric values are skipped.

    Works for float-valued counters too (fractional work units).  The
    :class:`~repro.obs.registry.MetricsRegistry` snapshot API subsumes
    this helper; it is kept for direct use by benchmarks and tests.
    """
    out: Dict[str, int] = {}
    for source in sources:
        for key, value in source.items():
            if isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
    return out


def diff_counters(after: Dict[str, int], before: Dict[str, int],
                  clamp_resets: bool = False) -> Dict[str, int]:
    """Key-wise ``after - before``.

    Edge cases (pinned by tests/test_stats.py):

    * a key missing from *before* is treated as 0 there;
    * a key that disappeared (present only in *before*) is omitted —
      its source is gone, so no delta is attributable;
    * a counter that *shrank* means it was reset between the snapshots.
      By default the raw (negative) difference is returned, preserving
      historical behaviour for gauges; with ``clamp_resets=True`` the
      post-reset accumulation (the *after* value) is reported instead,
      which is the right reading for monotonic counters.  The
      gauge-aware variant lives on ``MetricsRegistry.diff``.
    """
    out = {}
    for key, value in after.items():
        if isinstance(value, (int, float)):
            delta = value - before.get(key, 0)
            if clamp_resets and delta < 0:
                delta = value
            out[key] = delta
    return out


@contextmanager
def measure(*counter_sources) -> Iterator[Measurement]:
    """Collect wall time + counter deltas across a block.

    Each *counter_source* is an object with a ``counters()`` or
    ``io_counters()`` method (machines, pagers, loaders, baselines).
    """
    def snap():
        merged: Dict[str, int] = {}
        for src in counter_sources:
            if hasattr(src, "counters"):
                merged = merge_counters(merged, src.counters())
            if hasattr(src, "io_counters"):
                merged = merge_counters(merged, src.io_counters())
        return merged

    before = snap()
    result = Measurement()
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.wall_s = time.perf_counter() - start
        result.counters = diff_counters(snap(), before)
