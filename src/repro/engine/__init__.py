"""Top-level engines.

* :class:`~repro.engine.session.EduceStar` — the paper's system: a WAM
  with compiled code in the EDB, pre-unification, dynamic loading.
* :class:`~repro.engine.educe_baseline.EduceBaseline` — the predecessor
  (Educe): an interpreter with rules stored in source form, paying the
  retrieve → parse → assert → execute → erase cycle of §2.
* :mod:`~repro.engine.stats` — counter collection and the 1990-hardware
  cost model used to report simulated milliseconds.
"""

from .educe_baseline import EduceBaseline
from .interpreter import Interpreter
from .session import EduceStar
from .stats import CostModel, Measurement, measure

__all__ = [
    "EduceStar",
    "EduceBaseline",
    "Interpreter",
    "CostModel",
    "Measurement",
    "measure",
]
