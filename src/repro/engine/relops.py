"""Relational operators of Educe* (paper §4 end, reference [9]).

"This allows for the processing of such relations by means of
conventional relational operations, if so required by the programmer.
For this, see the relational operators of Educe* in [9]."  And §1: the
language offers "manipulation of large data sets ... as extensions of
the language Prolog".

These built-ins run the *goal-oriented* engine (set-at-a-time algebra
with access-path planning) over facts relations and materialise results
as new EDB relations — the programmer-visible form of the dual
evaluation strategy, freely mixable with ordinary term-at-a-time
resolution:

==========================================  ============================
``db_select(R/A, Pattern, Out)``            σ: keep tuples matching the
                                            pattern (unbound = wildcard)
``db_project(R/A, Cols, Out)``              π (1-based columns, distinct)
``db_join(R1/A1, C1, R2/A2, C2, Out)``      ⋈ equi-join (planner picks
                                            hash vs index join)
``db_union(R1/A, R2/A, Out)``               ∪ (set semantics)
``db_diff(R1/A, R2/A, Out)``                −
``db_count(R/A, N)``                        cardinality
``db_drop(R/A)``                            remove a derived relation
==========================================  ============================

``Out`` is the atom naming the derived relation; it becomes an ordinary
EDB facts relation immediately queryable by the inference engine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import CatalogError, ExistenceError, TypeError_
from ..relational.algebra import Distinct, Project, Scan, execute
from ..relational.planner import best_access_path, estimate_rows, plan_join
from ..wam.compiler import register_builtin_indicator

_RELOP_INDICATORS = [
    ("db_select", 3), ("db_project", 3), ("db_join", 5),
    ("db_union", 3), ("db_diff", 3), ("db_count", 2), ("db_drop", 1),
]

for _name, _arity in _RELOP_INDICATORS:
    register_builtin_indicator(_name, _arity)


def _indicator(m, cell) -> Tuple[str, int]:
    cell = m.deref_cell(cell)
    if cell[0] != "STR":
        raise TypeError_("relation indicator", m.extract(cell))
    a = cell[1]
    if m.dictionary.functor(m.heap[a][1]) != ("/", 2):
        raise TypeError_("relation indicator", m.extract(cell))
    name = m.deref_cell(m.heap[a + 1])
    arity = m.deref_cell(m.heap[a + 2])
    if name[0] != "CON" or arity[0] != "INT":
        raise TypeError_("relation indicator", m.extract(cell))
    return m.dictionary.name(name[1]), arity[1]


def _atom_name(m, cell) -> str:
    cell = m.deref_cell(cell)
    if cell[0] != "CON":
        raise TypeError_("atom", m.extract(cell))
    return m.dictionary.name(cell[1])


def _int_list(m, cell) -> List[int]:
    out = []
    cell = m.deref_cell(cell)
    while cell[0] == "LIS":
        item = m.deref_cell(m.heap[cell[1]])
        if item[0] != "INT":
            raise TypeError_("column index", m.extract(item))
        out.append(item[1])
        cell = m.deref_cell(m.heap[cell[1] + 1])
    if not (cell[0] == "CON" and cell[1] == m._nil_id):
        raise TypeError_("column list", m.extract(cell))
    return out


class RelationalOps:
    """Per-session implementation of the db_* predicates."""

    def __init__(self, session):
        self.session = session
        self.materialised = 0

    # ------------------------------------------------------------ plumbing

    def _relation(self, m, cell):
        name, arity = _indicator(m, cell)
        stored = self.session.store.lookup(name, arity)
        if stored is None or stored.mode != "facts":
            raise ExistenceError("relation", f"{name}/{arity}")
        return stored.relation

    def _materialise(self, name: str, rows: List[tuple],
                     arity: int) -> None:
        # Drop-if-existing + store happen in one exclusive write-lock
        # section (derived relations are replaceable); from a service
        # worker holding the shared read lock this raises
        # LockOrderError before mutating anything — route db_* writers
        # through QueryService.execute_admin instead.
        self.session.store.materialise_facts(name, arity, rows)
        self.session.loader.invalidate(name, arity)
        self.materialised += 1

    def _pattern_assignment(self, m, cell, arity: int) -> Dict[int, object]:
        cell = m.deref_cell(cell)
        if cell[0] == "CON" and cell[1] == m._nil_id:
            return {}
        if cell[0] != "STR":
            raise TypeError_("selection pattern", m.extract(cell))
        a = cell[1]
        pat_arity = m.dictionary.arity(m.heap[a][1])
        if pat_arity != arity:
            raise TypeError_("pattern arity", m.extract(cell))
        out: Dict[int, object] = {}
        for i in range(arity):
            v = m.deref_cell(m.heap[a + 1 + i])
            if v[0] == "CON":
                out[i] = m.dictionary.name(v[1])
            elif v[0] in ("INT", "FLT"):
                out[i] = v[1]
        return out

    # ------------------------------------------------------------ operators

    def db_select(self, m, args):
        relation = self._relation(m, args[0])
        assignment = self._pattern_assignment(m, args[1], relation.arity)
        rows = (execute(best_access_path(relation, assignment),
                        tracer=self.session.tracer)
                if not assignment else list(relation.query(assignment)))
        self._materialise(_atom_name(m, args[2]), rows, relation.arity)
        return True

    def db_project(self, m, args):
        relation = self._relation(m, args[0])
        cols = [c - 1 for c in _int_list(m, args[1])]
        for c in cols:
            if not 0 <= c < relation.arity:
                raise CatalogError(f"column {c + 1} out of range")
        rows = execute(Distinct(Project(Scan(relation), cols)),
                       tracer=self.session.tracer)
        self._materialise(_atom_name(m, args[2]), rows, len(cols))
        return True

    def db_join(self, m, args):
        left = self._relation(m, args[0])
        c1 = m.deref_cell(args[1])
        right = self._relation(m, args[2])
        c2 = m.deref_cell(args[3])
        if c1[0] != "INT" or c2[0] != "INT":
            raise TypeError_("join column", "db_join/5")
        outer = best_access_path(left, {})
        plan = plan_join(outer, estimate_rows(left, {}), right,
                         c1[1] - 1, c2[1] - 1)
        rows = execute(plan, tracer=self.session.tracer)
        self._materialise(_atom_name(m, args[4]), rows,
                          left.arity + right.arity)
        return True

    def db_union(self, m, args):
        left = self._relation(m, args[0])
        right = self._relation(m, args[1])
        if left.arity != right.arity:
            raise CatalogError("union arity mismatch")
        rows = list(dict.fromkeys(
            list(left.scan()) + list(right.scan())))
        self._materialise(_atom_name(m, args[2]), rows, left.arity)
        return True

    def db_diff(self, m, args):
        left = self._relation(m, args[0])
        right = self._relation(m, args[1])
        if left.arity != right.arity:
            raise CatalogError("difference arity mismatch")
        exclude = set(right.scan())
        rows = [r for r in left.scan() if r not in exclude]
        self._materialise(_atom_name(m, args[2]), rows, left.arity)
        return True

    def db_count(self, m, args):
        relation = self._relation(m, args[0])
        return m.unify(args[1], ("INT", len(relation)))

    def db_drop(self, m, args):
        name, arity = _indicator(m, args[0])
        if not self.session.store.drop_procedure(name, arity):
            return False
        self.session.loader.invalidate(name, arity)
        return True


def install_relop_builtins(machine, ops: RelationalOps) -> None:
    machine.builtins[("db_select", 3)] = ops.db_select
    machine.builtins[("db_project", 3)] = ops.db_project
    machine.builtins[("db_join", 5)] = ops.db_join
    machine.builtins[("db_union", 3)] = ops.db_union
    machine.builtins[("db_diff", 3)] = ops.db_diff
    machine.builtins[("db_count", 2)] = ops.db_count
    machine.builtins[("db_drop", 1)] = ops.db_drop
