"""EduceStar — the paper's system, assembled.

One session couples:

* a :class:`~repro.wam.machine.Machine` (compiler + emulator + GC),
* an :class:`~repro.edb.store.ExternalStore` (BANG relations, external
  dictionary, compiled clause code),
* a :class:`~repro.edb.loader.DynamicLoader` with a
  :class:`~repro.edb.preunify.PreUnifier`.

The machine's unknown-procedure trap is wired to the loader, so calling
a predicate that lives in the EDB transparently fetches, filters,
resolves and executes its compiled code — the architecture of §3.

Both evaluation strategies of §4 are available and freely mixable:

* **term-oriented** — ordinary Prolog queries through :meth:`solve`;
* **goal-oriented** — :meth:`relation` exposes a stored facts relation
  to the set-at-a-time relational engine (:mod:`repro.relational`).
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..bang.pager import Pager
from ..bang.relation import BangRelation
from ..edb.loader import DynamicLoader
from ..edb.preunify import PreUnifier
from ..edb.store import ExternalStore
from ..obs import MetricsRegistry, QueryProfile, Tracer
from ..terms import Atom, Struct, Term, deref
from ..wam.compiler import split_clause
from ..wam.machine import Machine, Procedure, Solution
from .stats import CostModel, Measurement, measure


class EduceStar:
    """A complete Educe* session."""

    def __init__(self,
                 store: Optional[ExternalStore] = None,
                 pager: Optional[Pager] = None,
                 preunify_depth: str = "full",
                 index: bool = True,
                 verify: str = "structural",
                 gc_enabled: bool = True,
                 gc_threshold: int = 200_000,
                 dictionary_segment: int = 32000,
                 cost_model: Optional[CostModel] = None,
                 datalog: str = "auto",
                 datalog_min_rows: Optional[int] = None,
                 optimize: Optional[str] = None):
        from ..dictionary import SegmentedDictionary
        dictionary = SegmentedDictionary(segment_capacity=dictionary_segment)
        self.machine = Machine(dictionary=dictionary, index=index,
                               gc_enabled=gc_enabled,
                               gc_threshold=gc_threshold,
                               optimize=optimize)
        self.store = store or ExternalStore(pager=pager)
        self.preunifier = PreUnifier(preunify_depth)
        # The loader shares the machine's optimizer: one level knob, one
        # set of wam_opt_* counters per session (docs/OPTIMIZER.md).
        self.loader = DynamicLoader(self.store, self.preunifier,
                                    index=index, verify=verify,
                                    optimizer=self.machine.optimizer)
        self.machine.unknown_handler = self._edb_trap
        # Gate fallbacks (wam_opt.reject) land on the store's flight
        # recorder, next to the WAL/pager events they interleave with.
        self.machine.optimizer.events = self.store.events
        self.cost_model = cost_model or CostModel()
        self.parsed_chars = 0
        self.explain_queries = 0
        self.analyze_queries = 0
        #: sampled WAM profiler, installed by :meth:`enable_profiling`
        self.profiler = None

        # Observability (repro.obs): one registry over every counter
        # source, one tracer shared by every layer.  Tracing is off by
        # default; :meth:`profile` / :meth:`solve`'s ``profile=True``
        # enable it for the extent of one query.
        self.metrics = MetricsRegistry()
        self.metrics.attach(self)   # counters() + io_counters()
        self.tracer = Tracer(snapshot=self.metrics.snapshot,
                             diff=self.metrics.diff)
        self.machine.tracer = self.tracer
        self.loader.tracer = self.tracer
        self.preunifier.tracer = self.tracer
        self.store.pager.tracer = self.tracer
        self.last_profile: Optional[QueryProfile] = None

        # The deterministic record-manager interface (§2.3, §3.2.1).
        from .cursors import CursorTable, install_cursor_builtins
        self.cursors = CursorTable(self.store)
        install_cursor_builtins(self.machine, self.cursors)

        # The strongly typed sub-language (§3.2.3).
        from .types import TypeDeclarations, install_type_builtins
        self.types = TypeDeclarations()
        install_type_builtins(self.machine, self.types)

        # The relational operators of Educe* (§4, [9]).
        from .relops import RelationalOps, install_relop_builtins
        self.relops = RelationalOps(self)
        install_relop_builtins(self.machine, self.relops)

        # Recursive set-at-a-time evaluation (ROADMAP item 4,
        # docs/DATALOG.md): solve() consults the strategy planner and
        # routes evaluable recursive goals through the semi-naive
        # bottom-up engine instead of the WAM.
        from ..relational.datalog import DEFAULT_MIN_ROWS, DatalogEngine
        self.datalog = DatalogEngine(
            self.store, self.machine.reader, tracer=self.tracer,
            mode=datalog,
            min_rows=(DEFAULT_MIN_ROWS if datalog_min_rows is None
                      else datalog_min_rows))
        # Whole-program analysis (docs/ANALYSIS.md): cached report +
        # counters; the Datalog planner folds inferred classes into its
        # decisions once :meth:`global_analysis` has run.
        self._global_report = None
        self._global_key = None
        self.global_runs = 0
        self.datalog.modes_provider = self._datalog_modes

    # ------------------------------------------------------------ population

    def consult(self, text: str) -> None:
        """Compile a program into main memory."""
        self.parsed_chars += len(text)
        self.machine.consult(text)

    def store_program(self, text: str) -> List[Tuple[str, int]]:
        """Compile a program and store it in the EDB as relative code.

        Returns the affected procedure indicators (the service uses
        them to broadcast per-procedure cache invalidation)."""
        self.parsed_chars += len(text)
        clauses = list(self.machine.reader.read_terms(text))
        return self.store_clauses(clauses)

    def store_clauses(self, clauses: List[Term]) -> List[Tuple[str, int]]:
        from ..edb.store import summarize_arg
        grouped: Dict[Tuple[str, int], List[Term]] = {}
        order: List[Tuple[str, int]] = []
        for clause in clauses:
            head, _ = split_clause(clause)
            ind = (head.name,
                   head.arity if isinstance(head, Struct) else 0)
            if ind not in grouped:
                grouped[ind] = []
                order.append(ind)
            grouped[ind].append(clause)
            if isinstance(head, Struct) and ind in self.types:
                # Store-time type checking of rule heads (§3.2.3).
                self.types.check_summaries(
                    ind[0], ind[1],
                    [summarize_arg(a) for a in head.args])
        for name, arity in order:
            self.store.store_rules(name, arity, grouped[(name, arity)],
                                   self.machine.ctx)
        for name, arity in order:
            self.loader.invalidate(name, arity)
        return order

    def store_relation(self, name: str, rows: List[tuple],
                       types: Optional[List[str]] = None,
                       key_dims: Optional[List[int]] = None) -> None:
        """Store an ordinary relation in the EDB (facts mode).

        ``key_dims`` restricts the clustered index to the named attribute
        positions (default: all attributes).  A prior ``:- pred``
        declaration supplies the attribute formats and every row is
        checked against it (§3.2.3)."""
        if not rows:
            raise ValueError("empty relation")
        arity = len(rows[0])
        if types is None and (name, arity) in self.types:
            types = self.types.storage_types(name, arity)
        if (name, arity) in self.types:
            for row in rows:
                self.types.check_fact_row(name, row)
        self.store.store_facts(name, arity, rows, types, key_dims)
        self.loader.invalidate(name, arity)

    def assert_external(self, clause_text: str) -> Tuple[str, int]:
        """Assert a clause into a stored EDB procedure."""
        clause = self.machine.reader.read_term(clause_text)
        head, _ = split_clause(clause)
        arity = head.arity if isinstance(head, Struct) else 0
        self.store.assert_clause(head.name, arity, clause, self.machine.ctx)
        self.loader.invalidate(head.name, arity)
        return (head.name, arity)

    # ----------------------------------------------------------------- query

    def solve(self, goal, limit: Optional[int] = None,
              profile: bool = False) -> Iterator[Solution]:
        """Solve *goal*; yield :class:`Solution` objects.

        With ``profile=True``, tracing is enabled for this query and a
        :class:`~repro.obs.profile.QueryProfile` (span tree + counter
        deltas + simulated-ms breakdown) is stored in
        :attr:`last_profile` once the solution iterator is exhausted or
        closed.  Use :meth:`profile` to run to completion and get the
        profile back directly.
        """
        if isinstance(goal, str):
            self.parsed_chars += len(goal)
        if not profile:
            return self._solve_routed(goal, limit)
        return self._solve_profiled(goal, limit)

    def _solve_routed(self, goal,
                      limit: Optional[int]) -> Iterator[Solution]:
        """The dual-strategy dispatch of §4: the Datalog engine answers
        evaluable recursive goals bottom-up; everything else (and every
        goal it declines) runs on the WAM."""
        routed = self.datalog.route(goal, limit=limit)
        if routed is not None:
            return iter(routed)
        return self.machine.solve(goal, limit=limit)

    def _solve_profiled(self, goal,
                        limit: Optional[int]) -> Iterator[Solution]:
        was_enabled = self.tracer.enabled
        self.tracer.enabled = True
        before = self.metrics.snapshot()
        start = time.perf_counter()
        solutions = 0
        try:
            for solution in self._solve_routed(goal, limit):
                solutions += 1
                yield solution
        finally:
            wall_s = time.perf_counter() - start
            counters = self.metrics.diff(self.metrics.snapshot(), before)
            roots = self.tracer.take_roots()
            self.tracer.enabled = was_enabled
            self.last_profile = QueryProfile(
                goal=goal if isinstance(goal, str) else str(goal),
                counters=counters,
                root=roots[-1] if roots else None,
                solutions=solutions,
                wall_s=wall_s,
                cost_model=self.cost_model,
                trace_id=self.tracer.trace_id)

    def profile(self, goal, limit: Optional[int] = None) -> QueryProfile:
        """Run *goal* to completion under tracing; return its profile."""
        for _ in self.solve(goal, limit=limit, profile=True):
            pass
        assert self.last_profile is not None
        return self.last_profile

    # --------------------------------------------------- EXPLAIN / ANALYZE

    def explain(self, goal) -> "ExplainPlan":
        """EXPLAIN *goal* without running it (docs/OBSERVABILITY.md).

        The plan tree names the strategy the planner would pick and why
        (with its cost inputs), the magic-set adornment and evaluable
        strata/rules for a bottom-up goal, or the procedure's compiled
        code shape (fusions, ``switch_on_arg`` guards, choice
        instructions) for a top-down one, plus the session's optimizer
        state.  Nothing is evaluated and no EDB pages move beyond the
        planner's own row-count lookups.
        """
        from ..obs.explain import ExplainPlan, PlanNode
        self.explain_queries += 1
        label = goal if isinstance(goal, str) else str(goal)
        root = PlanNode("query", label)
        decision = self.datalog.explain_plan(goal)
        if decision is not None:
            root.attrs["strategy"] = decision.attrs.get("strategy")
            root.attrs["reason"] = decision.attrs.get("reason")
            root.add(decision)
            if decision.attrs.get("strategy") != "bottomup":
                self._explain_procedure(root, goal)
        else:
            root.attrs["strategy"] = "topdown"
            root.attrs["reason"] = ("not a stored rules procedure "
                                    "(WAM top-down)")
            self._explain_procedure(root, goal)
        root.add(self._optimizer_node())
        return ExplainPlan(goal=label, mode="explain", root=root)

    def analyze(self, goal, limit: Optional[int] = None) -> "ExplainPlan":
        """EXPLAIN *goal*, then run it and attach measurements.

        The plan gains ``actual`` entries: answers, wall time, counter
        deltas, the strategy that *executed* (cross-checkable against
        the plan's prediction), and — when the fixpoint engine ran —
        per-pass delta row counts on each stratum/rule node, whose sum
        equals the fixpoint's total derived rows.
        """
        from ..obs.explain import attach_fixpoint
        plan = self.explain(goal)
        plan.mode = "analyze"
        self.analyze_queries += 1
        before = self.metrics.snapshot()
        start = time.perf_counter()
        answers = sum(1 for _ in self.solve(goal, limit=limit))
        wall_ms = (time.perf_counter() - start) * 1000.0
        delta = self.metrics.diff(self.metrics.snapshot(), before)
        executed = ("bottomup" if delta.get("datalog_bottomup")
                    else "topdown")
        actual = plan.root.actual
        actual["executed"] = executed
        actual["answers"] = answers
        actual["wall_ms"] = round(wall_ms, 3)
        for key in ("instr_count", "data_refs", "edb_fetches",
                    "cache_hits", "pages_read", "datalog_iterations",
                    "datalog_facts_derived", "datalog_magic_facts",
                    "datalog_edb_rows"):
            if delta.get(key):
                actual[key] = delta[key]
        if executed == "bottomup" and self.datalog.last_stats is not None:
            stats = self.datalog.last_stats
            attach_fixpoint(plan, stats.passes, stats.facts)
        return plan

    def _goal_indicator(self, goal) -> Optional[Tuple[str, int]]:
        if isinstance(goal, str):
            try:
                term = self.machine.reader.read_term(goal)
            except Exception:
                return None
        else:
            term = goal
        term = deref(term)
        if isinstance(term, Atom):
            return (term.name, 0)
        if isinstance(term, Struct):
            return term.indicator
        return None

    def _explain_procedure(self, root, goal) -> None:
        """Add the top-down ``procedure`` node: where the goal's
        predicate lives (main memory vs EDB) and the shape of the
        compiled code the WAM would execute, including every block the
        loader currently caches for it (one per call pattern/level)."""
        from ..obs.explain import PlanNode, code_shape
        ind = self._goal_indicator(goal)
        if ind is None:
            root.add(PlanNode("procedure", "?",
                              note="goal shape not a single predicate "
                                   "call"))
            return
        name, arity = ind
        pnode = PlanNode("procedure", f"{name}/{arity}")
        proc = self.machine.procedure(name, arity)
        stored = self.store.lookup(name, arity)
        if proc is not None and proc.kind != "external":
            pnode.attrs["source"] = "main-memory"
            pnode.attrs["kind"] = proc.kind
            pnode.attrs["clauses"] = len(proc.clauses)
            if proc.code:
                pnode.attrs.update(code_shape(proc.code))
        elif stored is not None:
            pnode.attrs["source"] = "edb"
            pnode.attrs["mode"] = stored.mode
            pnode.attrs["version"] = stored.version
            if stored.mode == "facts":
                pnode.attrs["rows"] = len(stored.relation)
            for key, code in self.loader.cached_blocks(name, arity):
                (_n, _a, version, pattern, depth, opt_level,
                 _modes_epoch) = key
                # The pattern is the pre-unifier's bound-argument
                # summary map; "free" means every argument was unbound.
                label = ",".join(f"{pos}:{summary[0]}"
                                 for pos, summary in pattern) or "free"
                pnode.add(PlanNode(
                    "cached_block", label,
                    version=version, depth=depth, opt_level=opt_level,
                    **code_shape(code)))
        elif proc is not None:
            pnode.attrs["source"] = "builtin"
            pnode.attrs["kind"] = proc.kind
        else:
            pnode.attrs["source"] = "undefined"
        # Inferred mode/determinism annotations, when a whole-program
        # analysis has run this session (docs/OBSERVABILITY.md).
        if self._global_report is not None:
            info = self._global_report.infos.get((name, arity))
            if info is not None:
                from ..analysis.global_ import mode_string
                if info.call_modes is not None:
                    pnode.attrs["call_modes"] = mode_string(
                        info.call_modes)
                if info.success_modes is not None:
                    pnode.attrs["success_modes"] = mode_string(
                        info.success_modes)
                if info.determinism is not None:
                    pnode.attrs["determinism"] = info.determinism
        root.add(pnode)

    def _optimizer_node(self):
        from ..obs.explain import PlanNode
        opt = self.machine.optimizer
        node = PlanNode("optimizer", opt.level, **opt.counters())
        if opt.last_reject is not None:
            procedure, rule, offset = opt.last_reject
            node.attrs["last_reject"] = f"{procedure}:{rule}@{offset}"
        return node

    # ------------------------------------------------------------ profiling

    def enable_profiling(self, interval: Optional[int] = None):
        """Install (if needed) and enable the sampled WAM profiler.

        Samples every *interval* executed instructions (default
        :data:`~repro.obs.profiler.DEFAULT_INTERVAL`); attribution
        accumulates across queries until :meth:`disable_profiling` or
        ``profiler.reset()``.  Returns the profiler.
        """
        from ..obs.profiler import DEFAULT_INTERVAL, WamProfiler
        if self.profiler is None:
            self.profiler = WamProfiler(
                interval=interval or DEFAULT_INTERVAL)
            self.profiler.install(self.machine)
        elif interval is not None:
            self.profiler.interval = int(interval)
        self.profiler.enable()
        return self.profiler

    def disable_profiling(self) -> None:
        """Stop sampling; accumulated attribution stays readable."""
        if self.profiler is not None:
            self.profiler.disable()

    def solve_once(self, goal) -> Optional[Solution]:
        if isinstance(goal, str):
            self.parsed_chars += len(goal)
        return self.machine.solve_once(goal)

    def count_solutions(self, goal) -> int:
        return sum(1 for _ in self.solve(goal))

    # -------------------------------------------------- relational interface

    def relation(self, name: str, arity: int) -> BangRelation:
        """Goal-oriented access to a stored facts relation (§4)."""
        return self.store.relation_of(name, arity)

    # ------------------------------------------------------------ persistence

    def save(self, path: str) -> None:
        """Persist this session's EDB (see ExternalStore.save)."""
        self.store.save(path)

    @classmethod
    def open(cls, path: str, faults=None, **kwargs) -> "EduceStar":
        """A fresh session over a previously saved EDB.

        Runs crash recovery (WAL replay + page verification); the
        outcome is on ``session.store.recovery``.  ``faults`` optionally
        arms a :class:`~repro.bang.faults.FaultInjector` on the opened
        store's I/O paths (tests).
        """
        store = ExternalStore.open(path, create=False, faults=faults)
        return cls(store=store, **kwargs)

    @classmethod
    def create(cls, path: str, faults=None, **kwargs) -> "EduceStar":
        """A durable file-backed session: pages in ``path``'s sidecar
        file, mutations write-ahead logged, checkpoint on :meth:`save`.
        Opens an existing EDB at *path* if one is already there."""
        store = ExternalStore.open(path, create=True, faults=faults)
        return cls(store=store, **kwargs)

    # ----------------------------------------------------------- EDB wiring

    def _edb_trap(self, machine: Machine, name: str,
                  arity: int) -> Optional[Procedure]:
        """Unknown-procedure hook: route the call to the EDB."""
        if self.store.lookup(name, arity) is None:
            return None

        def fetch(m, proc):
            # Call-time type check (§3.2.3): a bound argument that
            # conflicts with the declaration fails without storage work.
            if (proc.name, proc.arity) in self.types:
                summaries = self.preunifier.summaries_from_registers(
                    m, proc.arity)
                if not self.types.check_call(proc.name, proc.arity,
                                             summaries):
                    return None
            return self.loader.procedure_code(m, proc.name, proc.arity)

        return machine.define_external(name, arity, fetch=fetch)

    # ------------------------------------------------------- optimization

    @property
    def optimize(self) -> str:
        """The session's active optimization level (docs/OPTIMIZER.md)."""
        return self.machine.optimizer.level

    def set_optimize(self, level: str) -> None:
        """Change the optimization level at runtime (the REPL's
        ``:optimize``).  Main-memory procedures are rebuilt immediately;
        EDB-backed blocks rebuild on next fetch (the loader cache is
        keyed by level, so stale-level blocks are unreachable)."""
        self.machine.set_optimize(level)

    # ------------------------------------------- whole-program analysis

    def global_analysis(self, refresh: bool = False):
        """The whole-program analysis report over everything this
        session can execute (docs/ANALYSIS.md): main-memory procedures,
        EDB-stored rules, facts relations.  Cached until the program
        changes (a consult, a store mutation); ``refresh=True`` forces
        a re-run."""
        from ..analysis.global_ import (analyze_program,
                                        program_from_session)
        key = (self.machine.compile_count, self.store.mutation_epoch,
               self.store.datalog_rules.epoch)
        if (not refresh and self._global_report is not None
                and key == self._global_key):
            return self._global_report
        self._global_report = analyze_program(
            program_from_session(self))
        self._global_key = key
        self.global_runs += 1
        return self._global_report

    def apply_global_modes(self, refresh: bool = False):
        """Run (or reuse) the whole-program analysis and install its
        bound-argument map into the optimizer: main-memory blocks are
        rebuilt immediately, loader-cached blocks refresh on next fetch
        (``modes_epoch`` rides in the cache key).  Returns the report.

        The installed facts are profitability hints only — the
        generalized guards are observationally equivalent for every
        call pattern, and every rebuilt block still passes the full
        verify + D301/D302 gate (docs/OPTIMIZER.md)."""
        report = self.global_analysis(refresh=refresh)
        self.machine.optimizer.set_global_modes(report.bound_args())
        self.machine.rebuild_blocks()
        return report

    def clear_global_modes(self) -> None:
        """Remove installed whole-program facts and rebuild."""
        self.machine.optimizer.set_global_modes({})
        self.machine.rebuild_blocks()

    def _datalog_modes(self, ind: Tuple[str, int]):
        """Modes/determinism for the strategy planner: available only
        once an analysis has run (the planner never triggers one —
        planning stays cheap)."""
        report = self._global_report
        if report is None:
            return None
        info = report.infos.get(ind)
        if info is None:
            return None
        return (info.call_modes, info.determinism)

    # ------------------------------------------------------------- counters

    def local_counters(self) -> dict:
        """Only the counters the session owns itself — what a service
        registry attaches alongside the machine/loader/datalog sources
        it already has, without double counting them."""
        out = {"parsed_chars": self.parsed_chars,
               "explain_queries": self.explain_queries,
               "analyze_queries": self.analyze_queries,
               "analysis_global_runs": self.global_runs}
        if self._global_report is not None:
            out.update(self._global_report.counters())
        return out

    def counters(self) -> dict:
        merged = dict(self.machine.counters())
        merged.update(self.loader.counters())
        merged.update(self.datalog.counters())
        merged.update(self.local_counters())
        return merged

    def io_counters(self) -> dict:
        return self.store.io_counters()

    def histograms(self) -> dict:
        """Duration histograms visible to this session: the shared
        store's lock/latch waits, miss stalls, write-backs and WAL
        appends, plus this session's loader-cache latch waits.
        Same-named histograms (the two latches) merge bucket-wise."""
        from ..obs.registry import merge_histogram_maps
        return merge_histogram_maps(self.store.histograms(),
                                    self.loader.histograms(),
                                    self.datalog.histograms())

    def reset_counters(self) -> None:
        self.machine.reset_counters()
        self.store.reset_counters()
        self.parsed_chars = 0

    def measure(self):
        """Context manager capturing a Measurement across a block."""
        return measure(self)

    def simulated_ms(self, measurement: Measurement) -> float:
        return measurement.simulated_ms(self.cost_model)
