"""EduceStar — the paper's system, assembled.

One session couples:

* a :class:`~repro.wam.machine.Machine` (compiler + emulator + GC),
* an :class:`~repro.edb.store.ExternalStore` (BANG relations, external
  dictionary, compiled clause code),
* a :class:`~repro.edb.loader.DynamicLoader` with a
  :class:`~repro.edb.preunify.PreUnifier`.

The machine's unknown-procedure trap is wired to the loader, so calling
a predicate that lives in the EDB transparently fetches, filters,
resolves and executes its compiled code — the architecture of §3.

Both evaluation strategies of §4 are available and freely mixable:

* **term-oriented** — ordinary Prolog queries through :meth:`solve`;
* **goal-oriented** — :meth:`relation` exposes a stored facts relation
  to the set-at-a-time relational engine (:mod:`repro.relational`).
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..bang.pager import Pager
from ..bang.relation import BangRelation
from ..edb.loader import DynamicLoader
from ..edb.preunify import PreUnifier
from ..edb.store import ExternalStore
from ..obs import MetricsRegistry, QueryProfile, Tracer
from ..terms import Struct, Term
from ..wam.compiler import split_clause
from ..wam.machine import Machine, Procedure, Solution
from .stats import CostModel, Measurement, measure


class EduceStar:
    """A complete Educe* session."""

    def __init__(self,
                 store: Optional[ExternalStore] = None,
                 pager: Optional[Pager] = None,
                 preunify_depth: str = "full",
                 index: bool = True,
                 verify: str = "structural",
                 gc_enabled: bool = True,
                 gc_threshold: int = 200_000,
                 dictionary_segment: int = 32000,
                 cost_model: Optional[CostModel] = None,
                 datalog: str = "auto",
                 datalog_min_rows: Optional[int] = None,
                 optimize: Optional[str] = None):
        from ..dictionary import SegmentedDictionary
        dictionary = SegmentedDictionary(segment_capacity=dictionary_segment)
        self.machine = Machine(dictionary=dictionary, index=index,
                               gc_enabled=gc_enabled,
                               gc_threshold=gc_threshold,
                               optimize=optimize)
        self.store = store or ExternalStore(pager=pager)
        self.preunifier = PreUnifier(preunify_depth)
        # The loader shares the machine's optimizer: one level knob, one
        # set of wam_opt_* counters per session (docs/OPTIMIZER.md).
        self.loader = DynamicLoader(self.store, self.preunifier,
                                    index=index, verify=verify,
                                    optimizer=self.machine.optimizer)
        self.machine.unknown_handler = self._edb_trap
        self.cost_model = cost_model or CostModel()
        self.parsed_chars = 0

        # Observability (repro.obs): one registry over every counter
        # source, one tracer shared by every layer.  Tracing is off by
        # default; :meth:`profile` / :meth:`solve`'s ``profile=True``
        # enable it for the extent of one query.
        self.metrics = MetricsRegistry()
        self.metrics.attach(self)   # counters() + io_counters()
        self.tracer = Tracer(snapshot=self.metrics.snapshot,
                             diff=self.metrics.diff)
        self.machine.tracer = self.tracer
        self.loader.tracer = self.tracer
        self.preunifier.tracer = self.tracer
        self.store.pager.tracer = self.tracer
        self.last_profile: Optional[QueryProfile] = None

        # The deterministic record-manager interface (§2.3, §3.2.1).
        from .cursors import CursorTable, install_cursor_builtins
        self.cursors = CursorTable(self.store)
        install_cursor_builtins(self.machine, self.cursors)

        # The strongly typed sub-language (§3.2.3).
        from .types import TypeDeclarations, install_type_builtins
        self.types = TypeDeclarations()
        install_type_builtins(self.machine, self.types)

        # The relational operators of Educe* (§4, [9]).
        from .relops import RelationalOps, install_relop_builtins
        self.relops = RelationalOps(self)
        install_relop_builtins(self.machine, self.relops)

        # Recursive set-at-a-time evaluation (ROADMAP item 4,
        # docs/DATALOG.md): solve() consults the strategy planner and
        # routes evaluable recursive goals through the semi-naive
        # bottom-up engine instead of the WAM.
        from ..relational.datalog import DEFAULT_MIN_ROWS, DatalogEngine
        self.datalog = DatalogEngine(
            self.store, self.machine.reader, tracer=self.tracer,
            mode=datalog,
            min_rows=(DEFAULT_MIN_ROWS if datalog_min_rows is None
                      else datalog_min_rows))

    # ------------------------------------------------------------ population

    def consult(self, text: str) -> None:
        """Compile a program into main memory."""
        self.parsed_chars += len(text)
        self.machine.consult(text)

    def store_program(self, text: str) -> List[Tuple[str, int]]:
        """Compile a program and store it in the EDB as relative code.

        Returns the affected procedure indicators (the service uses
        them to broadcast per-procedure cache invalidation)."""
        self.parsed_chars += len(text)
        clauses = list(self.machine.reader.read_terms(text))
        return self.store_clauses(clauses)

    def store_clauses(self, clauses: List[Term]) -> List[Tuple[str, int]]:
        from ..edb.store import summarize_arg
        grouped: Dict[Tuple[str, int], List[Term]] = {}
        order: List[Tuple[str, int]] = []
        for clause in clauses:
            head, _ = split_clause(clause)
            ind = (head.name,
                   head.arity if isinstance(head, Struct) else 0)
            if ind not in grouped:
                grouped[ind] = []
                order.append(ind)
            grouped[ind].append(clause)
            if isinstance(head, Struct) and ind in self.types:
                # Store-time type checking of rule heads (§3.2.3).
                self.types.check_summaries(
                    ind[0], ind[1],
                    [summarize_arg(a) for a in head.args])
        for name, arity in order:
            self.store.store_rules(name, arity, grouped[(name, arity)],
                                   self.machine.ctx)
        for name, arity in order:
            self.loader.invalidate(name, arity)
        return order

    def store_relation(self, name: str, rows: List[tuple],
                       types: Optional[List[str]] = None,
                       key_dims: Optional[List[int]] = None) -> None:
        """Store an ordinary relation in the EDB (facts mode).

        ``key_dims`` restricts the clustered index to the named attribute
        positions (default: all attributes).  A prior ``:- pred``
        declaration supplies the attribute formats and every row is
        checked against it (§3.2.3)."""
        if not rows:
            raise ValueError("empty relation")
        arity = len(rows[0])
        if types is None and (name, arity) in self.types:
            types = self.types.storage_types(name, arity)
        if (name, arity) in self.types:
            for row in rows:
                self.types.check_fact_row(name, row)
        self.store.store_facts(name, arity, rows, types, key_dims)
        self.loader.invalidate(name, arity)

    def assert_external(self, clause_text: str) -> Tuple[str, int]:
        """Assert a clause into a stored EDB procedure."""
        clause = self.machine.reader.read_term(clause_text)
        head, _ = split_clause(clause)
        arity = head.arity if isinstance(head, Struct) else 0
        self.store.assert_clause(head.name, arity, clause, self.machine.ctx)
        self.loader.invalidate(head.name, arity)
        return (head.name, arity)

    # ----------------------------------------------------------------- query

    def solve(self, goal, limit: Optional[int] = None,
              profile: bool = False) -> Iterator[Solution]:
        """Solve *goal*; yield :class:`Solution` objects.

        With ``profile=True``, tracing is enabled for this query and a
        :class:`~repro.obs.profile.QueryProfile` (span tree + counter
        deltas + simulated-ms breakdown) is stored in
        :attr:`last_profile` once the solution iterator is exhausted or
        closed.  Use :meth:`profile` to run to completion and get the
        profile back directly.
        """
        if isinstance(goal, str):
            self.parsed_chars += len(goal)
        if not profile:
            return self._solve_routed(goal, limit)
        return self._solve_profiled(goal, limit)

    def _solve_routed(self, goal,
                      limit: Optional[int]) -> Iterator[Solution]:
        """The dual-strategy dispatch of §4: the Datalog engine answers
        evaluable recursive goals bottom-up; everything else (and every
        goal it declines) runs on the WAM."""
        routed = self.datalog.route(goal, limit=limit)
        if routed is not None:
            return iter(routed)
        return self.machine.solve(goal, limit=limit)

    def _solve_profiled(self, goal,
                        limit: Optional[int]) -> Iterator[Solution]:
        was_enabled = self.tracer.enabled
        self.tracer.enabled = True
        before = self.metrics.snapshot()
        start = time.perf_counter()
        solutions = 0
        try:
            for solution in self._solve_routed(goal, limit):
                solutions += 1
                yield solution
        finally:
            wall_s = time.perf_counter() - start
            counters = self.metrics.diff(self.metrics.snapshot(), before)
            roots = self.tracer.take_roots()
            self.tracer.enabled = was_enabled
            self.last_profile = QueryProfile(
                goal=goal if isinstance(goal, str) else str(goal),
                counters=counters,
                root=roots[-1] if roots else None,
                solutions=solutions,
                wall_s=wall_s,
                cost_model=self.cost_model,
                trace_id=self.tracer.trace_id)

    def profile(self, goal, limit: Optional[int] = None) -> QueryProfile:
        """Run *goal* to completion under tracing; return its profile."""
        for _ in self.solve(goal, limit=limit, profile=True):
            pass
        assert self.last_profile is not None
        return self.last_profile

    def solve_once(self, goal) -> Optional[Solution]:
        if isinstance(goal, str):
            self.parsed_chars += len(goal)
        return self.machine.solve_once(goal)

    def count_solutions(self, goal) -> int:
        return sum(1 for _ in self.solve(goal))

    # -------------------------------------------------- relational interface

    def relation(self, name: str, arity: int) -> BangRelation:
        """Goal-oriented access to a stored facts relation (§4)."""
        return self.store.relation_of(name, arity)

    # ------------------------------------------------------------ persistence

    def save(self, path: str) -> None:
        """Persist this session's EDB (see ExternalStore.save)."""
        self.store.save(path)

    @classmethod
    def open(cls, path: str, faults=None, **kwargs) -> "EduceStar":
        """A fresh session over a previously saved EDB.

        Runs crash recovery (WAL replay + page verification); the
        outcome is on ``session.store.recovery``.  ``faults`` optionally
        arms a :class:`~repro.bang.faults.FaultInjector` on the opened
        store's I/O paths (tests).
        """
        store = ExternalStore.open(path, create=False, faults=faults)
        return cls(store=store, **kwargs)

    @classmethod
    def create(cls, path: str, faults=None, **kwargs) -> "EduceStar":
        """A durable file-backed session: pages in ``path``'s sidecar
        file, mutations write-ahead logged, checkpoint on :meth:`save`.
        Opens an existing EDB at *path* if one is already there."""
        store = ExternalStore.open(path, create=True, faults=faults)
        return cls(store=store, **kwargs)

    # ----------------------------------------------------------- EDB wiring

    def _edb_trap(self, machine: Machine, name: str,
                  arity: int) -> Optional[Procedure]:
        """Unknown-procedure hook: route the call to the EDB."""
        if self.store.lookup(name, arity) is None:
            return None

        def fetch(m, proc):
            # Call-time type check (§3.2.3): a bound argument that
            # conflicts with the declaration fails without storage work.
            if (proc.name, proc.arity) in self.types:
                summaries = self.preunifier.summaries_from_registers(
                    m, proc.arity)
                if not self.types.check_call(proc.name, proc.arity,
                                             summaries):
                    return None
            return self.loader.procedure_code(m, proc.name, proc.arity)

        return machine.define_external(name, arity, fetch=fetch)

    # ------------------------------------------------------- optimization

    @property
    def optimize(self) -> str:
        """The session's active optimization level (docs/OPTIMIZER.md)."""
        return self.machine.optimizer.level

    def set_optimize(self, level: str) -> None:
        """Change the optimization level at runtime (the REPL's
        ``:optimize``).  Main-memory procedures are rebuilt immediately;
        EDB-backed blocks rebuild on next fetch (the loader cache is
        keyed by level, so stale-level blocks are unreachable)."""
        self.machine.set_optimize(level)

    # ------------------------------------------------------------- counters

    def counters(self) -> dict:
        merged = dict(self.machine.counters())
        merged.update(self.loader.counters())
        merged.update(self.datalog.counters())
        merged["parsed_chars"] = self.parsed_chars
        return merged

    def io_counters(self) -> dict:
        return self.store.io_counters()

    def histograms(self) -> dict:
        """Duration histograms visible to this session: the shared
        store's lock/latch waits, miss stalls, write-backs and WAL
        appends, plus this session's loader-cache latch waits.
        Same-named histograms (the two latches) merge bucket-wise."""
        from ..obs.registry import merge_histogram_maps
        return merge_histogram_maps(self.store.histograms(),
                                    self.loader.histograms(),
                                    self.datalog.histograms())

    def reset_counters(self) -> None:
        self.machine.reset_counters()
        self.store.reset_counters()
        self.parsed_chars = 0

    def measure(self):
        """Context manager capturing a Measurement across a block."""
        return measure(self)

    def simulated_ms(self, measurement: Measurement) -> float:
        return measurement.simulated_ms(self.cost_model)
