"""The Educe predecessor system (paper §2) — the measured baseline.

Educe stored rules in the EDB **in source form** and evaluated them with
an interpreter.  Using a rule kept externally costs, per call:

1. retrieval of *all* clauses of the procedure (poor selectivity — the
   paper: "the interpreter retrieves all the clauses for the procedure
   which match the Goal ... performance is badly affected by the poor
   selectivity of this policy");
2. parsing of the source text ("the very time consuming activity of
   parsing general logic terms");
3. assertion into main memory, and
4. erasure after execution "to make room for the next rule(s)" — so a
   recursive rule is re-fetched, re-parsed and re-asserted on every
   recursive call, "potentially ... thousands of times".

All four steps are implemented literally; the counters
(``parsed_chars``, ``asserts``, ``erases``, ``fetches``) feed the cost
model, and the EDB traffic shows up in the shared pager's I/O counters.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..edb.store import ExternalStore
from ..terms import Atom, Struct, Term, deref
from .interpreter import Interpreter


class EduceBaseline:
    """Interpreter + source-form EDB, coupled in the Educe fashion."""

    def __init__(self, store: Optional[ExternalStore] = None):
        self.store = store or ExternalStore()
        self.interpreter = Interpreter()
        self.interpreter.fetch_hook = self._edb_fetch
        self.parsed_chars = 0
        self.fetches = 0

    # ----------------------------------------------------------- population

    def consult(self, text: str) -> None:
        """Load rules into main memory (no EDB involvement)."""
        self.interpreter.consult(text)

    def store_program(self, text: str) -> None:
        """Store a program in the EDB in source form, grouped by
        procedure — the Educe storage scheme."""
        clauses = list(self.interpreter.reader.read_terms(text))
        self.store_clauses(clauses)

    def store_clauses(self, clauses: List[Term]) -> None:
        from ..wam.compiler import split_clause
        grouped: Dict[Tuple[str, int], List[Term]] = {}
        order: List[Tuple[str, int]] = []
        for clause in clauses:
            head, _ = split_clause(clause)
            ind = (head.name,
                   head.arity if isinstance(head, Struct) else 0)
            if ind not in grouped:
                grouped[ind] = []
                order.append(ind)
            grouped[ind].append(clause)
        for name, arity in order:
            self.store.store_source(name, arity, grouped[(name, arity)])

    def store_relation(self, name: str, rows: List[tuple],
                       types: Optional[List[str]] = None) -> None:
        if not rows:
            raise ValueError("empty relation")
        self.store.store_facts(name, len(rows[0]), rows, types)

    # ----------------------------------------------------------------- query

    def solve(self, goal, limit: Optional[int] = None) -> Iterator[dict]:
        return self.interpreter.solve(goal, limit=limit)

    def solve_once(self, goal) -> Optional[dict]:
        return self.interpreter.solve_once(goal)

    def count_solutions(self, goal) -> int:
        return self.interpreter.count_solutions(goal)

    # --------------------------------------------------------- the EDB trap

    def _edb_fetch(self, interp: Interpreter, name: str, arity: int,
                   goal: Term) -> Optional[List[Term]]:
        """The exception-handling trap of §3.2.1: no main-memory
        predicate ⇒ fetch from the EDB."""
        stored = self.store.lookup(name, arity)
        if stored is None:
            return None
        self.fetches += 1
        if stored.mode == "facts":
            # Fact retrieval was "satisfactory even in reasonably large
            # relations": tuples arrive pre-filtered through the grid.
            assignment = self._bound_args(goal)
            rows = self.store.fetch_facts(name, arity, assignment)
            clauses = [
                Struct(name, tuple(
                    Atom(v) if isinstance(v, str) else v for v in row))
                for row in rows
            ]
            interp.asserts += len(clauses)
            return clauses
        # Rules: ALL clauses of the procedure, parsed and asserted.
        stored_clauses = self.store.fetch_clauses(name, arity, {})
        clauses = []
        for sc in stored_clauses:
            self.parsed_chars += len(sc.source)
            clauses.append(interp.reader.read_term(sc.source))
        interp.asserts += len(clauses)
        return clauses

    def _bound_args(self, goal: Term) -> Dict[int, object]:
        out: Dict[int, object] = {}
        goal = deref(goal)
        if not isinstance(goal, Struct):
            return out
        for i, arg in enumerate(goal.args):
            arg = deref(arg)
            if isinstance(arg, Atom):
                out[i] = arg.name
            elif isinstance(arg, (int, float)) and not isinstance(arg, bool):
                out[i] = arg
        return out

    # ------------------------------------------------------------- counters

    def counters(self) -> dict:
        merged = dict(self.interpreter.counters())
        merged["parsed_chars"] = self.parsed_chars
        merged["fetches"] = self.fetches
        return merged

    def io_counters(self) -> dict:
        return self.store.io_counters()
