"""Workload generators for the paper's three test batteries (§5):

* :mod:`repro.workloads.mvv` — the Muenchner Verkehrs Verbund knowledge
  base (Table 1, §5.1);
* :mod:`repro.workloads.wisconsin` — the selected Wisconsin benchmark
  queries (Tables 2a/2b, §5.2);
* :mod:`repro.workloads.integrity` — the Bry/Dahmen database integrity
  checking task (Table 3, §5.3);
* :mod:`repro.workloads.graphs` — the recursion workload family
  (chains, trees, random DAGs, same-generation) for the Datalog
  engine (docs/DATALOG.md).
"""

from . import graphs, integrity, mvv, wisconsin

__all__ = ["mvv", "wisconsin", "integrity", "graphs"]
