"""The database integrity checking task (paper §5.3, Table 3).

The IC program — originally by F. Bry, measured by M. Dahmen — checks a
small personnel database against five integrity constraints "of very
different complexity".  Its three parts:

* **full test**  — naive: check every constraint against the database;
* **preprocess** — compute a *specialisation* of the constraints with
  respect to one update; "it does not require any access to the facts of
  the data base";
* **partial test** — use the specialisation to check only what the
  update can violate.

Table 3 times only the preprocess, because it "isolates the more
conventional use of a Prolog compiler": pure symbolic computation —
unification, term construction, rule unfolding, ground arithmetic
simplification.  We implement the specialiser as a Prolog meta-program
(a classic partial evaluator over denial-form constraints) so the
benchmark exercises the compiled engine exactly as the original did.

Database shape (§5.3):

* one relation with ~4000 tuples of seven fields
  (``employee(Id, Name, Dept, Salary, Grade, Mgr, Year)``);
* fifteen relations with up to 20 tuples, one or two fields;
* one relation with ~50 tuples, two fields (``project(Proj, Dept)``);
* seven rules; five integrity constraints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..engine.educe_baseline import EduceBaseline
from ..engine.session import EduceStar
from ..wam.machine import Machine

N_EMPLOYEES = 4000
N_PROJECTS = 50

_FIRST = ["anna", "bernd", "clara", "dieter", "eva", "franz", "greta",
          "hans", "inge", "jurgen", "karin", "ludwig", "maria", "nils",
          "olga", "peter", "quirin", "rosa", "stefan", "tina"]

DEPTS = ["sales", "eng", "hr", "ops", "research", "finance", "legal",
         "support"]


# =====================================================================
# data generation
# =====================================================================

@dataclass
class ICData:
    employees: List[tuple]          # 4000 x 7
    projects: List[tuple]           # 50 x 2
    small_relations: Dict[str, List[tuple]]  # 15 relations

    def fact_text(self) -> str:
        """All facts as Prolog source (for main-memory engines)."""
        lines = []
        for row in self.employees:
            args = ",".join(_pl(v) for v in row)
            lines.append(f"employee({args}).")
        for row in self.projects:
            args = ",".join(_pl(v) for v in row)
            lines.append(f"project({args}).")
        for name, rows in self.small_relations.items():
            for row in rows:
                args = ",".join(_pl(v) for v in row)
                lines.append(f"{name}({args}).")
        return "\n".join(lines)


def _pl(v) -> str:
    return str(v) if not isinstance(v, str) else v


def generate(seed: int = 3, scale: float = 1.0) -> ICData:
    rng = random.Random(seed)
    n_emp = max(50, int(N_EMPLOYEES * scale))

    employees = []
    for i in range(1, n_emp + 1):
        name = f"{rng.choice(_FIRST)}_{i}"
        dept = DEPTS[i % len(DEPTS)]
        grade = 1 + i % 6
        salary = 20000 + grade * 8000 + rng.randrange(0, 7500)
        mgr = max(1, i - rng.randrange(1, 40))
        year = 1970 + i % 20
        employees.append((i, name, dept, salary, grade, mgr, year))

    projects = [(f"proj_{j:02d}", DEPTS[j % len(DEPTS)])
                for j in range(1, N_PROJECTS + 1)]

    small: Dict[str, List[tuple]] = {
        "dept": [(d,) for d in DEPTS],
        "grade_limit": [(g, 20000 + g * 8000 + 8000) for g in range(1, 7)],
        "grade_floor": [(g, 20000 + g * 8000) for g in range(1, 7)],
        "valid_year": [(y,) for y in range(1970, 1990)],
        "dept_head": [(d, 1 + i) for i, d in enumerate(DEPTS)],
        "dept_location": [(d, f"bldg_{i % 4}") for i, d in enumerate(DEPTS)],
        "exec_grade": [(g,) for g in (5, 6)],
        "junior_grade": [(g,) for g in (1, 2)],
        "holiday_class": [(g, 20 + 2 * g) for g in range(1, 7)],
        "bonus_rate": [(g, 5 * g) for g in range(1, 7)],
        "zone": [(i,) for i in range(1, 17)],
        "weekday": [(d,) for d in
                    ("mon", "tue", "wed", "thu", "fri")],
        "office": [(f"office_{i}",) for i in range(1, 13)],
        "budget_class": [(d, 1 + i % 3) for i, d in enumerate(DEPTS)],
        "review_cycle": [(g, 6 if g < 4 else 12) for g in range(1, 7)],
    }
    assert len(small) == 15
    for rows in small.values():
        assert len(rows) <= 20
    return ICData(employees, projects, small)


# =====================================================================
# rules, constraints and the specialiser (the Prolog program)
# =====================================================================

# Seven rules (views over the base relations).
RULES = r"""
% lint: disable=L103 rule/2
% lint: disable=L104 affected/3 resolves/2
% (rule/2 tables resume after the denial block — deliberate grouping by
% meaning, not by predicate; affected/resolves dispatch on literal
% *shape*, which first-argument indexing cannot see)

rule(emp_dept(I, D),      [employee(I, _, D, _, _, _, _)]).
rule(emp_salary(I, S),    [employee(I, _, _, S, _, _, _)]).
rule(emp_grade(I, G),     [employee(I, _, _, _, G, _, _)]).
rule(manager_of(I, M),    [employee(I, _, _, _, _, M, _)]).
rule(senior(I),           [employee(I, _, _, _, G, _, _), exec_grade(G)]).
rule(same_dept(I, J),     [employee(I, _, D, _, _, _, _),
                           employee(J, _, D, _, _, _, _)]).
rule(dept_of_project(P, D), [project(P, D)]).
"""

# Five constraints in denial form: `denial(Id, Literals)` is violated
# when Literals are jointly satisfiable.  Complexity increases with Id.
CONSTRAINTS = r"""
denial(1, [employee(_, _, D, _, _, _, _), not(dept(D))]).

denial(2, [employee(_, _, _, S, G, _, _), grade_limit(G, Max), S > Max]).

denial(3, [employee(_, _, _, S, G, _, _), grade_floor(G, Min), S < Min]).

denial(4, [manager_of(I, M), not(emp_exists(M)), I > 0]).

denial(5, [emp_dept(I, D), manager_of(I, M), emp_dept(M, DM),
           DM \== D, not(senior(M))]).

% Constraint 1 ("referenced departments exist") owns two denials: one
% per referencing relation.
denial(1, [project(_, D), not(dept(D))]).

rule(emp_exists(I), [employee(I, _, _, _, _, _, _)]).
"""

# The specialiser: a partial evaluator over denials.
SPECIALISER = r"""
% specialise(+Update, -Id, -Residual): for the given update, the residual
% literal list that must be UNsatisfiable after the update, per denial.
specialise(insert(Fact), Id, Residual) :-
    denial(Id, Lits),
    affected(Fact, Lits, Rest),
    simplify(Rest, Residual).

% affected(+Fact, +Lits, -Rest): unify Fact with one (possibly unfolded)
% positive literal; Rest is what remains to check.
affected(Fact, [L|Rest], Rest) :-
    \+ functor(L, not, 1),
    resolves(L, Fact).
affected(Fact, [L|Rest], [L|Out]) :-
    affected(Fact, Rest, Out).

% resolves(+Lit, +Fact): Lit matches Fact directly or through one level
% of rule unfolding.
resolves(L, Fact) :- L = Fact.
resolves(L, Fact) :-
    rule(L, Body),
    member(B, Body),
    B = Fact.

% simplify(+Lits, -Residual): evaluate ground comparisons, drop true
% literals, collapse to [fail] on a falsified ground literal, unfold
% view literals whose definition is a single rule.
simplify([], []).
simplify([L|Ls], Out) :-
    ground_comparison(L), !,
    ( holds(L) -> simplify(Ls, Out) ; Out = [fail] ).
simplify([not(L)|Ls], Out) :- !,
    simplify(Ls, Rest),
    Out = [not(L)|Rest].
simplify([L|Ls], Out) :-
    findall(B, rule(L, B), [Body]), !,
    append(Body, Ls, All),
    simplify(All, Out).
simplify([L|Ls], [L|Out]) :-
    simplify(Ls, Out).

ground_comparison(X > Y) :- number(X), number(Y).
ground_comparison(X < Y) :- number(X), number(Y).
ground_comparison(X >= Y) :- number(X), number(Y).
ground_comparison(X =< Y) :- number(X), number(Y).
ground_comparison(X \== Y) :- ground(X), ground(Y).
ground_comparison(X == Y) :- ground(X), ground(Y).

holds(X > Y) :- X > Y.
holds(X < Y) :- X < Y.
holds(X >= Y) :- X >= Y.
holds(X =< Y) :- X =< Y.
holds(X \== Y) :- X \== Y.
holds(X == Y) :- X == Y.

% preprocess(+Update, -Specialised): all residuals for the update.
preprocess(Update, Specialised) :-
    findall(Id-Residual, specialise(Update, Id, Residual), Specialised).

% preprocess_all(+Transaction, -Specialised): a transaction is a list of
% updates; residuals accumulate (Table 3's increasingly complex updates).
preprocess_all([], []).
preprocess_all([U|Us], All) :-
    preprocess(U, S1),
    preprocess_all(Us, Rest),
    append(S1, Rest, All).
"""

PROGRAM = RULES + CONSTRAINTS + SPECIALISER

# The five updates of Table 3 — transactions of increasing
# specialisation complexity (the paper's times grow monotonically).
UPDATES: List[str] = [
    # 1: one insert into a small relation — no denial resolves with it.
    "[insert(dept(marketing))]",
    # 2: a project insert — one simple denial.
    "[insert(project(proj_99, warehouse))]",
    # 3: an employee insert — denials 1-5, view unfolding included.
    "[insert(employee(9002, neu_2, eng, 99000, 2, 17, 1985))]",
    # 4: a two-insert transaction.
    "[insert(employee(9003, neu_3, hr, 46000, 4, 8999, 1986)),"
    " insert(project(proj_98, hr))]",
    # 5: a three-insert transaction, maximal unfolding work.
    "[insert(employee(9004, neu_4, sales, 61000, 5, 42, 1987)),"
    " insert(employee(9005, neu_5, legal, 30000, 1, 9004, 1988)),"
    " insert(project(proj_97, legal))]",
]


# =====================================================================
# engine loaders
# =====================================================================

def load_good_compiler(machine: Optional[Machine] = None) -> Machine:
    """'A Good Prolog Compiler' (Table 3's GC): the WAM, all in main
    memory, no EDB."""
    machine = machine or Machine()
    machine.consult(PROGRAM)
    return machine


def load_educestar(session: Optional[EduceStar] = None,
                   program_in_edb: bool = True) -> EduceStar:
    """Educe*: the specialiser stored in the EDB as compiled code (the
    configuration that makes Table 3 interesting)."""
    session = session or EduceStar()
    if program_in_edb:
        session.store_program(PROGRAM)
    else:
        session.consult(PROGRAM)
    return session


def load_interpreter_baseline(
        baseline: Optional[EduceBaseline] = None) -> EduceBaseline:
    """Educe-style baseline: specialiser in the EDB in source form."""
    baseline = baseline or EduceBaseline()
    baseline.store_program(PROGRAM)
    return baseline


def load_database(engine, data: ICData) -> None:
    """Load the base facts (needed by full/partial test, NOT by
    preprocess)."""
    engine.consult(data.fact_text())


# =====================================================================
# the three test parts
# =====================================================================

def run_preprocess(engine, update: str):
    """One preprocess run over a transaction; returns the specialised
    constraint list."""
    goal = f"preprocess_all({update}, S)"
    solution = engine.solve_once(goal)
    if solution is None:
        raise RuntimeError(f"preprocess failed for {update}")
    return solution["S"]


CHECKER = r"""
violated(Id) :- denial(Id, Lits), sat(Lits).

sat([]).
sat([not(L)|Ls]) :- !, \+ sat_lit(L), sat(Ls).
sat([L|Ls]) :- sat_lit(L), sat(Ls).

sat_lit(X > Y) :- !, X > Y.
sat_lit(X < Y) :- !, X < Y.
sat_lit(X >= Y) :- !, X >= Y.
sat_lit(X =< Y) :- !, X =< Y.
sat_lit(X \== Y) :- !, X \== Y.
sat_lit(X == Y) :- !, X == Y.
sat_lit(fail) :- !, fail.
sat_lit(L) :- rule(L, Body), sat(Body).
sat_lit(L) :- \+ rule(L, _), call(L).
"""


def run_full_test(engine) -> List[int]:
    """Naive check of every constraint against the database (requires
    :func:`load_database` and :data:`CHECKER` consulted)."""
    out = []
    for sol in engine.solve("violated(Id)"):
        value = sol["Id"]
        if value not in out:
            out.append(value)
    return sorted(out)


def run_partial_test(engine, specialised) -> List[int]:
    """Check only the residual literals produced by preprocess."""
    from ..terms import Struct, list_to_python
    violated = []
    for pair in list_to_python(specialised):
        assert isinstance(pair, Struct) and pair.indicator == ("-", 2)
        cid, residual = pair.args
        items = list_to_python(residual)
        if not items:
            violated.append(cid)  # residual proved: outright violation
            continue
        from ..lang.writer import term_to_text
        goal = f"sat({term_to_text(residual)})"
        if engine.solve_once(goal) is not None:
            violated.append(cid)
    return violated
