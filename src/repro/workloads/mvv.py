"""The Muenchner Verkehrs Verbund knowledge base (paper §5.1, Table 1).

"The MVV combines the use of buses, underground trains, commuter trains
and trams into one transport network ... Our tests are a set of queries
on how to get from one part of the city to another, starting at a given
time."

We generate a synthetic Munich-like multimodal network with exactly the
paper's relation shapes:

* ``location2``  — arity 2, **2307 tuples**: (stop, zone);
* ``schedule3``  — arity 11, **8776 tuples**: one tuple per
  (line, direction, sequence) stop visit, carrying times, transport
  type, zone, platform, service class and id;
* ``schedule2``  — arity 5, **7260 tuples**: individual departures
  (line, direction, hour, minute, service).

Stops live on a grid; lines are lattice walks, so lines genuinely
intersect and hub stops (many lines) exist — the structural property
Class-2 queries depend on.  Everything is seeded and deterministic.

Query classes (§5.1):

* **Class 1** — "simple queries: involving travel between adjacent major
  nodes with minimal choice of means of transport";
* **Class 2** — "involved queries: travel routes between major nodes,
  restricted to not more than one change and with many means of
  transport to choose between".

The journey rules are held in internal storage and the three fact
relations in the EDB, exactly as the paper describes its setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..engine.educe_baseline import EduceBaseline
from ..engine.session import EduceStar

N_STOPS = 2307
N_SCHEDULE3 = 8776
N_SCHEDULE2 = 7260

_TYPES = ["ubahn", "sbahn", "tram", "bus"]
_GRID_W = 49  # 49 columns over 2307 stops


@dataclass
class LineSpec:
    name: str
    type: str
    stops: List[str]  # forward direction; direction 2 is the reverse


@dataclass
class MVVData:
    stops: List[str]
    zones: Dict[str, int]
    lines: List[LineSpec]
    hubs: List[str]
    location2: List[tuple]
    schedule3: List[tuple]
    schedule2: List[tuple]


def generate(seed: int = 11, scale: float = 1.0) -> MVVData:
    """Build the network.  ``scale`` < 1 shrinks every relation
    proportionally (for fast tests); 1.0 gives the paper's cardinalities.
    """
    rng = random.Random(seed)
    n_stops = max(40, int(N_STOPS * scale))
    n_sched3 = max(80, int(N_SCHEDULE3 * scale))
    n_sched2 = max(60, int(N_SCHEDULE2 * scale))

    stops = [f"stop_{i:04d}" for i in range(n_stops)]
    zones = {s: 1 + (i % 16) for i, s in enumerate(stops)}
    location2 = [(s, zones[s]) for s in stops]

    # --- lines: lattice walks over the stop grid -----------------------
    grid_w = max(8, int(_GRID_W * (scale ** 0.5)))

    def neighbours(idx: int) -> List[int]:
        out = []
        x, y = idx % grid_w, idx // grid_w
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            nidx = ny * grid_w + nx
            if 0 <= nx < grid_w and 0 <= nidx < n_stops and ny >= 0:
                out.append(nidx)
        return out

    lines: List[LineSpec] = []
    stop_visits = 0  # schedule3 rows = 2 directions * line length
    line_no = 0
    while stop_visits < n_sched3:
        line_no += 1
        remaining = n_sched3 - stop_visits
        length = min(rng.randint(12, 28), max(2, remaining // 2))
        if remaining - 2 * length < 4:  # absorb the remainder exactly
            length = remaining // 2
        if length < 2:
            break
        path_idx = [rng.randrange(n_stops)]
        visited = {path_idx[0]}
        while len(path_idx) < length:
            options = [n for n in neighbours(path_idx[-1])
                       if n not in visited]
            if not options:
                options = neighbours(path_idx[-1])
                if not options:
                    break
            nxt = rng.choice(options)
            path_idx.append(nxt)
            visited.add(nxt)
        if len(path_idx) < 2:
            continue
        ltype = _TYPES[line_no % len(_TYPES)]
        name = f"{ltype[0]}{line_no}"
        lines.append(LineSpec(name, ltype, [stops[i] for i in path_idx]))
        stop_visits += 2 * len(path_idx)

    # --- schedule3: (line, dir, seq, stop, hh, mm, type, zone,
    #                 platform, service, id) ---------------------------
    schedule3: List[tuple] = []
    uid = 0
    for line in lines:
        for direction in (1, 2):
            path = line.stops if direction == 1 else line.stops[::-1]
            for seq, stop in enumerate(path, start=1):
                hh = 5 + (seq * 2) // 60
                mm = (seq * 2) % 60
                uid += 1
                schedule3.append((
                    line.name, direction, seq, stop, hh, mm,
                    line.type, zones[stop], 1 + uid % 4,
                    "regular" if uid % 7 else "express", uid,
                ))
    schedule3 = schedule3[:n_sched3]

    # --- schedule2: departures (line, dir, hh, mm, service) ------------
    schedule2: List[tuple] = []
    pairs = [(line.name, d) for line in lines for d in (1, 2)]
    i = 0
    while len(schedule2) < n_sched2:
        name, direction = pairs[i % len(pairs)]
        k = len(schedule2) // len(pairs)
        hh = 5 + ((k * 37) // 60) % 19
        mm = (k * 37) % 60
        schedule2.append((name, direction, hh, mm,
                          "regular" if (i + k) % 5 else "express"))
        i += 1

    # --- hubs: stops served by the most lines --------------------------
    line_count: Dict[str, Set[str]] = {}
    for line in lines:
        for stop in line.stops:
            line_count.setdefault(stop, set()).add(line.name)
    hubs = sorted(line_count, key=lambda s: -len(line_count[s]))[:30]

    return MVVData(stops, zones, lines, hubs,
                   location2, schedule3, schedule2)


# =====================================================================
# the journey rules (internal storage, per §5.1)
# =====================================================================

RULES = r"""
% lint: external schedule3/11 schedule2/5 location2/2
% lint: disable=L104 route/4
% (the schedule/location relations are EDB facts loaded by the harness;
% route/4 is transitive closure over hops — var-headed by design)

hm_minutes(H, M, T) :- T is H * 60 + M.

on_line(S, L, D, Q) :- schedule3(L, D, Q, S, _, _, _, _, _, _, _).

hop(A, B, L, D) :-
    on_line(A, L, D, QA),
    QB is QA + 1,
    on_line(B, L, D, QB).

next_departure(L, D, T0, T) :-
    findall(TD, (schedule2(L, D, H, M, _),
                 hm_minutes(H, M, TD), TD >= T0), Ts),
    Ts \== [],
    min_list(Ts, T).

ride_time(QA, QB, T) :- T is (QB - QA) * 2.

% Class 1: one hop between adjacent nodes, with the next departure.
class1(A, B, T0, journey(L, D, Dep, Arr)) :-
    hop(A, B, L, D),
    next_departure(L, D, T0, Dep),
    Arr is Dep + 2.

same_line(A, B, L, D, QA, QB) :-
    on_line(A, L, D, QA),
    on_line(B, L, D, QB),
    QA < QB.

% Class 2: at most one change between major nodes.
route(A, B, T0, direct(L, Dep, Arr)) :-
    same_line(A, B, L, D, QA, QB),
    next_departure(L, D, T0, Dep),
    ride_time(QA, QB, RT),
    Arr is Dep + RT.

route(A, B, T0, change(L1, C, L2, Dep1, Arr)) :-
    same_line(A, C, L1, D1, QA, QC),
    same_line(C, B, L2, D2, QC2, QB),
    L1 \== L2,
    next_departure(L1, D1, T0, Dep1),
    ride_time(QA, QC, RT1),
    Arr1 is Dep1 + RT1 + 3,
    next_departure(L2, D2, Arr1, Dep2),
    ride_time(QC2, QB, RT2),
    Arr is Dep2 + RT2.

best_route(A, B, T0, Plan, Arr) :-
    findall(Arr1-Plan1, plan_of(A, B, T0, Plan1, Arr1), Pairs),
    Pairs \== [],
    msort(Pairs, [Arr-Plan|_]).

plan_of(A, B, T0, Plan, Arr) :-
    route(A, B, T0, Plan),
    plan_arrival(Plan, Arr).

plan_arrival(direct(_, _, Arr), Arr).
plan_arrival(change(_, _, _, _, Arr), Arr).

% Zone fare helper over location2.
fare(A, B, F) :-
    location2(A, ZA),
    location2(B, ZB),
    F is abs(ZA - ZB) + 1.
"""

SCHEDULE3_TYPES = ["atom", "int", "int", "atom", "int", "int", "atom",
                   "int", "int", "atom", "int"]
SCHEDULE2_TYPES = ["atom", "int", "int", "int", "atom"]
LOCATION2_TYPES = ["atom", "int"]


def load_educestar(data: MVVData,
                   session: Optional[EduceStar] = None) -> EduceStar:
    """Rules internal (compiled), facts in the EDB — the §5.1 setup."""
    session = session or EduceStar()
    session.store_relation("location2", data.location2, LOCATION2_TYPES)
    session.store_relation("schedule3", data.schedule3, SCHEDULE3_TYPES)
    session.store_relation("schedule2", data.schedule2, SCHEDULE2_TYPES)
    session.consult(RULES)
    return session


def load_baseline(data: MVVData,
                  baseline: Optional[EduceBaseline] = None) -> EduceBaseline:
    """Rules internal (interpreted), facts in the EDB — the Educe setup."""
    baseline = baseline or EduceBaseline()
    baseline.store_relation("location2", data.location2, LOCATION2_TYPES)
    baseline.store_relation("schedule3", data.schedule3, SCHEDULE3_TYPES)
    baseline.store_relation("schedule2", data.schedule2, SCHEDULE2_TYPES)
    baseline.consult(RULES)
    return baseline


# =====================================================================
# query sampling
# =====================================================================

def class1_queries(data: MVVData, n: int = 10, seed: int = 5) -> List[str]:
    """Adjacent hub-ish pairs: guaranteed at least one direct hop."""
    rng = random.Random(seed)
    hubset = set(data.hubs)
    candidates: List[Tuple[str, str]] = []
    for line in data.lines:
        for a, b in zip(line.stops, line.stops[1:]):
            if a in hubset or b in hubset:
                candidates.append((a, b))
    if not candidates:
        for line in data.lines:
            candidates.extend(zip(line.stops, line.stops[1:]))
    rng.shuffle(candidates)
    return [f"class1({a}, {b}, 360, Plan)" for a, b in candidates[:n]]


def class2_queries(data: MVVData, n: int = 10, seed: int = 6) -> List[str]:
    """Hub pairs connected with exactly one change (by construction)."""
    rng = random.Random(seed)
    by_stop: Dict[str, List[LineSpec]] = {}
    for line in data.lines:
        for stop in line.stops:
            by_stop.setdefault(stop, []).append(line)
    pairs: List[Tuple[str, str]] = []
    for hub in data.hubs:
        lines_here = by_stop.get(hub, [])
        if len(lines_here) < 2:
            continue
        for _ in range(4):
            l1, l2 = rng.sample(lines_here, 2)
            qa = l1.stops.index(hub)
            qb = l2.stops.index(hub)
            if qa == 0 or qb == len(l2.stops) - 1:
                continue
            a = l1.stops[rng.randrange(0, qa)]
            b = l2.stops[rng.randrange(qb + 1, len(l2.stops))]
            if a != b:
                pairs.append((a, b))
    rng.shuffle(pairs)
    return [f"route({a}, {b}, 360, Plan)" for a, b in pairs[:n]]
