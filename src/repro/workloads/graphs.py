"""The recursion workload family (docs/DATALOG.md).

Graph generators for the transitive-closure / reachability workloads
where recursive evaluation strategies actually diverge: chains (deep,
narrow), k-ary trees (shallow, wide, one path per pair), random DAGs
(many paths per pair — the WAM re-derives one answer per path, the
bottom-up engine derives each answer once), and parent trees for the
classic same-generation program.

All generated graphs are **acyclic** on purpose: the WAM has no tabling,
so top-down evaluation of transitive closure over a cyclic graph does
not terminate — that asymmetry is exactly why the strategy planner
exists, but it makes cyclic graphs unusable for differential testing
against the WAM oracle.  (The bottom-up engine itself handles cycles
fine; the differential suite pins its answers against the oracle on the
acyclic family.)

Determinism: every generator takes an explicit seed; the same seed
always yields the same graph.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

__all__ = [
    "chain", "k_ary_tree", "random_dag", "parent_tree",
    "REACH_PROGRAM", "SAME_GEN_PROGRAM", "UNREACHABLE_PROGRAM",
    "differential_cases",
]

Edge = Tuple[str, str]


def _node(i: int) -> str:
    return f"n{i}"


def chain(length: int) -> List[Edge]:
    """A path graph: ``n0 -> n1 -> ... -> n<length>``."""
    return [(_node(i), _node(i + 1)) for i in range(length)]


def k_ary_tree(edges: int, branching: int = 4) -> List[Edge]:
    """A complete-ish k-ary tree with exactly *edges* edges, root ``n0``.

    Node ``ni`` is the child of ``n((i-1)//branching)`` — one root-to-
    node path per node, so top-down evaluation derives each reachability
    answer exactly once (the fairest ground for the WAM oracle)."""
    return [(_node((i - 1) // branching), _node(i))
            for i in range(1, edges + 1)]


def random_dag(nodes: int, edges: int, seed: int) -> List[Edge]:
    """A random DAG: edges only go from lower- to higher-numbered
    nodes, so the graph is acyclic by construction.  Duplicate edges
    are skipped (the EDB stores sets of tuples anyway)."""
    if nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    seen = set()
    out: List[Edge] = []
    attempts = 0
    while len(out) < edges and attempts < edges * 20:
        attempts += 1
        a = rng.randrange(0, nodes - 1)
        b = rng.randrange(a + 1, nodes)
        if (a, b) not in seen:
            seen.add((a, b))
            out.append((_node(a), _node(b)))
    return out


def parent_tree(people: int, seed: int,
                branching: int = 3) -> List[Edge]:
    """``(child, parent)`` pairs forming a random ancestry tree rooted
    at ``n0`` — the base relation of the same-generation program.
    Each person ``ni`` (i > 0) gets one parent drawn from earlier
    people, biased toward recent ones to keep generations shallow."""
    rng = random.Random(seed)
    out: List[Edge] = []
    for i in range(1, people):
        low = max(0, i - branching * 2)
        parent = rng.randrange(low, i)
        out.append((_node(i), _node(parent)))
    return out


# ---------------------------------------------------------------------
# Rule programs over the generated base relations
# ---------------------------------------------------------------------

#: transitive closure over ``edge/2`` (right-linear form)
REACH_PROGRAM = """\
% lint: external edge/2
% lint: disable=L104 reach/2
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- edge(X, Y), reach(Y, Z).
"""

#: the classic same-generation program over ``par/2`` (child, parent)
SAME_GEN_PROGRAM = """\
% lint: external par/2 person/1
% lint: disable=L104 sg/2
sg(X, X) :- person(X).
sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
"""

#: stratified negation on top of reachability: nodes a source cannot
#: reach (``node/1`` enumerates the vertex set)
UNREACHABLE_PROGRAM = """\
% lint: external edge/2 node/1
% lint: disable=L104 reach/2
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- edge(X, Y), reach(Y, Z).
unreachable(X, Y) :- node(X), node(Y), \\+ reach(X, Y).
"""


def nodes_of(edges: List[Edge]) -> List[str]:
    """The sorted vertex set of an edge list."""
    seen = set()
    for a, b in edges:
        seen.add(a)
        seen.add(b)
    return sorted(seen)


def differential_cases(seed: int) -> List[Dict]:
    """One suite of differential cases for *seed*: every workload graph
    family, with bound and unbound queries.  Each case dict carries the
    relations to store, the rule program, and the goals whose answer
    multisets must match the WAM oracle's."""
    rng = random.Random(seed)
    chain_len = rng.randrange(5, 40)
    tree_edges = rng.randrange(10, 80)
    # Modest DAG density: the WAM oracle re-derives one answer per
    # path, and path counts grow fast with density.
    dag_nodes = rng.randrange(8, 20)
    dag_edges = rng.randrange(dag_nodes, 2 * dag_nodes)
    people = rng.randrange(6, 25)

    chain_edges = chain(chain_len)
    tree = k_ary_tree(tree_edges, branching=rng.choice([2, 3, 4]))
    dag = random_dag(dag_nodes, dag_edges, seed)
    par = parent_tree(people, seed)
    persons = [(p,) for p in nodes_of(par)]
    dag_vertices = [(v,) for v in nodes_of(dag)]

    return [
        {
            "name": "chain",
            "relations": {"edge": chain_edges},
            "program": REACH_PROGRAM,
            "goals": ["reach(n0, X)", "reach(X, Y)",
                      f"reach(X, n{chain_len})",
                      f"reach(n0, n{chain_len})",
                      "reach(n0, n0)"],
        },
        {
            "name": "tree",
            "relations": {"edge": tree},
            "program": REACH_PROGRAM,
            "goals": ["reach(n0, X)", "reach(X, Y)",
                      f"reach(X, n{tree_edges})"],
        },
        {
            "name": "dag",
            "relations": {"edge": dag},
            "program": REACH_PROGRAM,
            "goals": ["reach(n0, X)", "reach(X, Y)", "reach(X, X)"],
        },
        {
            "name": "same_generation",
            "relations": {"par": par, "person": persons},
            "program": SAME_GEN_PROGRAM,
            "goals": ["sg(n1, X)", "sg(n0, X)"],
        },
        {
            "name": "unreachable",
            "relations": {"edge": dag, "node": dag_vertices},
            "program": UNREACHABLE_PROGRAM,
            "goals": ["unreachable(n0, X)"],
        },
    ]
