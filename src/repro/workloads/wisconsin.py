"""The Wisconsin benchmark subset used in §5.2 (Tables 2a/2b).

The paper runs five queries "to have an indication of Educe*'s
relational capabilities":

1. selection with 1 % selectivity over a 10000-tuple relation;
2. selection with 10 % selectivity over a 10000-tuple relation;
3. select 1 tuple to screen from a 10000-tuple relation;
4. two-way join of two 10000-tuple relations with a selection over one;
5. three-way join of two 10000-tuple relations and one 1000-tuple
   relation, with selections over the two 10000-tuple relations.

Each query class was "run several times and each time the query was
expressed in a different format" — we reproduce that with plan
*variants* (different access paths / join methods), reporting per-class
times and I/O frequencies exactly as Tables 2a/2b do.

The relation generator follows DeWitt's original schema: ``unique1``
(random permutation), ``unique2`` (sequential key), the modulo
attributes (two/four/ten/twenty/onePercent/tenPercent/...) and short
string fillers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..engine.session import EduceStar
from ..engine.stats import Measurement, measure
from ..relational.algebra import (
    Filter,
    HashJoin,
    IndexJoin,
    Plan,
    RangeSelect,
    Scan,
    Select,
)

ATTRS = [
    "unique1", "unique2", "two", "four", "ten", "twenty",
    "onepercent", "tenpercent", "twentypercent", "fiftypercent",
    "unique3", "evenonepercent", "oddonepercent",
    "stringu1", "stringu2", "string4",
]

# Column indexes (for plan construction).
UNIQUE1, UNIQUE2 = 0, 1
ONEPERCENT = 6
STRINGU1 = 13

_STRING4_CYCLE = ["AAAA", "HHHH", "OOOO", "VVVV"]


def _stringu(value: int) -> str:
    """The classic cyclic 7-significant-char Wisconsin string, shortened."""
    chars = []
    v = value
    for _ in range(7):
        chars.append(chr(ord("A") + v % 26))
        v //= 26
    return "".join(reversed(chars))


def generate_rows(n: int, seed: int = 1) -> List[tuple]:
    """*n* Wisconsin tuples (deterministic for a given seed)."""
    rng = random.Random(seed)
    unique1 = list(range(n))
    rng.shuffle(unique1)
    rows = []
    for unique2, u1 in enumerate(unique1):
        rows.append((
            u1,
            unique2,
            u1 % 2,
            u1 % 4,
            u1 % 10,
            u1 % 20,
            u1 % 100,
            u1 % 10,
            u1 % 5,
            u1 % 2,
            u1,
            (u1 % 100) * 2,
            (u1 % 100) * 2 + 1,
            _stringu(u1),
            _stringu(unique2),
            _STRING4_CYCLE[unique2 % 4],
        ))
    return rows


TYPES = ["int"] * 13 + ["atom", "atom", "atom"]


@dataclass
class WisconsinDB:
    """Three loaded relations: tenk1, tenk2 (10000 tuples), onek (1000)."""

    session: EduceStar
    sizes: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, session: Optional[EduceStar] = None, seed: int = 1,
              scale: float = 1.0) -> "WisconsinDB":
        """Load the three relations; *scale* shrinks cardinalities for
        quick test runs (1.0 = the paper's sizes)."""
        session = session or EduceStar()
        n_big = max(10, int(10000 * scale))
        n_small = max(5, int(1000 * scale))
        # Cluster on the three attributes the paper's queries probe —
        # the analogue of declaring indexes in a relational schema.
        keys = [UNIQUE1, UNIQUE2, ONEPERCENT]
        session.store_relation("tenk1", generate_rows(n_big, seed),
                               TYPES, key_dims=keys)
        session.store_relation("tenk2", generate_rows(n_big, seed + 1),
                               TYPES, key_dims=keys)
        session.store_relation("onek", generate_rows(n_small, seed + 2),
                               TYPES, key_dims=keys)
        db = cls(session)
        db.sizes = {"tenk1": n_big, "tenk2": n_big, "onek": n_small}
        return db

    def relation(self, name: str):
        return self.session.relation(name, len(ATTRS))


# =====================================================================
# the five query classes, each with several plan variants
# =====================================================================

@dataclass
class QueryVariant:
    name: str
    build: Callable[[WisconsinDB], Plan]


@dataclass
class QueryClass:
    number: int
    title: str
    variants: List[QueryVariant]
    expected_rows: Callable[[WisconsinDB], int]


def _sel_range(db: WisconsinDB, fraction: float) -> Tuple[int, int]:
    n = db.sizes["tenk1"]
    return (0, max(0, int(n * fraction) - 1))


def query_classes() -> List[QueryClass]:
    """The five paper queries, with their format variants."""

    def q1_grid(db):  # 1% selection, clustered range access
        lo, hi = _sel_range(db, 0.01)
        return RangeSelect(db.relation("tenk1"), UNIQUE1, lo, hi)

    def q1_scan(db):  # same query phrased as scan + filter
        lo, hi = _sel_range(db, 0.01)
        return Filter(Scan(db.relation("tenk1")),
                      lambda r: lo <= r[UNIQUE1] <= hi)

    def q2_grid(db):  # 10% selection
        lo, hi = _sel_range(db, 0.10)
        return RangeSelect(db.relation("tenk1"), UNIQUE1, lo, hi)

    def q2_scan(db):
        lo, hi = _sel_range(db, 0.10)
        return Filter(Scan(db.relation("tenk1")),
                      lambda r: lo <= r[UNIQUE1] <= hi)

    def q3_point(db):  # select 1 tuple to screen
        n = db.sizes["tenk1"]
        return Select(db.relation("tenk1"), {UNIQUE2: n // 2})

    def q3_range(db):
        n = db.sizes["tenk1"]
        return RangeSelect(db.relation("tenk1"), UNIQUE2, n // 2, n // 2)

    def _q4_selection(db) -> Plan:
        lo, hi = _sel_range(db, 0.10)
        return RangeSelect(db.relation("tenk2"), UNIQUE1, lo, hi)

    def q4_hash(db):  # joinAselB as hash join
        return HashJoin(_q4_selection(db), Scan(db.relation("tenk1")),
                        UNIQUE1, UNIQUE1)

    def q4_index(db):  # joinAselB probing tenk1's grid per outer row
        return IndexJoin(_q4_selection(db), db.relation("tenk1"),
                         UNIQUE1, UNIQUE1)

    def _q5_inner(db) -> Tuple[Plan, Plan]:
        lo, hi = _sel_range(db, 0.10)
        sel1 = RangeSelect(db.relation("tenk1"), UNIQUE1, lo, hi)
        sel2 = RangeSelect(db.relation("tenk2"), UNIQUE1, lo, hi)
        return sel1, sel2

    def q5_hash(db):  # three-way join, all hash
        sel1, sel2 = _q5_inner(db)
        width = len(ATTRS)
        two_way = HashJoin(sel1, sel2, UNIQUE1, UNIQUE1)
        # join the pair to onek on onepercent == onek.unique1 (mod small)
        small_n = db.sizes["onek"]
        reduced = Filter(two_way, lambda r: r[ONEPERCENT] < small_n)
        return HashJoin(reduced, Scan(db.relation("onek")),
                        ONEPERCENT, UNIQUE1)

    def q5_index(db):
        sel1, sel2 = _q5_inner(db)
        small_n = db.sizes["onek"]
        two_way = IndexJoin(sel1, db.relation("tenk2"), UNIQUE1, UNIQUE1)
        lo, hi = _sel_range(db, 0.10)
        width = len(ATTRS)
        selected = Filter(
            two_way,
            lambda r: lo <= r[width + UNIQUE1] <= hi
            and r[ONEPERCENT] < small_n)
        return IndexJoin(selected, db.relation("onek"),
                         ONEPERCENT, UNIQUE1)

    def q3_planner(db):  # access path chosen by the planner
        from ..relational.planner import best_access_path
        n = db.sizes["tenk1"]
        return best_access_path(db.relation("tenk1"), {UNIQUE2: n // 2})

    return [
        QueryClass(1, "1% selection of 10000 tuples", [
            QueryVariant("grid-range", q1_grid),
            QueryVariant("scan-filter", q1_scan),
        ], lambda db: max(0, int(db.sizes["tenk1"] * 0.01))),
        QueryClass(2, "10% selection of 10000 tuples", [
            QueryVariant("grid-range", q2_grid),
            QueryVariant("scan-filter", q2_scan),
        ], lambda db: max(0, int(db.sizes["tenk1"] * 0.10))),
        QueryClass(3, "select 1 tuple to screen", [
            QueryVariant("grid-point", q3_point),
            QueryVariant("grid-range", q3_range),
            QueryVariant("planner", q3_planner),
        ], lambda db: 1),
        QueryClass(4, "two-way join with selection", [
            QueryVariant("hash-join", q4_hash),
            QueryVariant("index-join", q4_index),
        ], lambda db: max(0, int(db.sizes["tenk1"] * 0.10))),
        QueryClass(5, "three-way join with selections", [
            QueryVariant("hash-join", q5_hash),
            QueryVariant("index-join", q5_index),
        ], None),  # cardinality depends on modulo overlap
    ]


@dataclass
class QueryResult:
    query: int
    variant: str
    rows: int
    measurement: Measurement


def plan_tuple_ops(plan: Plan) -> int:
    """Rows produced by every node of the plan tree — the relational
    engine's CPU work unit for the cost model."""
    total = plan.rows_out
    for attr in ("child", "left", "right", "outer"):
        node = getattr(plan, attr, None)
        if isinstance(node, Plan):
            total += plan_tuple_ops(node)
    return total


def run_query(db: WisconsinDB, qc: QueryClass,
              variant: QueryVariant) -> QueryResult:
    """Execute one variant, capturing time + I/O counters."""
    with measure(db.session) as m:
        plan = variant.build(db)
        rows = sum(1 for _ in plan.rows())
    m.counters["tuple_ops"] = m.counters.get("tuple_ops", 0) \
        + plan_tuple_ops(plan)
    return QueryResult(qc.number, variant.name, rows, m)


def run_all(db: WisconsinDB) -> List[QueryResult]:
    results = []
    for qc in query_classes():
        for variant in qc.variants:
            results.append(run_query(db, qc, variant))
    return results
