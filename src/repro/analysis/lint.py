"""Source-level lint for Prolog programs (L rules).

Operates on the program *text* (the unit everything in this repo ships
Prolog as: prelude string, workload rule strings, example programs,
``.pl`` files), parsing it with the standard reader and walking the
clause terms.  Findings carry the clause's predicate indicator rather
than a line number — terms do not record source positions.

Waivers are inline pragmas in Prolog comments, file-wide in scope::

    % lint: disable=L104 member/2 select/3
    % lint: disable=L101
    % lint: external schedule3/11 location2/2

``disable`` suppresses a rule (for the named predicates, or everywhere
when no indicator is given); ``external`` declares predicates defined
outside this text (EDB relations, another program unit) so L102 does
not flag calls to them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..lang.reader import Reader
from ..terms import Atom, Struct, Term, Var

__all__ = ["RULES", "LintFinding", "lint_text"]

#: Lint rule glossary (ids are stable; see docs/ANALYSIS.md).
RULES: Dict[str, str] = {
    "L101": "singleton variable: a named variable occurs exactly once "
            "in its clause (prefix with _ when intentional)",
    "L102": "undefined predicate: a reachable goal's indicator has no "
            "definition in this text, the prelude, the built-ins or a "
            "declared external",
    "L103": "discontiguous clauses: a predicate's clauses are "
            "interleaved with another predicate's",
    "L104": "unindexable first argument: a multi-clause predicate "
            "first-argument indexing cannot discriminate (all clause "
            "heads start with a variable, or arity 0)",
    "L105": "bottom-up blocked: a recursive predicate is Datalog-shaped "
            "but the set-at-a-time engine cannot evaluate it "
            "(unstratified negation in its cycle, or a rule that is "
            "not range-restricted)",
    "L106": "unknown rule id in a lint pragma: '% lint: disable=' names "
            "a rule this linter does not define (typo, or a rule from "
            "a newer version)",
    "M201": "mode conflict: a call passes a variable whose first "
            "occurrence in the clause sits in a builtin's "
            "demanded-ground position — a guaranteed instantiation "
            "error if the goal is reached",
    "M202": "provably always fails: the whole-program cardinality "
            "analysis classed the predicate 'fails' (no clause can "
            "produce a solution)",
    "M203": "dead choice point: the predicate is deterministic under "
            "its inferred call modes (an always-ground argument "
            "discriminates every clause) but first-argument indexing "
            "cannot see it, so the compiled code keeps a choice point "
            "that never yields a second solution",
}

_PRAGMA_RE = re.compile(
    r"%\s*lint:\s*(?:disable=(?P<rule>[A-Z]\d{3})|(?P<ext>external))"
    r"(?P<inds>(?:\s+\S+/\d+)*)\s*$",
    re.MULTILINE)

_IND_RE = re.compile(r"(\S+)/(\d+)")

#: goals the compiler handles directly (no registered indicator) and
#: the meta-predicate goal-argument table — both shared with the
#: whole-program call graph so source lint and global analysis agree
#: on what a reachable goal is (docs/ANALYSIS.md)
from .global_.callgraph import (CONTROL_GOALS as _CONTROL,
                                META_GOAL_ARGS as _META_GOAL_ARGS)


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic, keyed by predicate indicator."""
    rule: str
    indicator: str  # "name/arity" of the offending predicate
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.rule} {self.indicator}: {self.message}"


def lint_text(text: str, name: str = "",
              extra_defined: Tuple[Tuple[str, int], ...] = ()
              ) -> List[LintFinding]:
    """Lint one Prolog program text; return the unwaived findings
    (L rules from the source walk, M rules from the whole-program
    analysis run over the same text)."""
    _ensure_builtin_registry()
    disabled, externals, unknown_rules = _parse_pragmas(text)
    reader = Reader()
    defined: Set[Tuple[str, int]] = set(extra_defined) | externals
    heads: List[Tuple[str, int]] = []  # clause heads, in source order
    first_arg_kinds: Dict[Tuple[str, int], List[str]] = {}
    clause_terms: Dict[Tuple[str, int], List[Term]] = {}
    calls: List[Tuple[Tuple[str, int], Tuple[str, int]]] = []
    findings: List[LintFinding] = []

    for clause in reader.read_terms(text):
        if isinstance(clause, Struct) and clause.name == ":-" \
                and clause.arity == 1:
            _apply_directive(clause.args[0], reader, defined)
            continue
        head, body = _split(clause)
        ind = _indicator(head)
        if ind is None:
            continue
        heads.append(ind)
        defined.add(ind)
        first_arg_kinds.setdefault(ind, []).append(_first_arg_kind(head))
        clause_terms.setdefault(ind, []).append(clause)
        for singleton in _singletons(clause):
            findings.append(LintFinding(
                "L101", _fmt(ind),
                f"singleton variable {singleton} in clause "
                f"{len(first_arg_kinds[ind])} of {_fmt(ind)}"))
        if body is not None:
            for goal_ind in _goal_indicators(body):
                calls.append((ind, goal_ind))

    # L103 — discontiguous clause blocks
    seen: Set[Tuple[str, int]] = set()
    reported: Set[Tuple[str, int]] = set()
    previous: Optional[Tuple[str, int]] = None
    for ind in heads:
        if ind != previous and ind in seen and ind not in reported:
            reported.add(ind)
            findings.append(LintFinding(
                "L103", _fmt(ind),
                f"clauses of {_fmt(ind)} are not contiguous"))
        seen.add(ind)
        previous = ind

    # L102 — undefined predicates in the call graph
    flagged: Set[Tuple[Tuple[str, int], Tuple[str, int]]] = set()
    for caller, callee in calls:
        if callee in defined or callee in _CONTROL:
            continue
        if _builtin(callee) or callee in _prelude_indicators():
            continue
        if (caller, callee) in flagged:
            continue
        flagged.add((caller, callee))
        findings.append(LintFinding(
            "L102", _fmt(callee),
            f"{_fmt(caller)} calls undefined {_fmt(callee)} "
            "(declare '% lint: external' if stored in the EDB)"))

    # L104 — unindexable multi-clause predicates
    for ind, kinds in first_arg_kinds.items():
        if len(kinds) < 2:
            continue
        if ind[1] == 0:
            findings.append(LintFinding(
                "L104", _fmt(ind),
                f"{_fmt(ind)} has {len(kinds)} clauses and no "
                "arguments to index on"))
        elif all(kind == "var" for kind in kinds):
            findings.append(LintFinding(
                "L104", _fmt(ind),
                f"every clause of {_fmt(ind)} starts with a variable; "
                "first-argument indexing cannot discriminate"))

    # L105 — recursive, Datalog-shaped, yet blocked from bottom-up
    findings.extend(_datalog_blocked(clause_terms))

    # L106 — pragmas naming rules this linter does not define
    for rule_id in sorted(unknown_rules):
        findings.append(LintFinding(
            "L106", rule_id,
            f"'% lint: disable={rule_id}' names an unknown rule "
            "(known: " + ", ".join(sorted(RULES)) + ")"))

    # M rules — whole-program mode/determinism findings over the same
    # text (docs/ANALYSIS.md, "M rules"); waived by the same pragmas
    from .global_ import analyze_program, program_from_text
    program = program_from_text(text, extra_defined=tuple(extra_defined))
    findings.extend(analyze_program(program).mode_findings())

    return [f for f in findings if not _waived(f, disabled)]


def _datalog_blocked(clause_terms: Dict[Tuple[str, int], List[Term]]
                     ) -> List[LintFinding]:
    """L105: recursive predicates whose clauses all extract into the
    Datalog fragment (docs/DATALOG.md) but that the set-at-a-time
    engine would still refuse — either a rule is not range-restricted,
    or the recursive cycle passes through a negation (unstratified).
    Non-Datalog-shaped predicates are not flagged: falling back to the
    WAM is their normal, intended execution."""
    from ..relational.datalog.rules import (
        NotDatalog, range_restriction_violation, rule_from_clause,
        stratify)

    extracted = {}
    for ind, terms in clause_terms.items():
        try:
            extracted[ind] = [rule_from_clause(t) for t in terms]
        except NotDatalog:
            continue
    if not extracted:
        return []
    _strata, recursive, _error = stratify(extracted)

    graph = {ind: {lit.pred for rule in rules for lit in rule.body
                   if lit.pred in extracted}
             for ind, rules in extracted.items()}

    def reaches(src: Tuple[str, int], dst: Tuple[str, int]) -> bool:
        seen: Set[Tuple[str, int]] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph[node])
        return False

    findings: List[LintFinding] = []
    for ind in sorted(extracted):
        if ind not in recursive:
            continue
        violation = next(
            (v for v in (range_restriction_violation(r)
                         for r in extracted[ind]) if v), None)
        if violation:
            findings.append(LintFinding(
                "L105", _fmt(ind),
                f"recursive predicate {_fmt(ind)} is Datalog-shaped but "
                f"blocked from bottom-up evaluation: {violation}"))
            continue
        for rule in extracted[ind]:
            negated = next(
                (lit for lit in rule.body if lit.negated
                 and lit.pred in graph and reaches(lit.pred, ind)), None)
            if negated is not None:
                findings.append(LintFinding(
                    "L105", _fmt(ind),
                    f"recursive predicate {_fmt(ind)} is Datalog-shaped "
                    "but blocked from bottom-up evaluation: its cycle "
                    f"passes through the negation of "
                    f"{_fmt(negated.pred)} (unstratified)"))
                break
    return findings


# =====================================================================
# Helpers
# =====================================================================

def _parse_pragmas(text: str):
    """Returns ``(disabled, externals, unknown_rules)``: the waiver
    map, the declared-external indicators, and any well-formed rule ids
    in ``disable=`` pragmas that no rule table defines (L106)."""
    disabled: Dict[str, Optional[Set[str]]] = {}
    externals: Set[Tuple[str, int]] = set()
    unknown: Set[str] = set()
    for m in _PRAGMA_RE.finditer(text):
        inds = [(name, int(arity))
                for name, arity in _IND_RE.findall(m.group("inds") or "")]
        if m.group("ext"):
            externals.update(inds)
        else:
            rule = m.group("rule")
            if rule not in RULES:
                unknown.add(rule)
            if not inds:
                disabled[rule] = None  # everywhere
            elif disabled.get(rule, set()) is not None:
                disabled.setdefault(rule, set()).update(
                    _fmt(ind) for ind in inds)
    return disabled, externals, unknown


def _waived(finding: LintFinding,
            disabled: Dict[str, Optional[Set[str]]]) -> bool:
    if finding.rule not in disabled:
        return False
    scope = disabled[finding.rule]
    return scope is None or finding.indicator in scope


def _fmt(ind: Tuple[str, int]) -> str:
    return f"{ind[0]}/{ind[1]}"


def _split(clause: Term):
    if isinstance(clause, Struct) and clause.name == ":-" \
            and clause.arity == 2:
        return clause.args[0], clause.args[1]
    return clause, None


def _indicator(head: Term) -> Optional[Tuple[str, int]]:
    if isinstance(head, Struct):
        return (head.name, head.arity)
    if isinstance(head, Atom):
        return (head.name, 0)
    return None


def _first_arg_kind(head: Term) -> str:
    if not isinstance(head, Struct) or head.arity == 0:
        return "none"
    arg = head.args[0]
    if isinstance(arg, Var):
        return "var"
    if isinstance(arg, Struct):
        return "list" if (arg.name == "." and arg.arity == 2) \
            else "struct"
    return "const"  # atoms and numbers


def _singletons(clause: Term) -> List[str]:
    counts: Dict[int, int] = {}
    vars_by_id: Dict[int, Var] = {}
    _count_vars(clause, counts, vars_by_id)
    out = []
    for key, n in counts.items():
        var = vars_by_id[key]
        if n == 1 and var.name and not var.name.startswith("_"):
            out.append(var.name)
    return sorted(out)


def _count_vars(term: Term, counts: Dict[int, int],
                vars_by_id: Dict[int, Var]) -> None:
    if isinstance(term, Var):
        counts[id(term)] = counts.get(id(term), 0) + 1
        vars_by_id[id(term)] = term
    elif isinstance(term, Struct):
        for arg in term.args:
            _count_vars(arg, counts, vars_by_id)


def _goal_indicators(body: Term) -> List[Tuple[str, int]]:
    """Indicators of every goal reachable in *body*, descending
    through the control constructs and meta-predicate goal arguments."""
    out: List[Tuple[str, int]] = []

    def walk(goal: Term) -> None:
        goal = _strip_caret(goal)
        if isinstance(goal, Var):
            return  # metacall through a variable: not analysable
        if isinstance(goal, Atom):
            out.append((goal.name, 0))
            return
        if not isinstance(goal, Struct):
            return  # a number in goal position is a runtime type error
        meta = _META_GOAL_ARGS.get((goal.name, goal.arity))
        if meta is not None:
            for pos in meta:
                walk(goal.args[pos])
            return
        if goal.name == "call" and goal.arity >= 2:
            target = goal.args[0]
            extra = goal.arity - 1
            if isinstance(target, Atom):
                out.append((target.name, extra))
            elif isinstance(target, Struct):
                out.append((target.name, target.arity + extra))
            return
        out.append((goal.name, goal.arity))

    walk(body)
    return out


def _strip_caret(goal: Term) -> Term:
    while isinstance(goal, Struct) and goal.name == "^" \
            and goal.arity == 2:
        goal = goal.args[1]
    return goal


def _apply_directive(directive: Term, reader: Reader,
                     defined: Set[Tuple[str, int]]) -> None:
    """Honour the directives lint cares about: operator declarations
    (so the rest of the text parses the way the machine parses it) and
    dynamic/discontiguous declarations (callable without clauses)."""
    if isinstance(directive, Struct) and directive.name == "op" \
            and directive.arity == 3:
        priority, type_, name = directive.args
        if isinstance(priority, int) and isinstance(type_, Atom) \
                and isinstance(name, Atom):
            reader.operators.add(priority, type_.name, name.name)
        return
    if isinstance(directive, Struct) and directive.arity == 1 \
            and directive.name in ("dynamic", "discontiguous"):
        for ind in _indicator_list(directive.args[0]):
            defined.add(ind)


def _indicator_list(term: Term) -> List[Tuple[str, int]]:
    if isinstance(term, Struct) and term.name == "," and term.arity == 2:
        return _indicator_list(term.args[0]) + \
            _indicator_list(term.args[1])
    if isinstance(term, Struct) and term.name == "/" and term.arity == 2:
        name, arity = term.args
        if isinstance(name, Atom) and isinstance(arity, int):
            return [(name.name, arity)]
    return []


def _builtin(ind: Tuple[str, int]) -> bool:
    from ..wam.compiler import is_builtin_indicator
    if is_builtin_indicator(ind[0], ind[1]):
        return True
    # call/N is open-ended; the registry holds a finite prefix
    return ind[0] == "call" and ind[1] >= 1


_PRELUDE: Optional[Set[Tuple[str, int]]] = None


def _prelude_indicators() -> Set[Tuple[str, int]]:
    """Head indicators of the prelude library (every session loads it,
    so its predicates are always callable)."""
    global _PRELUDE
    if _PRELUDE is None:
        from ..wam.prelude import PRELUDE_SOURCE
        indicators: Set[Tuple[str, int]] = set()
        for clause in Reader().read_terms(PRELUDE_SOURCE):
            head, _ = _split(clause)
            ind = _indicator(head)
            if ind is not None:
                indicators.add(ind)
        _PRELUDE = indicators
    return _PRELUDE


def _ensure_builtin_registry() -> None:
    """Import every module that registers builtin indicators, so the
    L102 defined-set matches what a real session can call."""
    from ..wam import builtins  # noqa: F401  (registers at import)
    from ..engine import cursors, relops, types  # noqa: F401
