"""``python -m repro.analysis`` — lint and verify Prolog/WAM code.

Subcommands::

    python -m repro.analysis                 # corpus: lint + verify all
    python -m repro.analysis corpus          # same, explicitly
    python -m repro.analysis lint F.pl ...   # lint source files
    python -m repro.analysis verify F.pl ... # compile + verify files
    python -m repro.analysis modes [F.pl...] # whole-program mode report
    python -m repro.analysis modes --json    # same, machine-readable

Exit codes are stable for CI: **0** clean, **1** findings, **2**
usage/parse error.  ``-q`` prints findings only.  For ``modes``,
findings are the unwaived M rules (docs/ANALYSIS.md).
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple

from ..errors import ReproError
from .corpus import CorpusEntry, corpus_entries
from .lint import LintFinding, lint_text
from .verifier import check_code

__all__ = ["main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    quiet = "-q" in args
    args = [a for a in args if a != "-q"]
    if not args:
        args = ["corpus"]
    command, operands = args[0], args[1:]

    if command == "corpus" and not operands:
        return _run_corpus(quiet)
    if command == "lint" and operands:
        return _run_files(operands, verify=False, quiet=quiet)
    if command == "verify" and operands:
        return _run_files(operands, verify=True, quiet=quiet)
    if command == "modes":
        return _run_modes(operands, quiet=quiet)
    print(__doc__.strip(), file=sys.stderr)
    return EXIT_ERROR


# =====================================================================
# Runners
# =====================================================================

def _run_corpus(quiet: bool) -> int:
    findings = 0
    units = 0
    procedures = 0
    hard_error = False
    for entry in corpus_entries():
        units += 1
        try:
            findings += _report_lint(entry.name,
                                     lint_text(entry.text,
                                               name=entry.name,
                                               extra_defined=entry.extra_defined))
        except ReproError as exc:
            hard_error = True
            print(f"{entry.name}: parse error: {exc}", file=sys.stderr)
            continue
        if entry.lint_only:
            continue
        try:
            n, unit_findings = _verify_entry(entry)
        except ReproError as exc:
            hard_error = True
            print(f"{entry.name}: compile error: {exc}", file=sys.stderr)
            continue
        procedures += n
        findings += unit_findings
    if not quiet:
        print(f"repro.analysis: {units} corpus units linted, "
              f"{procedures} procedures verified, "
              f"{findings} finding(s)")
    if hard_error:
        return EXIT_ERROR
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _verify_entry(entry: CorpusEntry) -> Tuple[int, int]:
    """Compile *entry* into a fresh session (self-verify armed, so the
    compiler and assembler check every block they emit) and verify
    every resulting procedure's code block."""
    from .. import EduceStar
    from . import enable_self_verify, self_verify_enabled
    was = self_verify_enabled()
    enable_self_verify(True)
    try:
        session = EduceStar()
        session.consult(entry.text)
    finally:
        enable_self_verify(was)
    checked = 0
    findings = 0
    machine = session.machine
    for proc in machine.procedures.values():
        if not proc.code:
            continue
        checked += 1
        for f in check_code(proc.code, arity=proc.arity,
                            dictionary=machine.dictionary):
            findings += 1
            print(f"{entry.name}: {proc.name}/{proc.arity}: "
                  f"{f.rule} @{f.offset}: {f.message}")
    return checked, findings


def _run_files(paths: List[str], verify: bool, quiet: bool) -> int:
    findings = 0
    procedures = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return EXIT_ERROR
        entry = CorpusEntry(path, text)
        try:
            findings += _report_lint(path, lint_text(text, name=path))
            if verify:
                n, unit_findings = _verify_entry(entry)
                procedures += n
                findings += unit_findings
        except ReproError as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
    if not quiet:
        what = f", {procedures} procedures verified" if verify else ""
        print(f"repro.analysis: {len(paths)} file(s){what}, "
              f"{findings} finding(s)")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _run_modes(operands: List[str], quiet: bool) -> int:
    """Whole-program mode/determinism report (docs/ANALYSIS.md).

    With file operands, each file is analysed as its own closed
    program; without, the shipped corpus is swept — which doubles as
    the totality check CI runs (exit 1 on any unwaived M finding)."""
    import json

    from .global_ import analyze_program, program_from_text
    from .lint import _parse_pragmas, _waived

    json_out = "--json" in operands
    paths = [p for p in operands if p != "--json"]
    if any(p.startswith("-") for p in paths):
        print(__doc__.strip(), file=sys.stderr)
        return EXIT_ERROR

    units: List[Tuple[str, str, Tuple[Tuple[str, int], ...]]] = []
    if paths:
        for path in paths:
            try:
                with open(path, "r", encoding="utf-8") as f:
                    units.append((path, f.read(), ()))
            except OSError as exc:
                print(f"{path}: {exc}", file=sys.stderr)
                return EXIT_ERROR
    else:
        units = [(e.name, e.text, tuple(e.extra_defined))
                 for e in corpus_entries()]

    findings = 0
    payload = []
    for name, text, extra in units:
        try:
            program = program_from_text(text, extra_defined=extra)
        except ReproError as exc:
            print(f"{name}: parse error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        report = analyze_program(program)
        disabled, _externals, _unknown = _parse_pragmas(text)
        unit_findings = [f for f in report.mode_findings()
                        if not _waived(f, disabled)]
        findings += len(unit_findings)
        if json_out:
            payload.append({"unit": name, "report": report.to_dict(),
                            "findings": [
                                {"rule": f.rule, "indicator": f.indicator,
                                 "message": f.message}
                                for f in unit_findings]})
            continue
        if not quiet:
            print(f"# {name}")
            print(report.describe())
        for f in unit_findings:
            print(f"{name}: {f.rule} {f.indicator}: {f.message}")
    if json_out:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif not quiet:
        print(f"repro.analysis: {len(units)} unit(s) analysed, "
              f"{findings} mode finding(s)")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _report_lint(unit: str, findings: List[LintFinding]) -> int:
    for f in findings:
        print(f"{unit}: {f.rule} {f.indicator}: {f.message}")
    return len(findings)
