"""Predicate-level call graph over a whole program (docs/ANALYSIS.md).

The whole-program pass needs one structural fact the per-procedure
analyses (D rules, L rules) never see: *who calls whom, and with what
argument terms*.  This module builds that graph from surface clauses —
the unit every program source in this repo ultimately reduces to
(main-memory procedures keep their clause terms, EDB-stored rules ride
the Datalog rulebase, program texts parse with the standard reader).

Metapredicate-awareness reuses the L102 contract: goals are discovered
by descending through the control constructs (``,``/``;``/``->``/...)
and through the goal-argument positions of the known meta-predicates
(:data:`META_GOAL_ARGS`, the table :mod:`repro.analysis.lint` shares).
``call/N`` closures count as calls to the closed-over indicator with
the extended arity; metacalls through a variable are not analysable
and contribute no edge.

Recursion is handled by condensing the graph into strongly connected
components (iterative Tarjan) — the mode/cardinality fixpoint widens
inside recursive SCCs (docs/ANALYSIS.md, "sound widening").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...terms import Atom, Struct, Term, Var

__all__ = ["META_GOAL_ARGS", "CallSite", "Program", "CallGraph",
           "build_call_graph", "iter_goals", "program_from_text",
           "program_from_session", "tarjan_sccs", "indicator_of",
           "split_clause_term"]

Indicator = Tuple[str, int]

#: goals the compiler handles directly (no registered indicator)
CONTROL_GOALS = {("true", 0), ("fail", 0), ("false", 0), ("!", 0),
                 ("otherwise", 0)}

#: meta-predicates: which argument positions are themselves goals.
#: This is the canonical table; :mod:`repro.analysis.lint` imports it
#: for L102 so source lint and whole-program analysis agree on what a
#: reachable goal is.
META_GOAL_ARGS: Dict[Indicator, Tuple[int, ...]] = {
    (",", 2): (0, 1), (";", 2): (0, 1), ("->", 2): (0, 1),
    ("\\+", 1): (0,), ("not", 1): (0,), ("once", 1): (0,),
    ("ignore", 1): (0,), ("call", 1): (0,), ("forall", 2): (0, 1),
    ("findall", 3): (1,), ("bagof", 3): (1,), ("setof", 3): (1,),
    ("aggregate_all", 3): (1,),
}


@dataclass(frozen=True)
class CallSite:
    """One goal occurrence: caller, callee, and the goal's argument
    terms (None for calls whose arguments are not statically visible,
    e.g. ``call/N`` closures with extra runtime arguments)."""
    caller: Indicator
    callee: Indicator
    args: Optional[Tuple[Term, ...]]


@dataclass
class Program:
    """The whole-program view the global analysis runs over.

    ``clauses`` maps each rule-defined predicate to its surface clause
    terms (source order); ``fact_rows`` holds EDB facts relations by
    row count (their clauses are not materialised — all-constant rows
    make their modes/cardinality directly computable); ``externals``
    are predicates declared defined elsewhere (``% lint: external``,
    dynamic declarations); ``entries`` are the analysis roots whose
    call modes seed at ⊤ (every argument ``any``).
    """
    clauses: Dict[Indicator, List[Term]] = field(default_factory=dict)
    fact_rows: Dict[Indicator, int] = field(default_factory=dict)
    externals: Set[Indicator] = field(default_factory=set)
    entries: List[Indicator] = field(default_factory=list)

    def defined(self) -> Set[Indicator]:
        return (set(self.clauses) | set(self.fact_rows)
                | set(self.externals))


@dataclass
class CallGraph:
    """Edges + call sites + SCC condensation of one :class:`Program`."""
    edges: Dict[Indicator, Set[Indicator]]
    sites: List[CallSite]
    #: SCCs in reverse topological order (callees before callers)
    sccs: List[List[Indicator]]
    scc_of: Dict[Indicator, int]

    def callers_of(self, ind: Indicator) -> Set[Indicator]:
        return {caller for caller, callees in self.edges.items()
                if ind in callees}

    def recursive(self, ind: Indicator) -> bool:
        """In a cycle: its SCC has >1 member, or it calls itself."""
        scc = self.sccs[self.scc_of[ind]]
        return len(scc) > 1 or ind in self.edges.get(ind, ())


def indicator_of(term: Term) -> Optional[Indicator]:
    if isinstance(term, Struct):
        return (term.name, term.arity)
    if isinstance(term, Atom):
        return (term.name, 0)
    return None


def split_clause_term(clause: Term) -> Tuple[Term, Optional[Term]]:
    if isinstance(clause, Struct) and clause.name == ":-" \
            and clause.arity == 2:
        return clause.args[0], clause.args[1]
    return clause, None


def iter_goals(body: Term) -> Iterator[Tuple[Indicator,
                                             Optional[Tuple[Term, ...]]]]:
    """Yield ``(indicator, args)`` for every goal reachable in *body*,
    descending control constructs and meta-predicate goal arguments.
    ``args`` is None when the call's arguments are not statically
    visible (``call/N`` with extra arguments)."""

    def walk(goal: Term) -> Iterator[Tuple[Indicator,
                                           Optional[Tuple[Term, ...]]]]:
        goal = _strip_caret(goal)
        if isinstance(goal, Var):
            return  # metacall through a variable: not analysable
        if isinstance(goal, Atom):
            yield (goal.name, 0), ()
            return
        if not isinstance(goal, Struct):
            return  # a number in goal position is a runtime type error
        meta = META_GOAL_ARGS.get((goal.name, goal.arity))
        if meta is not None:
            for pos in meta:
                yield from walk(goal.args[pos])
            return
        if goal.name == "call" and goal.arity >= 2:
            target = goal.args[0]
            extra = goal.arity - 1
            if isinstance(target, Atom):
                yield (target.name, extra), None
            elif isinstance(target, Struct):
                yield (target.name, target.arity + extra), None
            return
        yield (goal.name, goal.arity), tuple(goal.args)

    yield from walk(body)


def _strip_caret(goal: Term) -> Term:
    while isinstance(goal, Struct) and goal.name == "^" \
            and goal.arity == 2:
        goal = goal.args[1]
    return goal


def build_call_graph(program: Program) -> CallGraph:
    """The call graph of *program* plus its SCC condensation."""
    edges: Dict[Indicator, Set[Indicator]] = {
        ind: set() for ind in program.defined()}
    sites: List[CallSite] = []
    for ind, clauses in program.clauses.items():
        for clause in clauses:
            _head, body = split_clause_term(clause)
            if body is None:
                continue
            for callee, args in iter_goals(body):
                if callee in CONTROL_GOALS:
                    continue
                sites.append(CallSite(ind, callee, args))
                edges[ind].add(callee)
                edges.setdefault(callee, set())
    sccs = tarjan_sccs(edges)
    scc_of = {ind: i for i, scc in enumerate(sccs) for ind in scc}
    return CallGraph(edges=edges, sites=sites, sccs=sccs, scc_of=scc_of)


def tarjan_sccs(graph: Dict[Indicator, Set[Indicator]]
                ) -> List[List[Indicator]]:
    """Strongly connected components, iterative, in reverse
    topological order (every edge leaves a later component)."""
    index: Dict[Indicator, int] = {}
    low: Dict[Indicator, int] = {}
    on_stack: Set[Indicator] = set()
    stack: List[Indicator] = []
    sccs: List[List[Indicator]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[Indicator, Iterator[Indicator]]] = []
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(sorted(graph.get(root, ())))))
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: List[Indicator] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


# =====================================================================
# Program builders
# =====================================================================

def program_from_text(text: str,
                      extra_defined: Tuple[Indicator, ...] = ()
                      ) -> Program:
    """A :class:`Program` from one Prolog source text.  Pragma-declared
    externals and ``dynamic``/``discontiguous`` declarations become
    external predicates; call-graph roots (no in-edges) are the
    entries."""
    from ..lint import _parse_pragmas
    from ...lang.reader import Reader
    _disabled, externals, _unknown = _parse_pragmas(text)
    program = Program(externals=set(externals) | set(extra_defined))
    reader = Reader()
    for clause in reader.read_terms(text):
        if isinstance(clause, Struct) and clause.name == ":-" \
                and clause.arity == 1:
            _apply_directive(clause.args[0], reader, program)
            continue
        head, _body = split_clause_term(clause)
        ind = indicator_of(head)
        if ind is None:
            continue
        program.clauses.setdefault(ind, []).append(clause)
    _default_entries(program)
    return program


def program_from_session(session) -> Program:
    """A :class:`Program` over everything a live session can execute:
    main-memory procedures (their surface clauses), EDB-stored rules
    (the Datalog rulebase keeps every stored procedure's surface
    clauses), and EDB facts relations by row count."""
    program = Program()
    for proc in session.machine.procedures.values():
        if proc.kind == "external" or not proc.clauses:
            continue
        program.clauses[(proc.name, proc.arity)] = list(proc.clauses)
    with session.store.reading():
        for ind, clauses in session.store.datalog_rules.clauses().items():
            program.clauses.setdefault(ind, list(clauses))
    for proc in session.store.procedures():
        ind = (proc.name, proc.arity)
        if proc.mode == "facts":
            program.fact_rows[ind] = len(proc.relation)
        elif ind not in program.clauses:
            # rules stored before this process (rulebase dropped on
            # reopen): callable, but no surface clauses to analyse
            program.externals.add(ind)
    _default_entries(program)
    return program


def _default_entries(program: Program) -> None:
    """Closed-world default: the analysis roots are the predicates
    with no callers *outside their own SCC* — a predicate only its own
    recursion reaches can only ever be invoked by a top-level query,
    so its call modes must seed at all-``any``.  Any other predicate's
    inferred call modes describe the call sites the program itself
    contains (docs/ANALYSIS.md, "entry adornments")."""
    edges: Dict[Indicator, Set[Indicator]] = {
        ind: set() for ind in program.clauses}
    for ind, clauses in program.clauses.items():
        for clause in clauses:
            _head, body = split_clause_term(clause)
            if body is None:
                continue
            for callee, _args in iter_goals(body):
                if callee in program.clauses:
                    edges[ind].add(callee)
    sccs = tarjan_sccs(edges)
    scc_of = {ind: i for i, scc in enumerate(sccs) for ind in scc}
    entered = {scc_of[callee]
               for caller, callees in edges.items()
               for callee in callees
               if scc_of[caller] != scc_of[callee]}
    program.entries = sorted(
        ind for ind in program.clauses
        if scc_of[ind] not in entered)


def _apply_directive(directive: Term, reader, program: Program) -> None:
    if isinstance(directive, Struct) and directive.name == "op" \
            and directive.arity == 3:
        priority, type_, name = directive.args
        if isinstance(priority, int) and isinstance(type_, Atom) \
                and isinstance(name, Atom):
            reader.operators.add(priority, type_.name, name.name)
        return
    if isinstance(directive, Struct) and directive.arity == 1 \
            and directive.name in ("dynamic", "discontiguous"):
        for ind in _indicator_list(directive.args[0]):
            program.externals.add(ind)


def _indicator_list(term: Term) -> List[Indicator]:
    if isinstance(term, Struct) and term.name == "," and term.arity == 2:
        return _indicator_list(term.args[0]) + \
            _indicator_list(term.args[1])
    if isinstance(term, Struct) and term.name == "/" and term.arity == 2:
        name, arity = term.args
        if isinstance(name, Atom) and isinstance(arity, int):
            return [(name.name, arity)]
    return []
