"""Groundness/mode abstract interpretation to a fixpoint.

The lattice per argument position is three-valued::

    ground  ⊑  nonvar  ⊑  any

``ground`` — on success the argument is a fully instantiated term;
``nonvar`` — at least the principal functor is known; ``any`` — no
information (the top element; an unbound variable is one of its
concretisations).  Two signatures are inferred per predicate:

* **call modes** (top-down): the join over every call site of the
  abstract argument values at the call — "how is this predicate
  called by the program itself".  Analysis entries (call-graph roots)
  seed at all-``any``: the analysis is closed-world over the program
  but a top-level query may call an entry with anything.
* **success modes** (bottom-up): the join over clauses of the head
  arguments' abstraction after abstractly executing the body — "what
  is guaranteed bound once the predicate succeeds".

The two propagate through one global worklist: call modes flow down
into clause entry environments, success modes flow up out of clause
exits, and both are join-monotone over a finite lattice so the
fixpoint terminates.  A pass budget proportional to program size backs
this with *sound widening*: any predicate still moving when the budget
runs out is widened to ⊤ (all ``any``), which is trivially sound
(docs/ANALYSIS.md, "mode lattice").

Builtin signatures seed the system: each entry records the success
modes the builtin guarantees, the argument positions it *demands*
ground (used by lint rule M201 — calling one with a provably fresh
variable there is a guaranteed instantiation error), and its
solution-count bounds (consumed by :mod:`.cardinality`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...terms import Atom, Struct, Term, Var
from .callgraph import (CONTROL_GOALS, CallGraph, Indicator, Program,
                        build_call_graph, split_clause_term)

__all__ = ["GROUND", "NONVAR", "ANY", "INF", "BuiltinSig", "ModeResult",
           "builtin_signature", "infer_modes", "join", "refine",
           "mode_string", "leq"]

GROUND = "ground"
NONVAR = "nonvar"
ANY = "any"

_RANK = {GROUND: 0, NONVAR: 1, ANY: 2}
_LETTER = {GROUND: "g", NONVAR: "n", ANY: "a"}

#: unbounded solution count (the cardinality lattice's ∞)
INF = float("inf")


def join(a: str, b: str) -> str:
    """Least upper bound: the weaker of two facts."""
    return a if _RANK[a] >= _RANK[b] else b


def refine(a: str, b: str) -> str:
    """Greatest lower bound: both facts hold, keep the stronger."""
    return a if _RANK[a] <= _RANK[b] else b


def leq(a: str, b: str) -> bool:
    """True when *a* is at least as strong as *b* (a ⊑ b)."""
    return _RANK[a] <= _RANK[b]


def mode_string(modes: Tuple[str, ...]) -> str:
    """Compact rendering: ``g``/``n``/``a`` per argument ("gna")."""
    return "".join(_LETTER[m] for m in modes)


@dataclass(frozen=True)
class BuiltinSig:
    """What a builtin guarantees and demands (docs/ANALYSIS.md).

    ``success`` — per-argument mode on success (None = all ``any``);
    ``demands`` — positions that must be ground at call time or the
    builtin raises an instantiation/type error; ``card`` — solution
    count bounds ``(min, max)`` with ``max`` in ``{0, 1, INF}``.
    """
    success: Optional[Tuple[str, ...]] = None
    demands: Tuple[int, ...] = ()
    card: Tuple[float, float] = (0, INF)


_DET = (1, 1)
_SEMIDET = (0, 1)
_FAILS = (0, 0)

#: builtin signature table, keyed by indicator.  Entries cover the
#: builtins the shipped corpus exercises; any unlisted builtin gets
#: the sound default ``BuiltinSig()`` (no guarantees, no demands,
#: 0..∞ solutions).
_SIGS: Dict[Indicator, BuiltinSig] = {
    ("true", 0): BuiltinSig(card=_DET),
    ("otherwise", 0): BuiltinSig(card=_DET),
    ("fail", 0): BuiltinSig(card=_FAILS),
    ("false", 0): BuiltinSig(card=_FAILS),
    ("!", 0): BuiltinSig(card=_DET),
    ("halt", 0): BuiltinSig(card=_DET),
    ("nl", 0): BuiltinSig(card=_DET),
    ("is", 2): BuiltinSig(success=(GROUND, GROUND), demands=(1,),
                          card=_SEMIDET),
    ("<", 2): BuiltinSig(success=(GROUND, GROUND), demands=(0, 1),
                         card=_SEMIDET),
    (">", 2): BuiltinSig(success=(GROUND, GROUND), demands=(0, 1),
                         card=_SEMIDET),
    ("=<", 2): BuiltinSig(success=(GROUND, GROUND), demands=(0, 1),
                          card=_SEMIDET),
    (">=", 2): BuiltinSig(success=(GROUND, GROUND), demands=(0, 1),
                          card=_SEMIDET),
    ("=:=", 2): BuiltinSig(success=(GROUND, GROUND), demands=(0, 1),
                           card=_SEMIDET),
    ("=\\=", 2): BuiltinSig(success=(GROUND, GROUND), demands=(0, 1),
                            card=_SEMIDET),
    ("=", 2): BuiltinSig(card=_SEMIDET),
    ("\\=", 2): BuiltinSig(card=_SEMIDET),
    ("==", 2): BuiltinSig(card=_SEMIDET),
    ("\\==", 2): BuiltinSig(card=_SEMIDET),
    ("@<", 2): BuiltinSig(card=_SEMIDET),
    ("@>", 2): BuiltinSig(card=_SEMIDET),
    ("@=<", 2): BuiltinSig(card=_SEMIDET),
    ("@>=", 2): BuiltinSig(card=_SEMIDET),
    ("compare", 3): BuiltinSig(success=(GROUND, ANY, ANY), card=_SEMIDET),
    ("unify_with_occurs_check", 2): BuiltinSig(card=_SEMIDET),
    ("var", 1): BuiltinSig(card=_SEMIDET),
    ("nonvar", 1): BuiltinSig(success=(NONVAR,), card=_SEMIDET),
    ("atom", 1): BuiltinSig(success=(GROUND,), card=_SEMIDET),
    ("atomic", 1): BuiltinSig(success=(GROUND,), card=_SEMIDET),
    ("number", 1): BuiltinSig(success=(GROUND,), card=_SEMIDET),
    ("integer", 1): BuiltinSig(success=(GROUND,), card=_SEMIDET),
    ("float", 1): BuiltinSig(success=(GROUND,), card=_SEMIDET),
    ("callable", 1): BuiltinSig(success=(NONVAR,), card=_SEMIDET),
    ("compound", 1): BuiltinSig(success=(NONVAR,), card=_SEMIDET),
    ("is_list", 1): BuiltinSig(success=(GROUND,), card=_SEMIDET),
    ("ground", 1): BuiltinSig(success=(GROUND,), card=_SEMIDET),
    ("acyclic_term", 1): BuiltinSig(card=_SEMIDET),
    ("cyclic_term", 1): BuiltinSig(card=_SEMIDET),
    ("functor", 3): BuiltinSig(success=(NONVAR, GROUND, GROUND),
                               card=_SEMIDET),
    ("arg", 3): BuiltinSig(success=(GROUND, NONVAR, ANY),
                           demands=(0,), card=_SEMIDET),
    ("=..", 2): BuiltinSig(success=(NONVAR, NONVAR), card=_SEMIDET),
    ("copy_term", 2): BuiltinSig(card=_DET),
    ("atom_codes", 2): BuiltinSig(success=(GROUND, GROUND),
                                  card=_SEMIDET),
    ("atom_chars", 2): BuiltinSig(success=(GROUND, GROUND),
                                  card=_SEMIDET),
    ("atom_length", 2): BuiltinSig(success=(GROUND, GROUND),
                                   demands=(0,), card=_SEMIDET),
    ("atom_number", 2): BuiltinSig(success=(GROUND, GROUND),
                                   card=_SEMIDET),
    ("atom_concat", 3): BuiltinSig(success=(GROUND, GROUND, GROUND)),
    ("char_code", 2): BuiltinSig(success=(GROUND, GROUND),
                                 card=_SEMIDET),
    ("number_codes", 2): BuiltinSig(success=(GROUND, GROUND),
                                    card=_SEMIDET),
    ("term_to_atom", 2): BuiltinSig(success=(ANY, GROUND),
                                    card=_SEMIDET),
    ("between", 3): BuiltinSig(success=(GROUND, GROUND, GROUND),
                               demands=(0, 1)),
    ("succ", 2): BuiltinSig(success=(GROUND, GROUND), card=_SEMIDET),
    ("plus", 3): BuiltinSig(success=(GROUND, GROUND, GROUND),
                            card=_SEMIDET),
    ("length", 2): BuiltinSig(success=(NONVAR, GROUND)),
    # sort/msort/keysort demand a proper list *spine*, not ground
    # elements — no `demands` entry (M201 would over-flag).
    ("sort", 2): BuiltinSig(success=(NONVAR, NONVAR), card=_SEMIDET),
    ("msort", 2): BuiltinSig(success=(NONVAR, NONVAR), card=_SEMIDET),
    ("keysort", 2): BuiltinSig(success=(NONVAR, NONVAR),
                               card=_SEMIDET),
    ("findall", 3): BuiltinSig(success=(ANY, ANY, NONVAR), card=_DET),
    ("bagof", 3): BuiltinSig(success=(ANY, ANY, NONVAR)),
    ("setof", 3): BuiltinSig(success=(ANY, ANY, NONVAR)),
    ("aggregate_all", 3): BuiltinSig(success=(ANY, ANY, ANY),
                                     card=_DET),
    ("forall", 2): BuiltinSig(card=_SEMIDET),
    ("\\+", 1): BuiltinSig(card=_SEMIDET),
    ("not", 1): BuiltinSig(card=_SEMIDET),
    ("once", 1): BuiltinSig(card=_SEMIDET),
    ("ignore", 1): BuiltinSig(card=_DET),
    ("write", 1): BuiltinSig(card=_DET),
    ("writeln", 1): BuiltinSig(card=_DET),
    ("writeq", 1): BuiltinSig(card=_DET),
    ("write_canonical", 1): BuiltinSig(card=_DET),
    ("print", 1): BuiltinSig(card=_DET),
    ("tab", 1): BuiltinSig(demands=(0,), card=_DET),
    ("assert", 1): BuiltinSig(card=_DET),
    ("asserta", 1): BuiltinSig(card=_DET),
    ("assertz", 1): BuiltinSig(card=_DET),
    ("retract", 1): BuiltinSig(),
    ("retractall", 1): BuiltinSig(card=_DET),
    ("statistics", 2): BuiltinSig(card=_SEMIDET),
}

_DEFAULT_SIG = BuiltinSig()


def builtin_signature(ind: Indicator) -> Optional[BuiltinSig]:
    """The signature of a registered builtin, the sound default for a
    registered-but-unlisted one, None for a non-builtin."""
    sig = _SIGS.get(ind)
    if sig is not None:
        return sig
    from ...wam.compiler import is_builtin_indicator
    if is_builtin_indicator(ind[0], ind[1]) or \
            (ind[0] == "call" and ind[1] >= 1):
        return _DEFAULT_SIG
    if ind in CONTROL_GOALS:
        return _SIGS.get(ind, _DEFAULT_SIG)
    return None


# =====================================================================
# The fixpoint
# =====================================================================

@dataclass
class ModeResult:
    """Inferred signatures for every analysed predicate."""
    call_modes: Dict[Indicator, Tuple[str, ...]]
    success_modes: Dict[Indicator, Tuple[str, ...]]
    #: predicates widened to ⊤ when the pass budget ran out
    widened: Set[Indicator] = field(default_factory=set)
    iterations: int = 0
    #: predicates with at least one analysed call site (call modes of
    #: a predicate without one describe nothing)
    called: Set[Indicator] = field(default_factory=set)


def _tops(arity: int) -> Tuple[str, ...]:
    return (ANY,) * arity


def _bottoms(arity: int) -> Tuple[str, ...]:
    return (GROUND,) * arity


def infer_modes(program: Program, graph: Optional[CallGraph] = None
                ) -> ModeResult:
    """Run the groundness fixpoint over *program*.

    Success modes start at ⊥ (all ``ground``) and only move up as
    clause bodies are abstractly executed under the current call
    modes; call modes start at the entry seeds and only move up as
    call sites are observed.  Both joins are monotone over a finite
    lattice, so the loop reaches a fixpoint; the pass budget widens
    anything still moving to ⊤ (sound: ⊤ claims nothing).
    """
    if graph is None:
        graph = build_call_graph(program)
    call_modes: Dict[Indicator, Tuple[str, ...]] = {}
    success_modes: Dict[Indicator, Tuple[str, ...]] = {}
    called: Set[Indicator] = set()

    for ind in program.clauses:
        call_modes[ind] = _bottoms(ind[1])
        success_modes[ind] = _bottoms(ind[1])
    for ind in program.entries:
        call_modes[ind] = _tops(ind[1])
    for ind in program.fact_rows:
        # EDB facts rows are all-constant tuples: ground on success.
        success_modes[ind] = _bottoms(ind[1])
    for ind in program.externals:
        success_modes[ind] = _tops(ind[1])

    def succ_of(ind: Indicator) -> Tuple[str, ...]:
        sig = builtin_signature(ind)
        if sig is not None:
            return sig.success if sig.success is not None \
                else _tops(ind[1])
        return success_modes.get(ind, _tops(ind[1]))

    budget = 4 * (len(program.clauses) + 4)
    widened: Set[Indicator] = set()
    iterations = 0
    changed = True
    while changed:
        if iterations >= budget:
            # Sound widening: anything we are still refining goes to ⊤.
            for ind in program.clauses:
                top = _tops(ind[1])
                if call_modes[ind] != top or success_modes[ind] != top:
                    widened.add(ind)
                call_modes[ind] = top
                success_modes[ind] = top
            break
        iterations += 1
        changed = False
        new_calls: Dict[Indicator, Tuple[str, ...]] = {}

        def record_call(callee: Indicator,
                        args: Optional[Tuple[str, ...]]) -> None:
            if callee not in program.clauses:
                return
            called.add(callee)
            if args is None or len(args) != callee[1]:
                args = _tops(callee[1])
            prev = new_calls.get(callee)
            if prev is None:
                new_calls[callee] = tuple(args)
            else:
                new_calls[callee] = tuple(
                    join(a, b) for a, b in zip(prev, args))

        for ind, clauses in program.clauses.items():
            succ = _tops(ind[1])
            contributions = []
            for clause in clauses:
                contributions.append(_clause_success(
                    clause, call_modes[ind], succ_of, record_call))
            if contributions:
                succ = tuple(
                    max(col, key=lambda m: _RANK[m])
                    for col in zip(*contributions)
                ) if ind[1] else ()
            new = tuple(join(a, b)
                        for a, b in zip(success_modes[ind], succ))
            if new != success_modes[ind]:
                success_modes[ind] = new
                changed = True

        for ind in program.clauses:
            seed = (_tops(ind[1]) if ind in program.entries
                    else call_modes[ind])
            site = new_calls.get(ind)
            if site is not None:
                seed = tuple(join(a, b) for a, b in zip(seed, site))
            if seed != call_modes[ind]:
                call_modes[ind] = seed
                changed = True

    return ModeResult(call_modes=call_modes,
                      success_modes=success_modes,
                      widened=widened, iterations=iterations,
                      called=called)


# =====================================================================
# Abstract clause execution
# =====================================================================

def abstract_term(term: Term, env: Dict[int, str]) -> str:
    """The lattice value of *term* under the variable environment."""
    if isinstance(term, Var):
        return env.get(id(term), ANY)
    if isinstance(term, Struct):
        if all(abstract_term(a, env) == GROUND for a in term.args):
            return GROUND
        return NONVAR
    return GROUND  # atoms and numbers


def bind_term(term: Term, value: str, env: Dict[int, str]) -> None:
    """Propagate a success-mode fact about *term* into its variables.
    ``ground`` grounds every variable in the term; ``nonvar`` only
    informs a bare variable (a compound is already nonvar)."""
    if value == GROUND:
        for var in _term_vars(term):
            env[id(var)] = refine(env.get(id(var), ANY), GROUND)
    elif value == NONVAR and isinstance(term, Var):
        env[id(term)] = refine(env.get(id(term), ANY), NONVAR)


def _term_vars(term: Term) -> List[Var]:
    out: List[Var] = []
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            out.append(t)
        elif isinstance(t, Struct):
            stack.extend(t.args)
    return out


def _join_envs(a: Dict[int, str], b: Dict[int, str]) -> Dict[int, str]:
    """Pointwise join: a fact survives only if both branches prove it
    (absence means ``any``)."""
    out: Dict[int, str] = {}
    for key in set(a) & set(b):
        v = join(a[key], b[key])
        if v != ANY:
            out[key] = v
    return out


def _clause_success(clause: Term, call_modes: Tuple[str, ...],
                    succ_of, record_call) -> Tuple[str, ...]:
    """Abstractly execute one clause under *call_modes*; return the
    head arguments' abstraction at the clause exit (this clause's
    contribution to the predicate's success modes)."""
    head, body = split_clause_term(clause)
    env: Dict[int, str] = {}
    if isinstance(head, Struct):
        for arg, mode in zip(head.args, call_modes):
            bind_term(arg, mode, env)
    if body is not None:
        _walk_goal(body, env, succ_of, record_call)
    if not isinstance(head, Struct):
        return ()
    return tuple(abstract_term(arg, env) for arg in head.args)


def _walk_goal(goal: Term, env: Dict[int, str], succ_of,
               record_call) -> None:
    """Abstract execution of one body goal, updating *env* in place."""
    if isinstance(goal, Var):
        return
    if isinstance(goal, Atom):
        record_call((goal.name, 0), ())
        return
    if not isinstance(goal, Struct):
        return
    ind = (goal.name, goal.arity)

    if ind == (",", 2):
        _walk_goal(goal.args[0], env, succ_of, record_call)
        _walk_goal(goal.args[1], env, succ_of, record_call)
        return
    if ind == (";", 2):
        left = goal.args[0]
        if isinstance(left, Struct) and left.indicator == ("->", 2):
            then_env = dict(env)
            _walk_goal(left.args[0], then_env, succ_of, record_call)
            _walk_goal(left.args[1], then_env, succ_of, record_call)
            else_env = dict(env)
            _walk_goal(goal.args[1], else_env, succ_of, record_call)
            merged = _join_envs(then_env, else_env)
        else:
            left_env = dict(env)
            _walk_goal(left, left_env, succ_of, record_call)
            right_env = dict(env)
            _walk_goal(goal.args[1], right_env, succ_of, record_call)
            merged = _join_envs(left_env, right_env)
        env.clear()
        env.update(merged)
        return
    if ind == ("->", 2):
        # bare if-then: both parts execute on the success path
        _walk_goal(goal.args[0], env, succ_of, record_call)
        _walk_goal(goal.args[1], env, succ_of, record_call)
        return
    if ind in (("\\+", 1), ("not", 1)):
        # bindings made inside a failed proof do not escape
        scratch = dict(env)
        _walk_goal(goal.args[0], scratch, succ_of, record_call)
        return
    if ind == ("once", 1) or ind == ("call", 1):
        _walk_goal(goal.args[0], env, succ_of, record_call)
        return
    if ind == ("ignore", 1):
        # ignore/1 succeeds whether or not the goal did: no guarantees
        scratch = dict(env)
        _walk_goal(goal.args[0], scratch, succ_of, record_call)
        return
    if ind == ("forall", 2):
        scratch = dict(env)
        _walk_goal(goal.args[0], scratch, succ_of, record_call)
        _walk_goal(goal.args[1], scratch, succ_of, record_call)
        return
    if ind in (("findall", 3), ("bagof", 3), ("setof", 3),
               ("aggregate_all", 3)):
        scratch = dict(env)
        _walk_goal(goal.args[1], scratch, succ_of, record_call)
        bind_term(goal.args[2], NONVAR, env)
        return
    if goal.name == "call" and goal.arity >= 2:
        target = goal.args[0]
        extra = goal.arity - 1
        if isinstance(target, Atom):
            record_call((target.name, extra), None)
        elif isinstance(target, Struct):
            record_call((target.name, target.arity + extra), None)
        return
    if ind == ("=", 2):
        left, right = goal.args
        value = refine(abstract_term(left, env),
                       abstract_term(right, env))
        bind_term(left, value, env)
        bind_term(right, value, env)
        return
    if ind in CONTROL_GOALS:
        return

    args_abs = tuple(abstract_term(a, env) for a in goal.args)
    record_call(ind, args_abs)
    for arg, mode in zip(goal.args, succ_of(ind)):
        bind_term(arg, mode, env)
