"""Whole-program analysis façade and report (docs/ANALYSIS.md).

:func:`analyze_program` runs the full pass — call graph, groundness
fixpoint, cardinality — and returns a :class:`GlobalReport` holding
per-predicate :class:`PredicateInfo` plus the ``analysis_global_*``
counters the exposition publishes.  The report is also the consumer
API:

* :meth:`GlobalReport.bound_args` — argument positions proven ground
  at every analysed call site, the input to the WAM optimizer's
  interprocedural ``switch_on_arg`` guards.  These are *profitability*
  facts, not safety facts: the generalized guard is observationally
  equivalent for every call pattern (docs/OPTIMIZER.md), so a
  top-level query that bypasses the analysed call sites merely takes
  the unguarded path.
* :meth:`GlobalReport.mode_findings` — the M lint rules (M201/M202/
  M203), returned as :class:`~repro.analysis.lint.LintFinding` so the
  standard ``% lint: disable=`` pragmas waive them.
* :meth:`GlobalReport.describe` / :meth:`GlobalReport.to_dict` — the
  ``:modes`` REPL command and ``python -m repro.analysis modes
  [--json]`` renderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...terms import Struct, Var
from .callgraph import (CallGraph, Indicator, Program,
                        build_call_graph, iter_goals,
                        split_clause_term)
from .cardinality import (CardResult, infer_cardinality)
from .modes import (ModeResult, builtin_signature, GROUND, infer_modes,
                    mode_string)

__all__ = ["PredicateInfo", "GlobalReport", "analyze_program"]


@dataclass
class PredicateInfo:
    """Everything the analysis inferred about one predicate."""
    indicator: Indicator
    source: str               # "clauses" | "facts" | "external"
    clauses: int = 0
    rows: int = 0
    call_modes: Optional[Tuple[str, ...]] = None
    success_modes: Optional[Tuple[str, ...]] = None
    determinism: Optional[str] = None
    recursive: bool = False
    widened: bool = False
    called: bool = False
    entry: bool = False
    #: argument position that makes the predicate det under modes
    det_arg: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "indicator": f"{self.indicator[0]}/{self.indicator[1]}",
            "source": self.source,
        }
        if self.source == "clauses":
            out["clauses"] = self.clauses
        if self.source == "facts":
            out["rows"] = self.rows
        if self.call_modes is not None:
            out["call_modes"] = mode_string(self.call_modes)
        if self.success_modes is not None:
            out["success_modes"] = mode_string(self.success_modes)
        if self.determinism is not None:
            out["determinism"] = self.determinism
        out["recursive"] = self.recursive
        out["called"] = self.called
        out["entry"] = self.entry
        if self.widened:
            out["widened"] = True
        if self.det_arg is not None:
            out["det_under_modes_arg"] = self.det_arg
        return out


@dataclass
class GlobalReport:
    """The result of one whole-program analysis run."""
    program: Program
    graph: CallGraph
    modes: ModeResult
    cards: CardResult
    infos: Dict[Indicator, PredicateInfo] = field(default_factory=dict)

    def counters(self) -> Dict[str, int]:
        return {
            "analysis_global_predicates": len(self.infos),
            "analysis_global_sccs": len(self.graph.sccs),
            "analysis_global_iterations": self.modes.iterations,
            "analysis_global_widenings": len(self.modes.widened),
        }

    def info(self, name: str, arity: int) -> Optional[PredicateInfo]:
        return self.infos.get((name, arity))

    def bound_args(self) -> Dict[Indicator, Tuple[int, ...]]:
        """Argument positions proven ground at every analysed call
        site.  Restricted to predicates the program itself calls and
        that are not analysis entries — an entry's call modes are ⊤ by
        construction.  Purely a profitability map (see module doc)."""
        out: Dict[Indicator, Tuple[int, ...]] = {}
        entries = set(self.program.entries)
        for ind, info in self.infos.items():
            if info.source != "clauses" or not info.called:
                continue
            if ind in entries or info.widened:
                continue
            call = self.modes.call_modes.get(ind)
            if not call:
                continue
            positions = tuple(i for i, m in enumerate(call)
                              if m == GROUND)
            if positions:
                out[ind] = positions
        return out

    # -- renderings ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "global_analysis",
            "predicates": [self.infos[ind].to_dict()
                           for ind in sorted(self.infos)],
            "entries": [f"{n}/{a}" for n, a in self.program.entries],
            "counters": self.counters(),
        }

    def describe(self, name: Optional[str] = None,
                 arity: Optional[int] = None) -> str:
        """Text rendering; restricted to one predicate when asked."""
        lines: List[str] = []
        inds = sorted(self.infos)
        if name is not None:
            inds = [i for i in inds if i[0] == name
                    and (arity is None or i[1] == arity)]
            if not inds:
                return f"no analysed predicate matches {name}" + \
                    ("" if arity is None else f"/{arity}")
        else:
            header = (f"{len(self.infos)} predicates, "
                      f"{len(self.graph.sccs)} SCCs, "
                      f"{self.modes.iterations} iterations, "
                      f"{len(self.modes.widened)} widened")
            lines.append(header)
        for ind in inds:
            info = self.infos[ind]
            bits = [f"{ind[0]}/{ind[1]}:"]
            if info.call_modes is not None:
                bits.append(f"call={mode_string(info.call_modes)}")
            if info.success_modes is not None:
                bits.append(f"succ={mode_string(info.success_modes)}")
            if info.determinism is not None:
                bits.append(f"det={info.determinism}")
            flags = [flag for flag, on in (
                ("recursive", info.recursive), ("entry", info.entry),
                ("widened", info.widened)) if on]
            if info.source != "clauses":
                flags.append(info.source)
            if info.det_arg is not None:
                flags.append(f"det_under_modes@{info.det_arg}")
            if flags:
                bits.append("[" + ",".join(flags) + "]")
            lines.append(" ".join(bits))
        return "\n".join(lines)

    # -- M lint rules -------------------------------------------------

    def mode_findings(self) -> List[Any]:
        """M201/M202/M203 findings over the analysed program, as
        :class:`~repro.analysis.lint.LintFinding` records."""
        from ..lint import LintFinding

        findings: List[Any] = []
        for ind in sorted(self.program.clauses):
            name = f"{ind[0]}/{ind[1]}"
            for clause_no, clause in enumerate(
                    self.program.clauses[ind], start=1):
                for goal_name, pos, var in _fresh_demanded(clause):
                    findings.append(LintFinding(
                        "M201", name,
                        f"clause {clause_no} of {name} calls "
                        f"{goal_name} with the unbound variable "
                        f"{var} in a position that must be ground "
                        "(guaranteed instantiation error)"))
            info = self.infos[ind]
            if info.determinism == "fails" and not info.recursive:
                findings.append(LintFinding(
                    "M202", name,
                    f"{name} provably always fails: no clause can "
                    "produce a solution"))
            if info.det_arg is not None and info.det_arg >= 1:
                findings.append(LintFinding(
                    "M203", name,
                    f"{name} is deterministic under its inferred call "
                    f"modes (argument {info.det_arg + 1} is always "
                    "ground and discriminates every clause) but "
                    "first-argument indexing cannot see it: the "
                    "compiled code keeps a dead choice point"))
        return findings


def analyze_program(program: Program) -> GlobalReport:
    """Run the whole pass: call graph → groundness fixpoint →
    cardinality (mode-refined)."""
    graph = build_call_graph(program)
    modes = infer_modes(program, graph)
    cards = infer_cardinality(program, graph, modes)
    report = GlobalReport(program=program, graph=graph, modes=modes,
                          cards=cards)
    entries = set(program.entries)
    for ind in sorted(program.defined()):
        if ind in program.clauses:
            source = "clauses"
        elif ind in program.fact_rows:
            source = "facts"
        else:
            source = "external"
        info = PredicateInfo(
            indicator=ind, source=source,
            clauses=len(program.clauses.get(ind, ())),
            rows=program.fact_rows.get(ind, 0),
            recursive=graph.recursive(ind) if ind in graph.scc_of
            else False,
            widened=ind in modes.widened,
            called=ind in modes.called,
            entry=ind in entries,
            det_arg=cards.det_under_modes.get(ind),
        )
        if ind in program.clauses:
            info.call_modes = modes.call_modes.get(ind)
            info.success_modes = modes.success_modes.get(ind)
        info.determinism = cards.class_of(ind)
        report.infos[ind] = info
    return report


def _fresh_demanded(clause) -> List[Tuple[str, int, str]]:
    """M201 core: ``(goal, position, variable-name)`` triples where a
    variable's *first occurrence in the clause* sits in a builtin's
    demanded-ground position — the call is a guaranteed instantiation
    error if reached (a fresh variable is unbound by definition)."""
    head, body = split_clause_term(clause)
    if body is None:
        return []
    seen: set = set()
    if isinstance(head, Struct):
        for arg in head.args:
            _collect_var_ids(arg, seen)
    out: List[Tuple[str, int, str]] = []
    for ind, args in iter_goals(body):
        if args is None:
            continue
        sig = builtin_signature(ind)
        if sig is not None and sig.demands:
            for pos in sig.demands:
                if pos >= len(args):
                    continue
                fresh = _first_fresh_var(args[pos], seen)
                if fresh is not None:
                    out.append((f"{ind[0]}/{ind[1]}", pos,
                                fresh.name or "_"))
        for arg in args:
            _collect_var_ids(arg, seen)
    return out


def _first_fresh_var(term, seen: set) -> Optional[Var]:
    """A variable in *term* with no earlier occurrence, if any — a
    demanded-ground position containing one cannot be satisfied."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var) and id(t) not in seen:
            return t
        if isinstance(t, Struct):
            stack.extend(reversed(t.args))
    return None


def _collect_var_ids(term, seen: set) -> None:
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            seen.add(id(t))
        elif isinstance(t, Struct):
            stack.extend(t.args)
