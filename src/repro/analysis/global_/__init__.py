"""Whole-program analysis: call graph, groundness/mode fixpoint,
determinism/cardinality classes (docs/ANALYSIS.md, "Whole-program
analysis").

The package is named ``global_`` because ``global`` is a Python
keyword.  Entry points:

* :func:`program_from_text` / :func:`program_from_session` — build the
  :class:`Program` view the pass runs over;
* :func:`analyze_program` — run everything, get a
  :class:`GlobalReport`;
* the report's :meth:`~GlobalReport.bound_args`,
  :meth:`~GlobalReport.mode_findings`, :meth:`~GlobalReport.describe`
  feed the WAM optimizer, the linter's M rules, and the ``:modes``/
  ``python -m repro.analysis modes`` surfaces respectively.
"""

from .callgraph import (CallGraph, CallSite, Program, build_call_graph,
                        iter_goals, program_from_session,
                        program_from_text, tarjan_sccs)
from .cardinality import (CardResult, class_name, infer_cardinality)
from .modes import (ANY, GROUND, NONVAR, BuiltinSig, ModeResult,
                    builtin_signature, infer_modes, join, leq,
                    mode_string, refine)
from .report import GlobalReport, PredicateInfo, analyze_program

__all__ = [
    "ANY", "GROUND", "NONVAR", "BuiltinSig", "CallGraph", "CallSite",
    "CardResult", "GlobalReport", "ModeResult", "PredicateInfo",
    "Program", "analyze_program", "build_call_graph",
    "builtin_signature", "class_name", "infer_cardinality",
    "infer_modes", "iter_goals", "join", "leq", "mode_string",
    "program_from_session", "program_from_text", "refine",
    "tarjan_sccs",
]
