"""Determinism/cardinality inference (docs/ANALYSIS.md, "determinism").

Every predicate gets a solution-count abstraction ``(min, max)`` with
``min ∈ {0, 1}`` and ``max ∈ {0, 1, ∞}``, named by the usual classes::

    fails    (0, 0)   provably no solution
    det      (1, 1)   exactly one solution
    semidet  (0, 1)   at most one solution
    multi    (1, ∞)   at least one solution
    nondet   (0, ∞)   no information (the top element)

Composition is the obvious interval arithmetic: a clause body's
``max`` is the product of its goals' maxima (any ∞ dominates), its
``min`` the product of minima; a predicate's ``max`` is the capped sum
over its clauses and its ``min`` the best single clause's guaranteed
floor — but clauses *after* one containing a cut cannot contribute to
the guaranteed floor of calls the earlier clause committed, so the
``min`` sum stops at the first cut-bearing clause.  A clause
guarantees ``min ≥ 1`` only when its head cannot fail to unify for
*some* call — we require the conservative syntactic condition that
every head argument is a distinct fresh variable (linear variable
head) and the body's ``min ≥ 1``.

Recursive SCC members are widened to ``max = ∞`` (a recursive call
may multiply solutions without bound) while the ``min`` computation
stays (a recursive predicate can still be provably failing if every
base case is).  The companion refinement :func:`refine_with_modes`
re-examines ``max`` under the *inferred call modes*: when every call
site proves argument *k* ground and the clause heads carry pairwise
distinct constants there, at most one clause can match — "det under
inferred modes", the fact the optimizer's interprocedural guards and
lint rule M203 consume.

**Soundness contract**: the classes bound the solution counts of
calls that terminate without raising; a predicate classed ``det`` may
still loop or throw (termination is out of scope, as is every
abstract interpretation here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...terms import Atom, Struct, Term, Var
from .callgraph import (CONTROL_GOALS, CallGraph, Indicator, Program,
                        split_clause_term)
from .modes import (GROUND, INF, ModeResult, builtin_signature)

__all__ = ["Card", "CardResult", "infer_cardinality", "class_name",
           "refine_with_modes"]

#: (min, max) solution bounds; max may be INF
Card = Tuple[float, float]

_TOP: Card = (0, INF)
_ONE: Card = (1, 1)


def class_name(card: Card) -> str:
    lo, hi = card
    if hi == 0:
        return "fails"
    if hi == 1:
        return "det" if lo >= 1 else "semidet"
    return "multi" if lo >= 1 else "nondet"


def _seq(a: Card, b: Card) -> Card:
    """Conjunction: counts multiply (0·∞ = 0 — a failing goal yields a
    failing conjunction no matter what follows), capped to the class
    granularity {0, 1, ∞}."""
    if a[1] == 0 or b[1] == 0:
        hi: float = 0
    else:
        hi = a[1] * b[1]
        if hi > 1:
            hi = INF
    return (min(1, a[0] * b[0]), hi)


def _alt(a: Card, b: Card) -> Card:
    """Disjunction: counts add (capped at ∞ / class granularity)."""
    lo = min(1, a[0] + b[0])
    hi = a[1] + b[1]
    return (lo, hi if hi <= 1 else INF)


@dataclass
class CardResult:
    """Inferred cardinality per predicate, plus the mode-refined view."""
    cards: Dict[Indicator, Card]
    #: predicates whose ``max`` dropped to 1 only thanks to inferred
    #: call modes, mapped to the discriminating argument position
    det_under_modes: Dict[Indicator, int]

    def class_of(self, ind: Indicator) -> Optional[str]:
        card = self.cards.get(ind)
        return None if card is None else class_name(card)


def infer_cardinality(program: Program, graph: CallGraph,
                      modes: Optional[ModeResult] = None) -> CardResult:
    """Bottom-up cardinality over the SCC condensation (callees first),
    with recursive SCC members widened to ``max = ∞``."""
    cards: Dict[Indicator, Card] = {}
    for ind in program.fact_rows:
        rows = program.fact_rows[ind]
        cards[ind] = (0, 0) if rows == 0 else (0, INF)
        if rows == 1:
            cards[ind] = (0, 1)
    for ind in program.externals:
        cards.setdefault(ind, _TOP)

    def card_of(ind: Indicator) -> Card:
        sig = builtin_signature(ind)
        if sig is not None:
            return sig.card
        return cards.get(ind, _TOP)

    for scc in graph.sccs:
        members = [ind for ind in scc if ind in program.clauses]
        recursive = len(scc) > 1 or any(
            ind in graph.edges.get(ind, ()) for ind in scc)
        # Pessimistic seed for the members lets card_of answer
        # intra-SCC calls soundly while we compute the real bound.
        for ind in members:
            cards.setdefault(ind, _TOP)
        for ind in members:
            cards[ind] = _predicate_card(
                program.clauses[ind], card_of, recursive)

    result = CardResult(cards=cards, det_under_modes={})
    if modes is not None:
        refine_with_modes(result, program, modes)
    return result


def _predicate_card(clauses, card_of, recursive: bool) -> Card:
    total: Card = (0, 0)
    min_open = True  # clauses may still add to the guaranteed floor
    for clause in clauses:
        c = _clause_card(clause, card_of)
        hi = _alt(total, c)[1]
        lo = _alt(total, c)[0] if min_open else total[0]
        total = (lo, hi)
        if _clause_has_cut(clause):
            # a committed earlier clause hides later ones from the
            # calls it matched; stop accumulating the floor
            min_open = False
    if recursive:
        total = (total[0], INF if total[1] > 0 else 0)
    return total


def _clause_card(clause: Term, card_of) -> Card:
    head, body = split_clause_term(clause)
    body_card = _goal_card(body, card_of) if body is not None else _ONE
    if not _linear_var_head(head):
        # head unification can fail: no guaranteed floor
        body_card = (0, body_card[1])
    return body_card


def _goal_card(goal: Term, card_of) -> Card:
    if isinstance(goal, Var):
        return _TOP
    if isinstance(goal, Atom):
        ind = (goal.name, 0)
        if ind == ("!", 0):
            # within-clause commit: at most one continuation survives
            return _ONE
        if ind in CONTROL_GOALS:
            return (0, 0) if goal.name in ("fail", "false") else _ONE
        return card_of(ind)
    if not isinstance(goal, Struct):
        return _TOP
    ind = goal.indicator
    if ind == (",", 2):
        return _seq(_goal_card(goal.args[0], card_of),
                    _goal_card(goal.args[1], card_of))
    if ind == (";", 2):
        left = goal.args[0]
        if isinstance(left, Struct) and left.indicator == ("->", 2):
            then = _seq((0, 1), _goal_card(left.args[1], card_of))
            other = _goal_card(goal.args[1], card_of)
            # exactly one branch runs: join, not add
            return (min(then[0], other[0]), max(then[1], other[1]))
        return _alt(_goal_card(left, card_of),
                    _goal_card(goal.args[1], card_of))
    if ind == ("->", 2):
        return _seq((0, 1), _goal_card(goal.args[1], card_of))
    if ind in (("\\+", 1), ("not", 1)):
        return (0, 1)
    if ind == ("once", 1):
        inner = _goal_card(goal.args[0], card_of)
        return (inner[0] and 1, min(inner[1], 1))
    if ind == ("call", 1):
        return _goal_card(goal.args[0], card_of)
    if goal.name == "call" and goal.arity >= 2:
        return _TOP
    sig = builtin_signature(ind)
    if sig is not None:
        return sig.card
    return card_of(ind)


def _clause_has_cut(clause: Term) -> bool:
    _head, body = split_clause_term(clause)
    if body is None:
        return False
    stack = [body]
    while stack:
        goal = stack.pop()
        if isinstance(goal, Atom) and goal.name == "!":
            return True
        if isinstance(goal, Struct) and goal.indicator in (
                (",", 2), (";", 2), ("->", 2)):
            stack.extend(goal.args)
    return False


def _linear_var_head(head: Term) -> bool:
    """Every head argument a distinct fresh variable → unification
    with any call cannot fail."""
    if isinstance(head, Atom):
        return True
    if not isinstance(head, Struct):
        return False
    seen = set()
    for arg in head.args:
        if not isinstance(arg, Var) or id(arg) in seen:
            return False
        seen.add(id(arg))
    return True


# =====================================================================
# Mode-driven refinement
# =====================================================================

def refine_with_modes(result: CardResult, program: Program,
                      modes: ModeResult) -> None:
    """Drop ``max`` to 1 for predicates that are deterministic *under
    the inferred call modes*: some argument position is ground at
    every analysed call site, the clause heads carry pairwise-distinct
    atomic constants there, and each clause body is itself at most
    semidet.  A ground caller argument selects at most one clause, so
    at most one solution — the interprocedural fact a local analysis
    cannot see.  Only applies to predicates the program actually calls
    (entry predicates may be queried with anything)."""
    def card_of(ind: Indicator) -> Card:
        sig = builtin_signature(ind)
        if sig is not None:
            return sig.card
        return result.cards.get(ind, _TOP)

    for ind, clauses in program.clauses.items():
        card = result.cards.get(ind, _TOP)
        if card[1] <= 1 or len(clauses) < 2:
            continue
        if ind not in modes.called or ind in modes.widened:
            continue
        if ind in program.entries:
            continue
        call = modes.call_modes.get(ind)
        if call is None:
            continue
        pos = discriminating_position(clauses, call)
        if pos is None:
            continue
        if any(_clause_body_max(c, card_of) > 1 for c in clauses):
            continue
        result.cards[ind] = (card[0], 1)
        result.det_under_modes[ind] = pos


def _clause_body_max(clause: Term, card_of) -> float:
    _head, body = split_clause_term(clause)
    if body is None:
        return 1
    return _goal_card(body, card_of)[1]


def discriminating_position(clauses, call_modes: Tuple[str, ...]
                            ) -> Optional[int]:
    """The first argument position that is ground at every call site
    and carries pairwise-distinct atomic constants across all clause
    heads, or None."""
    for pos, mode in enumerate(call_modes):
        if mode != GROUND:
            continue
        keys = []
        ok = True
        for clause in clauses:
            head, _body = split_clause_term(clause)
            if not isinstance(head, Struct) or pos >= head.arity:
                ok = False
                break
            arg = head.args[pos]
            if isinstance(arg, Atom):
                keys.append(("atom", arg.name))
            elif isinstance(arg, (int, float, str)):
                keys.append((type(arg).__name__, arg))
            else:
                ok = False
                break
        if ok and len(keys) == len(set(keys)):
            return pos
    return None
