"""WAM code verification: structural rules + abstract interpretation.

The structural pass (V rules) checks that a code block is well-formed
without reasoning about data flow: every instruction is a known opcode
with operands of the right shape, every jump lands inside the block,
every ``try_me_else``/``retry_me_else`` points at the next alternative
of a well-nested chain, every ``escape`` names a registered built-in,
and every dictionary reference resolves.  It is cheap (one linear scan)
and is the dynamic loader's default gate for code fetched from the EDB.

The abstract pass (A rules) interprets the instruction control-flow
graph over a small abstract state — the set of initialised X registers,
the environment (size + initialised Y slots) and the unify read/write
mode — to a fixpoint, proving no register is read before it is
written, no permanent slot escapes its ``allocate`` size, and every
``unify_*`` executes under a structure context.  The abstraction
mirrors the emulator's actual backtracking contract: a choice point
restores only argument registers ``X0..arity-1``
(:meth:`Machine._push_cp` saves ``x[:arity]``), and a ``call`` or
``escape`` invalidates temporaries (the compiler's chunk model never
carries a temporary across a goal boundary).

Rule ids are stable and documented in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import VerifyError
from ..wam import instructions as I
from ..wam.compiler import CompiledClause, is_builtin_indicator

__all__ = ["Finding", "RULES", "check_code", "check_clause",
           "verify_code", "verify_clause"]

#: Verifier rule glossary (ids are stable; see docs/ANALYSIS.md).
RULES: Dict[str, str] = {
    "V101": "operand shape: unknown opcode, wrong operand count, or a "
            "malformed operand (register, constant, functor id, count)",
    "V102": "jump target out of range, or an unresolved symbolic label "
            "in executable code",
    "V103": "dictionary reference (atom, functor or procedure id) does "
            "not resolve to a live dictionary entry",
    "V104": "try_me_else/retry_me_else alternative does not point at "
            "the retry_me_else/trust_me of a well-nested chain",
    "V105": "environment discipline: allocate/deallocate mismatch, or "
            "conflicting environment states at a control-flow join",
    "V106": "block termination: empty block, or the last instruction "
            "falls through past the end of the code",
    "V107": "escape target is not a registered built-in",
    "V108": "switch table malformed: bad key shape or non-dict table",
    "V109": "label pseudo-instruction present in assembled code",
    "V110": "try/retry is not followed by the retry/trust of its chain",
    "A201": "an X (temporary) register is read before any write on "
            "some executable path",
    "A202": "a Y (permanent) slot is read before any write, or its "
            "index is outside the allocated environment",
    "A203": "a permanent slot, cut barrier or get_level is touched "
            "with no environment allocated",
    "A204": "unify instruction outside a read/write-mode context (no "
            "preceding get/put_structure or get/put_list)",
    "A205": "allocate size exceeds use: a permanent slot inside the "
            "declared environment is never referenced",
    "A206": "put_unsafe_value outside the clause's final goal: a call "
            "intervenes before the environment is discarded",
}

# Terminal instructions: control never falls through to offset+1.
_TERMINATORS = frozenset({I.PROCEED, I.EXECUTE, I.FAIL_OP,
                          I.HALT_SUCCESS})
#: ops that may legally be the last instruction of a block
_VALID_LAST = _TERMINATORS | {I.TRUST, I.SWITCH_ON_TERM,
                              I.SWITCH_ON_CONSTANT, I.SWITCH_ON_STRUCTURE,
                              I.SWITCH_ON_ARG}

_REG_BOUND = 1 << 16  # sanity bound on register indices


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic: rule id, instruction offset, message."""
    rule: str
    offset: int
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.rule} @{self.offset}: {self.message}"


# =====================================================================
# Operand shape checking (V101)
# =====================================================================

def _is_reg(x) -> bool:
    return (isinstance(x, tuple) and len(x) == 2 and x[0] in ("x", "y")
            and isinstance(x[1], int) and not isinstance(x[1], bool)
            and 0 <= x[1] < _REG_BOUND)


def _is_xreg(x) -> bool:
    return _is_reg(x) and x[0] == "x"


def _is_yreg(x) -> bool:
    return _is_reg(x) and x[0] == "y"


def _is_const(x) -> bool:
    if not (isinstance(x, tuple) and len(x) == 2):
        return False
    tag, value = x
    if tag == "atom":
        return isinstance(value, int) and not isinstance(value, bool)
    if tag == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if tag == "flt":
        return isinstance(value, float)
    return False


def _is_fid(x) -> bool:
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def _is_count(x) -> bool:
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def _is_label(x) -> bool:
    # symbolic labels (strings) are shape-valid; V102 rejects them in
    # executable code separately, with a clearer message
    return isinstance(x, str) or (
        isinstance(x, int) and not isinstance(x, bool))


def _is_name(x) -> bool:
    return isinstance(x, str) and bool(x)


#: opcode -> ((checker, description), ...) for ordinary instructions;
#: the switch instructions have bespoke checks below.
_SHAPES: Dict[str, Tuple[Tuple[object, str], ...]] = {
    I.GET_VARIABLE: ((_is_reg, "register"), (_is_xreg, "argument register")),
    I.GET_VALUE: ((_is_reg, "register"), (_is_xreg, "argument register")),
    I.GET_CONSTANT: ((_is_const, "constant"), (_is_xreg, "argument register")),
    I.GET_NIL: ((_is_xreg, "argument register"),),
    I.GET_STRUCTURE: ((_is_fid, "functor id"), (_is_xreg, "argument register")),
    I.GET_LIST: ((_is_xreg, "argument register"),),
    I.PUT_VARIABLE: ((_is_reg, "register"), (_is_xreg, "argument register")),
    I.PUT_VALUE: ((_is_reg, "register"), (_is_xreg, "argument register")),
    I.PUT_UNSAFE_VALUE: ((_is_yreg, "permanent register"),
                         (_is_xreg, "argument register")),
    I.PUT_CONSTANT: ((_is_const, "constant"), (_is_xreg, "argument register")),
    I.PUT_NIL: ((_is_xreg, "argument register"),),
    I.PUT_STRUCTURE: ((_is_fid, "functor id"), (_is_xreg, "argument register")),
    I.PUT_LIST: ((_is_xreg, "argument register"),),
    I.UNIFY_VARIABLE: ((_is_reg, "register"),),
    I.UNIFY_VALUE: ((_is_reg, "register"),),
    I.UNIFY_LOCAL_VALUE: ((_is_reg, "register"),),
    I.UNIFY_CONSTANT: ((_is_const, "constant"),),
    I.UNIFY_NIL: (),
    I.UNIFY_VOID: ((_is_count, "count"),),
    I.ALLOCATE: ((_is_count, "environment size"),),
    I.DEALLOCATE: (),
    I.CALL: ((_is_fid, "procedure id"), (_is_count, "arity")),
    I.EXECUTE: ((_is_fid, "procedure id"), (_is_count, "arity")),
    I.PROCEED: (),
    I.TRY_ME_ELSE: ((_is_label, "label"),),
    I.RETRY_ME_ELSE: ((_is_label, "label"),),
    I.TRUST_ME: (),
    I.TRY: ((_is_label, "label"),),
    I.RETRY: ((_is_label, "label"),),
    I.TRUST: ((_is_label, "label"),),
    I.NECK_CUT: (),
    I.GET_LEVEL: ((_is_yreg, "permanent register"),),
    I.CUT: ((_is_yreg, "permanent register"),),
    I.ESCAPE: ((_is_name, "builtin name"), (_is_count, "arity")),
    I.FAIL_OP: (),
    I.NOOP: (),
    I.HALT_SUCCESS: (),
    I.LABEL: ((_is_name, "label name"),),
    I.GET_LIST_VV: ((_is_xreg, "argument register"),
                    (_is_reg, "register"), (_is_reg, "register")),
}

_SWITCH_OPS = (I.SWITCH_ON_TERM, I.SWITCH_ON_CONSTANT,
               I.SWITCH_ON_STRUCTURE)

#: fused superinstructions with nested operand lists (bespoke checks)
_FUSED_SEQ_OPS = (I.GET_CONSTANTS, I.UNIFY_CONSTANTS, I.PUT_ARGS)


def _switch_key_ok(op: str, key) -> bool:
    if not (isinstance(key, tuple) and len(key) == 2):
        return False
    if op == I.SWITCH_ON_STRUCTURE:
        return key[0] == "fun" and _is_fid(key[1])
    return _is_const(key)


# =====================================================================
# Structural pass
# =====================================================================

def _structural(code: List[tuple], dictionary,
                findings: List[Finding]) -> bool:
    """V rules over *code*; returns True when clean enough for the
    abstract pass to run (shape and targets all valid)."""
    n = len(code)
    if n == 0:
        findings.append(Finding("V106", 0, "empty code block"))
        return False
    sound = True

    def bad(rule: str, offset: int, message: str) -> None:
        nonlocal sound
        sound = False
        findings.append(Finding(rule, offset, message))

    for i, instr in enumerate(code):
        if not isinstance(instr, tuple) or not instr:
            bad("V101", i, f"not an instruction tuple: {instr!r}")
            continue
        op = instr[0]
        if op == I.LABEL:
            bad("V109", i, f"label pseudo-instruction {instr[1]!r} in "
                "assembled code")
            continue
        if op in _SWITCH_OPS:
            _check_switch(code, i, instr, dictionary, bad)
            continue
        if op == I.SWITCH_ON_ARG:
            _check_switch_on_arg(code, i, instr, dictionary, bad)
            continue
        if op in _FUSED_SEQ_OPS:
            _check_fused(i, instr, dictionary, bad)
            continue
        shape = _SHAPES.get(op)
        if shape is None:
            bad("V101", i, f"unknown opcode {op!r}")
            continue
        if len(instr) - 1 != len(shape):
            bad("V101", i, f"{op} takes {len(shape)} operand(s), "
                f"got {len(instr) - 1}")
            continue
        for operand, (check, what) in zip(instr[1:], shape):
            if not check(operand):
                bad("V101", i, f"{op}: malformed {what} {operand!r}")
        # jump targets (V102) and chain nesting (V104/V110)
        if op in (I.TRY_ME_ELSE, I.RETRY_ME_ELSE, I.TRY, I.RETRY,
                  I.TRUST):
            target = instr[1]
            if not _target_ok(code, i, target, bad):
                continue
            if op in (I.TRY_ME_ELSE, I.RETRY_ME_ELSE):
                alt = code[target][0] if isinstance(code[target], tuple) \
                    and code[target] else None
                if alt not in (I.RETRY_ME_ELSE, I.TRUST_ME):
                    bad("V104", i, f"{op} alternative at {target} is "
                        f"{alt!r}, expected retry_me_else/trust_me")
        if op in (I.TRY, I.RETRY):
            nxt = code[i + 1][0] if (
                i + 1 < n and isinstance(code[i + 1], tuple)
                and code[i + 1]) else None
            if nxt not in (I.RETRY, I.TRUST):
                bad("V110", i, f"{op} is followed by {nxt!r}, expected "
                    "retry/trust")
        # dictionary resolvability (V103) and escape targets (V107)
        if dictionary is not None:
            if op in (I.GET_STRUCTURE, I.PUT_STRUCTURE,
                      I.CALL, I.EXECUTE):
                if _is_fid(instr[1]) and not dictionary.is_live(instr[1]):
                    bad("V103", i, f"{op}: dead dictionary id {instr[1]}")
            elif op in (I.GET_CONSTANT, I.PUT_CONSTANT, I.UNIFY_CONSTANT):
                const = instr[1]
                if (_is_const(const) and const[0] == "atom"
                        and not dictionary.is_live(const[1])):
                    bad("V103", i, f"{op}: dead atom id {const[1]}")
        if op == I.ESCAPE and _is_name(instr[1]) and _is_count(instr[2]):
            if not is_builtin_indicator(instr[1], instr[2]):
                bad("V107", i, f"escape target {instr[1]}/{instr[2]} is "
                    "not a registered builtin")

    last = code[-1]
    last_op = last[0] if isinstance(last, tuple) and last else None
    if last_op not in _VALID_LAST and last_op in _SHAPES:
        bad("V106", n - 1, f"block ends with fall-through "
            f"instruction {last_op!r}")

    # Environment discipline is a plain linear property for jump-free
    # code (single clause bodies); over blocks with control flow the
    # abstract pass enforces it path-sensitively instead.
    ops = {instr[0] for instr in code
           if isinstance(instr, tuple) and instr}
    if sound and not (ops & ({I.TRY_ME_ELSE, I.RETRY_ME_ELSE, I.TRY,
                              I.RETRY, I.TRUST, I.SWITCH_ON_ARG}
                             | set(_SWITCH_OPS))):
        env = False
        for i, instr in enumerate(code):
            op = instr[0]
            if op == I.ALLOCATE:
                if env:
                    bad("V105", i, "allocate with an environment "
                        "already allocated")
                env = True
            elif op == I.DEALLOCATE:
                if not env:
                    bad("V105", i, "deallocate with no environment "
                        "allocated")
                env = False
            elif op in (I.PROCEED, I.EXECUTE) and env:
                bad("V105", i, f"{op} with the environment still "
                    "allocated")
            if op in _TERMINATORS:
                break  # anything after is unreachable in jump-free code
    return sound


def _target_ok(code: List[tuple], i: int, target, bad) -> bool:
    if isinstance(target, str):
        bad("V102", i, f"unresolved symbolic label {target!r}")
        return False
    if not isinstance(target, int) or isinstance(target, bool) \
            or not (0 <= target < len(code)):
        bad("V102", i, f"jump target {target!r} outside "
            f"[0, {len(code)})")
        return False
    return True


def _check_switch(code: List[tuple], i: int, instr: tuple,
                  dictionary, bad) -> None:
    op = instr[0]
    if op == I.SWITCH_ON_TERM:
        if len(instr) != 5:
            bad("V101", i, f"switch_on_term takes 4 labels, "
                f"got {len(instr) - 1}")
            return
        for target in instr[1:]:
            _target_ok(code, i, target, bad)
        return
    if len(instr) != 3:
        bad("V101", i, f"{op} takes (table, default), "
            f"got {len(instr) - 1} operand(s)")
        return
    table, default = instr[1], instr[2]
    if not isinstance(table, dict):
        bad("V108", i, f"{op}: table is {type(table).__name__}, "
            "expected dict")
        return
    for key, target in table.items():
        if not _switch_key_ok(op, key):
            bad("V108", i, f"{op}: malformed key {key!r}")
        elif dictionary is not None:
            ident = key[1] if key[0] in ("atom", "fun") else None
            if ident is not None and not dictionary.is_live(ident):
                bad("V103", i, f"{op}: dead dictionary id {ident} "
                    f"in key {key!r}")
        _target_ok(code, i, target, bad)
    _target_ok(code, i, default, bad)


def _check_switch_on_arg(code: List[tuple], i: int, instr: tuple,
                         dictionary, bad) -> None:
    """switch_on_arg (argpos, {const_key: label}, lvar, lmiss)."""
    if len(instr) != 5:
        bad("V101", i, f"switch_on_arg takes (argpos, table, lvar, "
            f"lmiss), got {len(instr) - 1} operand(s)")
        return
    argpos, table, lvar, lmiss = instr[1:]
    if not _is_count(argpos):
        bad("V101", i, f"switch_on_arg: malformed argument position "
            f"{argpos!r}")
    if not isinstance(table, dict):
        bad("V108", i, f"switch_on_arg: table is "
            f"{type(table).__name__}, expected dict")
        return
    for key, target in table.items():
        if not _is_const(key):
            bad("V108", i, f"switch_on_arg: malformed key {key!r}")
        elif (dictionary is not None and key[0] == "atom"
                and not dictionary.is_live(key[1])):
            bad("V103", i, f"switch_on_arg: dead dictionary id "
                f"{key[1]} in key {key!r}")
        _target_ok(code, i, target, bad)
    _target_ok(code, i, lvar, bad)
    _target_ok(code, i, lmiss, bad)


def _check_fused(i: int, instr: tuple, dictionary, bad) -> None:
    """Operand shapes for the fused superinstructions, whose single
    operand is a tuple of component items (docs/OPTIMIZER.md)."""
    op = instr[0]
    if len(instr) != 2 or not isinstance(instr[1], tuple):
        bad("V101", i, f"{op} takes one tuple operand")
        return
    items = instr[1]
    if len(items) < 2:
        bad("V101", i, f"{op}: fused run of {len(items)} item(s), "
            "expected at least 2")
        return

    def const_ok(const) -> None:
        if not _is_const(const):
            bad("V101", i, f"{op}: malformed constant {const!r}")
        elif (dictionary is not None and const[0] == "atom"
                and not dictionary.is_live(const[1])):
            bad("V103", i, f"{op}: dead atom id {const[1]}")

    for item in items:
        if op == I.GET_CONSTANTS:
            if not (isinstance(item, tuple) and len(item) == 2
                    and _is_xreg(item[1])):
                bad("V101", i, f"{op}: malformed item {item!r}")
                continue
            const_ok(item[0])
        elif op == I.UNIFY_CONSTANTS:
            const_ok(item)
        else:  # PUT_ARGS
            if not (isinstance(item, tuple) and len(item) == 3
                    and item[0] in ("v", "c") and _is_xreg(item[2])):
                bad("V101", i, f"{op}: malformed item {item!r}")
                continue
            if item[0] == "v":
                if not _is_reg(item[1]):
                    bad("V101", i, f"{op}: malformed source register "
                        f"{item[1]!r}")
            else:
                const_ok(item[1])


# =====================================================================
# Abstract interpretation
# =====================================================================

@dataclass(frozen=True)
class _State:
    """Abstract machine state at one instruction offset.

    ``xs`` — initialised X registers; ``nperm``/``ys`` — environment
    size and initialised Y slots (``nperm is None`` = no environment);
    ``mode`` — inside a unify read/write-mode context.
    """
    xs: FrozenSet[int]
    nperm: Optional[int]
    ys: FrozenSet[int]
    mode: bool


def _meet(a: _State, b: _State) -> Tuple[_State, bool]:
    """Join-point meet; second value flags an environment conflict."""
    conflict = (a.nperm is None) != (b.nperm is None) or a.nperm != b.nperm
    if conflict or a.nperm is None:
        nperm, ys = None, frozenset()
    else:
        nperm, ys = a.nperm, a.ys & b.ys
    return _State(a.xs & b.xs, nperm, ys, a.mode and b.mode), conflict


class _AbstractPass:
    """Worklist fixpoint over the instruction CFG (A rules + V105)."""

    def __init__(self, code: List[tuple], arity: int,
                 findings: List[Finding]):
        self.code = code
        self.arity = arity
        self.findings = findings
        self._emitted: Set[Tuple[str, int, str]] = set()
        self.states: List[Optional[_State]] = [None] * len(code)
        self.reached: Set[int] = set()

    def emit(self, rule: str, offset: int, message: str) -> None:
        key = (rule, offset, message)
        if key not in self._emitted:
            self._emitted.add(key)
            self.findings.append(Finding(rule, offset, message))

    # ------------------------------------------------------------- run

    def run(self) -> None:
        entry = _State(frozenset(range(self.arity)), None, frozenset(),
                       False)
        self.states[0] = entry
        work = [0]
        while work:
            i = work.pop()
            state = self.states[i]
            assert state is not None
            self.reached.add(i)
            for target, succ in self._transfer(i, self.code[i], state):
                old = self.states[target]
                if old is None:
                    merged = succ
                else:
                    merged, conflict = _meet(old, succ)
                    if conflict:
                        self.emit("V105", target,
                                  "conflicting environment states at "
                                  "control-flow join")
                    if merged == old:
                        continue
                self.states[target] = merged
                work.append(target)
        self._check_permanent_liveness()

    # -------------------------------------------------------- transfer

    def _read_reg(self, reg, state: _State, i: int, op: str) -> None:
        kind, idx = reg
        if kind == "x":
            if idx not in state.xs:
                self.emit("A201", i, f"{op} reads uninitialised X{idx}")
        else:
            if state.nperm is None:
                self.emit("A203", i, f"{op} touches Y{idx} with no "
                          "environment allocated")
            elif idx >= state.nperm:
                self.emit("A202", i, f"{op} reads Y{idx} outside the "
                          f"allocated environment of size {state.nperm}")
            elif idx not in state.ys:
                self.emit("A202", i, f"{op} reads uninitialised Y{idx}")

    def _write_reg(self, reg, state: _State, i: int,
                   op: str) -> _State:
        kind, idx = reg
        if kind == "x":
            return _State(state.xs | {idx}, state.nperm, state.ys,
                          state.mode)
        if state.nperm is None:
            self.emit("A203", i, f"{op} touches Y{idx} with no "
                      "environment allocated")
            return state
        if idx >= state.nperm:
            self.emit("A202", i, f"{op} writes Y{idx} outside the "
                      f"allocated environment of size {state.nperm}")
            return state
        return _State(state.xs, state.nperm, state.ys | {idx},
                      state.mode)

    def _need_mode(self, state: _State, i: int, op: str) -> None:
        if not state.mode:
            self.emit("A204", i, f"{op} outside a read/write-mode "
                      "context")

    def _transfer(self, i: int, instr: tuple, state: _State
                  ) -> List[Tuple[int, _State]]:
        op = instr[0]
        xs, nperm, ys = state.xs, state.nperm, state.ys
        mode = False  # any non-unify instruction ends the unify context
        out: List[Tuple[int, _State]] = []

        def fall(s: _State) -> None:
            if i + 1 < len(self.code):
                out.append((i + 1, s))

        def bt_edge(target: int, s: _State) -> None:
            # Backtracking restores only the argument registers the
            # choice point saved (x[:arity]) and resets the unify mode.
            out.append((target,
                        _State(s.xs & frozenset(range(self.arity)),
                               s.nperm, s.ys, False)))

        if op in (I.GET_VARIABLE,):
            self._read_reg(instr[2], state, i, op)
            fall(self._write_reg(instr[1],
                                 _State(xs, nperm, ys, mode), i, op))
        elif op == I.GET_VALUE:
            self._read_reg(instr[1], state, i, op)
            self._read_reg(instr[2], state, i, op)
            fall(_State(xs, nperm, ys, mode))
        elif op in (I.GET_CONSTANT, I.GET_NIL):
            self._read_reg(instr[-1], state, i, op)
            fall(_State(xs, nperm, ys, mode))
        elif op in (I.GET_STRUCTURE, I.GET_LIST):
            self._read_reg(instr[-1], state, i, op)
            fall(_State(xs, nperm, ys, True))
        elif op == I.PUT_VARIABLE:
            s = self._write_reg(instr[1], _State(xs, nperm, ys, mode),
                                i, op)
            fall(self._write_reg(instr[2], s, i, op))
        elif op in (I.PUT_VALUE, I.PUT_UNSAFE_VALUE):
            self._read_reg(instr[1], state, i, op)
            fall(self._write_reg(instr[2],
                                 _State(xs, nperm, ys, mode), i, op))
        elif op in (I.PUT_CONSTANT, I.PUT_NIL):
            fall(self._write_reg(instr[-1],
                                 _State(xs, nperm, ys, mode), i, op))
        elif op in (I.PUT_STRUCTURE, I.PUT_LIST):
            fall(self._write_reg(instr[-1],
                                 _State(xs, nperm, ys, True), i, op))
        elif op == I.UNIFY_VARIABLE:
            self._need_mode(state, i, op)
            fall(self._write_reg(instr[1],
                                 _State(xs, nperm, ys, state.mode),
                                 i, op))
        elif op in (I.UNIFY_VALUE, I.UNIFY_LOCAL_VALUE):
            self._need_mode(state, i, op)
            self._read_reg(instr[1], state, i, op)
            fall(_State(xs, nperm, ys, state.mode))
        elif op in (I.UNIFY_CONSTANT, I.UNIFY_NIL, I.UNIFY_VOID):
            self._need_mode(state, i, op)
            fall(_State(xs, nperm, ys, state.mode))
        elif op == I.ALLOCATE:
            if nperm is not None:
                self.emit("V105", i, "allocate with an environment "
                          "already allocated")
            fall(_State(xs, instr[1], frozenset(), mode))
        elif op == I.DEALLOCATE:
            if nperm is None:
                self.emit("V105", i, "deallocate with no environment "
                          "allocated")
            fall(_State(xs, None, frozenset(), mode))
        elif op == I.CALL:
            for k in range(instr[2]):
                if k not in xs:
                    self.emit("A201", i, f"call reads uninitialised "
                              f"argument register X{k}")
            # the callee clobbers every temporary register
            fall(_State(frozenset(), nperm, ys, mode))
        elif op == I.ESCAPE:
            for k in range(instr[2]):
                if k not in xs:
                    self.emit("A201", i, f"escape reads uninitialised "
                              f"argument register X{k}")
            # a resumed escape generator restores only its arguments
            fall(_State(frozenset(range(instr[2])), nperm, ys, mode))
        elif op == I.EXECUTE:
            for k in range(instr[2]):
                if k not in xs:
                    self.emit("A201", i, f"execute reads uninitialised "
                              f"argument register X{k}")
            if nperm is not None:
                self.emit("V105", i, "execute with the environment "
                          "still allocated")
        elif op == I.PROCEED:
            if nperm is not None:
                self.emit("V105", i, "proceed with the environment "
                          "still allocated")
        elif op in (I.FAIL_OP, I.HALT_SUCCESS):
            pass  # terminal; backtracking discards the frame
        elif op in (I.TRY_ME_ELSE, I.RETRY_ME_ELSE):
            s = _State(xs, nperm, ys, mode)
            fall(s)
            bt_edge(instr[1], s)
        elif op == I.TRUST_ME:
            fall(_State(xs, nperm, ys, mode))
        elif op in (I.TRY, I.RETRY):
            s = _State(xs, nperm, ys, mode)
            out.append((instr[1], s))
            bt_edge(i + 1, s)
        elif op == I.TRUST:
            out.append((instr[1], _State(xs, nperm, ys, mode)))
        elif op == I.SWITCH_ON_TERM:
            if self.arity < 1:
                self.emit("A201", i, "switch_on_term reads X0 of a "
                          "0-ary procedure")
            s = _State(xs, nperm, ys, mode)
            for target in instr[1:]:
                out.append((target, s))
        elif op in (I.SWITCH_ON_CONSTANT, I.SWITCH_ON_STRUCTURE):
            if self.arity < 1:
                self.emit("A201", i, f"{op} reads X0 of a 0-ary "
                          "procedure")
            s = _State(xs, nperm, ys, mode)
            for target in instr[1].values():
                out.append((target, s))
            out.append((instr[2], s))
        elif op == I.GET_CONSTANTS:
            for _, ai in instr[1]:
                self._read_reg(ai, state, i, op)
            fall(_State(xs, nperm, ys, mode))
        elif op == I.UNIFY_CONSTANTS:
            self._need_mode(state, i, op)
            fall(_State(xs, nperm, ys, state.mode))
        elif op == I.GET_LIST_VV:
            self._read_reg(instr[1], state, i, op)
            s = self._write_reg(instr[2], _State(xs, nperm, ys, True),
                                i, op)
            fall(self._write_reg(instr[3], s, i, op))
        elif op == I.PUT_ARGS:
            s = _State(xs, nperm, ys, mode)
            for item in instr[1]:
                if item[0] == "v":
                    self._read_reg(item[1], s, i, op)
                s = self._write_reg(item[2], s, i, op)
            fall(s)
        elif op == I.SWITCH_ON_ARG:
            if instr[1] not in xs:
                self.emit("A201", i, f"switch_on_arg reads "
                          f"uninitialised X{instr[1]}")
            s = _State(xs, nperm, ys, mode)
            for target in instr[2].values():
                out.append((target, s))
            out.append((instr[3], s))
            out.append((instr[4], s))
        elif op == I.GET_LEVEL:
            fall(self._write_reg(instr[1],
                                 _State(xs, nperm, ys, mode), i, op))
        elif op == I.CUT:
            self._read_reg(instr[1], state, i, op)
            fall(_State(xs, nperm, ys, mode))
        elif op in (I.NECK_CUT, I.NOOP):
            fall(_State(xs, nperm, ys, mode))
        else:  # pragma: no cover - structural pass rejects these first
            fall(_State(xs, nperm, ys, mode))
        return out

    # -------------------------------------------- linear-region checks

    def _check_permanent_liveness(self) -> None:
        """A205/A206 over each allocate's linear region.  Clause bodies
        are linear (control constructs compile to auxiliary
        procedures), so a forward scan to the region's terminator sees
        exactly the permanent references of that environment."""
        code = self.code
        stop = _TERMINATORS | {I.TRY, I.RETRY, I.TRUST, I.TRUST_ME,
                               I.TRY_ME_ELSE, I.RETRY_ME_ELSE,
                               I.SWITCH_ON_ARG} | \
            set(_SWITCH_OPS)

        def yslots(operand, into: Set[int]) -> None:
            # Recurse into nested operand tuples: the fused
            # superinstructions carry registers inside item lists.
            if not isinstance(operand, tuple):
                return
            if (len(operand) == 2 and operand[0] == "y"
                    and isinstance(operand[1], int)):
                into.add(operand[1])
                return
            for element in operand:
                yslots(element, into)
        for i, instr in enumerate(code):
            if instr[0] == I.ALLOCATE and i in self.reached:
                nperm = instr[1]
                used: Set[int] = set()
                unsafe_at: List[int] = []
                for j in range(i + 1, len(code)):
                    op = code[j][0]
                    if op == I.DEALLOCATE or op in stop:
                        break
                    if op == I.CALL and unsafe_at:
                        for at in unsafe_at:
                            self.emit("A206", at,
                                      "put_unsafe_value before an "
                                      "intervening call: the unsafe "
                                      "binding must feed the final "
                                      "goal only")
                        unsafe_at = []
                    if op == I.PUT_UNSAFE_VALUE:
                        unsafe_at.append(j)
                    for operand in code[j][1:]:
                        yslots(operand, used)
                dead = sorted(set(range(nperm)) - used)
                if dead:
                    self.emit("A205", i,
                              f"allocate {nperm}: permanent slot(s) "
                              f"{dead} never referenced")


# =====================================================================
# Entry points
# =====================================================================

def check_code(code: List[tuple], *, arity: Optional[int] = None,
               dictionary=None, level: str = "full") -> List[Finding]:
    """Verify one assembled code block; return every finding.

    ``level="structural"`` runs the V rules only; ``"full"`` adds the
    abstract interpretation (A rules) when *arity* is known.  The
    abstract pass only runs over structurally sound code — dataflow
    over malformed instructions would chase noise.
    """
    if level not in ("structural", "full"):
        raise ValueError(f"unknown verification level {level!r}")
    findings: List[Finding] = []
    sound = _structural(list(code), dictionary, findings)
    if level == "full" and sound and arity is not None:
        _AbstractPass(list(code), arity, findings).run()
    return findings


def check_clause(clause: CompiledClause, dictionary=None,
                 level: str = "full") -> List[Finding]:
    """Verify one compiled clause's code (arity from the clause)."""
    return check_code(clause.code, arity=clause.arity,
                      dictionary=dictionary, level=level)


def verify_code(code: List[tuple], *, arity: Optional[int] = None,
                dictionary=None, level: str = "full",
                procedure: str = "") -> None:
    """As :func:`check_code`, raising :class:`VerifyError` on the first
    finding (the loader's rejection path)."""
    findings = check_code(code, arity=arity, dictionary=dictionary,
                          level=level)
    if findings:
        first = findings[0]
        raise VerifyError(first.rule, first.offset, first.message,
                          procedure)


def verify_clause(clause: CompiledClause, dictionary=None,
                  level: str = "full", procedure: str = "") -> None:
    findings = check_clause(clause, dictionary=dictionary, level=level)
    if findings:
        first = findings[0]
        raise VerifyError(first.rule, first.offset, first.message,
                          procedure)
