"""The shipped Prolog corpus: every program text this repository ships.

CI lints and verifies all of it (``python -m repro.analysis``): the
prelude library, the workload rule programs, and every Prolog program
embedded in the examples (extracted from the ``consult`` /
``store_program`` string literals by a small AST walk, so a new example
is in the corpus the moment it is committed).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["CorpusEntry", "corpus_entries", "repo_root"]

_EMBED_CALLS = {"consult", "store_program"}


@dataclass
class CorpusEntry:
    """One lintable/verifiable program text."""
    name: str
    text: str
    #: indicators defined outside the text (stored facts relations the
    #: surrounding code creates) — the in-text pragmas cover the rest
    extra_defined: Tuple[Tuple[str, int], ...] = ()
    #: lint only — directive-heavy snippets with nothing to compile
    lint_only: bool = False


def repo_root() -> str:
    """The repository checkout root (src/repro/analysis → up 3)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def corpus_entries() -> List[CorpusEntry]:
    from ..wam.prelude import PRELUDE_SOURCE
    from ..workloads import graphs, integrity, mvv
    entries = [
        CorpusEntry("wam/prelude.py", PRELUDE_SOURCE),
        CorpusEntry("workloads/mvv.py", mvv.RULES),
        CorpusEntry("workloads/integrity.py",
                    integrity.PROGRAM + "\n" + integrity.CHECKER),
        CorpusEntry("workloads/graphs.py:REACH_PROGRAM",
                    graphs.REACH_PROGRAM),
        CorpusEntry("workloads/graphs.py:SAME_GEN_PROGRAM",
                    graphs.SAME_GEN_PROGRAM),
        CorpusEntry("workloads/graphs.py:UNREACHABLE_PROGRAM",
                    graphs.UNREACHABLE_PROGRAM),
    ]
    entries.extend(_example_entries())
    return entries


def _example_entries() -> List[CorpusEntry]:
    examples = os.path.join(repo_root(), "examples")
    if not os.path.isdir(examples):  # installed without examples
        return []
    out: List[CorpusEntry] = []
    for filename in sorted(os.listdir(examples)):
        if not filename.endswith(".py"):
            continue
        path = os.path.join(examples, filename)
        try:
            with open(path, "r", encoding="utf-8") as f:
                tree = ast.parse(f.read(), filename=path)
        except (OSError, SyntaxError):
            continue
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EMBED_CALLS
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            text = node.args[0].value
            if "." not in text:
                continue  # not a program (e.g. an empty string)
            out.append(CorpusEntry(
                f"examples/{filename}:{node.lineno}", text))
    return out
