"""Static analysis over WAM code and Prolog source (`docs/ANALYSIS.md`).

Three layers, mirroring the verification story of compile-time analyses
in B-Prolog and BinProlog (PAPERS.md) applied to the paper's
compiled-code-in-the-EDB architecture (§3.1):

* :mod:`~repro.analysis.verifier` — structural verification (V rules)
  and an abstract interpreter over the instruction CFG (A rules);
* :mod:`~repro.analysis.determinism` — first-argument partitioning,
  switch-table coverage and dead-code reachability (D rules);
* :mod:`~repro.analysis.lint` — source-level lint for ``.pl`` programs
  (L rules), with inline ``% lint:`` pragma waivers;
* :mod:`~repro.analysis.global_` — whole-program analysis: predicate
  call graph, mode/groundness abstract interpretation and determinism
  inference (M rules), consumed by the WAM optimizer, the Datalog
  strategy planner and the linter.

The compiler and assembler verify their own output when
:func:`enable_self_verify` has been called (the test suite turns it
on); the dynamic loader verifies EDB-fetched code at a configurable
level (``verify="off"|"structural"|"full"``); and
``python -m repro.analysis`` lints/verifies the shipped corpus for CI.
"""

from __future__ import annotations

from .determinism import ProcedureReport, analyze_clauses
from .lint import LintFinding, lint_text
from .verifier import (Finding, check_clause, check_code, verify_clause,
                       verify_code)

__all__ = [
    "Finding", "LintFinding", "ProcedureReport",
    "analyze_clauses", "check_clause", "check_code", "lint_text",
    "verify_clause", "verify_code",
    "enable_self_verify", "self_verify_enabled", "describe_procedure",
    "describe_modes",
]


def enable_self_verify(enabled: bool = True) -> None:
    """Make the compiler and assembler verify every block they emit.

    Debug/test knob: the tier-1 suite enables it in ``conftest.py`` so
    every compilation anywhere in the suite doubles as a verifier test.
    """
    from ..wam import assembler, compiler
    assembler.set_self_verify(enabled)
    compiler.set_self_verify(enabled)


def self_verify_enabled() -> bool:
    from ..wam import assembler
    return assembler.self_verify_enabled()


def describe_procedure(session, name: str, arity: int) -> str:
    """Human-readable analysis report for one procedure — the REPL's
    ``:verify name/arity`` command.

    Looks the procedure up in main memory first, then in the EDB
    (fetching, decoding and verifying its stored clause code the same
    way the loader does).
    """
    from ..edb.codec import decode_code
    from ..wam.indexing import build_procedure_layout
    machine = session.machine
    lines = [f"{name}/{arity}:"]

    proc = machine.procedure(name, arity)
    if proc is not None and proc.code:
        findings = check_code(proc.code, arity=arity,
                              dictionary=machine.dictionary)
        lines.append(f"  main-memory block: {len(proc.code)} instructions"
                     f" ({proc.kind})")
        lines.extend(_render(findings))
        return "\n".join(lines)

    stored = session.store.lookup(name, arity)
    if stored is None:
        return f"no such procedure: {name}/{arity}"
    if stored.mode != "rules":
        return (f"{name}/{arity}: stored in {stored.mode!r} mode "
                f"({stored.nclauses} clauses) — code is generated at "
                "load time, nothing stored to verify")

    clauses = session.store.fetch_clauses(name, arity, {})
    findings: list = []
    compiled = []
    for i, sc in enumerate(clauses):
        code = decode_code(sc.relative_code, machine.dictionary,
                           session.store.external_dict)
        for f in check_code(code, arity=arity,
                            dictionary=machine.dictionary):
            findings.append(Finding(f.rule, f.offset,
                                    f"clause {i}: {f.message}"))
        compiled.append(session.loader._as_compiled(machine, sc, code))
    lines.append(f"  EDB: {len(clauses)} stored clauses "
                 f"(version {stored.version})")
    if not findings:
        layout = build_procedure_layout(compiled, index=session.loader.index)
        report = analyze_clauses(compiled, layout=layout)
        findings.extend(report.findings)
        lines.append("  block: "
                     f"{len(layout.code)} instructions, "
                     f"{len(report.partitions)} first-arg partitions, "
                     f"{report.deterministic_keys} deterministic")
        for (kind, key), positions in sorted(report.partitions.items(),
                                             key=lambda kv: str(kv[0])):
            lines.append(f"    {kind}"
                         f"{'' if key is None else ':' + str(key)}"
                         f" -> clauses {positions}")
    lines.extend(_render(findings))
    return "\n".join(lines)


def describe_modes(session, name=None, arity=None) -> str:
    """Human-readable whole-program mode/determinism report for the
    loaded program — the REPL's ``:modes [name[/arity]]`` command.

    Runs (or reuses) the session's cached global analysis; one
    predicate when *name* is given, the full table otherwise."""
    report = session.global_analysis()
    return report.describe(name=name, arity=arity)


def _render(findings) -> list:
    if not findings:
        return ["  verdict: clean"]
    out = [f"  verdict: {len(findings)} finding(s)"]
    for f in findings:
        out.append(f"    {f.rule} @{f.offset}: {f.message}")
    return out
