"""Determinism / indexing analysis over compiled procedures (D rules).

The paper credits first-argument indexing (§3.2.2) with eliminating the
dominant class of data references: when the switch tables map a call
pattern to a *single* clause, no choice point is created.  This module
makes that claim checkable:

* partition the clause set by first-argument type/value (the same
  metadata :mod:`repro.wam.indexing` dispatches on);
* rebuild the procedure block from the clauses and require the emitted
  switch tables to cover exactly the clause set (**D301** — the block
  being executed is the block this clause set compiles to);
* walk the block's control-flow graph from offset 0 and report
  instructions no dispatch path can reach (**D302** — dead,
  unreachable-under-indexing code; the shared ``fail`` sentinel is
  exempt, since fully covered dispatch legitimately strands it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..wam import instructions as I
from ..wam.compiler import CompiledClause
from ..wam.indexing import ProcedureLayout, build_procedure_layout
from .verifier import Finding

__all__ = ["RULES", "ProcedureReport", "analyze_clauses"]

#: Determinism rule glossary (ids are stable; see docs/ANALYSIS.md).
RULES: Dict[str, str] = {
    "D301": "switch coverage: the executed block differs from the "
            "block the clause set compiles to (stale or tampered "
            "indexing tables)",
    "D302": "dead code: an instruction (or clause entry) is not "
            "reachable from the procedure entry under any dispatch "
            "path",
}


@dataclass
class ProcedureReport:
    """Result of the determinism analysis of one procedure."""

    #: (first_arg_kind, first_arg_key) -> clause positions, in source
    #: order; ``("var", None)`` collects the unindexable clauses that
    #: are woven into every dispatch chain
    partitions: Dict[Tuple[str, Optional[tuple]], List[int]] = \
        field(default_factory=dict)
    #: dispatch keys that select exactly one clause (no choice point)
    deterministic_keys: int = 0
    findings: List[Finding] = field(default_factory=list)
    #: clause positions whose entry offset is unreachable
    dead_clauses: List[int] = field(default_factory=list)


def analyze_clauses(clauses: Sequence[CompiledClause],
                    code: Optional[List[tuple]] = None,
                    index: bool = True,
                    layout: Optional[ProcedureLayout] = None,
                    optimizer=None) -> ProcedureReport:
    """Analyze *clauses* (and optionally the block claimed to implement
    them).  With *code*, D301 checks the block equals the deterministic
    rebuild; D302 always checks reachability of the analyzed block.
    When the block was built by the code optimizer, pass the same
    *optimizer* (usually muted) so the rebuild matches its output."""
    report = ProcedureReport()
    var_positions: List[int] = []
    for pos, clause in enumerate(clauses):
        kind = clause.first_arg_kind
        key = clause.first_arg_key if kind != "var" else None
        report.partitions.setdefault((kind, key), []).append(pos)
        if kind == "var":
            var_positions.append(pos)

    for (kind, key), positions in report.partitions.items():
        if kind == "var":
            continue
        # a dispatch on this key reaches its own clauses plus every
        # var-headed clause (they match any first argument)
        if len(set(positions) | set(var_positions)) == 1:
            report.deterministic_keys += 1

    if layout is None:
        layout = build_procedure_layout(clauses, index=index,
                                        optimizer=optimizer)
    if code is not None and list(code) != list(layout.code):
        report.findings.append(Finding(
            "D301", 0,
            f"block of {len(code)} instructions differs from the "
            f"{len(layout.code)}-instruction rebuild of its "
            f"{len(clauses)} clauses"))

    reached = _reachable(layout.code)
    entry_of = {offset: pos
                for pos, offset in enumerate(layout.entries)}
    for offset in sorted(set(range(len(layout.code))) - reached):
        if offset == layout.fail_offset:
            continue  # the shared fail sentinel may be fully bypassed
        pos = entry_of.get(offset)
        what = (f"clause {pos} entry" if pos is not None
                else "instruction")
        report.findings.append(Finding(
            "D302", offset,
            f"{what} unreachable from the procedure entry"))
        if pos is not None:
            report.dead_clauses.append(pos)
    return report


def _reachable(code: List[tuple]) -> set:
    """Offsets reachable from 0 following every dispatch/backtrack
    edge of the assembled block."""
    n = len(code)
    seen: set = set()
    work = [0] if n else []
    while work:
        i = work.pop()
        if i in seen or not (0 <= i < n):
            continue
        seen.add(i)
        instr = code[i]
        if not isinstance(instr, tuple) or not instr:
            continue
        op = instr[0]
        if op in (I.PROCEED, I.EXECUTE, I.FAIL_OP, I.HALT_SUCCESS):
            continue
        if op in (I.TRY_ME_ELSE, I.RETRY_ME_ELSE):
            work.append(i + 1)
            if isinstance(instr[1], int):
                work.append(instr[1])
        elif op in (I.TRY, I.RETRY):
            work.append(i + 1)  # the backtrack continuation
            if isinstance(instr[1], int):
                work.append(instr[1])
        elif op == I.TRUST:
            if isinstance(instr[1], int):
                work.append(instr[1])
        elif op == I.SWITCH_ON_TERM:
            for target in instr[1:]:
                if isinstance(target, int):
                    work.append(target)
        elif op in (I.SWITCH_ON_CONSTANT, I.SWITCH_ON_STRUCTURE):
            if isinstance(instr[1], dict):
                for target in instr[1].values():
                    if isinstance(target, int):
                        work.append(target)
            if isinstance(instr[2], int):
                work.append(instr[2])
        elif op == I.SWITCH_ON_ARG:
            if isinstance(instr[2], dict):
                for target in instr[2].values():
                    if isinstance(target, int):
                        work.append(target)
            for target in (instr[3], instr[4]):
                if isinstance(target, int):
                    work.append(target)
        else:
            work.append(i + 1)
    return seen
