"""Incremental, read-only tailing of a primary's live WAL file.

The tailer never writes: it opens its own handle, remembers the byte
offset and LSN of the last committed frame it shipped, and re-examines
the file on every :meth:`WalTailer.poll`.  The frame format and the
parsing policy are shared with recovery (:func:`repro.bang.wal.
read_frame`); what differs is what the *end* of the log means:

========== ========================= ===========================
observed    crashed owner (recovery)  live tailer (this module)
========== ========================= ===========================
torn tail   truncate the garbage      an append in flight —
                                      **wait and retry**
corrupt     truncate (same)           real corruption — quarantine
frame                                 and re-bootstrap, never apply
log shrank  n/a (owner did it)        the primary checkpointed past
                                      us — re-bootstrap
========== ========================= ===========================

The two-physical-write append discipline of
:class:`~repro.bang.wal.WriteAheadLog` is what makes the middle row
sound: a reader racing an in-progress append can only ever see a short
prefix of the new frame, so a *complete* frame that fails its CRC was
not torn by timing — its bytes are wrong.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..bang.faults import NULL_FAULTS, FaultInjector
from ..bang.wal import _FRAME, read_frame

__all__ = ["WalTailer"]

#: poll() statuses
OK = "ok"            # clean end (records may still have been returned)
WAIT = "wait"        # torn tail / file not there yet: retry later
RESET = "reset"      # log shrank below our offset: re-bootstrap
CORRUPT = "corrupt"  # complete-but-bad frame: quarantine, re-bootstrap


class WalTailer:
    """A read-only cursor over one WAL file, resumable across polls."""

    def __init__(self, path: str,
                 faults: Optional[FaultInjector] = None):
        self.path = path
        self.faults = faults or NULL_FAULTS
        self._f = None
        #: byte offset just past the last committed frame shipped
        self.offset = 0
        #: LSN the next committed frame must carry
        self.next_lsn = 0
        self.records_streamed = 0
        self.bytes_streamed = 0
        #: header bytes of the frame at offset 0, captured when it was
        #: first shipped.  A *size* check alone cannot detect a log
        #: that was truncated (owner checkpoint) and then regrew to
        #: near our old offset — but the new generation's first frame
        #: carries a different CRC, so a changed anchor means RESET.
        self._anchor: Optional[bytes] = None

    # ------------------------------------------------------------------ poll

    def poll(self, max_records: Optional[int] = 64
             ) -> Tuple[str, List[Tuple[int, bytes]]]:
        """Ship the next batch of committed frames.

        Returns ``(status, records)`` where *records* is a list of
        ``(lsn, payload)`` pairs — possibly non-empty even for a
        non-``"ok"`` status (the committed prefix read before the
        stream ended).  Statuses:

        * ``"ok"`` — clean stop: either *max_records* was reached or
          the committed end of the log (an empty list means caught up);
        * ``"wait"`` — the log ends in an incomplete frame (append in
          flight / crash tail) or does not exist yet: retry later;
        * ``"reset"`` — the file shrank below our offset (the primary
          checkpointed and truncated the log): the caller must
          re-bootstrap from the checkpoint;
        * ``"corrupt"`` — a complete frame failed magic/LSN/CRC: the
          stream cannot be trusted, quarantine and re-bootstrap.

        Transient I/O errors (:class:`OSError`) propagate — the caller
        retries with backoff; the cursor position is unchanged.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return WAIT, []
        if size < self.offset:
            self._reset()
            return RESET, []
        if self._f is None:
            try:
                # Unbuffered: a BufferedReader seek within its own
                # buffer serves *stale* bytes after the owner truncates
                # and rewrites the file under us — every tailer read
                # must hit the OS.
                self._f = open(self.path, "rb", buffering=0)
            except OSError:
                return WAIT, []
        if self._generation_changed(size):
            self._reset()
            return RESET, []
        records: List[Tuple[int, bytes]] = []
        while max_records is None or len(records) < max_records:
            if self.offset >= size:
                return OK, records
            self._f.seek(self.offset)
            status, payload = read_frame(self._f, self.faults,
                                         self.offset, size, self.next_lsn)
            if status == "torn":
                return WAIT, records
            if status == "corrupt":
                return CORRUPT, records
            if self.offset == 0:
                self._f.seek(0)
                self._anchor = self._f.read(_FRAME.size)
            records.append((self.next_lsn, payload))
            self.offset += _FRAME.size + len(payload)
            self.next_lsn += 1
            self.records_streamed += 1
            self.bytes_streamed += _FRAME.size + len(payload)
        return OK, records

    def _generation_changed(self, size: int) -> bool:
        """True when the frame at offset 0 is no longer the one we
        shipped — the owner truncated the log (checkpoint) and a new
        generation regrew under the same name, possibly past our
        offset, so the size test alone would miss it."""
        if self._anchor is None or size < _FRAME.size:
            return False
        self._f.seek(0)
        return self._f.read(_FRAME.size) != self._anchor

    def _reset(self) -> None:
        self.close()
        self.offset = 0
        self.next_lsn = 0
        self._anchor = None

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        if self._f is not None:
            try:
                self._f.close()
            finally:
                self._f = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WalTailer({self.path!r}, offset={self.offset}, "
                f"next_lsn={self.next_lsn})")
