"""repro.replication — WAL-shipping read replicas (docs/REPLICATION.md).

ROADMAP item: turn the single-node durability layer (checkpoint +
logical-redo WAL, PR 2) and the concurrent kernel (PR 3) into a
horizontal read-scaling and fault-tolerance story.  A **primary**
:class:`~repro.edb.store.ExternalStore` keeps writing its CRC-framed
WAL exactly as before; each **replica** bootstraps from the primary's
checkpoint, then tails the log and replays committed records
continuously under the existing era-fencing rules, serving read-only
:class:`~repro.service.query_service.QueryService` traffic the whole
time.

The three moving parts:

* :class:`~repro.replication.stream.WalTailer` — an incremental,
  read-only cursor over the primary's live WAL file.  It distinguishes
  a *torn tail* (an append in flight: wait and retry, **never**
  truncate) from *corruption* (a complete frame with a bad CRC:
  quarantine) from *truncation* (the primary checkpointed past us:
  re-bootstrap).
* :class:`~repro.replication.replica.Replica` — snapshot bootstrap, a
  background apply loop with capped exponential backoff on stream
  breaks, lag gauges, and :meth:`~repro.replication.replica.Replica.
  promote` (drain the durable tail, lift the read-only fences,
  checkpoint as the new primary — era bump included).
* :class:`~repro.replication.cluster.ReplicaSet` — one primary plus N
  replicas behind a single façade: writes go to the primary,
  staleness-bounded reads (``max_lag``) are routed to the freshest
  admissible replica, and :meth:`~repro.replication.cluster.
  ReplicaSet.failover` runs the supervised promote drill with zero
  acknowledged-write loss.
"""

from .cluster import ReplicaSet
from .replica import Replica
from .stream import WalTailer

__all__ = ["Replica", "ReplicaSet", "WalTailer"]
