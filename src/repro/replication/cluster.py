"""A primary plus N read replicas behind one façade.

:class:`ReplicaSet` wires the pieces together the way a deployment
would: one writable :class:`~repro.service.query_service.QueryService`
over the durable primary store, N :class:`~repro.replication.replica.
Replica` followers tailing its WAL, and routing policy on top:

* **writes** (``store_program`` / ``store_relation`` /
  ``assert_external`` / ``execute_admin``) go to the primary;
* **reads** (:meth:`ReplicaSet.submit_read`) go to the freshest
  admissible replica.  A per-query staleness bound ``max_lag`` (in
  mutation epochs) rejects the read with
  :class:`~repro.errors.ReplicaLagExceeded` when no replica satisfies
  it — the caller can widen the bound, wait, or read the primary;
* **failover** (:meth:`ReplicaSet.failover`): when the primary's WAL
  poisons (PR 2 semantics) or its process dies, the freshest replica
  drains the durable log tail and is promoted — era bump, writers
  redirected, stale replicas re-attached to the new primary — with
  zero acknowledged-write loss (acknowledged = WAL-fsynced).

Replica lag gauges and counters are attached to the primary service's
:class:`~repro.obs.registry.MetricsRegistry`, so one
``QueryService.exposition()`` scrape shows the whole cluster:
``replica_lag_epochs`` / ``replica_lag_records`` (summed across
replicas, plus per-replica dotted keys like
``replica_lag_records.r0``), the ``replica_*`` counters, and the
flight-recorder events on each replica's ring.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..bang.faults import NULL_FAULTS, FaultInjector
from ..edb.store import ExternalStore
from ..errors import PromotionError, ReplicaLagExceeded, ReplicationError
from ..service import QueryService
from .replica import Replica

__all__ = ["ReplicaSet"]


class ReplicaSet:
    """One writable primary + N read-only WAL-shipping replicas."""

    def __init__(self, path: str, *, replicas: int = 2,
                 directory: Optional[str] = None,
                 primary_workers: int = 2, replica_workers: int = 2,
                 queue_size: int = 64,
                 poll_interval: float = 0.005,
                 faults: Optional[FaultInjector] = None,
                 replica_faults: Optional[Dict[str, FaultInjector]] = None,
                 **service_kwargs):
        self.primary_path = path
        self.directory = directory or (path + ".replicas")
        os.makedirs(self.directory, exist_ok=True)
        self.primary_store = ExternalStore.open(
            path, faults=faults or NULL_FAULTS)
        self.primary = QueryService(store=self.primary_store,
                                    workers=primary_workers,
                                    queue_size=queue_size,
                                    **service_kwargs)
        #: service configuration (tracing, explain, session knobs) is
        #: cluster-wide: replicas attached now or later get the same
        #: kwargs as the primary, so e.g. replica-drained spans carry
        #: trace ids exactly like primary ones.
        self._service_kwargs = dict(service_kwargs)
        self.primary_dead = False
        self._rr = itertools.count()
        self._lock = threading.RLock()
        self._closed = False

        self.replicas: List[Replica] = []
        replica_faults = replica_faults or {}
        for i in range(replicas):
            name = f"r{i}"
            self.attach_replica(name,
                                faults=replica_faults.get(name),
                                workers=replica_workers,
                                poll_interval=poll_interval,
                                queue_size=queue_size)

    # ------------------------------------------------------------- topology

    def _primary_state(self) -> Optional[Tuple[int, int]]:
        if self.primary_dead:
            return None
        store = self.primary_store
        wal = store.wal
        return (store.mutation_epoch, wal.next_lsn if wal else 0)

    def attach_replica(self, name: str,
                       faults: Optional[FaultInjector] = None,
                       **replica_kwargs) -> Replica:
        """Bootstrap a new follower of the current primary and wire its
        metrics into the primary service's registry."""
        kwargs = dict(self._service_kwargs)
        kwargs.update(replica_kwargs)
        replica = Replica(name, self.primary_path,
                          os.path.join(self.directory, name),
                          faults=faults,
                          primary_state=self._primary_state,
                          **kwargs)
        with self._lock:
            self.replicas.append(replica)
        self.primary.metrics.attach(replica, gauges=replica.gauge_keys())
        if self.primary.events.enabled:
            self.primary.events.record("replica.attach", replica=name,
                                       primary=self.primary_path)
        return replica

    # ---------------------------------------------------------------- reads

    def submit_read(self, goal, limit: Optional[int] = None,
                    timeout: Optional[float] = None,
                    max_lag: Optional[int] = None):
        """Enqueue a read on the freshest admissible replica.

        *max_lag* bounds staleness in **mutation epochs** (0 = only a
        fully caught-up replica may answer).  With no admissible
        replica the read is rejected with
        :class:`~repro.errors.ReplicaLagExceeded`; with no replicas at
        all it falls through to the primary (when alive).
        """
        candidates: List[Tuple[int, Replica]] = []
        best: Optional[int] = None
        with self._lock:
            configured = len(self.replicas)
            pool = [r for r in self.replicas
                    if r.alive and not r.quarantined]
        for replica in pool:
            lag_epochs, _lag_records = replica.lag()
            lag = 0 if lag_epochs is None else lag_epochs
            best = lag if best is None else min(best, lag)
            if max_lag is None or lag <= max_lag:
                candidates.append((lag, replica))
        if not candidates:
            # Fall through to the primary only when the cluster has no
            # replicas at all; configured-but-unhealthy replicas fail
            # the read *typed* rather than silently loading the writer.
            if configured or self.primary_dead:
                raise ReplicaLagExceeded(
                    -1 if max_lag is None else max_lag,
                    best if best is not None else "no live replica")
            return self.primary.submit(goal, limit=limit, timeout=timeout)
        freshest = min(lag for lag, _ in candidates)
        freshest_pool = [r for lag, r in candidates if lag == freshest]
        chosen = freshest_pool[next(self._rr) % len(freshest_pool)]
        return chosen.submit(goal, limit=limit, timeout=timeout)

    def execute_read(self, goal, limit: Optional[int] = None,
                     timeout: Optional[float] = None,
                     max_lag: Optional[int] = None):
        return self.submit_read(goal, limit=limit, timeout=timeout,
                                max_lag=max_lag).result()

    def wait_for_catch_up(self, timeout: float = 10.0,
                          poll: float = 0.002) -> bool:
        """Block until every live replica has applied all of the
        primary's mutations (lag 0).  Returns False on timeout."""
        import time as _time
        deadline = _time.monotonic() + timeout
        target = self.primary_store.mutation_epoch
        while _time.monotonic() < deadline:
            with self._lock:
                pool = [r for r in self.replicas if r.alive]
            if pool and all(r.applied_epoch >= target for r in pool):
                return True
            _time.sleep(poll)
        return False

    # --------------------------------------------------------------- writes

    def store_program(self, text: str) -> None:
        self.primary.store_program(text)

    def store_relation(self, name: str, rows, **kwargs) -> None:
        self.primary.store_relation(name, rows, **kwargs)

    def assert_external(self, clause_text: str) -> None:
        self.primary.assert_external(clause_text)

    def execute_admin(self, goal, limit: Optional[int] = None):
        return self.primary.execute_admin(goal, limit=limit)

    def execute(self, goal, limit: Optional[int] = None,
                timeout: Optional[float] = None):
        """Run a read on the primary (the linearizable path)."""
        return self.primary.execute(goal, limit=limit, timeout=timeout)

    def checkpoint(self) -> None:
        """Checkpoint the primary (truncates its WAL — replicas behind
        the truncation horizon re-bootstrap automatically)."""
        self.primary_store.save(self.primary_path)

    # ------------------------------------------------------------- failover

    def kill_primary(self) -> None:
        """Simulate abrupt primary process death: the service stops
        accepting work and the store object is abandoned.  Durable
        state (checkpoint + fsynced WAL) stays on disc — that is
        exactly the acknowledged-write set a promoted replica must
        serve."""
        with self._lock:
            self.primary_dead = True
        self.primary.shutdown(drain=False, timeout=5.0)
        if self.primary.events.enabled:
            self.primary.events.record("replica.primary_lost",
                                       primary=self.primary_path)

    def poisoned(self) -> Optional[str]:
        """The primary's WAL-poison reason, if its log failed."""
        return self.primary_store._poisoned

    def failover(self, timeout: float = 10.0) -> str:
        """Supervised promote drill; returns the new primary's name.

        Picks the freshest live replica (max applied epoch, then max
        shipped LSN), drains + promotes it, redirects writes to its
        now-writable service, and re-attaches the remaining replicas
        to the new primary's home.  If the freshest candidate fails to
        promote, the next one is tried.
        """
        with self._lock:
            if not self.primary_dead:
                self.kill_primary()
            candidates = sorted(
                (r for r in self.replicas if r.crashed is None),
                key=lambda r: (r.applied_epoch, r.tailer.next_lsn),
                reverse=True)
        if not candidates:
            raise PromotionError("no live replica to promote")
        winner: Optional[Replica] = None
        last_error: Optional[Exception] = None
        for candidate in candidates:
            try:
                candidate.promote(timeout=timeout)
                winner = candidate
                break
            except (PromotionError, ReplicationError) as exc:
                last_error = exc
        if winner is None:
            raise PromotionError(
                f"no replica could be promoted ({last_error})")

        with self._lock:
            self.replicas.remove(winner)
            self.primary_path = winner.home_path
            self.primary_store = winner.store
            self.primary = winner.service
            self.primary_dead = False
            stale = list(self.replicas)
        # The new primary's exposition must show the whole cluster,
        # like the old one's did — the winner's own lifetime counters
        # (promotions, bootstraps, records applied) included.
        self.primary.metrics.attach(winner, gauges=winner.gauge_keys())
        for replica in stale:
            self.primary.metrics.attach(replica,
                                        gauges=replica.gauge_keys())
            replica.reattach(self.primary_path, self._primary_state)
        if self.primary.events.enabled:
            self.primary.events.record("replica.promote",
                                       replica=winner.name,
                                       home=winner.home_path,
                                       era=winner.store.wal_era)
        return winner.name

    # ------------------------------------------------------------ telemetry

    def counters(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        with self._lock:
            pool = list(self.replicas)
        for replica in pool:
            for key, value in replica.counters().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def telemetry(self, events: Optional[int] = 200) -> Dict[str, Any]:
        """Cluster-wide aggregate: the primary service's telemetry plus
        per-replica summaries and each replica's lifecycle events."""
        with self._lock:
            pool = list(self.replicas)
        summary = []
        for replica in pool:
            lag_epochs, lag_records = replica.lag()
            summary.append({
                "name": replica.name, "alive": replica.alive,
                "quarantined": replica.quarantined,
                "applied_epoch": replica.applied_epoch,
                "lag_epochs": lag_epochs, "lag_records": lag_records,
                "events": replica.events.tail(events),
            })
        telemetry = self.primary.telemetry(events)
        telemetry["replicas"] = summary
        return telemetry

    def exposition(self) -> str:
        """Prometheus text for the whole cluster (the primary service's
        registry, which carries every replica's counters and gauges)."""
        return self.primary.exposition()

    # ------------------------------------------------------------ lifecycle

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop replicas, then the primary.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool = list(self.replicas)
        for replica in pool:
            replica.shutdown(timeout)
        self.primary.shutdown(drain=True, timeout=timeout)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
