"""One read replica: snapshot bootstrap, continuous replay, promote.

A :class:`Replica` owns a *private copy* of the primary's EDB.
Bootstrap copies the primary's checkpoint file and pages sidecar into
the replica's directory and loads the copy — the replica's pager then
reads and writes its own files only; the single shared artefact is the
primary's WAL, and that is only ever *read* (via
:class:`~repro.replication.stream.WalTailer`).

A background apply loop polls the tailer and replays committed records
through :meth:`~repro.edb.store.ExternalStore.apply_replicated`, under
the same era-fencing rules as crash recovery: stale-era records are
skipped, and an era from *after* the loaded checkpoint means a fresh
checkpoint generation exists — re-bootstrap.  The loop is
robustness-first:

* a torn tail is an append in flight → wait and retry (never
  truncate someone else's log);
* a transient stream break (``OSError``) → capped exponential
  backoff, then retry from the same position;
* a corrupt frame or an undecodable record → the replica
  **quarantines** (never applies suspect bytes) and re-bootstraps from
  the checkpoint;
* the log shrinking below our offset (the primary checkpointed past
  the truncation horizon) → re-bootstrap.

Throughout, a read-only :class:`~repro.service.query_service.
QueryService` over the replica store keeps answering queries;
re-bootstrap swaps in a fresh store + service and then drains the old
one, so readers never observe a half-rebuilt database.

:meth:`Replica.promote` is the failover path: stop the loop, drain
every committed record still in the primary's log (acknowledged = WAL
fsynced, so this is exactly the zero-loss set), lift the store and
service fences, and checkpoint to the replica's own home — which bumps
the checkpoint era and starts a fresh WAL generation the ex-replica
now owns.
"""

from __future__ import annotations

import os
import pickle
import shutil
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from ..bang.faults import NULL_FAULTS, FaultInjector
from ..edb.store import ExternalStore
from ..errors import PromotionError, ReplicationError
from ..obs.events import EventRing
from ..service import QueryService
from .stream import CORRUPT, OK, RESET, WAIT, WalTailer

__all__ = ["Replica"]

#: primary-state probe: () -> (mutation_epoch, wal_next_lsn) | None
PrimaryState = Callable[[], Optional[Tuple[int, int]]]


class Replica:
    """A WAL-shipping follower of one primary EDB."""

    def __init__(self, name: str, primary_path: str, directory: str,
                 *, workers: int = 2, queue_size: int = 64,
                 poll_interval: float = 0.005, backoff_cap: float = 0.5,
                 batch: int = 64,
                 faults: Optional[FaultInjector] = None,
                 primary_state: Optional[PrimaryState] = None,
                 start: bool = True,
                 **service_kwargs):
        self.name = name
        self.primary_path = primary_path
        self.directory = directory
        #: where this replica checkpoints if promoted
        self.home_path = os.path.join(directory, f"{name}.edb")
        self.workers = workers
        self.queue_size = queue_size
        self.poll_interval = poll_interval
        self.backoff_cap = backoff_cap
        self.batch = batch
        self.faults = faults or NULL_FAULTS
        self._primary_state = primary_state
        self._service_kwargs = service_kwargs

        #: lifecycle flight recorder — owned by the replica, so it
        #: survives re-bootstraps (store rings are per-store)
        self.events = EventRing()

        # cumulative counters (docs/OBSERVABILITY.md, replica_*)
        self.records_applied = 0
        self.records_stale = 0
        self.bootstraps = 0
        self.rebootstraps = 0
        self.quarantines = 0
        self.stream_retries = 0
        self.torn_tail_waits = 0
        self.promotions = 0

        #: mutation epoch of the last applied record (starts at the
        #: bootstrap checkpoint's epoch)
        self.applied_epoch = 0
        self.quarantined = False
        self.promoted = False
        #: the injected/real crash that killed the apply loop, if any
        self.crashed: Optional[BaseException] = None
        self._last_lag: Tuple[int, int] = (0, 0)

        self._service_lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

        os.makedirs(directory, exist_ok=True)
        self.store: Optional[ExternalStore] = None
        self.service: Optional[QueryService] = None
        self.tailer = WalTailer(primary_path + ".wal", faults=self.faults)
        self._bootstrap(initial=True)
        if start:
            self.start()

    # ------------------------------------------------------------ bootstrap

    def _snapshot_paths(self) -> Tuple[str, str]:
        ckpt = os.path.join(self.directory, f"{self.name}.snapshot.edb")
        return ckpt, os.path.basename(self.primary_path)

    def _bootstrap(self, initial: bool = False) -> None:
        """Copy the primary's checkpoint (+ pages sidecars) into this
        replica's directory and load the copy; reset the tailer to the
        head of the primary's current log generation."""
        self.faults.crash_point("replica.bootstrap.before")
        ckpt_copy, primary_base = self._snapshot_paths()
        try:
            shutil.copyfile(self.primary_path, ckpt_copy)
            # Copy every pages sidecar of the primary base; load()
            # binds to the one matching the checkpoint's epoch.  (A
            # concurrent primary checkpoint can remove a sidecar under
            # us — the caller retries.)
            primary_dir = os.path.dirname(
                os.path.abspath(self.primary_path)) or "."
            prefix = primary_base + ".pages."
            copy_base = os.path.basename(ckpt_copy)
            for entry in os.listdir(primary_dir):
                if entry.startswith(prefix):
                    shutil.copyfile(
                        os.path.join(primary_dir, entry),
                        os.path.join(self.directory,
                                     copy_base + entry[len(primary_base):]))
            store = ExternalStore.load(ckpt_copy)
        except OSError as exc:
            raise ReplicationError(
                f"replica {self.name}: bootstrap copy failed "
                f"({type(exc).__name__}: {exc})") from exc
        store.freeze(f"replica {self.name!r} of {self.primary_path}")
        service = QueryService(store=store, workers=self.workers,
                               queue_size=self.queue_size, read_only=True,
                               **self._service_kwargs)
        with self._service_lock:
            old_service = self.service
            self.store = store
            self.service = service
            self.applied_epoch = store.checkpoint_epoch
            self.quarantined = False
        self.tailer.close()
        self.tailer = WalTailer(self.primary_path + ".wal",
                                faults=self.faults)
        self.bootstraps += 1
        if not initial:
            self.rebootstraps += 1
        if self.events.enabled:
            self.events.record("replica.bootstrap", replica=self.name,
                               primary=self.primary_path,
                               checkpoint_epoch=store.checkpoint_epoch,
                               era=store.wal_era, initial=initial)
        if old_service is not None:
            old_service.shutdown(drain=True, timeout=5.0)

    # ------------------------------------------------------------ apply loop

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"replica-{self.name}", daemon=True)
        self._thread.start()

    @property
    def alive(self) -> bool:
        return (self._thread is not None and self._thread.is_alive()
                and self.crashed is None)

    def _loop(self) -> None:
        backoff = self.poll_interval
        try:
            while not self._stop.is_set():
                advanced, backoff = self._step(backoff)
                if not advanced:
                    self._stop.wait(backoff)
        except BaseException as exc:  # noqa: BLE001 - simulated kill
            # An injected crash "kills the follower process": the loop
            # is dead, the object is inert until a fresh Replica is
            # built (exactly like a real process restart).
            self.crashed = exc

    def _step(self, backoff: float) -> Tuple[bool, float]:
        """One poll/apply round.  Returns ``(made_progress,
        next_backoff)``; the loop sleeps *next_backoff* when no
        progress was made."""
        try:
            status, records = self.tailer.poll(self.batch)
        except OSError as exc:
            self.stream_retries += 1
            if self.events.enabled:
                self.events.record("replica.stream_retry",
                                   replica=self.name, error=str(exc),
                                   backoff_s=round(backoff, 4))
            return False, min(backoff * 2, self.backoff_cap)

        fate = self._apply_batch(records)
        if fate == "quarantine" or status == CORRUPT:
            self.quarantined = True
            self.quarantines += 1
            if self.events.enabled:
                self.events.record("replica.quarantine",
                                   replica=self.name,
                                   offset=self.tailer.offset)
            self._try_rebootstrap("corrupt stream")
            return True, self.poll_interval
        if fate == "rebootstrap" or status == RESET:
            reason = ("era ahead of checkpoint" if fate == "rebootstrap"
                      else "log truncated below our offset")
            self._try_rebootstrap(reason)
            return True, self.poll_interval
        if records:
            self._update_lag()
            return True, self.poll_interval
        if status == WAIT:
            self.torn_tail_waits += 1
            # Never truncate, never re-bootstrap: an incomplete tail
            # frame is the primary's append in flight (or its crashed
            # tail, which its own recovery will clean up).
            return False, min(max(backoff, self.poll_interval) * 2,
                              self.backoff_cap)
        self._update_lag()
        return False, self.poll_interval

    def _apply_batch(self, records) -> str:
        """Replay shipped records under era fencing.  Returns ``"ok"``,
        ``"rebootstrap"`` (era ahead — a newer checkpoint generation
        exists) or ``"quarantine"`` (undecodable payload)."""
        store = self.store
        for _lsn, payload in records:
            try:
                record = pickle.loads(payload)
            except Exception:
                return "quarantine"
            era = record.get("era")
            if not isinstance(era, int) or era > store.wal_era:
                return "rebootstrap"
            if era < store.wal_era:
                self.records_stale += 1
                continue
            self.faults.crash_point("replica.apply.before")
            store.apply_replicated(record)
            self.records_applied += 1
            epoch = record.get("epoch")
            if isinstance(epoch, int) and epoch > self.applied_epoch:
                self.applied_epoch = epoch
        return "ok"

    def _try_rebootstrap(self, reason: str) -> None:
        if self.events.enabled:
            self.events.record("replica.rebootstrap", replica=self.name,
                               reason=reason)
        try:
            self._bootstrap()
        except ReplicationError:
            # Transient (primary mid-checkpoint): stay on the old
            # snapshot — the next loop round retries from poll().
            self.stream_retries += 1

    # ------------------------------------------------------------------ lag

    def lag(self) -> Tuple[Optional[int], Optional[int]]:
        """(lag in mutation epochs, lag in WAL records) against the
        live primary, or the last known values when the primary is
        unreachable (both ``None`` if it never was reachable)."""
        if self.promoted:
            return (0, 0)   # this replica IS the primary now
        state = self._primary_state() if self._primary_state else None
        if state is None:
            return self._last_lag
        primary_epoch, primary_lsn = state
        lag = (max(0, primary_epoch - self.applied_epoch),
               max(0, primary_lsn - self.tailer.next_lsn))
        self._last_lag = lag
        return lag

    def _update_lag(self) -> None:
        self.lag()

    # ---------------------------------------------------------------- reads

    def submit(self, goal, limit=None, timeout=None):
        with self._service_lock:
            service = self.service
        return service.submit(goal, limit=limit, timeout=timeout)

    def execute(self, goal, limit=None, timeout=None):
        return self.submit(goal, limit=limit, timeout=timeout).result()

    # -------------------------------------------------------------- promote

    def promote(self, timeout: float = 10.0) -> str:
        """Promote this replica to primary; returns its new home path.

        Stops the apply loop, drains every committed record remaining
        in the (dead) primary's log — acknowledged writes are exactly
        the WAL-fsynced ones, so a complete drain is the zero-loss
        guarantee — then lifts the read-only fences and checkpoints to
        :attr:`home_path` (era bump, fresh WAL owned by this store).
        """
        self.faults.crash_point("replica.promote.before")
        self.stop_apply()
        deadline = time.monotonic() + timeout
        while True:
            try:
                status, records = self.tailer.poll(None)
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise PromotionError(
                        f"replica {self.name}: drain kept failing "
                        f"({exc})") from exc
                time.sleep(self.poll_interval)
                continue
            fate = self._apply_batch(records)
            if fate == "quarantine" or status == CORRUPT:
                raise PromotionError(
                    f"replica {self.name}: corrupt stream during the "
                    "catch-up drain; promote a different replica")
            if fate == "rebootstrap" or status == RESET:
                # A newer checkpoint generation exists (the primary
                # checkpointed just before dying): re-bootstrap from it
                # — the checkpoint contains every record it truncated —
                # then drain whatever log remains.
                if time.monotonic() >= deadline:
                    raise PromotionError(
                        f"replica {self.name}: drain kept restarting")
                try:
                    self._bootstrap()
                except ReplicationError:
                    time.sleep(self.poll_interval)
                continue
            if status == OK and not records:
                break
            if status == WAIT and not records:
                # An incomplete tail frame was never fsynced, so it was
                # never acknowledged: not part of the zero-loss set.
                break
            if time.monotonic() >= deadline:
                raise PromotionError(
                    f"replica {self.name}: catch-up drain did not "
                    f"complete within {timeout}s")
        self.tailer.close()
        self.faults.crash_point("replica.promote.pre_save")
        self.store.promote(self.home_path)
        with self._service_lock:
            self.service.make_writable()
        self.promoted = True
        self.promotions += 1
        if self.events.enabled:
            self.events.record("replica.promote", replica=self.name,
                               home=self.home_path,
                               era=self.store.wal_era,
                               applied_epoch=self.applied_epoch,
                               records_applied=self.records_applied)
        return self.home_path

    def reattach(self, primary_path: str,
                 primary_state: Optional[PrimaryState] = None) -> None:
        """Follow a new primary (after a failover this replica lost):
        re-bootstrap from the new checkpoint and resume the loop."""
        self.stop_apply()
        self.primary_path = primary_path
        if primary_state is not None:
            self._primary_state = primary_state
        self._bootstrap()
        self.crashed = None
        if self.events.enabled:
            self.events.record("replica.reattach", replica=self.name,
                               primary=primary_path)
        self.start()

    # ------------------------------------------------------------ lifecycle

    def stop_apply(self, timeout: float = 5.0) -> None:
        """Stop the background apply loop (reads keep working)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the loop and the read service.  Idempotent."""
        self.stop_apply(timeout)
        self.tailer.close()
        with self._service_lock:
            service = self.service
        if service is not None:
            service.shutdown(drain=True, timeout=timeout)

    # ------------------------------------------------------------ telemetry

    def gauge_keys(self) -> Tuple[str, ...]:
        return ("replica_lag_epochs", "replica_lag_records",
                f"replica_lag_epochs.{self.name}",
                f"replica_lag_records.{self.name}")

    def counters(self) -> Dict[str, int]:
        lag_epochs, lag_records = self.lag()
        counters = {
            "replica_records_applied": self.records_applied,
            "replica_records_stale": self.records_stale,
            "replica_bootstraps": self.bootstraps,
            "replica_rebootstraps": self.rebootstraps,
            "replica_quarantines": self.quarantines,
            "replica_stream_retries": self.stream_retries,
            "replica_torn_tail_waits": self.torn_tail_waits,
            "replica_promotions": self.promotions,
        }
        counters["replica_lag_epochs"] = lag_epochs or 0
        counters["replica_lag_records"] = lag_records or 0
        counters[f"replica_lag_epochs.{self.name}"] = lag_epochs or 0
        counters[f"replica_lag_records.{self.name}"] = lag_records or 0
        return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Replica({self.name!r}, applied_epoch="
                f"{self.applied_epoch}, lsn={self.tailer.next_lsn})")
